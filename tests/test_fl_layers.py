"""Tests for the neural-network layers (repro.fl.layers)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fl.layers import (
    DenseLayer,
    relu,
    relu_grad,
    softmax,
    softmax_cross_entropy,
)


class TestDenseLayer:
    def test_forward_affine(self):
        layer = DenseLayer(
            weights=np.array([[1.0, 2.0], [3.0, 4.0]]), bias=np.array([10.0, 20.0])
        )
        output = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(output, [[14.0, 26.0]])

    def test_initialise_he_scale(self):
        rng = np.random.default_rng(0)
        layer = DenseLayer.initialise(1000, 50, rng)
        assert layer.weights.shape == (1000, 50)
        assert np.allclose(layer.bias, 0.0)
        assert abs(layer.weights.std() - np.sqrt(2.0 / 1000)) < 0.005

    def test_num_parameters(self):
        layer = DenseLayer.initialise(784, 80, np.random.default_rng(0))
        assert layer.num_parameters == 784 * 80 + 80

    def test_per_example_gradients_shapes(self):
        rng = np.random.default_rng(1)
        layer = DenseLayer.initialise(6, 4, rng)
        inputs = rng.normal(size=(5, 6))
        output_grads = rng.normal(size=(5, 4))
        w_grads, b_grads, in_grads = layer.per_example_gradients(
            inputs, output_grads
        )
        assert w_grads.shape == (5, 6, 4)
        assert b_grads.shape == (5, 4)
        assert in_grads.shape == (5, 6)

    def test_per_example_gradients_are_outer_products(self):
        rng = np.random.default_rng(2)
        layer = DenseLayer.initialise(3, 2, rng)
        inputs = rng.normal(size=(4, 3))
        output_grads = rng.normal(size=(4, 2))
        w_grads, _, _ = layer.per_example_gradients(inputs, output_grads)
        for b in range(4):
            assert np.allclose(w_grads[b], np.outer(inputs[b], output_grads[b]))

    def test_mean_of_per_example_matches_batch_gradient(self):
        rng = np.random.default_rng(3)
        layer = DenseLayer.initialise(3, 2, rng)
        inputs = rng.normal(size=(8, 3))
        output_grads = rng.normal(size=(8, 2))
        w_grads, _, _ = layer.per_example_gradients(inputs, output_grads)
        batch_grad = inputs.T @ output_grads / 8
        assert np.allclose(w_grads.mean(axis=0), batch_grad)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            DenseLayer(weights=np.ones((2, 3)), bias=np.ones(2))
        with pytest.raises(ConfigurationError):
            DenseLayer(weights=np.ones(3), bias=np.ones(3))


class TestActivations:
    def test_relu(self):
        assert np.allclose(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        assert np.allclose(
            relu_grad(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 1.0]
        )

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(size=(5, 10)) * 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestSoftmaxCrossEntropy:
    def test_loss_of_perfect_prediction_is_small(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        losses, _ = softmax_cross_entropy(logits, np.array([0]))
        assert losses[0] < 1e-6

    def test_loss_of_uniform_prediction(self):
        logits = np.zeros((1, 10))
        losses, _ = softmax_cross_entropy(logits, np.array([3]))
        assert losses[0] == pytest.approx(np.log(10))

    def test_gradient_is_probs_minus_onehot(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 1, 2, 3])
        probs = softmax(logits)
        _, grads = softmax_cross_entropy(logits, labels)
        onehot = np.zeros((4, 5))
        onehot[np.arange(4), labels] = 1.0
        assert np.allclose(grads, probs - onehot)

    def test_numeric_gradient_check(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(1, 4))
        labels = np.array([2])
        _, analytic = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for j in range(4):
            bumped = logits.copy()
            bumped[0, j] += eps
            loss_plus, _ = softmax_cross_entropy(bumped, labels)
            bumped[0, j] -= 2 * eps
            loss_minus, _ = softmax_cross_entropy(bumped, labels)
            numeric = (loss_plus[0] - loss_minus[0]) / (2 * eps)
            assert numeric == pytest.approx(analytic[0, j], abs=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))
        with pytest.raises(ConfigurationError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))
