"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_mechanism, main
from repro.config import CompressionConfig
from repro.mechanisms import (
    CpSgdMechanism,
    DiscreteGaussianMixtureMechanism,
    DistributedDiscreteGaussian,
    GaussianMechanism,
    SkellamMechanism,
    SkellamMixtureMechanism,
)


class TestBuildMechanism:
    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("gaussian", GaussianMechanism),
            ("smm", SkellamMixtureMechanism),
            ("skellam", SkellamMechanism),
            ("ddg", DistributedDiscreteGaussian),
            ("dgm", DiscreteGaussianMixtureMechanism),
            ("cpsgd", CpSgdMechanism),
        ],
    )
    def test_all_names(self, name, expected_type):
        compression = CompressionConfig(modulus=2**14, gamma=64.0)
        assert isinstance(build_mechanism(name, compression), expected_type)

    def test_distributed_mechanism_requires_compression(self):
        with pytest.raises(SystemExit):
            build_mechanism("smm", None)


class TestCommands:
    def test_calibrate_smm(self, capsys):
        exit_code = main(
            [
                "calibrate",
                "--mechanism", "smm",
                "--bits", "14",
                "--epsilons", "3",
                "--dimension", "256",
                "--participants", "50",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "lambda_per_participant" in captured.out
        assert "achieved_epsilon" in captured.out

    def test_calibrate_gaussian(self, capsys):
        exit_code = main(
            ["calibrate", "--mechanism", "gaussian", "--epsilons", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sigma" in captured.out

    def test_sum_command_small(self, capsys):
        exit_code = main(
            [
                "sum",
                "--dimension", "128",
                "--participants", "10",
                "--epsilons", "3",
                "--mechanisms", "gaussian", "smm",
                "--bits", "16",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "gaussian" in captured.out
        assert "smm" in captured.out
        assert "mse" in captured.out

    def test_fl_command_tiny(self, capsys):
        exit_code = main(
            [
                "fl",
                "--participants", "200",
                "--test-records", "50",
                "--batch", "20",
                "--rounds", "3",
                "--hidden", "4",
                "--epsilons", "5",
                "--mechanisms", "gaussian",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "acc=" in captured.out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestNewCommands:
    def test_secagg_command(self, capsys):
        exit_code = main(
            [
                "secagg",
                "--clients", "5",
                "--dimension", "16",
                "--bits", "8",
                "--threshold", "3",
                "--dropouts", "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sum correct: True" in captured.out

    def test_secagg_no_dropouts(self, capsys):
        exit_code = main(
            [
                "secagg",
                "--clients", "4",
                "--dimension", "8",
                "--threshold", "2",
                "--dropouts", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "dropped: none" in captured.out
        assert "included in sum: 4 clients" in captured.out

    def test_simulate_command(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--clients", "16",
                "--cohort", "8",
                "--rounds", "2",
                "--hidden", "2",
                "--test-records", "32",
                "--dropout-rate", "0.2",
                "--verify",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cumulative privacy: eps=" in captured.out
        assert "exact=True" in captured.out
        assert "parameters digest:" in captured.out
        assert "wire traffic:" in captured.out
        assert "KiB/round" in captured.out

    def test_simulate_sharded(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--clients", "16",
                "--cohort", "10",
                "--rounds", "1",
                "--hidden", "2",
                "--test-records", "32",
                "--dropout-rate", "0.1",
                "--shards", "2",
                "--verify",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert (
            "sharding: up to 2 shards per round (inline backend, "
            "clear compose)"
            in captured.out
        )
        assert "exact=True" in captured.out

    def test_simulate_tree(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--clients", "16",
                "--cohort", "10",
                "--rounds", "1",
                "--hidden", "2",
                "--test-records", "32",
                "--dropout-rate", "0.1",
                "--tree", "2x2",
                "--compose", "secagg",
                "--rebalance",
                "--verify",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert (
            "sharding: tree 2x2 (inline backend, secagg compose, "
            "rebalance on)"
            in captured.out
        )
        assert "exact=True" in captured.out

    def test_simulate_non_private(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--clients", "16",
                "--cohort", "6",
                "--rounds", "1",
                "--hidden", "2",
                "--test-records", "32",
                "--dropout-rate", "0",
                "--no-privacy",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "eps=nan" in captured.out

    def test_simulate_metrics_and_trace_out(self, capsys, tmp_path):
        import json

        from repro.telemetry import parse_prometheus

        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.jsonl"
        exit_code = main(
            [
                "simulate",
                "--clients", "16",
                "--cohort", "8",
                "--rounds", "2",
                "--hidden", "2",
                "--test-records", "32",
                "--dropout-rate", "0.1",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
                "--trace-max-events", "40",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "phase latency" in captured.out
        assert f"metrics written to {metrics_path}" in captured.out
        assert "trace written to" in captured.out
        parsed = parse_prometheus(metrics_path.read_text())
        assert parsed.types["sim_rounds_total"] == "counter"
        assert parsed.types["secagg_phase_sim_duration_seconds"] == (
            "histogram"
        )
        lines = trace_path.read_text().splitlines()
        assert 0 < len(lines) <= 40
        assert all("kind" in json.loads(line) for line in lines)

    def test_simulate_no_telemetry_conflicts_with_metrics_out(self, tmp_path):
        with pytest.raises(SystemExit, match="--no-telemetry"):
            main(
                [
                    "simulate",
                    "--clients", "16",
                    "--cohort", "8",
                    "--no-telemetry",
                    "--metrics-out", str(tmp_path / "m.prom"),
                ]
            )

    def test_simulate_no_telemetry_skips_latency_summary(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--clients", "16",
                "--cohort", "8",
                "--rounds", "1",
                "--hidden", "2",
                "--test-records", "32",
                "--dropout-rate", "0",
                "--no-telemetry",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "phase latency" not in captured.out

    def test_account_command(self, capsys):
        exit_code = main(["account", "--lambdas", "200", "--value", "1.5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "RDP eps" in captured.out
        assert "200.0" in captured.out

    def test_account_expected_failure_prints_reason(
        self, capsys, monkeypatch
    ):
        """An expected accounting failure (no finite RDP order) keeps
        the sweep going and says *why*, not a bare ``n/a``."""
        import repro.accounting.rdp as rdp
        from repro.errors import PrivacyAccountingError

        def no_order(orders, rdp_of, delta):
            raise PrivacyAccountingError(
                "no RDP order yields a finite epsilon"
            )

        monkeypatch.setattr(rdp, "best_epsilon", no_order)
        exit_code = main(["account", "--lambdas", "200", "--value", "1.5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "n/a" in captured.out
        assert "no RDP order yields a finite epsilon" in captured.out

    def test_account_unexpected_error_propagates(self, monkeypatch):
        """A genuine defect in the RDP path must crash the command,
        not be swallowed into an ``n/a`` row."""
        import repro.accounting.rdp as rdp

        def broken(orders, rdp_of, delta):
            raise RuntimeError("defect in the RDP path")

        monkeypatch.setattr(rdp, "best_epsilon", broken)
        with pytest.raises(RuntimeError, match="defect in the RDP path"):
            main(["account", "--lambdas", "200", "--value", "1.5"])

    def test_attack_command(self, capsys):
        exit_code = main(
            [
                "attack",
                "--trials", "100",
                "--uniform-points", "256",
                "--seed", "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "identified outright" in captured.out
        assert "wrong identifications: 0" in captured.out
