"""Tests for the communication-cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.communication import (
    bonawitz_round_cost,
    central_upload_bytes,
    client_upload_bytes,
    compression_ratio,
    payload_bits,
    training_communication,
)
from repro.errors import ConfigurationError


class TestPayload:
    def test_one_byte_per_dimension_at_2_8(self):
        """The paper's headline: m = 2^8 is one byte per parameter."""
        assert client_upload_bytes(1000, 2**8) == 1000

    def test_bits_scale_with_log_modulus(self):
        assert payload_bits(100, 2**10) == 1000
        assert payload_bits(100, 2**16) == 1600

    def test_non_power_of_two_rounds_up(self):
        assert payload_bits(10, 1000) == 100  # ceil(log2 1000) = 10

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ConfigurationError, match="dimension"):
            payload_bits(0, 256)

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ConfigurationError, match="modulus"):
            payload_bits(10, 1)

    def test_central_baseline_is_four_bytes_per_dim(self):
        assert central_upload_bytes(63_610) == 4 * 63_610

    def test_compression_ratio_at_one_byte(self):
        assert compression_ratio(4096, 2**8) == pytest.approx(4.0)

    @given(
        dimension=st.integers(min_value=1, max_value=10_000),
        bits=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40)
    def test_upload_bytes_monotone_in_bits(self, dimension, bits):
        smaller = client_upload_bytes(dimension, 2**bits)
        larger = client_upload_bytes(dimension, 2 ** (bits + 1))
        assert larger >= smaller


class TestBonawitzCost:
    def test_masked_input_dominates_at_large_d(self):
        """For the paper's d ~ 64k model, protocol overhead is noise."""
        cost = bonawitz_round_cost(240, 65_536, 2**8)
        assert cost.overhead_fraction < 0.6
        assert cost.masked_input == 65_536

    def test_overhead_scales_with_clients(self):
        small = bonawitz_round_cost(10, 1024, 2**8)
        large = bonawitz_round_cost(1000, 1024, 2**8)
        assert large.share_keys == 100 * small.share_keys
        assert large.unmask == 100 * small.unmask
        assert large.masked_input == small.masked_input

    def test_total_is_sum_of_parts(self):
        cost = bonawitz_round_cost(50, 256, 2**10)
        assert cost.total == (
            cost.advertise + cost.share_keys + cost.masked_input + cost.unmask
        )

    def test_too_few_clients_rejected(self):
        with pytest.raises(ConfigurationError, match="num_clients"):
            bonawitz_round_cost(1, 256, 2**8)


class TestTrainingCommunication:
    def test_paper_scale_total(self):
        """Section 6.2 at m=2^8: 63,610-d model padded to 65,536, 1000
        rounds of 240 clients -> ~15.7 GB shipped in total."""
        run = training_communication(65_536, 2**8, 1000, 240)
        assert run.total_bytes == 65_536 * 1000 * 240
        assert run.total_megabytes == pytest.approx(15_000, rel=0.01)

    def test_central_baseline_is_4x_at_one_byte(self):
        private = training_communication(4096, 2**8, 10, 50)
        central = training_communication(4096, None, 10, 50)
        assert central.total_bytes == 4 * private.total_bytes

    def test_protocol_overhead_increases_total(self):
        bare = training_communication(1024, 2**8, 10, 50)
        full = training_communication(
            1024, 2**8, 10, 50, include_protocol=True
        )
        assert full.total_bytes > bare.total_bytes

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ConfigurationError, match="rounds"):
            training_communication(100, 2**8, 0, 10)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="expected_batch"):
            training_communication(100, 2**8, 10, 0)

    @given(bits=st.integers(min_value=6, max_value=18))
    @settings(max_examples=13)
    def test_bitwidth_sweep_matches_figure_axis(self, bits):
        """Doubling m adds exactly d/8 bytes per client per round — the
        linear communication axis of Figures 1-3."""
        d = 16_384
        run = training_communication(d, 2**bits, 1, 1)
        assert run.per_client_round_bytes == d * bits // 8
