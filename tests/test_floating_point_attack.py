"""Tests for the Mironov floating-point attack demonstration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.floating_point import (
    attack_success_rate,
    integer_mechanism_support,
    mironov_distinguisher,
    porous_support,
    quantize,
    round_to_precision,
)
from repro.errors import ConfigurationError


class TestQuantize:
    def test_exact_multiples_fixed(self):
        assert quantize(0.5, 2.0**-10) == 0.5

    def test_rounds_to_nearest(self):
        grid = 0.25
        assert quantize(0.3, grid) == 0.25
        assert quantize(0.4, grid) == 0.5

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="grid"):
            quantize(1.0, 0.0)

    @given(value=st.floats(min_value=-100, max_value=100))
    @settings(max_examples=50)
    def test_idempotent(self, value):
        grid = 2.0**-8
        assert quantize(quantize(value, grid), grid) == quantize(value, grid)


class TestRoundToPrecision:
    def test_zero_is_fixed(self):
        assert round_to_precision(0.0, 8) == 0.0

    def test_doubles_are_fixed_at_53_bits(self):
        # IEEE doubles carry 53 significand bits (52 explicit + 1 implicit).
        assert round_to_precision(1.0 / 3.0, 53) == 1.0 / 3.0

    def test_rounds_mantissa(self):
        # 1/3 at 2 mantissa bits: mantissa 0.666... -> 0.75, value 0.375?
        # frexp(1/3) = (0.666..., -1); round(0.6667 * 4)/4 = 0.75 -> 0.375.
        assert round_to_precision(1.0 / 3.0, 2) == 0.375

    def test_grid_scales_with_magnitude(self):
        """The defining float property: large values round coarsely."""
        bits = 8
        small = round_to_precision(1.0 + 2.0**-7, bits)
        large = round_to_precision(1024.0 + 2.0**-7, bits)
        assert small != 1.0  # a 2^-7 step is representable near 1.0 ...
        assert large == 1024.0  # ... but rounds away near 1024

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError, match="bits"):
            round_to_precision(1.0, 0)

    @given(value=st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=50)
    def test_idempotent(self, value):
        once = round_to_precision(value, 10)
        assert round_to_precision(once, 10) == once

    @given(
        value=st.floats(min_value=1e-3, max_value=1e6),
        bits=st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=50)
    def test_relative_error_bounded(self, value, bits):
        rounded = round_to_precision(value, bits)
        assert abs(rounded - value) <= value * 2.0 ** (-bits)


class TestPorousSupport:
    def test_support_is_finite_and_sparse(self):
        support = porous_support(0.0, scale=1.0, uniform_points=512)
        # At most 2 * 511 distinct outputs from 511 uniform points.
        assert 0 < len(support) <= 2 * 511

    def test_support_depends_on_answer(self):
        """The heart of the attack: different answers reach mostly
        different output sets."""
        s0 = porous_support(0.0, scale=1.0, uniform_points=512)
        s1 = porous_support(1.0 / 3.0, scale=1.0, uniform_points=512)
        only_zero = s0 - s1
        only_one = s1 - s0
        assert len(only_zero) > 0.5 * len(s0)
        assert len(only_one) > 0.5 * len(s1)

    def test_power_of_two_scaling_preserves_support_shape(self):
        """Mantissa rounding is exactly scale-invariant under powers of
        two, so doubling (answer, scale) doubles every reachable value."""
        s1 = porous_support(1.0, 1.0, 256)
        s2 = porous_support(2.0, 2.0, 256)
        assert frozenset(2.0 * v for v in s1) == s2

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError, match="scale"):
            porous_support(0.0, scale=-1.0)

    def test_too_few_uniform_points_rejected(self):
        with pytest.raises(ConfigurationError, match="uniform"):
            porous_support(0.0, scale=1.0, uniform_points=1)


class TestDistinguisher:
    def test_unique_membership_identifies_answer(self):
        s0 = frozenset({0.0, 1.0})
        s1 = frozenset({1.0, 2.0})
        assert mironov_distinguisher(0.0, s0, s1) == 0
        assert mironov_distinguisher(2.0, s0, s1) == 1

    def test_shared_membership_is_inconclusive(self):
        s0 = frozenset({0.0, 1.0})
        s1 = frozenset({1.0, 2.0})
        assert mironov_distinguisher(1.0, s0, s1) is None

    def test_unreachable_output_is_inconclusive(self):
        s0 = frozenset({0.0})
        s1 = frozenset({1.0})
        assert mironov_distinguisher(5.0, s0, s1) is None


class TestAttack:
    def test_attack_breaks_float_mechanism(self):
        """A single observation identifies the answer almost always —
        the Mironov phenomenon (privacy failure despite 'DP' noise)."""
        report = attack_success_rate(
            scale=1.0,
            rng=np.random.default_rng(0),
            trials=400,
            answers=(0.0, 1.0 / 3.0),
            uniform_points=512,
        )
        assert report.errors == 0
        assert report.success_rate > 0.8

    def test_attack_never_wrong(self):
        """Support membership cannot produce a false identification."""
        for seed in range(3):
            report = attack_success_rate(
                scale=0.5,
                rng=np.random.default_rng(seed),
                trials=200,
                answers=(0.0, np.pi / 10),
                uniform_points=256,
            )
            assert report.errors == 0

    def test_success_rate_zero_trials(self):
        report = attack_success_rate(
            scale=1.0,
            rng=np.random.default_rng(1),
            trials=0,
            uniform_points=128,
        )
        assert report.success_rate == 0.0

    def test_integer_mechanism_is_immune(self):
        """Integer noise with full-range support: translated supports
        coincide on the bulk, so the distinguisher stays inconclusive."""
        noise = np.arange(-100, 101)  # truncated Skellam support
        s0 = integer_mechanism_support(0, noise)
        s1 = integer_mechanism_support(1, noise)
        rng = np.random.default_rng(7)
        inconclusive = 0
        trials = 300
        for _ in range(trials):
            secret = int(rng.integers(0, 2))
            # Any output in the overlap region (all but the extreme edge).
            observed = secret + int(rng.integers(-99, 100))
            if mironov_distinguisher(observed, s0, s1) is None:
                inconclusive += 1
        assert inconclusive == trials

    def test_integer_support_requires_integers(self):
        with pytest.raises(ConfigurationError, match="integer"):
            integer_mechanism_support(0, np.array([0.5, 1.5]))

    def test_integer_support_is_translate(self):
        noise = np.arange(-3, 4)
        s0 = integer_mechanism_support(0, noise)
        s5 = integer_mechanism_support(5, noise)
        assert s5 == frozenset(v + 5 for v in s0)
