"""Tests for the full Bonawitz secure-aggregation protocol.

Covers the happy path, dropout recovery at every round, threshold
failures, malformed-message rejection, the never-reveal-both security
rule, and marginal uniformity of transmitted messages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
    BonawitzClient,
    BonawitzServer,
    SealedShares,
    UnmaskRequest,
    _decode_payload,
    _encode_payload,
    _open_sealed,
    _seal,
    run_bonawitz,
)
from repro.secagg.keys import TOY_GROUP
from repro.secagg.shamir import LimbShares, Share

MODULUS = 2**10
DIMENSION = 32


@pytest.fixture
def rng():
    return np.random.default_rng(2022)


def make_inputs(rng, n=6, d=DIMENSION):
    return rng.integers(0, MODULUS, size=(n, d), dtype=np.int64)


class TestHappyPath:
    def test_sum_matches_plain_modular_sum(self, rng):
        inputs = make_inputs(rng)
        outcome = run_bonawitz(inputs, MODULUS, threshold=4, rng=rng)
        expected = np.mod(inputs.sum(axis=0), MODULUS)
        np.testing.assert_array_equal(outcome.modular_sum, expected)

    def test_all_clients_included_without_dropouts(self, rng):
        inputs = make_inputs(rng, n=5)
        outcome = run_bonawitz(inputs, MODULUS, threshold=3, rng=rng)
        assert outcome.included == frozenset(range(1, 6))
        assert outcome.dropped == frozenset()

    def test_two_clients_minimum(self, rng):
        inputs = make_inputs(rng, n=2)
        outcome = run_bonawitz(inputs, MODULUS, threshold=2, rng=rng)
        np.testing.assert_array_equal(
            outcome.modular_sum, np.mod(inputs.sum(axis=0), MODULUS)
        )

    def test_deterministic_given_seed(self):
        inputs = make_inputs(np.random.default_rng(1), n=4)
        a = run_bonawitz(
            inputs, MODULUS, 3, np.random.default_rng(5)
        ).modular_sum
        b = run_bonawitz(
            inputs, MODULUS, 3, np.random.default_rng(5)
        ).modular_sum
        np.testing.assert_array_equal(a, b)

    def test_non_power_of_two_modulus(self, rng):
        inputs = rng.integers(0, 1000, size=(4, 8), dtype=np.int64)
        outcome = run_bonawitz(inputs, 1000, threshold=3, rng=rng)
        np.testing.assert_array_equal(
            outcome.modular_sum, np.mod(inputs.sum(axis=0), 1000)
        )

    @given(
        n=st.integers(min_value=2, max_value=7),
        d=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_correctness_property(self, n, d, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.integers(0, 64, size=(n, d), dtype=np.int64)
        outcome = run_bonawitz(inputs, 64, threshold=2, rng=rng)
        np.testing.assert_array_equal(
            outcome.modular_sum, np.mod(inputs.sum(axis=0), 64)
        )


class TestDropoutRecovery:
    def test_dropout_before_masked_input_excluded_from_sum(self, rng):
        inputs = make_inputs(rng, n=6)
        outcome = run_bonawitz(
            inputs,
            MODULUS,
            threshold=3,
            rng=rng,
            dropouts={3: ROUND_MASKED_INPUT},
        )
        expected = np.mod(np.delete(inputs, 2, axis=0).sum(axis=0), MODULUS)
        np.testing.assert_array_equal(outcome.modular_sum, expected)
        assert 3 in outcome.dropped

    def test_dropout_after_masked_input_still_included(self, rng):
        """A client that sent y_u but misses unmasking is still summed —
        the survivors reconstruct its self-mask."""
        inputs = make_inputs(rng, n=6)
        outcome = run_bonawitz(
            inputs, MODULUS, threshold=3, rng=rng, dropouts={4: ROUND_UNMASK}
        )
        expected = np.mod(inputs.sum(axis=0), MODULUS)
        np.testing.assert_array_equal(outcome.modular_sum, expected)
        assert 4 in outcome.included

    def test_dropout_at_advertise_is_invisible(self, rng):
        inputs = make_inputs(rng, n=5)
        outcome = run_bonawitz(
            inputs, MODULUS, threshold=3, rng=rng, dropouts={1: ROUND_ADVERTISE}
        )
        expected = np.mod(inputs[1:].sum(axis=0), MODULUS)
        np.testing.assert_array_equal(outcome.modular_sum, expected)

    def test_dropout_at_share_keys_recovered(self, rng):
        inputs = make_inputs(rng, n=5)
        outcome = run_bonawitz(
            inputs,
            MODULUS,
            threshold=3,
            rng=rng,
            dropouts={2: ROUND_SHARE_KEYS},
        )
        expected = np.mod(np.delete(inputs, 1, axis=0).sum(axis=0), MODULUS)
        np.testing.assert_array_equal(outcome.modular_sum, expected)

    def test_multiple_dropouts_at_different_rounds(self, rng):
        inputs = make_inputs(rng, n=8)
        outcome = run_bonawitz(
            inputs,
            MODULUS,
            threshold=4,
            rng=rng,
            dropouts={
                1: ROUND_SHARE_KEYS,
                5: ROUND_MASKED_INPUT,
                7: ROUND_UNMASK,
            },
        )
        # Clients 1 and 5 are excluded; 7 sent masked input so is included.
        expected = np.mod(
            np.delete(inputs, [0, 4], axis=0).sum(axis=0), MODULUS
        )
        np.testing.assert_array_equal(outcome.modular_sum, expected)
        assert outcome.dropped == frozenset({1, 5})

    def test_too_many_dropouts_fails_loudly(self, rng):
        inputs = make_inputs(rng, n=4)
        with pytest.raises(AggregationError, match="threshold"):
            run_bonawitz(
                inputs,
                MODULUS,
                threshold=3,
                rng=rng,
                dropouts={1: ROUND_MASKED_INPUT, 2: ROUND_MASKED_INPUT},
            )

    def test_unmask_round_below_threshold_fails(self, rng):
        inputs = make_inputs(rng, n=4)
        with pytest.raises(AggregationError, match="unmask"):
            run_bonawitz(
                inputs,
                MODULUS,
                threshold=3,
                rng=rng,
                dropouts={
                    1: ROUND_UNMASK,
                    2: ROUND_UNMASK,
                },
            )


class TestValidation:
    def test_threshold_bounds(self, rng):
        inputs = make_inputs(rng, n=4)
        with pytest.raises(ConfigurationError, match="threshold"):
            run_bonawitz(inputs, MODULUS, threshold=1, rng=rng)
        with pytest.raises(ConfigurationError, match="threshold"):
            run_bonawitz(inputs, MODULUS, threshold=5, rng=rng)

    def test_inputs_must_be_in_range(self, rng):
        inputs = np.full((3, 4), MODULUS, dtype=np.int64)
        with pytest.raises(AggregationError, match="lie in"):
            run_bonawitz(inputs, MODULUS, threshold=2, rng=rng)

    def test_bad_dropout_index_rejected(self, rng):
        inputs = make_inputs(rng, n=3)
        with pytest.raises(ConfigurationError, match="dropout index"):
            run_bonawitz(
                inputs, MODULUS, 2, rng, dropouts={9: ROUND_UNMASK}
            )

    def test_bad_dropout_round_rejected(self, rng):
        inputs = make_inputs(rng, n=3)
        with pytest.raises(ConfigurationError, match="dropout round"):
            run_bonawitz(inputs, MODULUS, 2, rng, dropouts={1: 7})

    def test_duplicate_advertisement_rejected(self):
        server = BonawitzServer(MODULUS, DIMENSION, threshold=2)
        client = BonawitzClient(
            1,
            np.zeros(DIMENSION, dtype=np.int64),
            MODULUS,
            2,
            np.random.default_rng(0),
            TOY_GROUP,
        )
        keys = client.advertise_keys()
        with pytest.raises(AggregationError, match="duplicate"):
            server.collect_advertisements([keys, keys])

    def test_spoofed_sender_rejected(self, rng):
        server = BonawitzServer(MODULUS, DIMENSION, threshold=2)
        clients = [
            BonawitzClient(
                i,
                np.zeros(DIMENSION, dtype=np.int64),
                MODULUS,
                2,
                np.random.default_rng(i),
                TOY_GROUP,
            )
            for i in (1, 2)
        ]
        roster = server.collect_advertisements(
            [c.advertise_keys() for c in clients]
        )
        envelopes = {c.index: c.share_keys(roster) for c in clients}
        forged = SealedShares(sender=2, recipient=1, ciphertext=b"xx")
        envelopes[1] = [forged]
        with pytest.raises(AggregationError, match="claims sender"):
            server.route_shares(envelopes)

    def test_wrong_dimension_masked_input_rejected(self, rng):
        inputs = make_inputs(rng, n=3)
        server = BonawitzServer(MODULUS, DIMENSION, threshold=2)
        clients = {
            i
            + 1: BonawitzClient(
                i + 1,
                inputs[i],
                MODULUS,
                2,
                np.random.default_rng(i),
                TOY_GROUP,
            )
            for i in range(3)
        }
        roster = server.collect_advertisements(
            [c.advertise_keys() for c in clients.values()]
        )
        mailbox = server.route_shares(
            {u: clients[u].share_keys(roster) for u in clients}
        )
        for u, envelopes in mailbox.items():
            clients[u].receive_shares(envelopes)
        masked = {
            u: clients[u].masked_input(server.share_participants)
            for u in clients
        }
        masked[1] = masked[1][:-1]
        with pytest.raises(AggregationError, match="dimension"):
            server.collect_masked_inputs(masked)

    def test_masked_input_from_outside_u1_rejected(self, rng):
        server = BonawitzServer(MODULUS, DIMENSION, threshold=2)
        clients = [
            BonawitzClient(
                i,
                np.zeros(DIMENSION, dtype=np.int64),
                MODULUS,
                2,
                np.random.default_rng(i),
                TOY_GROUP,
            )
            for i in (1, 2)
        ]
        roster = server.collect_advertisements(
            [c.advertise_keys() for c in clients]
        )
        mailbox = server.route_shares(
            {c.index: c.share_keys(roster) for c in clients}
        )
        for c in clients:
            c.receive_shares(mailbox[c.index])
        masked = {
            c.index: c.masked_input(server.share_participants)
            for c in clients
        }
        masked[99] = np.zeros(DIMENSION, dtype=np.int64)
        with pytest.raises(AggregationError, match="outside U1"):
            server.collect_masked_inputs(masked)

    def test_client_round_order_enforced(self, rng):
        client = BonawitzClient(
            1,
            np.zeros(DIMENSION, dtype=np.int64),
            MODULUS,
            2,
            rng,
            TOY_GROUP,
        )
        with pytest.raises(AggregationError, match="before advertise"):
            client.share_keys({})
        with pytest.raises(AggregationError, match="before share_keys"):
            client.masked_input(frozenset({1}))


class TestSecurityInvariants:
    def test_client_refuses_overlapping_unmask_request(self, rng):
        """The same peer named as survivor and dropout would reveal both
        b_v and s_v^SK — the client must refuse."""
        inputs = make_inputs(rng, n=3)
        server = BonawitzServer(MODULUS, DIMENSION, threshold=2)
        clients = {
            i
            + 1: BonawitzClient(
                i + 1,
                inputs[i],
                MODULUS,
                2,
                np.random.default_rng(i),
                TOY_GROUP,
            )
            for i in range(3)
        }
        roster = server.collect_advertisements(
            [c.advertise_keys() for c in clients.values()]
        )
        mailbox = server.route_shares(
            {u: clients[u].share_keys(roster) for u in clients}
        )
        for u, envelopes in mailbox.items():
            clients[u].receive_shares(envelopes)
        malicious = UnmaskRequest(
            survivors=frozenset({1, 2}), dropouts=frozenset({2, 3})
        )
        with pytest.raises(AggregationError, match="both survivor"):
            clients[1].unmask(malicious)

    def test_unknown_peer_in_unmask_request_rejected(self, rng):
        inputs = make_inputs(rng, n=2)
        server = BonawitzServer(MODULUS, DIMENSION, threshold=2)
        clients = {
            i
            + 1: BonawitzClient(
                i + 1,
                inputs[i],
                MODULUS,
                2,
                np.random.default_rng(i),
                TOY_GROUP,
            )
            for i in range(2)
        }
        roster = server.collect_advertisements(
            [c.advertise_keys() for c in clients.values()]
        )
        mailbox = server.route_shares(
            {u: clients[u].share_keys(roster) for u in clients}
        )
        for u, envelopes in mailbox.items():
            clients[u].receive_shares(envelopes)
        with pytest.raises(AggregationError, match="no shares held"):
            clients[1].unmask(
                UnmaskRequest(
                    survivors=frozenset({42}), dropouts=frozenset()
                )
            )

    def test_masked_messages_are_marginally_uniform(self):
        """Each y_u over many protocol runs must look uniform over Z_m —
        the confidentiality property the DP analysis relies on."""
        modulus = 16
        observed = []
        for seed in range(40):
            rng = np.random.default_rng(seed)
            inputs = np.zeros((3, 32), dtype=np.int64)  # worst case: x = 0
            clients = {
                i
                + 1: BonawitzClient(
                    i + 1,
                    inputs[i],
                    modulus,
                    2,
                    np.random.default_rng(1000 + 10 * seed + i),
                    TOY_GROUP,
                )
                for i in range(3)
            }
            server = BonawitzServer(modulus, 32, threshold=2)
            roster = server.collect_advertisements(
                [c.advertise_keys() for c in clients.values()]
            )
            mailbox = server.route_shares(
                {u: clients[u].share_keys(roster) for u in clients}
            )
            for u, envelopes in mailbox.items():
                clients[u].receive_shares(envelopes)
            observed.append(
                clients[1].masked_input(server.share_participants)
            )
        values = np.concatenate(observed)
        counts = np.bincount(values, minlength=modulus)
        expected = len(values) / modulus
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 45  # 15 dof, 99.99% quantile ~ 44.3

    def test_envelope_ciphertext_differs_from_plaintext(self, rng):
        payload = _encode_payload(
            Share(x=1, y=123456), LimbShares(x=1, ys=(9, 8, 7))
        )
        sealed = _seal(b"\x01" * 32, payload)
        assert sealed != payload
        assert _open_sealed(b"\x01" * 32, sealed) == payload

    def test_envelope_wrong_key_garbles(self):
        payload = _encode_payload(
            Share(x=2, y=42), LimbShares(x=2, ys=(1,))
        )
        sealed = _seal(b"\x01" * 32, payload)
        garbled = _open_sealed(b"\x02" * 32, sealed)
        assert garbled != payload


class TestPayloadCodec:
    def test_roundtrip(self):
        seed_share = Share(x=7, y=(1 << 60) - 1)
        key_share = LimbShares(x=7, ys=((1 << 60) - 1, 0, 12345))
        encoded = _encode_payload(seed_share, key_share)
        decoded_seed, decoded_key = _decode_payload(encoded)
        assert decoded_seed == seed_share
        assert decoded_key == key_share

    def test_truncated_payload_rejected(self):
        encoded = _encode_payload(Share(x=1, y=2), LimbShares(x=1, ys=(3,)))
        with pytest.raises(AggregationError, match="malformed"):
            _decode_payload(encoded[:-1])
