"""End-to-end tests of the asynchronous simulation engine.

The acceptance scenario: a seeded 32-client MNIST-surrogate run at 10%
and 30% dropout completes end-to-end, the decoded aggregate of every
round exactly matches the synchronous pipeline's aggregate over the
surviving cohort, a cumulative (epsilon, delta) is reported from the
accounting ledger, and the whole run is bit-reproducible from its seed.
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fl.data import mnist_surrogate
from repro.secagg.bonawitz import ROUND_ADVERTISE
from repro.simulation import (
    AvailabilityModel,
    BernoulliDropout,
    ClientPlan,
    SimulationConfig,
    SimulationEngine,
)
from repro.simulation.population import PURPOSE_ENCODING

ACCEPTANCE_CONFIG = dict(
    population_size=32,
    expected_cohort=12,
    rounds=3,
    modulus=2**16,
    gamma=16.0,
    epsilon=5.0,
    hidden=4,
    test_records=64,
    dataset="mnist",
    seed=17,
    verify_aggregate=True,
)


def run_acceptance(dropout_rate, **overrides):
    config = SimulationConfig(**{**ACCEPTANCE_CONFIG, **overrides})
    engine = SimulationEngine(
        config, availability=BernoulliDropout(dropout_rate)
    )
    return engine, engine.run()


class TestAcceptanceRun:
    @pytest.mark.parametrize("dropout_rate", [0.1, 0.3])
    def test_end_to_end_with_dropouts(self, dropout_rate):
        engine, result = run_acceptance(dropout_rate)
        # Every scheduled round is accounted for.
        assert len(result.records) == engine.config.rounds
        executed = [r for r in result.records if r.cohort and not r.aborted]
        assert executed, "at least one round must aggregate"
        for record in executed:
            # The async round's output is exactly the surviving
            # cohort's modular sum — the synchronous pipeline's result.
            assert record.aggregate_matches is True
            assert record.included <= set(record.cohort)
            assert record.dropped == frozenset(record.cohort) - record.included
        # The ledger reports a cumulative epsilon that grows monotonically.
        # Dropout rounds carry less noise than calibration assumed, so the
        # honest charge may exceed the calibrated budget — but not wildly.
        epsilons = [r.epsilon for r in result.records]
        assert all(b >= a - 1e-12 for a, b in zip(epsilons, epsilons[1:]))
        assert 0 < result.epsilon <= engine.config.epsilon * 2.5
        assert result.delta == engine.config.delta
        assert result.mechanism_summary["name"] == "smm"
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_higher_dropout_loses_more_clients(self):
        _, light = run_acceptance(0.1)
        _, heavy = run_acceptance(0.3)
        dropped_light = sum(len(r.dropped) for r in light.records)
        dropped_heavy = sum(len(r.dropped) for r in heavy.records)
        assert dropped_heavy > dropped_light

    def test_ledger_is_honest_about_dropout(self):
        """A dropout-free run spends exactly the calibrated budget;
        dropout rounds carry less aggregate noise, so their honest
        charge is strictly larger."""
        engine, clean = run_acceptance(0.0)
        assert clean.epsilon == pytest.approx(engine.config.epsilon, rel=1e-3)
        _, dropped = run_acceptance(0.3)
        if any(r.dropped for r in dropped.records):
            assert dropped.epsilon > clean.epsilon

    @pytest.mark.parametrize("dropout_rate", [0.1, 0.3])
    def test_bit_reproducible(self, dropout_rate):
        _, first = run_acceptance(dropout_rate)
        _, second = run_acceptance(dropout_rate)
        assert first.parameters_digest == second.parameters_digest
        assert first.records == second.records
        assert first.epsilon == second.epsilon

    def test_different_seeds_diverge(self):
        _, first = run_acceptance(0.1)
        _, second = run_acceptance(0.1, seed=18)
        assert first.parameters_digest != second.parameters_digest


class TestAggregateMatchesSyncPipeline:
    def test_external_reencoding_reproduces_the_round(self):
        """The per-client encodings are reproducible outside the engine,
        so an auditor can recompute any round's expected aggregate."""
        engine, result = run_acceptance(0.1)
        record = next(
            r for r in result.records if r.cohort and not r.aborted
        )
        train, _ = mnist_surrogate(
            engine.population.setup_rng(10),  # _SETUP_DATA
            engine.config.population_size,
            engine.config.test_records,
        )
        assert record.aggregate_matches is True
        # Re-derive one client's encoding rng and check it is the
        # deterministic spawn-keyed stream the engine used.
        client = min(record.included)
        rng_a = engine.population.client_rng(
            record.index, client, PURPOSE_ENCODING
        )
        rng_b = engine.population.client_rng(
            record.index, client, PURPOSE_ENCODING
        )
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)


class TestShardedEngine:
    def test_sharded_rounds_pass_the_oracle(self):
        engine, result = run_acceptance(0.1, shards=3)
        executed = [r for r in result.records if r.cohort and not r.aborted]
        assert executed
        for record in executed:
            # The composed shard sums decode to exactly the survivors'
            # modular sum — the same oracle the flat rounds pass.
            assert record.aggregate_matches is True
        assert engine.trace.count("sharded-round-complete") == len(executed)

    def test_backends_are_bit_identical(self):
        _, inline = run_acceptance(0.1, rounds=2, shards=2)
        _, process = run_acceptance(0.1, rounds=2, shards=2, backend="process")
        assert inline.parameters_digest == process.parameters_digest
        assert inline.records == process.records
        assert inline.epsilon == process.epsilon

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(shards=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(backend="thread")


class _EveryoneOffline(AvailabilityModel):
    def plan(self, client_index, round_index, rng):
        return ClientPlan(drop_phase=ROUND_ADVERTISE)


class TestDegradedRegimes:
    def test_total_outage_aborts_rounds_without_crashing(self):
        config = SimulationConfig(
            **{**ACCEPTANCE_CONFIG, "rounds": 2, "verify_aggregate": False}
        )
        engine = SimulationEngine(config, availability=_EveryoneOffline())
        result = engine.run()
        executed = [r for r in result.records if r.cohort]
        assert executed
        assert all(r.aborted for r in executed)
        # Aborted rounds are still charged (conservative ledger).
        assert result.epsilon > 0

    def test_non_private_mode(self):
        config = SimulationConfig(
            **{**ACCEPTANCE_CONFIG, "epsilon": None, "verify_aggregate": False}
        )
        result = SimulationEngine(config).run()
        assert math.isnan(result.epsilon)
        assert result.mechanism_summary == {}
        assert len(result.records) == config.rounds

    def test_all_online_includes_whole_cohort(self):
        engine, result = run_acceptance(0.0)
        for record in result.records:
            if record.cohort:
                assert record.included == frozenset(record.cohort)


class TestValidation:
    def test_cohort_larger_than_population_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(population_size=8, expected_cohort=9)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(dataset="cifar")

    def test_dataset_population_mismatch_rejected(self):
        train, test = mnist_surrogate(np.random.default_rng(0), 16, 32)
        config = SimulationConfig(population_size=32, expected_cohort=8)
        with pytest.raises(ConfigurationError):
            SimulationEngine(config, train=train, test=test)

    def test_bad_threshold_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(threshold_fraction=0.0)
