"""Telemetry wired through the simulation stack, end to end.

Three layers are exercised with a live :class:`MetricsRegistry`
attached: the async round driver (phase latencies, outcome/dropout/
timeout counters, per-phase wire counters that must reconcile exactly
with the outcome's :class:`WireStats`), the sharded round (per-shard
labels surviving the worker -> parent snapshot merge on both
backends), and the engine (the :class:`MetricsReport` on the result,
plus the invariant that metering never perturbs the simulation —
identical parameter digests with telemetry on and off).
"""

import math

import numpy as np
import pytest

from repro.errors import AggregationError, ConfigurationError
from repro.simulation import (
    AsyncSecAggRound,
    BernoulliDropout,
    ClientPlan,
    ProcessBackend,
    ShardedSecAggRound,
    SimulatedClock,
    SimulationConfig,
    SimulationEngine,
)
from repro.telemetry import (
    PHASE_ORDER,
    MetricsRegistry,
    MetricsReport,
    parse_prometheus,
)

MODULUS = 2**12
DIMENSION = 16


def make_vectors(num_clients, seed=0):
    rng = np.random.default_rng(seed)
    return {
        u: rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
        for u in range(1, num_clients + 1)
    }


def run_metered_round(vectors, threshold=None, plans=None,
                      phase_timeout=60.0, client_versions=None, seed=1):
    clock = SimulatedClock()
    registry = MetricsRegistry()
    secagg_round = AsyncSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        threshold=threshold or max(2, len(vectors) // 2 + 1),
        clock=clock,
        rng=np.random.default_rng(seed),
        plans=plans,
        phase_timeout=phase_timeout,
        client_versions=client_versions,
        metrics=registry,
    )
    outcome = clock.run(secagg_round.run())
    return outcome, MetricsReport(snapshot=registry.snapshot())


class TestRoundMetrics:
    def test_completed_round_full_catalog(self):
        vectors = make_vectors(6)
        outcome, report = run_metered_round(vectors, threshold=4)

        assert report.counter("secagg_rounds_total", outcome="completed") == 1
        # One observation per phase, on both clocks, and the simulated
        # phase durations partition the round's simulated duration.
        sim_total = 0.0
        for phase in PHASE_ORDER:
            sim = report.snapshot.aggregate(
                "secagg_phase_sim_duration_seconds", phase=phase
            )
            wall = report.snapshot.aggregate(
                "secagg_phase_wall_duration_seconds", phase=phase
            )
            assert sim is not None and sim.count == 1
            assert wall is not None and wall.count == 1
            sim_total += sim.sum
        assert sim_total == pytest.approx(outcome.duration)
        # Every client's Hello was accepted; frames flowed both ways
        # for both roles.
        assert report.counter(
            "secagg_negotiations_total", outcome="accepted"
        ) == len(vectors)
        for role in ("server", "client"):
            for direction in ("in", "out"):
                assert report.counter(
                    "secagg_frames_total", role=role, direction=direction
                ) > 0

    def test_wire_counters_reconcile_with_outcome_stats(self):
        vectors = make_vectors(6)
        outcome, report = run_metered_round(vectors, threshold=4)
        assert report.counter_sum(
            "secagg_wire_bytes_total"
        ) == outcome.wire.total_bytes
        assert report.counter_sum(
            "secagg_wire_messages_total"
        ) == outcome.wire.total_messages
        # And per phase/direction, against the outcome's own ledger.
        for tag, totals in outcome.wire.phase_totals().items():
            for direction in ("up", "down"):
                assert report.counter(
                    "secagg_wire_bytes_total", phase=tag, direction=direction
                ) == totals[f"{direction}_bytes"]

    def test_dropout_counted_under_its_phase(self):
        vectors = make_vectors(8)
        plans = {
            2: ClientPlan(drop_phase=2),
            5: ClientPlan(drop_phase=2),
        }
        outcome, report = run_metered_round(vectors, threshold=5, plans=plans)
        assert outcome.dropped == frozenset({2, 5})
        assert report.counter(
            "secagg_clients_dropped_total", phase="masked-input"
        ) == 2
        assert report.counter_sum("secagg_clients_dropped_total") == 2

    def test_straggler_timeout_counted(self):
        vectors = make_vectors(6)
        plans = {3: ClientPlan(latencies=(500.0, 0.0, 0.0, 0.0))}
        _, report = run_metered_round(
            vectors, threshold=4, plans=plans, phase_timeout=10.0
        )
        assert report.counter(
            "secagg_phase_timeouts_total", phase="advertise"
        ) == 1

    def test_aborted_round_counted_before_raise(self):
        vectors = make_vectors(6)
        plans = {u: ClientPlan(drop_phase=2) for u in (1, 2, 3, 4)}
        clock = SimulatedClock()
        registry = MetricsRegistry()
        secagg_round = AsyncSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            threshold=5,
            clock=clock,
            rng=np.random.default_rng(1),
            plans=plans,
            metrics=registry,
        )
        with pytest.raises(AggregationError):
            clock.run(secagg_round.run())
        report = MetricsReport(snapshot=registry.snapshot())
        assert report.counter("secagg_rounds_total", outcome="aborted") == 1
        assert report.counter("secagg_rounds_total", outcome="completed") == 0

    def test_version_rejection_counted_by_reason(self):
        vectors = make_vectors(6)
        outcome, report = run_metered_round(
            vectors, threshold=4, client_versions={1: 999}
        )
        assert 1 not in outcome.included
        assert report.counter(
            "secagg_negotiations_total", outcome="rejected"
        ) == 1
        assert report.counter(
            "secagg_negotiation_rejects_total", reason="version"
        ) == 1
        assert report.counter(
            "secagg_negotiations_total", outcome="accepted"
        ) == len(vectors) - 1

    def test_metering_never_perturbs_the_round(self):
        vectors = make_vectors(8)
        plans = {2: ClientPlan(drop_phase=1)}

        def run(metered):
            clock = SimulatedClock()
            secagg_round = AsyncSecAggRound(
                vectors=vectors,
                modulus=MODULUS,
                threshold=5,
                clock=clock,
                rng=np.random.default_rng(7),
                plans=plans,
                metrics=MetricsRegistry() if metered else None,
            )
            return clock.run(secagg_round.run())

        plain, metered = run(False), run(True)
        assert np.array_equal(plain.modular_sum, metered.modular_sum)
        assert plain.duration == metered.duration
        assert plain.included == metered.included


def run_metered_sharded(vectors, shards, backend="inline", seed=1):
    clock = SimulatedClock()
    registry = MetricsRegistry()
    sharded = ShardedSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        clock=clock,
        rng=np.random.default_rng(seed),
        shards=shards,
        threshold_fraction=0.6,
        backend=backend,
        metrics=registry,
    )
    outcome = sharded.execute()
    return outcome, MetricsReport(snapshot=registry.snapshot()), sharded


class TestShardedMetrics:
    def test_per_shard_labels_survive_the_merge(self):
        vectors = make_vectors(8)
        outcome, report, _ = run_metered_sharded(vectors, shards=2)
        for shard in ("0", "1"):
            assert report.counter(
                "secagg_rounds_total", outcome="completed", shard=shard
            ) == 1
        assert report.counter_sum("secagg_rounds_total") == 2

    def test_phase_latencies_aggregate_across_shards(self):
        vectors = make_vectors(8)
        _, report, _ = run_metered_sharded(vectors, shards=2)
        rows = report.phase_latency_rows()
        assert [row["phase"] for row in rows] == list(PHASE_ORDER)
        # Two shards -> two observations folded into each phase row.
        for phase in PHASE_ORDER:
            merged = report.snapshot.aggregate(
                "secagg_phase_sim_duration_seconds", phase=phase
            )
            assert merged.count == 2

    def test_wire_counters_reconcile_across_shards(self):
        vectors = make_vectors(8)
        outcome, report, _ = run_metered_sharded(vectors, shards=2)
        assert report.counter_sum(
            "secagg_wire_bytes_total"
        ) == outcome.wire.total_bytes
        assert report.counter_sum(
            "secagg_wire_messages_total"
        ) == outcome.wire.total_messages

    def test_dispatch_and_merge_wall_timing(self):
        vectors = make_vectors(8)
        _, report, _ = run_metered_sharded(vectors, shards=2)
        dispatch = report.snapshot.aggregate("secagg_shard_dispatch_seconds")
        merge = report.snapshot.aggregate("secagg_shard_merge_seconds")
        assert dispatch is not None and dispatch.count == 1
        assert merge is not None and merge.count == 1
        # The inline backend moves no bytes between processes.
        assert report.counter_sum("secagg_shard_transfer_bytes_total") == 0

    def test_process_backend_reports_transfer_bytes(self):
        vectors = make_vectors(8)
        backend = ProcessBackend(max_workers=2)
        outcome, report, sharded = run_metered_sharded(
            vectors, shards=2, backend=backend
        )
        transport = backend.effective_transport
        assert transport in ("shm", "pickle")
        transferred = report.counter(
            "secagg_shard_transfer_bytes_total", transport=transport
        )
        assert transferred > 0
        # Per-shard series crossed the process boundary intact.
        assert report.counter(
            "secagg_rounds_total", outcome="completed", shard="0"
        ) == 1
        assert report.counter_sum(
            "secagg_wire_bytes_total"
        ) == outcome.wire.total_bytes


ENGINE_CONFIG = dict(
    population_size=16,
    expected_cohort=8,
    rounds=2,
    modulus=2**16,
    gamma=16.0,
    epsilon=5.0,
    hidden=4,
    test_records=32,
    dataset="mnist",
    seed=11,
)


def run_engine(**overrides):
    config = SimulationConfig(**{**ENGINE_CONFIG, **overrides})
    engine = SimulationEngine(config, availability=BernoulliDropout(0.1))
    return engine, engine.run()


class TestEngineTelemetry:
    def test_report_attached_and_parseable(self):
        engine, result = run_engine()
        report = result.metrics
        assert isinstance(report, MetricsReport)
        assert report.counter_sum(
            "sim_rounds_total"
        ) == engine.config.rounds
        cohort = report.snapshot.aggregate("sim_cohort_size")
        assert cohort is not None
        assert cohort.count == engine.config.rounds
        gauge = report.counter("sim_cumulative_epsilon")
        if not math.isnan(result.epsilon):
            assert gauge == pytest.approx(result.epsilon)
        assert report.counter("sim_clock_seconds") > 0
        # The exposition text round-trips through the strict parser.
        parsed = parse_prometheus(report.to_prometheus())
        assert "sim_rounds_total" in parsed.family_names()
        assert "secagg_phase_sim_duration_seconds" in parsed.family_names()

    def test_telemetry_off_is_bit_identical(self):
        _, metered = run_engine()
        _, plain = run_engine(telemetry=False)
        assert plain.metrics is None
        assert plain.parameters_digest == metered.parameters_digest
        assert plain.epsilon == metered.epsilon

    def test_trace_ring_buffer_capped_via_config(self):
        engine, _ = run_engine(trace_max_events=5)
        assert len(engine.trace) <= 5
        assert engine.trace.dropped_events > 0
        assert len(engine.trace.events) <= 5

    def test_trace_max_events_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**ENGINE_CONFIG, trace_max_events=0)

    def test_dropped_events_gauge_exported(self):
        engine, result = run_engine(trace_max_events=5)
        assert result.metrics.counter(
            "sim_trace_dropped_events"
        ) == engine.trace.dropped_events
