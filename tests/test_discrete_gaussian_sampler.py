"""Tests for the exact discrete Gaussian sampler (Canonne et al.)."""

import fractions
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sampling.discrete_gaussian import (
    DiscreteGaussianDistribution,
    ExactDiscreteGaussianSampler,
    sample_bernoulli_exp,
    sample_bernoulli_exp_sub_one,
    sample_discrete_laplace,
    sample_geometric_exp_slow,
)
from repro.sampling.rng import RandIntSource

Fraction = fractions.Fraction


class TestBernoulliExp:
    def test_exp_zero_always_succeeds(self):
        source = RandIntSource(seed=0)
        assert all(
            sample_bernoulli_exp_sub_one(Fraction(0), source) == 1
            for _ in range(50)
        )

    def test_sub_one_mean(self):
        source = RandIntSource(seed=1)
        x = Fraction(1, 2)
        draws = [sample_bernoulli_exp_sub_one(x, source) for _ in range(40_000)]
        assert abs(np.mean(draws) - math.exp(-0.5)) < 0.01

    def test_general_mean_above_one(self):
        source = RandIntSource(seed=2)
        x = Fraction(5, 2)
        draws = [sample_bernoulli_exp(x, source) for _ in range(40_000)]
        assert abs(np.mean(draws) - math.exp(-2.5)) < 0.01

    def test_sub_one_rejects_out_of_range(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_bernoulli_exp_sub_one(Fraction(3, 2), source)

    def test_general_rejects_negative(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_bernoulli_exp(Fraction(-1), source)


class TestGeometric:
    def test_slow_mean(self):
        source = RandIntSource(seed=3)
        x = Fraction(1)
        draws = [sample_geometric_exp_slow(x, source) for _ in range(30_000)]
        # Geometric with success prob 1 - e^-1 has mean e^-1 / (1 - e^-1).
        expected = math.exp(-1.0) / (1.0 - math.exp(-1.0))
        assert abs(np.mean(draws) - expected) < 0.02

    def test_slow_rejects_non_positive(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_geometric_exp_slow(Fraction(0), source)


class TestDiscreteLaplace:
    def test_symmetry_and_mean(self):
        source = RandIntSource(seed=4)
        draws = [
            sample_discrete_laplace(Fraction(2), source) for _ in range(30_000)
        ]
        assert abs(np.mean(draws)) < 0.05

    def test_variance(self):
        source = RandIntSource(seed=5)
        scale = 2.0
        draws = np.array(
            [sample_discrete_laplace(Fraction(2), source) for _ in range(30_000)]
        )
        # Var = 2 e^{1/t} / (e^{1/t} - 1)^2 for discrete Laplace scale t.
        ratio = math.exp(1.0 / scale)
        expected = 2.0 * ratio / (ratio - 1.0) ** 2
        assert abs(draws.var() - expected) < 0.3

    def test_rejects_non_positive_scale(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_discrete_laplace(Fraction(0), source)


class TestExactDiscreteGaussian:
    def test_moments(self):
        sampler = ExactDiscreteGaussianSampler(sigma_squared=4, seed=0)
        draws = np.array(sampler.sample_many(20_000))
        assert abs(draws.mean()) < 0.05
        assert abs(draws.var() - 4.0) < 0.2

    def test_distribution_chi_square(self):
        sampler = ExactDiscreteGaussianSampler(sigma_squared=2, seed=1)
        draws = np.array(sampler.sample_many(30_000))
        dist = DiscreteGaussianDistribution(sigma_squared=2.0)
        cutoff = 5
        clipped = np.clip(draws, -cutoff, cutoff)
        counts = np.bincount(clipped + cutoff, minlength=2 * cutoff + 1)
        ks = np.arange(-cutoff, cutoff + 1)
        probs = np.asarray(dist.pmf(ks), dtype=float)
        tail = 1.0 - probs.sum()
        probs[0] += tail / 2.0
        probs[-1] += tail / 2.0
        expected = probs * len(draws)
        mask = expected > 5
        chi_square = float(
            ((counts[mask] - expected[mask]) ** 2 / expected[mask]).sum()
        )
        assert chi_square < 35.0

    def test_small_sigma(self):
        sampler = ExactDiscreteGaussianSampler(sigma_squared=Fraction(1, 4), seed=2)
        draws = np.array(sampler.sample_many(5_000))
        dist = DiscreteGaussianDistribution(sigma_squared=0.25)
        assert abs(draws.var() - dist.variance) < 0.05

    def test_seed_reproducibility(self):
        first = ExactDiscreteGaussianSampler(sigma_squared=4, seed=9)
        second = ExactDiscreteGaussianSampler(sigma_squared=4, seed=9)
        assert first.sample_many(100) == second.sample_many(100)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            ExactDiscreteGaussianSampler(sigma_squared=0)


class TestDiscreteGaussianDistribution:
    def test_pmf_sums_to_one(self):
        dist = DiscreteGaussianDistribution(sigma_squared=3.0)
        assert abs(float(np.sum(dist.pmf(dist.support()))) - 1.0) < 1e-9

    def test_variance_close_to_parameter_for_large_sigma(self):
        # Canonne et al.: variance -> sigma^2 rapidly as sigma grows.
        dist = DiscreteGaussianDistribution(sigma_squared=9.0)
        assert abs(dist.variance - 9.0) < 0.01

    def test_variance_below_parameter_for_tiny_sigma(self):
        dist = DiscreteGaussianDistribution(sigma_squared=0.1)
        assert dist.variance < 0.1

    def test_invalid_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            DiscreteGaussianDistribution(sigma_squared=-1.0)
