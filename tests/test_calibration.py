"""Tests for noise calibration (repro.core.calibration)."""

import math

import pytest

from repro.accounting.divergences import gaussian_rdp
from repro.accounting.rdp import rdp_to_dp, subsampled_rdp
from repro.config import PrivacyBudget
from repro.core.calibration import (
    AccountingSpec,
    calibrate_noise,
    epsilon_for_curve,
)
from repro.errors import CalibrationError, PrivacyAccountingError


def gaussian_factory(sigma):
    return lambda alpha: gaussian_rdp(alpha, 1.0, sigma)


class TestAccountingSpec:
    def test_defaults(self):
        spec = AccountingSpec(budget=PrivacyBudget(1.0))
        assert spec.rounds == 1
        assert spec.sampling_rate == 1.0

    def test_rejects_zero_rounds(self):
        with pytest.raises(CalibrationError):
            AccountingSpec(budget=PrivacyBudget(1.0), rounds=0)

    def test_rejects_bad_sampling_rate(self):
        with pytest.raises(CalibrationError):
            AccountingSpec(budget=PrivacyBudget(1.0), sampling_rate=0.0)
        with pytest.raises(CalibrationError):
            AccountingSpec(budget=PrivacyBudget(1.0), sampling_rate=1.5)


class TestEpsilonForCurve:
    def test_single_release_matches_manual(self):
        spec = AccountingSpec(budget=PrivacyBudget(5.0))
        curve = gaussian_factory(2.0)
        epsilon, order = epsilon_for_curve(curve, spec)
        manual = min(
            rdp_to_dp(a, curve(a), spec.budget.delta) for a in range(2, 101)
        )
        assert epsilon == pytest.approx(manual)
        assert rdp_to_dp(order, curve(order), spec.budget.delta) == pytest.approx(
            epsilon
        )

    def test_rounds_compose_linearly(self):
        curve = gaussian_factory(5.0)
        one = AccountingSpec(budget=PrivacyBudget(5.0), rounds=1)
        ten = AccountingSpec(budget=PrivacyBudget(5.0), rounds=10)
        eps_one, _ = epsilon_for_curve(curve, one)
        eps_ten, _ = epsilon_for_curve(curve, ten)
        assert eps_ten > eps_one

    def test_subsampling_amplifies(self):
        curve = gaussian_factory(1.0)
        full = AccountingSpec(budget=PrivacyBudget(5.0), rounds=10)
        sampled = AccountingSpec(
            budget=PrivacyBudget(5.0), rounds=10, sampling_rate=0.01
        )
        eps_full, _ = epsilon_for_curve(curve, full)
        eps_sampled, _ = epsilon_for_curve(curve, sampled)
        assert eps_sampled < eps_full / 5.0

    def test_subsampled_matches_manual_formula(self):
        curve = gaussian_factory(2.0)
        spec = AccountingSpec(
            budget=PrivacyBudget(5.0), rounds=7, sampling_rate=0.1
        )
        epsilon, _ = epsilon_for_curve(curve, spec)
        manual = min(
            rdp_to_dp(a, 7 * subsampled_rdp(a, 0.1, curve), 1e-5)
            for a in range(2, 101)
        )
        assert epsilon == pytest.approx(manual)


class TestCalibrateNoise:
    def test_gaussian_calibration_meets_budget(self):
        spec = AccountingSpec(budget=PrivacyBudget(epsilon=2.0))
        result = calibrate_noise(gaussian_factory, spec)
        assert result.epsilon <= 2.0
        # And it is nearly tight (within the bisection tolerance).
        assert result.epsilon > 2.0 * 0.99

    def test_matches_analytic_ballpark(self):
        # For single-release Gaussian at delta=1e-5, eps=1 requires
        # sigma roughly sqrt(2 ln(1.25/delta)) ~ 4.8 (classic bound);
        # the RDP route lands within a factor ~1.3.
        spec = AccountingSpec(budget=PrivacyBudget(epsilon=1.0))
        result = calibrate_noise(gaussian_factory, spec)
        classic = math.sqrt(2 * math.log(1.25 / 1e-5))
        assert 0.6 * classic < result.noise_parameter < 1.4 * classic

    def test_more_rounds_needs_more_noise(self):
        one = calibrate_noise(
            gaussian_factory, AccountingSpec(budget=PrivacyBudget(2.0), rounds=1)
        )
        hundred = calibrate_noise(
            gaussian_factory,
            AccountingSpec(budget=PrivacyBudget(2.0), rounds=100),
        )
        assert hundred.noise_parameter > one.noise_parameter * 5

    def test_subsampling_needs_less_noise(self):
        plain = calibrate_noise(
            gaussian_factory,
            AccountingSpec(budget=PrivacyBudget(2.0), rounds=100),
        )
        amplified = calibrate_noise(
            gaussian_factory,
            AccountingSpec(
                budget=PrivacyBudget(2.0), rounds=100, sampling_rate=0.01
            ),
        )
        assert amplified.noise_parameter < plain.noise_parameter / 3

    def test_tighter_epsilon_needs_more_noise(self):
        loose = calibrate_noise(
            gaussian_factory, AccountingSpec(budget=PrivacyBudget(5.0))
        )
        tight = calibrate_noise(
            gaussian_factory, AccountingSpec(budget=PrivacyBudget(0.5))
        )
        assert tight.noise_parameter > loose.noise_parameter

    def test_infeasible_curve_raises(self):
        def impossible_factory(theta):
            def curve(alpha):
                raise PrivacyAccountingError("never feasible")

            return curve

        with pytest.raises(CalibrationError):
            calibrate_noise(
                impossible_factory,
                AccountingSpec(budget=PrivacyBudget(1.0)),
                max_doublings=10,
            )

    def test_rejects_non_positive_initial(self):
        with pytest.raises(CalibrationError):
            calibrate_noise(
                gaussian_factory,
                AccountingSpec(budget=PrivacyBudget(1.0)),
                initial=0.0,
            )

    def test_order_reported_is_optimal(self):
        spec = AccountingSpec(budget=PrivacyBudget(epsilon=3.0))
        result = calibrate_noise(gaussian_factory, spec)
        curve = gaussian_factory(result.noise_parameter)
        _, best_order = epsilon_for_curve(curve, spec)
        assert result.order == best_order
