"""Crash-safe rounds: retry/backoff, durable journal, resume, chaos.

Four layers, bottom-up: the :class:`RetryPolicy` backoff math, the
append-only round journal (torn writes, idempotent charges, recovery
parsing), the chaos schedule DSL and its invariant checkers, and then
the load-bearing socket scenarios — transient disconnect + Resume is
digest-invisible, adversarial resumes are refused with typed Rejects,
the at-most-once guard evicts conflicting re-uploads, and an
in-process ``crash()`` + restart over the same journal finishes the
round bit-identically while charging epsilon exactly once.
"""

import asyncio
import contextlib
import dataclasses
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net import (
    ClientPlan,
    SecAggServer,
    ServerConfig,
    SwarmConfig,
    expected_digest,
    run_client,
    run_swarm,
    write_datagram,
)
from repro.net.frames import read_datagram
from repro.net.swarm import client_plans, derive_population
from repro.resilience import (
    Blackout,
    DurableLedger,
    Partition,
    RetryPolicy,
    RoundJournal,
    ServerKill,
    check_invariants,
    parse_chaos,
    recover_journal,
)
from repro.resilience.chaos import survivors_after
from repro.secagg.bonawitz import (
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
)
from repro.secagg.keys import TOY_GROUP
from repro.secagg.statemachine import ClientSession
from repro.secagg.wire import (
    MaskedInput,
    Reject,
    Resume,
    Welcome,
    decode_frames,
    encode_message,
)
from repro.telemetry import MetricsRegistry, parse_prometheus, to_prometheus


def run_round(server_config, swarm_config, timeout=60.0, metrics=None):
    """One server round against one swarm on a single event loop."""

    async def scenario():
        server = SecAggServer(server_config)
        async with server:
            swarm_task = asyncio.ensure_future(
                run_swarm(
                    "127.0.0.1", server.port, swarm_config, metrics=metrics
                )
            )
            results = await asyncio.wait_for(server.serve_rounds(), timeout)
            swarm = await swarm_task
            server_text = to_prometheus(server.metrics.snapshot())
        return results, swarm, server_text

    return asyncio.run(scenario())


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.1, max_delay=0.5,
            multiplier=2.0, jitter=0.0,
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=0.2, max_delay=5.0, jitter=0.5
        )
        first = policy.delays(random.Random(7))
        second = policy.delays(random.Random(7))
        assert first == second
        for attempt, delay in enumerate(first):
            floor = min(5.0, 0.2 * 2.0**attempt)
            assert floor <= delay <= floor * 1.5

    def test_zero_retries_means_fail_fast(self):
        assert RetryPolicy(max_retries=0).delays() == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(base_delay=-0.1),
            dict(base_delay=2.0, max_delay=1.0),
            dict(multiplier=0.5),
            dict(jitter=1.5),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(-1)


class TestRoundJournal:
    def test_completed_round_recovers_as_closed(self, tmp_path):
        path = tmp_path / "rounds.journal"
        with RoundJournal(path) as journal:
            journal.round_start(0, [1, 2, 3], {"modulus": 65536})
            journal.phase_commit(0, "advertise", {1: b"a", 2: b"b"})
            journal.phase_commit(0, "share-keys", {1: b"\x00\xff", 2: b"d"})
            journal.charge(0, 0.5)
            journal.round_end(0, "completed", digest="abc123")
        recovery = recover_journal(path)
        assert recovery.next_round_id == 1
        assert recovery.completed == (0,)
        assert recovery.aborted == ()
        assert recovery.charged == {0: 0.5}
        assert recovery.cumulative_epsilon == 0.5
        assert recovery.interrupted is None

    def test_interrupted_round_surfaces_committed_phases(self, tmp_path):
        path = tmp_path / "rounds.journal"
        with RoundJournal(path) as journal:
            journal.round_start(3, [4, 7, 9], {"threshold": 2})
            journal.phase_commit(3, "advertise", {4: b"dgram", 9: b"\x01"})
        recovery = recover_journal(path)
        interrupted = recovery.interrupted
        assert interrupted is not None
        assert interrupted.round_id == 3
        assert interrupted.cohort == (4, 7, 9)
        assert interrupted.params == {"threshold": 2}
        # Byte-exact round trip through the base64 encoding.
        assert interrupted.phases == (
            ("advertise", {4: b"dgram", 9: b"\x01"}),
        )
        assert recovery.next_round_id == 4

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "rounds.journal"
        with RoundJournal(path) as journal:
            journal.round_start(0, [1, 2], {})
            journal.round_end(0, "completed", digest="d")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "round-start", "rou')  # the kill -9
        recovery = recover_journal(path)
        assert recovery.completed == (0,)
        assert recovery.interrupted is None

    def test_corrupt_mid_file_record_raises(self, tmp_path):
        path = tmp_path / "rounds.journal"
        path.write_text('not json\n{"kind": "charge", "round": 0, '
                        '"epsilon": 1.0}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="corrupt journal"):
            recover_journal(path)

    def test_missing_journal_recovers_empty(self, tmp_path):
        recovery = recover_journal(tmp_path / "absent.journal")
        assert recovery.next_round_id == 0
        assert recovery.interrupted is None

    def test_duplicate_charge_records_count_once(self, tmp_path):
        path = tmp_path / "rounds.journal"
        with RoundJournal(path) as journal:
            journal.charge(0, 1.0)
            journal.charge(0, 1.0)  # a correct server never writes this
            journal.charge(1, 0.25)
        recovery = recover_journal(path)
        assert recovery.charged == {0: 1.0, 1: 0.25}
        assert recovery.cumulative_epsilon == 1.25

    def test_append_after_close_refused(self, tmp_path):
        journal = RoundJournal(tmp_path / "rounds.journal")
        journal.close()
        with pytest.raises(ConfigurationError, match="closed"):
            journal.charge(0, 1.0)


class TestDurableLedger:
    def test_charges_are_idempotent_by_round_id(self, tmp_path):
        with RoundJournal(tmp_path / "rounds.journal") as journal:
            ledger = DurableLedger(journal)
            assert ledger.charge(0, 1.0) is True
            assert ledger.charge(0, 1.0) is False  # restart replays
            assert ledger.charge(1, 0.5) is True
        assert ledger.epsilon == 1.5
        assert ledger.charges == {0: 1.0, 1: 0.5}
        # The refused duplicate never reached the journal either.
        recovery = recover_journal(tmp_path / "rounds.journal")
        lines = (tmp_path / "rounds.journal").read_text().splitlines()
        assert len(lines) == 2
        assert recovery.charged == {0: 1.0, 1: 0.5}

    def test_restart_seeds_from_recovered_charges(self):
        ledger = DurableLedger(charged={7: 2.0})
        assert ledger.charged(7)
        assert ledger.charge(7, 2.0) is False
        assert ledger.epsilon == 2.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigurationError):
            DurableLedger().charge(0, -1.0)


class TestChaosSchedule:
    def test_full_syntax_round_trips(self):
        schedule = parse_chaos(
            "kill@masked-input:r2;partition:3@share-keys/1.5;"
            "blackout:2@unmask;abort@advertise:r5"
        )
        assert schedule.faults == (
            ServerKill(phase=ROUND_MASKED_INPUT, round_index=2, restart=True),
            Partition(
                phase=ROUND_SHARE_KEYS, clients=3, duration=1.5,
                round_index=None,
            ),
            Blackout(phase=ROUND_UNMASK, clients=2, round_index=None),
            ServerKill(phase=0, round_index=5, restart=False),
        )

    def test_round_scoping_is_one_based(self):
        schedule = parse_chaos("kill@unmask:r2;blackout:1@advertise")
        assert schedule.kill(1) is None
        assert schedule.kill(2) == ServerKill(
            phase=ROUND_UNMASK, round_index=2
        )
        # The unscoped blackout applies everywhere.
        assert len(schedule.blackouts(1)) == 1
        assert len(schedule.blackouts(2)) == 1

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "  ;  ",
            "explode@unmask",
            "kill@warmup",
            "blackout:x@unmask",
            "partition:2@unmask",
            "partition:2@unmask/soon",
            "kill@unmask;kill@advertise",  # both unscoped
            "kill@unmask:r1;abort@advertise:r1",  # both round 1
            "kill@unmask;abort@advertise:r3",  # unscoped overlaps r3
        ],
    )
    def test_malformed_schedules_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_chaos(spec)

    def test_kills_in_distinct_rounds_are_fine(self):
        schedule = parse_chaos("kill@unmask:r1;abort@unmask:r2")
        assert schedule.kill(1).restart is True
        assert schedule.kill(2).restart is False

    def test_survivors_after_blackouts(self):
        faults = parse_chaos("blackout:2@unmask;partition:9@advertise/5")
        assert survivors_after((1, 2, 3, 4), faults.for_round(1)) == (
            frozenset({1, 2})  # partitions heal; blackouts do not
        )


class _FakeRecord:
    def __init__(self, index, included, aborted, epsilon,
                 cohort=(), dropped=(), aggregate_matches=None):
        self.index = index
        self.included = frozenset(included)
        self.aborted = aborted
        self.epsilon = epsilon
        self.cohort = tuple(cohort)
        self.dropped = frozenset(dropped)
        self.aggregate_matches = aggregate_matches


class TestChaosInvariants:
    def test_clean_records_pass(self):
        records = [
            _FakeRecord(1, {1, 2}, None, 0.5, cohort=(1, 2)),
            _FakeRecord(2, (), "below threshold", 1.0, cohort=(3,)),
            _FakeRecord(3, {4}, None, 1.5, cohort=(4,)),
        ]
        assert check_invariants(records) == []

    def test_partial_release_on_abort_flagged(self):
        records = [_FakeRecord(1, {1}, "killed", 0.5)]
        assert any("partial" in v for v in check_invariants(records))

    def test_epsilon_rollback_flagged(self):
        records = [
            _FakeRecord(1, {1}, None, 1.0),
            _FakeRecord(2, {1}, None, 0.5),
        ]
        assert any("decreased" in v for v in check_invariants(records))

    def test_aggregate_mismatch_flagged(self):
        records = [
            _FakeRecord(1, {1}, None, 1.0, aggregate_matches=False)
        ]
        assert any("true sum" in v for v in check_invariants(records))

    def test_included_divergence_against_reference_flagged(self):
        faulty = [
            _FakeRecord(1, {1, 2}, None, 1.0, cohort=(1, 2, 3),
                        dropped={3}),
        ]
        reference = [
            _FakeRecord(1, {1, 2, 3}, None, 1.0, cohort=(1, 2, 3),
                        dropped={3}),
        ]
        assert any(
            "different" in v for v in check_invariants(faulty, reference)
        )
        assert check_invariants(reference, reference) == []


class TestSwarmConfigKnobs:
    def test_transients_require_retry_budget(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            SwarmConfig(clients=4, threshold=2, transient_disconnects=1)

    def test_transient_phase_bounds(self):
        with pytest.raises(ConfigurationError):
            SwarmConfig(
                clients=4, threshold=2, max_retries=2,
                transient_disconnects=1, transient_phase=0,
            )

    def test_connect_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SwarmConfig(clients=4, threshold=2, connect_timeout=0.0)

    def test_retry_policy_property(self):
        assert SwarmConfig(clients=4, threshold=2).retry_policy is None
        policy = SwarmConfig(
            clients=4, threshold=2, max_retries=3
        ).retry_policy
        assert policy is not None and policy.max_retries == 3


class TestClientRetry:
    def test_dead_port_fails_fast_with_counted_retries(self):
        async def scenario():
            return await run_client(
                "127.0.0.1",
                9,  # reserved port; nothing listens
                ClientPlan(index=1, seed=0),
                [0] * 4,
                2**16,
                2,
                connect_timeout=0.5,
                retry=RetryPolicy(
                    max_retries=2, base_delay=0.01, max_delay=0.02
                ),
            )

        report = asyncio.run(scenario())
        assert report.status == "disconnected"
        assert report.retries == 2

    def test_retries_are_reported_to_the_metrics_registry(self):
        metrics = MetricsRegistry()

        async def scenario():
            return await run_client(
                "127.0.0.1", 9,
                ClientPlan(index=1, seed=0),
                [0] * 4, 2**16, 2,
                connect_timeout=0.5,
                retry=RetryPolicy(
                    max_retries=1, base_delay=0.01, max_delay=0.02
                ),
                metrics=metrics,
            )

        asyncio.run(scenario())
        parsed = parse_prometheus(to_prometheus(metrics.snapshot()))
        assert "net_retries_total" in parsed.family_names()


class TestTransientResume:
    def test_two_transients_digest_identical_and_counted(self):
        config = SwarmConfig(
            clients=8, threshold=4, seed=21,
            max_retries=6, transient_disconnects=2,
        )
        metrics = MetricsRegistry()
        results, swarm, server_text = run_round(
            ServerConfig(cohort_size=8, threshold=4, resume_grace=5.0),
            config,
            metrics=metrics,
        )
        (result,) = results
        assert result.aborted is None
        assert result.digest == expected_digest(config)
        assert swarm.completed == 8
        assert swarm.resumes >= 2
        parsed = parse_prometheus(server_text)
        assert parsed.value("net_resume_total", outcome="accepted") >= 2
        client_side = parse_prometheus(to_prometheus(metrics.snapshot()))
        assert "net_retries_total" in client_side.family_names()

    def test_disconnect_after_upload_replays_cleanly(self):
        config = SwarmConfig(
            clients=6, threshold=3, seed=29,
            max_retries=6, transient_disconnects=1,
            transient_phase=ROUND_SHARE_KEYS, transient_after_upload=True,
        )
        results, swarm, _ = run_round(
            ServerConfig(cohort_size=6, threshold=3, resume_grace=5.0),
            config,
        )
        (result,) = results
        assert result.aborted is None
        assert result.digest == expected_digest(config)
        assert swarm.completed == 6

    @given(
        phase=st.sampled_from(
            [ROUND_SHARE_KEYS, ROUND_MASKED_INPUT, ROUND_UNMASK]
        ),
        after_upload=st.booleans(),
    )
    @settings(max_examples=6, deadline=None)
    def test_any_single_transient_disconnect_is_digest_invisible(
        self, phase, after_upload
    ):
        """Satellite property: one transient disconnect + resume, at any
        phase, before or after the upload, never changes the aggregate."""
        config = SwarmConfig(
            clients=6, threshold=3, seed=33,
            max_retries=6, transient_disconnects=1,
            transient_phase=phase, transient_after_upload=after_upload,
        )
        results, swarm, _ = run_round(
            ServerConfig(cohort_size=6, threshold=3, resume_grace=5.0),
            config,
        )
        (result,) = results
        assert result.aborted is None
        assert result.digest == expected_digest(config)
        assert swarm.completed == 6


async def _scripted_join(port, plan, vector, modulus, threshold):
    """Handshake a raw client; returns (session, reader, writer, welcome)."""
    session = ClientSession(
        index=plan.index,
        vector=np.asarray(vector),
        modulus=modulus,
        threshold=threshold,
        rng=np.random.default_rng(plan.seed),
        group=TOY_GROUP,
    )
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    await write_datagram(writer, b"".join(session.start()))
    raw = await asyncio.wait_for(read_datagram(reader), 10)
    ((_, welcome),) = decode_frames(raw)
    assert isinstance(welcome, Welcome)
    return session, reader, writer, welcome


def _abort_connection(writer):
    with contextlib.suppress(Exception):
        writer.transport.abort()


class TestAdversarialResume:
    def test_stale_round_id_resume_rejected(self):
        """A Resume naming a round the server is not running gets a
        typed Reject, never a replay of another round's frames."""
        config = SwarmConfig(clients=3, threshold=2, seed=37)
        inputs, _ = derive_population(config)
        plans = client_plans(config)

        async def scenario():
            server = SecAggServer(
                ServerConfig(
                    cohort_size=3, threshold=2,
                    resume_grace=1.0, phase_timeout=10.0,
                )
            )
            async with server:
                serve = asyncio.ensure_future(server.serve_rounds())
                honest = [
                    asyncio.ensure_future(
                        run_client(
                            "127.0.0.1", server.port,
                            dataclasses.replace(plans[i], delay=0.6),
                            inputs[i], config.modulus, 2,
                        )
                    )
                    for i in (0, 1)
                ]
                session, reader, writer, welcome = await _scripted_join(
                    server.port, plans[2], inputs[2], config.modulus, 2
                )
                await asyncio.wait_for(read_datagram(reader), 10)  # roster
                _abort_connection(writer)
                reader2, writer2 = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await write_datagram(
                    writer2,
                    encode_message(
                        Resume(
                            sender=3,
                            round_id=welcome.round_id + 7,
                            deliveries=0,
                        ),
                        session.header,
                    ),
                )
                answer = await asyncio.wait_for(read_datagram(reader2), 10)
                writer2.close()
                results = await asyncio.wait_for(serve, 30)
                await asyncio.gather(*honest)
            return answer, results

        answer, results = asyncio.run(scenario())
        ((_, reject),) = decode_frames(answer)
        assert isinstance(reject, Reject)
        assert "stale round id" in reject.reason
        # The impostor round id never contaminated the real round: the
        # two honest clients finish it (threshold 2) without client 3.
        (result,) = results
        assert result.aborted is None
        assert 3 not in result.included

    def test_resume_after_grace_expiry_rejected(self):
        """A client evicted at grace expiry cannot re-enter the round."""
        config = SwarmConfig(clients=6, threshold=3, seed=41)
        inputs, _ = derive_population(config)
        plans = client_plans(config)

        async def scenario():
            server = SecAggServer(
                ServerConfig(
                    cohort_size=6, threshold=3,
                    resume_grace=0.3, phase_timeout=15.0,
                )
            )
            async with server:
                serve = asyncio.ensure_future(server.serve_rounds())
                honest = [
                    asyncio.ensure_future(
                        run_client(
                            "127.0.0.1", server.port,
                            dataclasses.replace(plans[i], delay=0.8),
                            inputs[i], config.modulus, 3,
                        )
                    )
                    for i in range(5)
                ]
                session, reader, writer, welcome = await _scripted_join(
                    server.port, plans[5], inputs[5], config.modulus, 3
                )
                await asyncio.wait_for(read_datagram(reader), 10)  # roster
                _abort_connection(writer)
                await asyncio.sleep(1.2)  # well past the 0.3s grace
                reader2, writer2 = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await write_datagram(
                    writer2,
                    encode_message(
                        Resume(
                            sender=6,
                            round_id=welcome.round_id,
                            deliveries=1,
                        ),
                        session.header,
                    ),
                )
                answer = await asyncio.wait_for(read_datagram(reader2), 10)
                writer2.close()
                results = await asyncio.wait_for(serve, 30)
                await asyncio.gather(*honest)
                server_text = to_prometheus(server.metrics.snapshot())
            return answer, results, server_text

        answer, results, server_text = asyncio.run(scenario())
        ((_, reject),) = decode_frames(answer)
        assert isinstance(reject, Reject)
        assert "no longer a participant" in reject.reason
        (result,) = results
        assert result.aborted is None
        assert 6 in result.evicted and 6 not in result.included
        # Evicting at grace expiry during share-keys is exactly a
        # share-keys dropout: the digest must match that schedule.
        assert result.digest == expected_digest(
            SwarmConfig(
                clients=6, threshold=3, dropouts=1,
                dropout_phase=ROUND_SHARE_KEYS, seed=41,
            )
        )
        parsed = parse_prometheus(server_text)
        assert parsed.value("net_resume_total", outcome="expired") == 1.0


class TestAtMostOnce:
    def _scenario(self, conflicting):
        """Drive client 8 through share-keys and masked-input, then
        re-send its masked input — identical or tampered bytes."""
        config = SwarmConfig(clients=8, threshold=4, seed=47)
        inputs, _ = derive_population(config)
        plans = client_plans(config)

        async def run():
            server = SecAggServer(
                ServerConfig(
                    cohort_size=8, threshold=4, phase_timeout=15.0
                )
            )
            async with server:
                serve = asyncio.ensure_future(server.serve_rounds())
                honest = [
                    asyncio.ensure_future(
                        run_client(
                            "127.0.0.1", server.port,
                            dataclasses.replace(plans[i], delay=0.4),
                            inputs[i], config.modulus, 4,
                        )
                    )
                    for i in range(7)
                ]
                session, reader, writer, _ = await _scripted_join(
                    server.port, plans[7], inputs[7], config.modulus, 4
                )
                upload = b""
                for _phase in (ROUND_SHARE_KEYS, ROUND_MASKED_INPUT):
                    delivery = await asyncio.wait_for(
                        read_datagram(reader), 10
                    )
                    responses = session.handle(delivery)
                    upload = b"".join(responses)
                    await write_datagram(writer, upload)
                if conflicting:
                    tampered = np.asarray(inputs[7], dtype=np.int64) + 1
                    resend = encode_message(
                        MaskedInput(sender=8, vector=tampered),
                        session.header,
                    )
                else:
                    resend = upload
                await write_datagram(writer, resend)
                answer = await asyncio.wait_for(read_datagram(reader), 10)
                frames = decode_frames(answer) if answer else []
                if not conflicting and answer is not None:
                    # The duplicate was ignored; the next delivery is
                    # the unmask request — finish the round honestly.
                    responses = session.handle(answer)
                    await write_datagram(writer, b"".join(responses))
                writer.close()
                results = await asyncio.wait_for(serve, 30)
                await asyncio.gather(*honest)
            return frames, results

        return asyncio.run(run())

    def test_conflicting_resend_gets_typed_reject_and_eviction(self):
        frames, results = self._scenario(conflicting=True)
        assert frames, "expected a Reject before the connection closed"
        message = frames[0][1]
        assert isinstance(message, Reject)
        assert "different bytes" in message.reason
        (result,) = results
        assert result.aborted is None
        assert 8 in result.evicted and 8 not in result.included
        # The conflicting upload never replaced the original either:
        # the round's digest is a clean masked-input dropout schedule.
        assert result.digest == expected_digest(
            SwarmConfig(
                clients=8, threshold=4, dropouts=1,
                dropout_phase=ROUND_MASKED_INPUT, seed=47,
            )
        )

    def test_identical_resend_is_idempotent(self):
        frames, results = self._scenario(conflicting=False)
        (result,) = results
        assert result.aborted is None
        assert 8 in result.included
        assert len(result.included) == 8
        assert result.digest == expected_digest(
            SwarmConfig(clients=8, threshold=4, seed=47)
        )


class TestCrashRecovery:
    def test_crash_and_restart_finishes_the_round_once(self, tmp_path):
        """The CI chaos scenario, in-process: crash after the share-keys
        commit, restart over the same journal, same port — the round
        finishes digest-identical and epsilon is charged exactly once."""
        journal = tmp_path / "rounds.journal"
        config = SwarmConfig(
            clients=8, threshold=4, seed=42, delay=0.3, max_retries=8
        )
        base = dict(
            cohort_size=8, threshold=4, phase_timeout=30.0,
            journal_path=str(journal), resume_grace=15.0,
            round_epsilon=0.5,
        )

        async def scenario():
            first = SecAggServer(ServerConfig(**base))
            await first.start()
            port = first.port
            serve = asyncio.ensure_future(first.serve_rounds())
            swarm = asyncio.ensure_future(
                run_swarm("127.0.0.1", port, config)
            )
            for _ in range(600):
                if (
                    journal.exists()
                    and '"phase": "share-keys"'
                    in journal.read_text(encoding="utf-8")
                ):
                    break
                await asyncio.sleep(0.025)
            else:
                raise AssertionError("share-keys phase never committed")
            await first.crash()
            serve.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve
            second = SecAggServer(ServerConfig(**base, port=port))
            async with second:
                results = await asyncio.wait_for(second.serve_rounds(), 60)
                reports = await asyncio.wait_for(swarm, 60)
                server_text = to_prometheus(second.metrics.snapshot())
            return results, reports, server_text

        results, reports, server_text = asyncio.run(scenario())
        (result,) = results
        assert result.recovered is True
        assert result.round_id == 0
        assert result.aborted is None
        assert result.digest == expected_digest(config)
        assert reports.completed == 8
        assert reports.resumes >= 8  # every client crossed the crash
        charge_lines = [
            line
            for line in journal.read_text(encoding="utf-8").splitlines()
            if '"kind": "charge"' in line
        ]
        assert len(charge_lines) == 1
        recovery = recover_journal(journal)
        assert recovery.charged == {0: 0.5}
        assert recovery.completed == (0,)
        assert recovery.interrupted is None
        parsed = parse_prometheus(server_text)
        assert parsed.value(
            "round_recovery_total", outcome="resumed"
        ) == 1.0

    def test_unrecoverable_journal_aborts_without_charge(self, tmp_path):
        """A journalled round whose parameters no longer match the
        server's is cleanly abandoned: aborted round-end, no charge."""
        journal = tmp_path / "rounds.journal"
        with RoundJournal(journal) as writer:
            writer.round_start(
                0, [1, 2, 3, 4],
                {"modulus": 2**16, "dimension": 32, "threshold": 99,
                 "version": 1, "mask_prg": "sha256-ctr"},
            )
            writer.phase_commit(0, "advertise", {1: b"x"})

        async def scenario():
            server = SecAggServer(
                ServerConfig(
                    cohort_size=4, threshold=2,
                    journal_path=str(journal), round_epsilon=1.0,
                )
            )
            async with server:
                # Stop before the loop: only the journal recovery runs,
                # no fresh cohort is gathered.
                server.request_stop()
                return await asyncio.wait_for(server.serve_rounds(), 10)

        results = asyncio.run(scenario())
        assert results == []
        recovery = recover_journal(journal)
        assert recovery.interrupted is None
        assert recovery.aborted == (0,)
        assert recovery.charged == {}  # epsilon never double- or mischarged

    def test_graceful_stop_drains_inflight_round(self):
        config = SwarmConfig(clients=4, threshold=2, seed=3)

        async def scenario():
            server = SecAggServer(
                ServerConfig(cohort_size=4, threshold=2, rounds=5)
            )
            async with server:
                serve = asyncio.ensure_future(server.serve_rounds())
                swarm = await run_swarm("127.0.0.1", server.port, config)
                server.request_stop()
                results = await asyncio.wait_for(serve, 10)
            return results, swarm

        results, swarm = asyncio.run(scenario())
        # The stop landed while gathering round 2: round 1 completed,
        # nothing was abandoned mid-flight, and the call returned early
        # instead of serving the remaining budget.
        assert len(results) == 1
        assert results[0].aborted is None
        assert swarm.completed == 4


class TestSimulationChaos:
    """The same fault schedules, injected into the simulated engine."""

    CONFIG = dict(
        population_size=24,
        expected_cohort=10,
        rounds=2,
        modulus=2**16,
        gamma=16.0,
        epsilon=5.0,
        hidden=4,
        test_records=32,
        seed=17,
        verify_aggregate=True,
    )

    def _run(self, **overrides):
        import warnings

        from repro.simulation import SimulationConfig, SimulationEngine

        config = SimulationConfig(**{**self.CONFIG, **overrides})
        engine = SimulationEngine(config)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return engine, engine.run()

    def test_kill_restart_round_is_digest_identical(self):
        _, reference = self._run()
        engine, result = self._run(chaos="kill@masked-input:r2")
        assert [r.recovered for r in result.records] == [False, True]
        # The restarted round releases the exact sum the fault-free run
        # does, so the trained model is bit-identical.
        assert result.parameters_digest == reference.parameters_digest
        assert check_invariants(result.records, reference.records) == []
        kinds = [event.kind for event in engine.trace.events]
        assert "chaos-server-kill" in kinds
        assert "chaos-server-restart" in kinds
        parsed = parse_prometheus(result.metrics.to_prometheus())
        assert parsed.value(
            "round_recovery_total", outcome="resumed"
        ) == 1.0

    def test_abort_kill_aborts_cleanly_without_release(self):
        _, result = self._run(chaos="abort@share-keys:r1", rounds=1)
        (record,) = result.records
        assert record.aborted
        assert not record.included
        # A clean abort still satisfies every chaos invariant.
        assert check_invariants(result.records) == []

    def test_blackout_drops_the_tail_cohort_members(self):
        _, result = self._run(chaos="blackout:2@share-keys:r1", rounds=1)
        (record,) = result.records
        assert not record.aborted
        assert set(record.cohort[-2:]) <= set(record.dropped)
        assert check_invariants(result.records) == []

    def test_kill_requires_flat_topology(self):
        from repro.simulation import SimulationConfig

        with pytest.raises(ConfigurationError, match="flat topology"):
            SimulationConfig(
                **{**self.CONFIG, "shards": 2, "chaos": "kill@unmask"}
            )

    def test_chaos_requires_the_secagg_path(self):
        from repro.simulation import SimulationConfig

        with pytest.raises(ConfigurationError, match="non-private"):
            SimulationConfig(
                **{
                    **self.CONFIG,
                    "epsilon": None,
                    "chaos": "blackout:1@unmask",
                }
            )
