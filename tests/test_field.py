"""Unit and property tests for the prime-field arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.secagg.field import (
    DEFAULT_FIELD,
    MERSENNE_61,
    PrimeField,
    _is_probable_prime,
)

SMALL_FIELD = PrimeField(prime=101)

elements = st.integers(min_value=0, max_value=100)


class TestPrimality:
    def test_small_primes_accepted(self):
        for p in (2, 3, 5, 7, 11, 101, 65537):
            assert _is_probable_prime(p)

    def test_small_composites_rejected(self):
        for n in (0, 1, 4, 9, 91, 65536, 561, 1105):
            # 561 and 1105 are Carmichael numbers.
            assert not _is_probable_prime(n)

    def test_mersenne_61_is_prime(self):
        assert _is_probable_prime(MERSENNE_61)

    def test_mersenne_127_is_prime(self):
        assert _is_probable_prime((1 << 127) - 1)

    def test_composite_modulus_rejected(self):
        with pytest.raises(ConfigurationError, match="prime"):
            PrimeField(prime=100)

    def test_modulus_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            PrimeField(prime=1)


class TestArithmetic:
    def test_element_canonicalises(self):
        assert SMALL_FIELD.element(205) == 3
        assert SMALL_FIELD.element(-1) == 100

    def test_add_wraps(self):
        assert SMALL_FIELD.add(100, 5) == 4

    def test_sub_wraps(self):
        assert SMALL_FIELD.sub(3, 5) == 99

    def test_neg_of_zero_is_zero(self):
        assert SMALL_FIELD.neg(0) == 0

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            SMALL_FIELD.inv(0)

    def test_inverse_of_multiple_of_prime_raises(self):
        with pytest.raises(ZeroDivisionError):
            SMALL_FIELD.inv(202)

    @given(a=elements.filter(lambda a: a != 0))
    def test_inverse_property(self, a):
        assert SMALL_FIELD.mul(a, SMALL_FIELD.inv(a)) == 1

    @given(a=elements, b=elements)
    def test_commutativity(self, a, b):
        assert SMALL_FIELD.add(a, b) == SMALL_FIELD.add(b, a)
        assert SMALL_FIELD.mul(a, b) == SMALL_FIELD.mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_distributivity(self, a, b, c):
        left = SMALL_FIELD.mul(a, SMALL_FIELD.add(b, c))
        right = SMALL_FIELD.add(SMALL_FIELD.mul(a, b), SMALL_FIELD.mul(a, c))
        assert left == right

    @given(a=elements, b=elements)
    def test_sub_is_add_of_neg(self, a, b):
        assert SMALL_FIELD.sub(a, b) == SMALL_FIELD.add(a, SMALL_FIELD.neg(b))

    def test_pow_matches_builtin(self):
        assert SMALL_FIELD.pow(7, 23) == pow(7, 23, 101)

    def test_default_field_is_mersenne(self):
        assert DEFAULT_FIELD.prime == MERSENNE_61


class TestPolynomialEvaluation:
    def test_constant_polynomial(self):
        assert SMALL_FIELD.evaluate_polynomial([42], 17) == 42

    def test_linear_polynomial(self):
        # f(x) = 3 + 5x at x = 7 -> 38.
        assert SMALL_FIELD.evaluate_polynomial([3, 5], 7) == 38

    def test_evaluation_reduces_mod_p(self):
        # f(x) = 100 + 100x at x = 100 -> 100 + 10000 = 10100 = 100 mod 101.
        assert SMALL_FIELD.evaluate_polynomial([100, 100], 100) == 10100 % 101

    @given(
        coefficients=st.lists(elements, min_size=1, max_size=6), x=elements
    )
    def test_matches_naive_evaluation(self, coefficients, x):
        naive = sum(c * x**k for k, c in enumerate(coefficients)) % 101
        assert SMALL_FIELD.evaluate_polynomial(coefficients, x) == naive
