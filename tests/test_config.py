"""Tests for the configuration dataclasses (repro.config)."""

import math

import pytest

from repro.config import (
    DEFAULT_DELTA,
    DEFAULT_ORDERS,
    ClipConfig,
    CompressionConfig,
    PrivacyBudget,
)
from repro.errors import ConfigurationError


class TestPrivacyBudget:
    def test_valid_budget(self):
        budget = PrivacyBudget(epsilon=3.0)
        assert budget.epsilon == 3.0
        assert budget.delta == DEFAULT_DELTA

    def test_default_orders_match_paper(self):
        # Section 6.1: optimal order chosen from integers 2 to 100.
        assert DEFAULT_ORDERS[0] == 2
        assert DEFAULT_ORDERS[-1] == 100
        assert len(DEFAULT_ORDERS) == 99

    def test_custom_delta(self):
        budget = PrivacyBudget(epsilon=1.0, delta=1e-6)
        assert budget.delta == 1e-6

    def test_zero_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(epsilon=0.0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(epsilon=-1.0)

    def test_delta_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(epsilon=1.0, delta=0.0)

    def test_delta_one_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(epsilon=1.0, delta=1.0)

    def test_empty_orders_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(epsilon=1.0, orders=())

    def test_order_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(epsilon=1.0, orders=(1, 2, 3))

    def test_budget_is_immutable(self):
        budget = PrivacyBudget(epsilon=1.0)
        with pytest.raises(Exception):
            budget.epsilon = 2.0


class TestCompressionConfig:
    def test_valid_config(self):
        config = CompressionConfig(modulus=256, gamma=64.0)
        assert config.modulus == 256
        assert config.gamma == 64.0

    def test_bitwidth(self):
        assert CompressionConfig(modulus=2**8, gamma=1.0).bitwidth == 8.0
        assert CompressionConfig(modulus=2**18, gamma=1.0).bitwidth == 18.0

    def test_non_power_of_two_modulus_allowed_if_even(self):
        # The wraparound codec only needs an even modulus.
        config = CompressionConfig(modulus=6, gamma=1.0)
        assert math.isclose(config.bitwidth, math.log2(6))

    def test_odd_modulus_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressionConfig(modulus=255, gamma=1.0)

    def test_modulus_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressionConfig(modulus=0, gamma=1.0)

    def test_zero_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressionConfig(modulus=256, gamma=0.0)

    def test_negative_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressionConfig(modulus=256, gamma=-4.0)


class TestClipConfig:
    def test_valid_config(self):
        clip = ClipConfig(c=4096.0, delta_inf=6.0)
        assert clip.c == 4096.0
        assert clip.delta_inf == 6.0

    def test_fractional_delta_inf_allowed(self):
        assert ClipConfig(c=1.0, delta_inf=0.5).delta_inf == 0.5

    def test_zero_c_rejected(self):
        with pytest.raises(ConfigurationError):
            ClipConfig(c=0.0, delta_inf=1.0)

    def test_negative_c_rejected(self):
        with pytest.raises(ConfigurationError):
            ClipConfig(c=-1.0, delta_inf=1.0)

    def test_zero_delta_inf_rejected(self):
        with pytest.raises(ConfigurationError):
            ClipConfig(c=1.0, delta_inf=0.0)
