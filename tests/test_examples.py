"""Smoke tests: every example script runs to completion.

Examples are the library's public face; a refactor that silently breaks
one is a release blocker.  Each test executes the script as a real
subprocess (the way a user would) and checks the exit status plus a
fingerprint of the expected output.  The federated-learning and
accounting-comparison walkthroughs train/compose for minutes and are
marked slow; enable with ``-m slow`` or by deselecting the marker
filter.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: (script, substring expected on stdout, timeout seconds)
FAST_EXAMPLES = [
    ("quickstart.py", "per-dimension mse", 120),
    ("exact_sampling.py", "", 120),
    ("sum_estimation.py", "", 180),
    ("dgm_vs_smm.py", "", 180),
    ("privacy_audit.py", "", 120),
    ("secure_aggregation.py", "matches the survivors' true sum: True", 120),
    ("floating_point_attack.py", "0 wrong", 120),
    ("async_simulation.py", "bit-reproducible: True", 240),
    ("sharded_simulation.py", "backend-identical: True", 240),
    (
        "hierarchical_aggregation.py",
        "digest-identical across composers: True",
        240,
    ),
    (
        "network_round.py",
        "bit-identical to the in-memory run_bonawitz reference",
        240,
    ),
]


def run_example(name: str, timeout: int) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )


@pytest.mark.parametrize(
    "name, fingerprint, timeout",
    FAST_EXAMPLES,
    ids=[name for name, _, _ in FAST_EXAMPLES],
)
def test_example_runs(name, fingerprint, timeout):
    result = run_example(name, timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    assert fingerprint in result.stdout


def test_examples_directory_is_fully_covered():
    """Every example script is exercised by some test (fast or slow)."""
    slow = {"federated_learning.py", "accounting_comparison.py"}
    fast = {name for name, _, _ in FAST_EXAMPLES}
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == fast | slow


@pytest.mark.slow
def test_example_federated_learning():
    result = run_example("federated_learning.py", 600)
    assert result.returncode == 0, result.stderr[-2000:]


@pytest.mark.slow
def test_example_accounting_comparison():
    result = run_example("accounting_comparison.py", 600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "single release" in result.stdout
