"""Hierarchical aggregation trees: topology, privacy, rebalancing.

Two load-bearing invariants anchor this module:

* **Equivalence** — an N-level tree's composed sum is *bit-identical*
  to the flat modular sum over the same survivor set, for any topology,
  any dropout schedule, and either composer (a hypothesis property).
* **Privacy** — with the secagg composer, no unmasked intermediate
  shard sum is reachable from the parent round's inputs: the virtual
  client exposes wire frames only, and the raw sum's bytes never
  appear in any datagram the composing server receives.

Plus the straggler-rebalancing contract: a leaf shard driven below its
Shamir threshold *before* the masking phase commits re-homes its
survivors onto sibling shards (capped, one pass) instead of dropping
them, and their contributions — masks re-derived in the new shard —
land exactly in the final sum.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError, ConfigurationError
from repro.secagg import (
    ClearComposer,
    SecAggComposer,
    TreeTopology,
    VirtualClient,
    get_composer,
    run_composition_round,
)
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_UNMASK,
)
from repro.secagg.tree import MIN_SHARD_SIZE, partition_members
from repro.simulation import (
    ClientPlan,
    HierarchicalSecAggRound,
    ShardedSecAggRound,
    SimulatedClock,
    SimulationTrace,
    partition_cohort,
    validate_threshold_fraction,
)
from repro.simulation.engine import SimulationConfig
from repro.telemetry import MetricsRegistry

MODULUS = 2**12
DIMENSION = 16


def make_vectors(num_clients, seed=0):
    rng = np.random.default_rng(seed)
    return {
        u: rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
        for u in range(1, num_clients + 1)
    }


def flat_sum(vectors, included):
    total = np.zeros(DIMENSION, dtype=np.int64)
    for u in included:
        total = np.mod(total + vectors[u], MODULUS)
    return total


def run_tree(vectors, topology, composer=None, plans=None, seed=1,
             threshold_fraction=0.6, metrics=None, trace=False,
             rebalance=False, max_shard_size=None):
    clock = SimulatedClock()
    trace_log = SimulationTrace(clock) if trace else None
    round_ = HierarchicalSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        clock=clock,
        rng=np.random.default_rng(seed),
        topology=topology,
        threshold_fraction=threshold_fraction,
        composer=composer,
        plans=plans,
        trace=trace_log,
        metrics=metrics,
        rebalance=rebalance,
        max_shard_size=max_shard_size,
    )
    outcome = round_.execute()
    return outcome, round_, trace_log


class TestTreeTopology:
    def test_parse_shapes(self):
        assert TreeTopology.parse("8").branching == (8,)
        assert TreeTopology.parse("4x4").branching == (4, 4)
        assert TreeTopology.parse("2,3,4").branching == (2, 3, 4)
        assert TreeTopology.parse(" 4X2 ").branching == (4, 2)

    def test_parse_passthrough_and_levels(self):
        topology = TreeTopology((4, 4))
        assert TreeTopology.parse(topology) is topology
        assert topology.levels == 2
        assert topology.describe() == "4x4"
        assert TreeTopology((8,)).levels == 1

    def test_parse_rejects_garbage(self):
        for bad in ("", "4x", "x4", "4xx4", "eight", "4x-2"):
            with pytest.raises(ConfigurationError):
                TreeTopology.parse(bad)

    def test_invalid_branching_rejected(self):
        with pytest.raises(ConfigurationError):
            TreeTopology(())
        with pytest.raises(ConfigurationError):
            TreeTopology((4, 0))
        with pytest.raises(ConfigurationError):
            TreeTopology.parse("0")

    def test_one_level_matches_legacy_partition(self):
        """A (k,) tree is bit-identical to the flat sharded partition:
        same groups, same order, same leaf indices."""
        cohort = tuple(range(1, 23))
        root = TreeTopology((4,)).partition(cohort)
        leaves = root.leaves()
        legacy = partition_cohort(cohort, 4)
        assert [leaf.members for leaf in leaves] == legacy
        assert [leaf.leaf_index for leaf in leaves] == [0, 1, 2, 3]

    def test_partition_members_is_the_shared_rule(self):
        cohort = tuple(range(1, 23))
        assert partition_cohort(cohort, 4) == partition_members(cohort, 4)

    def test_multi_level_partition_covers_cohort(self):
        cohort = tuple(range(1, 33))
        root = TreeTopology((2, 4)).partition(cohort)
        leaves = root.leaves()
        assert len(leaves) == 8
        flattened = sorted(u for leaf in leaves for u in leaf.members)
        assert flattened == sorted(cohort)
        assert [leaf.leaf_index for leaf in leaves] == list(range(8))
        assert all(len(leaf.members) >= MIN_SHARD_SIZE for leaf in leaves)
        # Interior nodes: the root plus its two region children.
        interior = root.interior()
        assert [node.level for node in interior] == [0, 1, 1]
        assert root.path == () and not root.is_leaf
        # Every leaf's path threads through its region.
        for leaf in leaves:
            assert len(leaf.path) == 2 and leaf.level == 2

    def test_small_cohort_degrades_gracefully(self):
        # 6 members cannot fill a 4x4 tree; every level caps its
        # fan-out so no shard drops below MIN_SHARD_SIZE.
        root = TreeTopology((4, 4)).partition(range(1, 7))
        leaves = root.leaves()
        assert sorted(u for leaf in leaves for u in leaf.members) == list(
            range(1, 7)
        )
        assert all(len(leaf.members) >= MIN_SHARD_SIZE for leaf in leaves)

    def test_partition_rejects_bad_cohorts(self):
        with pytest.raises(ConfigurationError):
            TreeTopology((2,)).partition(())
        with pytest.raises(ConfigurationError):
            partition_members((1, 1, 2), 2)
        with pytest.raises(ConfigurationError):
            partition_members((1, 2), 0)


class TestComposers:
    def test_get_composer_resolution(self):
        assert get_composer(None).name == "clear"
        assert get_composer("clear").name == "clear"
        assert get_composer("secagg").name == "secagg"
        instance = ClearComposer()
        assert get_composer(instance) is instance
        with pytest.raises(ConfigurationError):
            get_composer("homomorphic")

    def test_clear_composer_counts_compositions(self):
        metrics = MetricsRegistry()
        sums = [np.arange(DIMENSION, dtype=np.int64)] * 3
        result = ClearComposer().compose(
            sums, MODULUS, level=1, metrics=metrics
        )
        assert np.array_equal(
            result.modular_sum, np.mod(np.arange(DIMENSION) * 3, MODULUS)
        )
        assert result.wire is None
        assert metrics.snapshot().value(
            "compose_clear_total", level="1"
        ) == 1.0

    def test_secagg_composer_single_child_passthrough(self):
        only = np.arange(DIMENSION, dtype=np.int64) + MODULUS
        result = SecAggComposer().compose([only], MODULUS)
        assert np.array_equal(result.modular_sum, np.mod(only, MODULUS))
        assert result.wire is None

    def test_secagg_composer_requires_rng(self):
        sums = [np.arange(DIMENSION, dtype=np.int64)] * 2
        with pytest.raises(ConfigurationError):
            SecAggComposer().compose(sums, MODULUS, rng=None)
        with pytest.raises(ConfigurationError):
            SecAggComposer().compose([], MODULUS)

    def test_secagg_composition_bit_identical_to_clear(self):
        rng = np.random.default_rng(5)
        sums = [
            rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
            for _ in range(4)
        ]
        clear = ClearComposer().compose(sums, MODULUS).modular_sum
        masked = SecAggComposer().compose(
            sums, MODULUS, rng=np.random.default_rng(7)
        )
        assert np.array_equal(masked.modular_sum, clear)
        assert masked.wire is not None and masked.wire.total_bytes > 0


class TestVirtualClientPrivacy:
    """No unmasked intermediate sum is reachable from the parent round."""

    def test_adapter_api_is_wire_frames_only(self):
        secret = np.arange(DIMENSION, dtype=np.int64)
        client = VirtualClient(
            index=1,
            subtree_sum=secret,
            modulus=MODULUS,
            threshold=2,
            rng=np.random.default_rng(0),
        )
        # No public attribute (or repr) exposes the vector or the
        # underlying session; the session is name-mangled private.
        public = [name for name in vars(client) if not name.startswith("_")]
        assert public == ["index"]
        for name in ("vector", "subtree_sum", "session"):
            assert not hasattr(client, name)
        assert "array" not in repr(client)
        assert repr(client) == "VirtualClient(index=1)"

    def test_parent_server_never_receives_raw_sums(self, monkeypatch):
        """Wire accounting: every datagram the composing server ingests
        is captured, and no child sum's raw bytes appear in any of
        them — the parent's inputs are masked frames only."""
        import repro.secagg.tree as tree_module

        received = []
        real_server = tree_module.ServerSession

        class RecordingServer(real_server):
            def receive(self, data, sender=None):
                received.append(bytes(data))
                return super().receive(data, sender=sender)

        monkeypatch.setattr(tree_module, "ServerSession", RecordingServer)
        rng = np.random.default_rng(11)
        child_sums = [
            rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
            for _ in range(3)
        ]
        total, wire = run_composition_round(
            child_sums, MODULUS, np.random.default_rng(13)
        )
        assert np.array_equal(
            total, np.mod(np.sum(child_sums, axis=0), MODULUS)
        )
        assert received and wire.total_bytes > 0
        blob = b"".join(received)
        for child in child_sums:
            assert child.tobytes() not in blob
            assert np.mod(child, MODULUS).astype(np.int64).tobytes() not in blob

    def test_composition_round_needs_two_children(self):
        with pytest.raises(ConfigurationError):
            run_composition_round(
                [np.zeros(DIMENSION, dtype=np.int64)],
                MODULUS,
                np.random.default_rng(0),
            )

    def test_secagg_tree_wire_includes_composition_traffic(self):
        vectors = make_vectors(16, seed=2)
        clear, _, _ = run_tree(vectors, "4", composer="clear", seed=3)
        masked, _, _ = run_tree(vectors, "4", composer="secagg", seed=3)
        assert np.array_equal(clear.modular_sum, masked.modular_sum)
        # The outer Bonawitz round moves real bytes the clear
        # composition never pays for.
        assert masked.wire.total_bytes > clear.wire.total_bytes


class TestHierarchyEquivalence:
    def test_all_shapes_digest_identical_when_all_online(self):
        vectors = make_vectors(16, seed=4)
        shapes = [
            run_tree(vectors, "4", composer="clear", seed=9)[0],
            run_tree(vectors, "4", composer="secagg", seed=9)[0],
            run_tree(vectors, "2x2", composer="secagg", seed=9)[0],
        ]
        expected = flat_sum(vectors, vectors)
        for outcome in shapes:
            assert outcome.included == frozenset(vectors)
            assert np.array_equal(outcome.modular_sum, expected)

    def test_deterministic_across_reruns(self):
        vectors = make_vectors(18, seed=6)
        first, _, _ = run_tree(vectors, "2x2", composer="secagg", seed=21)
        second, _, _ = run_tree(vectors, "2x2", composer="secagg", seed=21)
        assert np.array_equal(first.modular_sum, second.modular_sum)
        assert first.included == second.included

    def test_outcome_annotated_with_composer(self):
        vectors = make_vectors(8, seed=7)
        clear, round_clear, _ = run_tree(vectors, "2", seed=1)
        masked, round_masked, _ = run_tree(
            vectors, "2", composer="secagg", seed=1
        )
        assert clear.composer == "clear"
        assert round_clear.composer_name == "clear"
        assert masked.composer == "secagg"
        assert round_masked.composer_name == "secagg"

    @settings(max_examples=10, deadline=None)
    @given(
        data=st.data(),
        num_clients=st.integers(min_value=8, max_value=20),
        topology=st.sampled_from(["2", "4", "2x2", "2x3", "2x2x2"]),
        composer=st.sampled_from(["clear", "secagg"]),
    )
    def test_tree_sum_equals_flat_survivor_sum(
        self, data, num_clients, topology, composer
    ):
        """The invariant: whatever the tree shape, composer, and
        dropout schedule, the composed sum is bit-identical to the
        flat modular sum over exactly the included survivors."""
        vectors = make_vectors(num_clients, seed=num_clients)
        drop_phases = data.draw(
            st.lists(
                st.one_of(
                    st.none(),
                    st.integers(ROUND_ADVERTISE, ROUND_UNMASK),
                ),
                min_size=num_clients,
                max_size=num_clients,
            )
        )
        plans = {
            u: ClientPlan(drop_phase=phase)
            for u, phase in zip(sorted(vectors), drop_phases)
            if phase is not None
        }
        try:
            outcome, _, _ = run_tree(
                vectors, topology, composer=composer, plans=plans, seed=5
            )
        except AggregationError:
            return  # every shard below threshold: a legal abort
        assert outcome.composer == composer
        assert outcome.included.isdisjoint(outcome.dropped)
        assert outcome.included | outcome.dropped == frozenset(vectors)
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, outcome.included)
        )


class TestRebalancing:
    """Cross-shard straggler rebalancing: survivors of a below-threshold
    shard re-home to siblings instead of dropping."""

    #: 12 members, 2 shards (round-robin: odds / evens), threshold
    #: ceil(0.8 * 6) = 5 — dropping 3 odds drives shard 0 below it.
    NUM = 12
    DROPPED = (1, 3, 5)
    SURVIVORS = (7, 9, 11)

    def plans(self, drop_phase=1):
        return {u: ClientPlan(drop_phase=drop_phase) for u in self.DROPPED}

    def test_without_rebalance_survivors_are_dropped(self):
        vectors = make_vectors(self.NUM, seed=8)
        outcome, _, _ = run_tree(
            vectors, "2", plans=self.plans(), threshold_fraction=0.8, seed=2
        )
        assert outcome.included == frozenset(range(2, 13, 2))
        assert set(self.SURVIVORS) <= outcome.dropped

    def test_survivors_rehomed_and_contributions_exact(self):
        """The acceptance regression: a shard driven below its Shamir
        threshold rebalances its pre-masking survivors to a sibling and
        the round completes with their contributions included — mask
        keys re-derived consistently in the new shard, so the sum is
        bit-exact against the flat oracle."""
        vectors = make_vectors(self.NUM, seed=8)
        metrics = MetricsRegistry()
        outcome, round_, trace = run_tree(
            vectors, "2", plans=self.plans(), threshold_fraction=0.8,
            seed=2, rebalance=True, metrics=metrics, trace=True,
        )
        expected_included = frozenset(range(2, 13, 2)) | set(self.SURVIVORS)
        assert outcome.included == expected_included
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, expected_included)
        )
        assert metrics.snapshot().value(
            "tree_rebalance_total", outcome="moved"
        ) == len(self.SURVIVORS)
        kinds = [event.kind for event in trace.events]
        assert "shard-rebalanced" in kinds
        assert "shard-aborted" in kinds
        # The re-homed shard re-ran as attempt 1.
        attempts = {
            report.shard_index: report.attempt
            for report in round_.last_reports
        }
        assert attempts[1] == 1

    def test_rebalance_with_secagg_composer_stays_bit_identical(self):
        vectors = make_vectors(self.NUM, seed=8)
        clear, _, _ = run_tree(
            vectors, "2", plans=self.plans(), threshold_fraction=0.8,
            seed=2, rebalance=True,
        )
        masked, _, _ = run_tree(
            vectors, "2", composer="secagg", plans=self.plans(),
            threshold_fraction=0.8, seed=2, rebalance=True,
        )
        assert masked.included == clear.included
        assert np.array_equal(masked.modular_sum, clear.modular_sum)

    def test_post_masking_abort_is_not_rebalanced(self):
        """Eligibility: once the masking phase has committed
        (abort_phase >= ROUND_MASKED_INPUT) survivors stay put — their
        masked inputs are already bound to the old shard's key set."""
        vectors = make_vectors(self.NUM, seed=8)
        metrics = MetricsRegistry()
        outcome, _, _ = run_tree(
            vectors, "2", plans=self.plans(drop_phase=ROUND_MASKED_INPUT),
            threshold_fraction=0.8, seed=2, rebalance=True, metrics=metrics,
        )
        assert outcome.included == frozenset(range(2, 13, 2))
        assert metrics.snapshot().value(
            "tree_rebalance_total", outcome="moved"
        ) is None

    def test_target_overflow_is_counted_and_capped(self):
        """A size-capped target absorbs what fits; the rest overflow
        (counted, traced) rather than blowing past max_shard_size."""
        vectors = make_vectors(self.NUM, seed=8)
        metrics = MetricsRegistry()
        outcome, _, trace = run_tree(
            vectors, "2", plans=self.plans(), threshold_fraction=0.8,
            seed=2, rebalance=True, metrics=metrics, trace=True,
            max_shard_size=7,
        )
        # Target shard (6 evens) takes exactly one survivor.
        assert len(outcome.included) == 7
        moved = outcome.included - frozenset(range(2, 13, 2))
        assert len(moved) == 1 and moved <= set(self.SURVIVORS)
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, outcome.included)
        )
        snapshot = metrics.snapshot()
        assert snapshot.value("tree_rebalance_total", outcome="moved") == 1
        assert snapshot.value("tree_rebalance_total", outcome="overflow") == 2
        rebalanced = [
            event for event in trace.events
            if event.kind == "shard-rebalanced"
        ]
        assert len(rebalanced[0].details["overflow"]) == 2

    def test_donor_collapsed_to_min_size_still_rehomes(self):
        """Edge: the donor shard collapses to MIN_SHARD_SIZE survivors —
        both are re-homed and contribute exactly."""
        vectors = make_vectors(self.NUM, seed=8)
        dropped = (1, 3, 5, 7)  # shard 0 keeps just 9 and 11
        plans = {u: ClientPlan(drop_phase=1) for u in dropped}
        outcome, _, _ = run_tree(
            vectors, "2", plans=plans, threshold_fraction=0.8,
            seed=2, rebalance=True,
        )
        expected = frozenset(range(2, 13, 2)) | {9, 11}
        assert outcome.included == expected
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, expected)
        )

    def test_all_shards_below_threshold_raises(self):
        """With no viable sibling target the survivors are stranded and
        the round aborts exactly like the legacy path."""
        vectors = make_vectors(self.NUM, seed=8)
        plans = {
            u: ClientPlan(drop_phase=1) for u in (1, 3, 5, 2, 4, 6)
        }
        metrics = MetricsRegistry()
        with pytest.raises(AggregationError, match="all 2 shards aborted"):
            run_tree(
                vectors, "2", plans=plans, threshold_fraction=0.8,
                seed=2, rebalance=True, metrics=metrics,
            )
        assert metrics.snapshot().value(
            "tree_rebalance_total", outcome="stranded"
        ) == 6

    def test_rebalance_is_sibling_scoped(self):
        """Donors only shed to leaves under the same parent: with a
        2x2 tree and one whole region below threshold, the other
        region's healthy shards are not valid targets."""
        vectors = make_vectors(16, seed=12)
        root = TreeTopology((2, 2)).partition(vectors)
        region0 = root.children[0]
        # Drop enough members of each leaf in region 0 to abort both.
        plans = {}
        for leaf in region0.leaves():
            for u in leaf.members[:3]:
                plans[u] = ClientPlan(drop_phase=1)
        metrics = MetricsRegistry()
        outcome, _, _ = run_tree(
            vectors, "2x2", plans=plans, threshold_fraction=0.9,
            seed=2, rebalance=True, metrics=metrics,
        )
        region0_members = set(region0.members)
        assert outcome.included.isdisjoint(region0_members)
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, outcome.included)
        )
        snapshot = metrics.snapshot()
        assert snapshot.value("tree_rebalance_total", outcome="moved") is None
        assert snapshot.value(
            "tree_rebalance_total", outcome="stranded"
        ) == 2  # one pre-masking survivor set per aborted leaf

    def test_max_shard_size_validation(self):
        vectors = make_vectors(8, seed=1)
        with pytest.raises(ConfigurationError):
            HierarchicalSecAggRound(
                vectors=vectors,
                modulus=MODULUS,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
                topology="2",
                max_shard_size=1,
            )


class TestTelemetryAndConfig:
    def test_per_level_labels_on_phase_histograms(self):
        vectors = make_vectors(16, seed=4)
        metrics = MetricsRegistry()
        run_tree(vectors, "2x2", composer="secagg", seed=9, metrics=metrics)
        snapshot = metrics.snapshot()
        levels = {
            dict(series.labels).get("level")
            for series in snapshot.series
            if series.name == "secagg_phase_wall_duration_seconds"
        }
        assert {"0", "1"} <= levels
        wall_levels = {
            dict(series.labels)["level"]
            for series in snapshot.series
            if series.name == "tree_level_wall_seconds"
        }
        assert wall_levels == {"0", "1"}

    def test_clear_compose_counter_per_level(self):
        vectors = make_vectors(16, seed=4)
        metrics = MetricsRegistry()
        run_tree(vectors, "2x2", composer="clear", seed=9, metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot.value("compose_clear_total", level="0") == 1
        assert snapshot.value("compose_clear_total", level="1") == 2

    def test_trace_records_tree_composition(self):
        vectors = make_vectors(16, seed=4)
        _, _, trace = run_tree(
            vectors, "2x2", composer="secagg", seed=9, trace=True
        )
        composes = [
            event for event in trace.events if event.kind == "tree-compose"
        ]
        assert [event.details["level"] for event in composes] == [1, 1, 0]
        assert all(
            event.details["composer"] == "secagg" for event in composes
        )
        complete = [
            event
            for event in trace.events
            if event.kind == "sharded-round-complete"
        ]
        assert complete[0].details["topology"] == "2x2"
        assert complete[0].details["composer"] == "secagg"

    def test_validate_threshold_fraction(self):
        assert validate_threshold_fraction(0.6) == 0.6
        assert validate_threshold_fraction(1.0) == 1.0
        for bad in (0.0, -0.1, 1.01):
            with pytest.raises(
                ConfigurationError, match="threshold_fraction"
            ):
                validate_threshold_fraction(bad)

    def test_round_rejects_bad_threshold_fraction(self):
        with pytest.raises(ConfigurationError, match="threshold_fraction"):
            HierarchicalSecAggRound(
                vectors=make_vectors(8, seed=1),
                modulus=MODULUS,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
                topology="2",
                threshold_fraction=0.0,
            )

    def test_sharded_round_is_one_level_tree(self):
        vectors = make_vectors(12, seed=3)
        clock = SimulatedClock()
        legacy = ShardedSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            clock=clock,
            rng=np.random.default_rng(17),
            shards=3,
        )
        assert isinstance(legacy, HierarchicalSecAggRound)
        assert legacy.topology.branching == (3,)
        outcome = legacy.execute()
        tree, _, _ = run_tree(vectors, "3", seed=17)
        assert np.array_equal(outcome.modular_sum, tree.modular_sum)
        with pytest.raises(ConfigurationError):
            ShardedSecAggRound(
                vectors=vectors,
                modulus=MODULUS,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
                shards=0,
            )

    def test_simulation_config_tree_knobs(self):
        config = SimulationConfig(tree="4x2", compose="secagg")
        assert config.aggregation_topology().branching == (4, 2)
        assert SimulationConfig().aggregation_topology() is None
        sharded = SimulationConfig(shards=4)
        assert sharded.aggregation_topology().branching == (4,)
        with pytest.raises(ConfigurationError):
            SimulationConfig(compose="homomorphic")
        with pytest.raises(ConfigurationError):
            SimulationConfig(tree="4x")
