"""Tests for the server-side learning-rate schedules."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fl.schedules import (
    ConstantSchedule,
    CosineAnnealing,
    LinearWarmup,
    StepDecay,
    make_schedule,
)


class TestConstant:
    def test_rate_never_changes(self):
        schedule = ConstantSchedule(0.005)
        assert schedule.rate(1) == schedule.rate(1000) == 0.005

    def test_invalid_base_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="base_rate"):
            ConstantSchedule(0.0)

    def test_invalid_round_rejected(self):
        with pytest.raises(ConfigurationError, match="round_index"):
            ConstantSchedule(0.1).rate(0)


class TestStepDecay:
    def test_first_period_at_base_rate(self):
        schedule = StepDecay(1.0, period=10, factor=0.5)
        assert schedule.rate(1) == schedule.rate(10) == 1.0

    def test_decays_at_period_boundary(self):
        schedule = StepDecay(1.0, period=10, factor=0.5)
        assert schedule.rate(11) == 0.5
        assert schedule.rate(21) == 0.25

    def test_factor_one_is_constant(self):
        schedule = StepDecay(0.7, period=5, factor=1.0)
        assert schedule.rate(100) == 0.7

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigurationError, match="period"):
            StepDecay(1.0, period=0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError, match="factor"):
            StepDecay(1.0, period=5, factor=1.5)


class TestCosine:
    def test_starts_at_base_and_ends_at_floor(self):
        schedule = CosineAnnealing(1.0, total_rounds=100, floor_rate=0.1)
        assert schedule.rate(1) == pytest.approx(1.0)
        assert schedule.rate(100) == pytest.approx(0.1)

    def test_midpoint_is_mean(self):
        schedule = CosineAnnealing(1.0, total_rounds=101, floor_rate=0.0)
        assert schedule.rate(51) == pytest.approx(0.5)

    def test_clamps_beyond_total_rounds(self):
        schedule = CosineAnnealing(1.0, total_rounds=10)
        assert schedule.rate(50) == pytest.approx(schedule.rate(10))

    def test_single_round_schedule(self):
        schedule = CosineAnnealing(0.3, total_rounds=1)
        assert schedule.rate(1) == pytest.approx(0.3)

    def test_invalid_floor_rejected(self):
        with pytest.raises(ConfigurationError, match="floor_rate"):
            CosineAnnealing(1.0, total_rounds=10, floor_rate=2.0)

    @given(round_index=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40)
    def test_monotone_nonincreasing(self, round_index):
        schedule = CosineAnnealing(1.0, total_rounds=200)
        assert (
            schedule.rate(round_index + 1) <= schedule.rate(round_index) + 1e-12
        )


class TestWarmup:
    def test_ramps_linearly(self):
        schedule = LinearWarmup(ConstantSchedule(1.0), warmup_rounds=4)
        assert schedule.rate(1) == pytest.approx(0.25)
        assert schedule.rate(2) == pytest.approx(0.5)
        assert schedule.rate(4) == pytest.approx(1.0)

    def test_follows_inner_after_warmup(self):
        inner = StepDecay(1.0, period=10, factor=0.5)
        schedule = LinearWarmup(inner, warmup_rounds=2)
        assert schedule.rate(15) == inner.rate(15)

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            LinearWarmup(ConstantSchedule(1.0), warmup_rounds=0)


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["constant", "step", "cosine", "warmup-cosine"]
    )
    def test_known_names_build(self, name):
        schedule = make_schedule(name, 0.01, 100)
        rate = schedule.rate(50)
        assert 0 < rate <= 0.01 + 1e-12

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown schedule"):
            make_schedule("polynomial", 0.01, 100)

    def test_warmup_cosine_starts_low(self):
        schedule = make_schedule("warmup-cosine", 1.0, 100)
        assert schedule.rate(1) < 0.5

    def test_all_rates_finite_over_run(self):
        for name in ("constant", "step", "cosine", "warmup-cosine"):
            schedule = make_schedule(name, 0.005, 50)
            for round_index in range(1, 51):
                assert math.isfinite(schedule.rate(round_index))
