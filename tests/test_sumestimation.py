"""Tests for the sum estimation experiment harness (repro.sumestimation)."""

import numpy as np
import pytest

from repro.config import CompressionConfig, PrivacyBudget
from repro.errors import ConfigurationError
from repro.mechanisms import GaussianMechanism, SkellamMixtureMechanism
from repro.sumestimation import (
    format_results_table,
    run_sum_estimation,
    sample_sphere,
    sweep,
)


class TestSampleSphere:
    def test_norms_equal_radius(self):
        rng = np.random.default_rng(0)
        points = sample_sphere(50, 64, rng, radius=2.5)
        assert np.allclose(np.linalg.norm(points, axis=1), 2.5)

    def test_shape(self):
        rng = np.random.default_rng(1)
        assert sample_sphere(10, 16, rng).shape == (10, 16)

    def test_directions_cover_both_signs(self):
        rng = np.random.default_rng(2)
        points = sample_sphere(100, 8, rng)
        assert points.min() < 0 < points.max()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            sample_sphere(0, 8, rng)
        with pytest.raises(ConfigurationError):
            sample_sphere(8, 0, rng)
        with pytest.raises(ConfigurationError):
            sample_sphere(8, 8, rng, radius=0.0)


class TestRunSumEstimation:
    def test_gaussian_mse_matches_sigma(self):
        # For the centralised Gaussian the mse is exactly the noise
        # variance (in expectation): check within sampling error.
        rng = np.random.default_rng(3)
        values = sample_sphere(20, 256, rng)
        result = run_sum_estimation(
            GaussianMechanism(), values, PrivacyBudget(3.0), rng, trials=50
        )
        sigma = result.summary["sigma"]
        assert result.mse == pytest.approx(sigma**2, rel=0.25)
        assert result.mechanism == "gaussian"
        assert result.trials == 50

    def test_smm_runs(self):
        rng = np.random.default_rng(4)
        values = sample_sphere(20, 128, rng)
        mechanism = SkellamMixtureMechanism(
            CompressionConfig(modulus=2**16, gamma=256.0)
        )
        result = run_sum_estimation(
            mechanism, values, PrivacyBudget(3.0), rng, trials=2
        )
        assert np.isfinite(result.mse)
        assert result.mse > 0

    def test_rejects_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            run_sum_estimation(
                GaussianMechanism(), np.zeros(5), PrivacyBudget(1.0), rng
            )
        with pytest.raises(ConfigurationError):
            run_sum_estimation(
                GaussianMechanism(),
                np.zeros((2, 5)),
                PrivacyBudget(1.0),
                rng,
                trials=0,
            )


class TestSweep:
    def test_grid_shape(self):
        rng = np.random.default_rng(5)
        results = sweep(
            {"gaussian": GaussianMechanism},
            epsilons=[1.0, 3.0],
            rng=rng,
            num_points=10,
            dimension=64,
        )
        assert len(results) == 2
        assert {r.epsilon for r in results} == {1.0, 3.0}

    def test_mse_decreases_with_epsilon(self):
        rng = np.random.default_rng(6)
        results = sweep(
            {"gaussian": GaussianMechanism},
            epsilons=[0.5, 5.0],
            rng=rng,
            num_points=10,
            dimension=64,
            trials=20,
        )
        assert results[0].mse > results[1].mse


class TestFormatTable:
    def test_renders_all_cells(self):
        rng = np.random.default_rng(7)
        results = sweep(
            {"gaussian": GaussianMechanism},
            epsilons=[1.0, 2.0],
            rng=rng,
            num_points=5,
            dimension=32,
        )
        table = format_results_table(results)
        assert "gaussian" in table
        assert "1.00" in table
        assert "2.00" in table
        assert len(table.splitlines()) == 3
