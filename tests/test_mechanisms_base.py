"""Tests for the mechanism interface (repro.mechanisms.base)."""

import numpy as np
import pytest

from repro.config import CompressionConfig, PrivacyBudget
from repro.core.calibration import AccountingSpec
from repro.errors import CalibrationError, ConfigurationError
from repro.mechanisms.base import (
    DistributedSumEstimator,
    InputSpec,
    clip_l2,
)


class TestInputSpec:
    def test_valid(self):
        spec = InputSpec(num_participants=100, dimension=784)
        assert spec.l2_bound == 1.0

    def test_padded_dimension(self):
        assert InputSpec(1, 784).padded_dimension == 1024
        assert InputSpec(1, 1024).padded_dimension == 1024
        assert InputSpec(1, 63_610).padded_dimension == 65_536

    def test_rejects_bad_participants(self):
        with pytest.raises(ConfigurationError):
            InputSpec(num_participants=0, dimension=10)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ConfigurationError):
            InputSpec(num_participants=1, dimension=0)

    def test_rejects_bad_l2(self):
        with pytest.raises(ConfigurationError):
            InputSpec(num_participants=1, dimension=10, l2_bound=0.0)


class TestClipL2:
    def test_no_op_below_bound(self):
        values = np.array([[0.3, 0.4]])
        assert np.allclose(clip_l2(values, 1.0), values)

    def test_scales_to_bound(self):
        values = np.array([[3.0, 4.0]])  # norm 5
        clipped = clip_l2(values, 1.0)
        assert np.isclose(np.linalg.norm(clipped), 1.0)
        # Direction preserved.
        assert np.allclose(clipped / np.linalg.norm(clipped), values / 5.0)

    def test_rows_independent(self):
        values = np.array([[3.0, 4.0], [0.1, 0.1]])
        clipped = clip_l2(values, 1.0)
        assert np.isclose(np.linalg.norm(clipped[0]), 1.0)
        assert np.allclose(clipped[1], values[1])

    def test_zero_vector_unchanged(self):
        assert np.allclose(clip_l2(np.zeros((2, 3)), 1.0), 0.0)

    def test_single_vector_shape(self):
        assert clip_l2(np.array([3.0, 4.0]), 1.0).shape == (2,)


class _IdentityMechanism(DistributedSumEstimator):
    """Noise-free distributed mechanism for pipeline testing."""

    name = "identity"

    def _calibrate(self, spec, accounting):
        pass

    def _encode_integer(self, scaled, rng):
        return np.round(scaled).astype(np.int64)


class TestDistributedPipeline:
    def test_uncalibrated_estimate_raises(self):
        mech = _IdentityMechanism(CompressionConfig(2**16, 64.0))
        with pytest.raises(CalibrationError):
            mech.estimate_sum(np.zeros((2, 4)), np.random.default_rng(0))

    def test_uncalibrated_spec_access_raises(self):
        mech = _IdentityMechanism(CompressionConfig(2**16, 64.0))
        with pytest.raises(CalibrationError):
            _ = mech.spec

    def test_pipeline_recovers_sum(self):
        rng = np.random.default_rng(0)
        mech = _IdentityMechanism(CompressionConfig(2**18, 512.0))
        spec = InputSpec(num_participants=10, dimension=20)
        mech.calibrate(spec, AccountingSpec(budget=PrivacyBudget(1.0)))
        values = rng.normal(size=(10, 20))
        values /= np.linalg.norm(values, axis=1, keepdims=True)
        estimate = mech.estimate_sum(values, rng)
        # Deterministic rounding at gamma=512: error ~ sqrt(n)/(2 gamma).
        assert np.allclose(estimate, values.sum(axis=0), atol=0.05)

    def test_l2_preclip_applied(self):
        rng = np.random.default_rng(1)
        mech = _IdentityMechanism(CompressionConfig(2**18, 512.0))
        spec = InputSpec(num_participants=1, dimension=8, l2_bound=1.0)
        mech.calibrate(spec, AccountingSpec(budget=PrivacyBudget(1.0)))
        big = np.full((1, 8), 100.0)
        estimate = mech.estimate_sum(big, rng)
        assert np.linalg.norm(estimate) < 1.1

    def test_wrong_width_rejected(self):
        mech = _IdentityMechanism(CompressionConfig(2**16, 64.0))
        mech.calibrate(
            InputSpec(num_participants=2, dimension=8),
            AccountingSpec(budget=PrivacyBudget(1.0)),
        )
        with pytest.raises(ConfigurationError):
            mech.estimate_sum(np.zeros((2, 9)), np.random.default_rng(0))

    def test_describe_default(self):
        mech = _IdentityMechanism(CompressionConfig(2**16, 64.0))
        assert mech.describe() == {"name": "base"} or "name" in mech.describe()
