"""Tests for the FL experiment harness (repro.fl.experiment)."""

import math

import numpy as np
import pytest

from repro.config import CompressionConfig
from repro.fl.data import make_synthetic_images
from repro.fl.experiment import (
    FlPointResult,
    format_accuracy_table,
    run_fl_point,
)
from repro.mechanisms import GaussianMechanism, SkellamMixtureMechanism


@pytest.fixture(scope="module")
def tiny_task():
    rng = np.random.default_rng(0)
    return make_synthetic_images(300, 80, noise_scale=0.25, rng=rng)


class TestRunFlPoint:
    def test_non_private_point(self, tiny_task):
        train, test = tiny_task
        result = run_fl_point(
            None, train, test, rounds=25, expected_batch=30, epsilon=None,
            hidden=8, learning_rate=0.005,
        )
        assert result.mechanism == "none"
        assert math.isnan(result.epsilon)
        assert 0.0 <= result.accuracy <= 1.0

    def test_gaussian_point(self, tiny_task):
        train, test = tiny_task
        result = run_fl_point(
            GaussianMechanism(), train, test, rounds=10, expected_batch=30,
            epsilon=5.0, hidden=8,
        )
        assert result.mechanism == "gaussian"
        assert result.epsilon == 5.0
        assert result.summary["achieved_epsilon"] <= 5.0 + 1e-6

    def test_smm_point(self, tiny_task):
        train, test = tiny_task
        mechanism = SkellamMixtureMechanism(
            CompressionConfig(modulus=2**12, gamma=64.0)
        )
        result = run_fl_point(
            mechanism, train, test, rounds=10, expected_batch=30,
            epsilon=5.0, hidden=8,
        )
        assert result.mechanism == "smm"
        assert 0.0 <= result.accuracy <= 1.0

    def test_same_seed_reproducible(self, tiny_task):
        train, test = tiny_task
        first = run_fl_point(
            None, train, test, rounds=10, expected_batch=30, epsilon=None,
            seed=3, hidden=8,
        )
        second = run_fl_point(
            None, train, test, rounds=10, expected_batch=30, epsilon=None,
            seed=3, hidden=8,
        )
        assert first.accuracy == second.accuracy


class TestFormatAccuracyTable:
    def test_renders_grid(self):
        results = [
            FlPointResult("smm", 1.0, 0.8, {}),
            FlPointResult("smm", 3.0, 0.9, {}),
            FlPointResult("ddg", 1.0, 0.5, {}),
            FlPointResult("ddg", 3.0, 0.7, {}),
        ]
        table = format_accuracy_table(results)
        lines = table.splitlines()
        assert len(lines) == 3
        assert "smm" in table and "ddg" in table
        assert "80.0" in table and "50.0" in table

    def test_missing_cells_render_nan(self):
        results = [
            FlPointResult("smm", 1.0, 0.8, {}),
            FlPointResult("ddg", 3.0, 0.7, {}),
        ]
        table = format_accuracy_table(results)
        assert "nan" in table
