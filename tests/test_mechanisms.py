"""Integration tests for the six calibrated sum estimators.

These exercise the full calibrate -> estimate pipeline on a small sphere
dataset, checking the statistical and privacy-accounting behaviour each
mechanism must exhibit (including the paper's headline ordering at small
bitwidths).
"""

import warnings

import numpy as np
import pytest

from repro.config import CompressionConfig, PrivacyBudget
from repro.core.calibration import AccountingSpec
from repro.mechanisms import (
    CpSgdMechanism,
    DiscreteGaussianMixtureMechanism,
    DistributedDiscreteGaussian,
    GaussianMechanism,
    InputSpec,
    SkellamMechanism,
    SkellamMixtureMechanism,
)
from repro.sumestimation.datasets import sample_sphere

DIM = 512
N = 40


@pytest.fixture(scope="module")
def sphere():
    rng = np.random.default_rng(0)
    return sample_sphere(N, DIM, rng)


def _mse(mechanism, values, rng, trials=3):
    spec = InputSpec(num_participants=values.shape[0], dimension=values.shape[1])
    mechanism.calibrate(spec, AccountingSpec(budget=PrivacyBudget(3.0)))
    truth = values.sum(axis=0)
    errors = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for _ in range(trials):
            estimate = mechanism.estimate_sum(values, rng)
            errors.append(np.mean((estimate - truth) ** 2))
    return float(np.mean(errors))


WIDE = CompressionConfig(modulus=2**18, gamma=512.0)


@pytest.mark.parametrize(
    "factory",
    [
        GaussianMechanism,
        lambda: SkellamMixtureMechanism(WIDE),
        lambda: SkellamMechanism(WIDE),
        lambda: DistributedDiscreteGaussian(WIDE),
        lambda: DiscreteGaussianMixtureMechanism(WIDE),
        lambda: CpSgdMechanism(WIDE),
    ],
    ids=["gaussian", "smm", "skellam", "ddg", "dgm", "cpsgd"],
)
class TestAllMechanisms:
    def test_estimate_roughly_unbiased(self, factory, sphere):
        rng = np.random.default_rng(1)
        mechanism = factory()
        spec = InputSpec(num_participants=N, dimension=DIM)
        mechanism.calibrate(spec, AccountingSpec(budget=PrivacyBudget(3.0)))
        truth = sphere.sum(axis=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            estimates = np.stack(
                [mechanism.estimate_sum(sphere, rng) for _ in range(30)]
            )
        bias = estimates.mean(axis=0) - truth
        spread = estimates.std(axis=0).mean() + 1e-9
        # Bias must be well inside the noise floor.
        assert np.abs(bias).mean() < spread

    def test_achieved_epsilon_within_budget(self, factory, sphere):
        mechanism = factory()
        spec = InputSpec(num_participants=N, dimension=DIM)
        mechanism.calibrate(spec, AccountingSpec(budget=PrivacyBudget(3.0)))
        achieved = mechanism.describe().get("achieved_epsilon")
        assert achieved is not None
        assert achieved <= 3.0 + 1e-6

    def test_describe_contains_name(self, factory, sphere):
        mechanism = factory()
        assert "name" in mechanism.describe()


class TestPrivacyUtilityMonotonicity:
    def test_mse_decreases_with_epsilon(self, sphere):
        rng = np.random.default_rng(2)
        mses = []
        for epsilon in [0.5, 2.0, 8.0]:
            mechanism = GaussianMechanism()
            spec = InputSpec(num_participants=N, dimension=DIM)
            mechanism.calibrate(
                spec, AccountingSpec(budget=PrivacyBudget(epsilon))
            )
            truth = sphere.sum(axis=0)
            estimates = np.stack(
                [mechanism.estimate_sum(sphere, rng) for _ in range(20)]
            )
            mses.append(float(np.mean((estimates - truth) ** 2)))
        assert mses[0] > mses[1] > mses[2]

    def test_smm_mse_tracks_gaussian_within_small_factor(self, sphere):
        # Corollary 2: SMM's DP error is at most a small constant above
        # continuous Gaussian at the same budget (wide pipe, large gamma).
        rng = np.random.default_rng(3)
        gaussian_mse = _mse(GaussianMechanism(), sphere, rng, trials=10)
        smm_mse = _mse(SkellamMixtureMechanism(WIDE), sphere, rng, trials=10)
        assert smm_mse < 3.0 * gaussian_mse


class TestLowBitwidthOrdering:
    def test_smm_beats_conditional_rounding_at_small_bitwidth(self, sphere):
        # The paper's headline (Figure 1a-c): at coarse quantisation the
        # rounding-based mechanisms pay a huge sensitivity penalty.
        rng = np.random.default_rng(4)
        narrow = CompressionConfig(modulus=2**10, gamma=8.0)
        smm_mse = _mse(SkellamMixtureMechanism(narrow), sphere, rng, trials=5)
        skellam_mse = _mse(SkellamMechanism(narrow), sphere, rng, trials=5)
        ddg_mse = _mse(DistributedDiscreteGaussian(narrow), sphere, rng, trials=5)
        assert smm_mse < skellam_mse
        assert smm_mse < ddg_mse

    def test_cpsgd_is_worst_at_any_bitwidth(self, sphere):
        rng = np.random.default_rng(5)
        config = CompressionConfig(modulus=2**14, gamma=64.0)
        cpsgd_mse = _mse(CpSgdMechanism(config), sphere, rng, trials=5)
        smm_mse = _mse(SkellamMixtureMechanism(config), sphere, rng, trials=5)
        assert cpsgd_mse > smm_mse


class TestCalibrationDetails:
    def test_smm_delta_inf_positive(self, sphere):
        mechanism = SkellamMixtureMechanism(WIDE)
        mechanism.calibrate(
            InputSpec(num_participants=N, dimension=DIM),
            AccountingSpec(budget=PrivacyBudget(3.0)),
        )
        assert mechanism.clip is not None
        assert mechanism.clip.delta_inf > 0
        assert mechanism.clip.c == pytest.approx(WIDE.gamma**2)

    def test_ddg_integer_sigma(self, sphere):
        mechanism = DistributedDiscreteGaussian(WIDE, integer_sigma=True)
        mechanism.calibrate(
            InputSpec(num_participants=N, dimension=DIM),
            AccountingSpec(budget=PrivacyBudget(3.0)),
        )
        assert mechanism.effective_sigma == float(int(mechanism.effective_sigma))
        assert mechanism.effective_sigma >= mechanism.sigma

    def test_dgm_effective_sigma_at_least_calibrated(self, sphere):
        mechanism = DiscreteGaussianMixtureMechanism(WIDE)
        mechanism.calibrate(
            InputSpec(num_participants=N, dimension=DIM),
            AccountingSpec(budget=PrivacyBudget(3.0)),
        )
        assert mechanism.effective_sigma >= mechanism.sigma

    def test_cpsgd_trials_positive_even(self, sphere):
        mechanism = CpSgdMechanism(WIDE)
        mechanism.calibrate(
            InputSpec(num_participants=N, dimension=DIM),
            AccountingSpec(budget=PrivacyBudget(3.0)),
        )
        assert mechanism.trials_per_participant > 0
        assert mechanism.trials_per_participant % 2 == 0

    def test_skellam_rounded_bound_exceeds_scaled_norm(self, sphere):
        mechanism = SkellamMechanism(WIDE)
        mechanism.calibrate(
            InputSpec(num_participants=N, dimension=DIM),
            AccountingSpec(budget=PrivacyBudget(3.0)),
        )
        assert mechanism.rounded_l2_bound > WIDE.gamma

    def test_fl_style_accounting(self, sphere):
        # Calibrating for many subsampled rounds still meets the budget.
        mechanism = SkellamMixtureMechanism(WIDE)
        mechanism.calibrate(
            InputSpec(num_participants=N, dimension=DIM),
            AccountingSpec(
                budget=PrivacyBudget(3.0), rounds=50, sampling_rate=0.05
            ),
        )
        assert mechanism.achieved_epsilon <= 3.0 + 1e-6
