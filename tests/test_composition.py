"""Tests for (epsilon, delta) composition (repro.accounting.composition)."""

import math

import pytest

from repro.accounting.composition import (
    advanced_composition,
    best_composition,
    linear_composition,
)
from repro.errors import PrivacyAccountingError


class TestLinearComposition:
    def test_sums(self):
        assert linear_composition(0.1, 1e-7, 10) == (
            pytest.approx(1.0),
            pytest.approx(1e-6),
        )

    def test_single_round_identity(self):
        assert linear_composition(0.5, 1e-6, 1) == (0.5, 1e-6)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(PrivacyAccountingError):
            linear_composition(-0.1, 1e-7, 10)

    def test_rejects_zero_rounds(self):
        with pytest.raises(PrivacyAccountingError):
            linear_composition(0.1, 1e-7, 0)


class TestAdvancedComposition:
    def test_dwork_roth_formula(self):
        eps, delta, rounds, slack = 0.01, 1e-8, 1000, 1e-6
        expected_eps = math.sqrt(
            2 * rounds * math.log(1 / slack)
        ) * eps + rounds * eps * (math.exp(eps) - 1)
        got_eps, got_delta = advanced_composition(eps, delta, rounds, slack)
        assert got_eps == pytest.approx(expected_eps)
        assert got_delta == pytest.approx(rounds * delta + slack)

    def test_beats_linear_for_many_small_rounds(self):
        eps, delta, rounds = 0.01, 1e-9, 10_000
        linear_eps, _ = linear_composition(eps, delta, rounds)
        advanced_eps, _ = advanced_composition(eps, delta, rounds, 1e-6)
        assert advanced_eps < linear_eps

    def test_loses_to_linear_for_few_rounds(self):
        eps, delta, rounds = 0.5, 1e-9, 2
        linear_eps, _ = linear_composition(eps, delta, rounds)
        advanced_eps, _ = advanced_composition(eps, delta, rounds, 1e-6)
        assert advanced_eps > linear_eps

    def test_rejects_zero_slack(self):
        with pytest.raises(PrivacyAccountingError):
            advanced_composition(0.1, 1e-8, 10, 0.0)


class TestBestComposition:
    def test_takes_minimum(self):
        # Many small rounds: advanced wins and best matches it.
        eps, delta, rounds, target = 0.01, 1e-10, 10_000, 1e-5
        slack = (target - rounds * delta) / 2
        advanced_eps, _ = advanced_composition(eps, delta, rounds, slack)
        assert best_composition(eps, delta, rounds, target) == pytest.approx(
            min(advanced_eps, rounds * eps)
        )

    def test_linear_when_no_slack_left(self):
        # All of delta consumed by the rounds: only linear is possible.
        eps, rounds, target = 0.05, 10, 1e-5
        delta = target / rounds
        assert best_composition(eps, delta, rounds, target) == pytest.approx(
            rounds * eps
        )

    def test_delta_budget_violation_raises(self):
        with pytest.raises(PrivacyAccountingError):
            best_composition(0.1, 1e-5, 10, 1e-5)
