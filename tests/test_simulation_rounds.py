"""Dropout edge cases of the Bonawitz protocol, driven through the
asynchronous round driver.

These tests exercise the full four-round state machine under the
failure modes the protocol exists for: dropout during each phase,
stragglers past the server's deadline, survivor sets falling below the
Shamir threshold (which must raise, never mis-aggregate), and the
malicious same-peer-as-survivor-and-dropout request that clients are
required to refuse.
"""

import numpy as np
import pytest

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
    UnmaskRequest,
)
from repro.simulation import (
    AsyncSecAggRound,
    ClientPlan,
    SimulatedClock,
    SimulationTrace,
)

MODULUS = 2**12
DIMENSION = 16


def make_vectors(num_clients, seed=0):
    rng = np.random.default_rng(seed)
    return {
        u: rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
        for u in range(1, num_clients + 1)
    }


def run_round(vectors, threshold=None, plans=None, phase_timeout=60.0,
              tamper=None, trace=False, seed=1):
    clock = SimulatedClock()
    trace_log = SimulationTrace(clock) if trace else None
    secagg_round = AsyncSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        threshold=threshold or max(2, len(vectors) // 2 + 1),
        clock=clock,
        rng=np.random.default_rng(seed),
        plans=plans,
        phase_timeout=phase_timeout,
        trace=trace_log,
        tamper_unmask_request=tamper,
    )
    outcome = clock.run(secagg_round.run())
    return outcome, trace_log


def expected_sum(vectors, included):
    total = np.zeros(DIMENSION, dtype=np.int64)
    for u in included:
        total = np.mod(total + vectors[u], MODULUS)
    return total


class TestAllOnline:
    def test_sum_is_exact(self):
        vectors = make_vectors(8)
        outcome, _ = run_round(vectors, threshold=5)
        assert outcome.included == frozenset(vectors)
        assert outcome.dropped == frozenset()
        assert np.array_equal(
            outcome.modular_sum, expected_sum(vectors, vectors)
        )

    def test_latencies_shape_the_simulated_duration(self):
        vectors = make_vectors(4)
        plans = {
            u: ClientPlan(latencies=(0.5, 0.5, 0.5, 0.5)) for u in vectors
        }
        outcome, _ = run_round(vectors, threshold=3, plans=plans)
        # Four phases, each gated on the slowest (0.5s) client.
        assert outcome.duration == pytest.approx(2.0)

    def test_early_round_leaves_no_stale_timers_and_exact_duration(self):
        """Regression for the stale-deadline leak: a round whose phases
        all complete well before the phase deadlines must (a) report
        the exact message-driven duration — not drift toward the
        deadlines — and (b) leave zero pending timers on the clock, so
        nothing accumulates across a multi-round simulation."""
        vectors = make_vectors(8)
        plans = {
            u: ClientPlan(latencies=(0.25, 0.25, 0.25, 0.25))
            for u in vectors
        }
        clock = SimulatedClock()
        secagg_round = AsyncSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            threshold=5,
            clock=clock,
            rng=np.random.default_rng(1),
            plans=plans,
            phase_timeout=60.0,
        )
        outcome = clock.run(secagg_round.run())
        assert outcome.duration == 1.0  # 4 phases x 0.25s, exactly.
        assert clock.now == outcome.completed_at
        assert clock.pending_timers == 0

    def test_cancelled_straggler_leaves_no_pending_timers(self):
        """A straggler cancelled mid-sleep at round teardown must not
        leave its sleep timer counted (or hoarded) on the heap."""
        vectors = make_vectors(8)
        plans = {4: ClientPlan(latencies=(0.0, 0.0, 500.0, 0.0))}
        clock = SimulatedClock()
        secagg_round = AsyncSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            threshold=5,
            clock=clock,
            rng=np.random.default_rng(1),
            plans=plans,
            phase_timeout=10.0,
        )
        outcome = clock.run(secagg_round.run())
        assert 4 in outcome.dropped
        assert clock.pending_timers == 0


class TestDropoutPerPhase:
    @pytest.mark.parametrize(
        "phase",
        [ROUND_ADVERTISE, ROUND_SHARE_KEYS, ROUND_MASKED_INPUT, ROUND_UNMASK],
    )
    def test_single_dropout_survived(self, phase):
        vectors = make_vectors(8)
        plans = {3: ClientPlan(drop_phase=phase)}
        outcome, _ = run_round(vectors, threshold=5, plans=plans)
        if phase <= ROUND_MASKED_INPUT:
            # Crashed before contributing: excluded, masks cleaned up.
            assert 3 not in outcome.included
            assert 3 in outcome.dropped
        else:
            # Crashed after contributing: the self-mask seed is
            # reconstructed, so the input stays in the sum.
            assert 3 in outcome.included
        assert np.array_equal(
            outcome.modular_sum, expected_sum(vectors, outcome.included)
        )

    def test_simultaneous_dropouts_across_phases(self):
        vectors = make_vectors(10)
        plans = {
            2: ClientPlan(drop_phase=ROUND_ADVERTISE),
            5: ClientPlan(drop_phase=ROUND_SHARE_KEYS),
            7: ClientPlan(drop_phase=ROUND_MASKED_INPUT),
            9: ClientPlan(drop_phase=ROUND_UNMASK),
        }
        outcome, _ = run_round(vectors, threshold=5, plans=plans)
        assert outcome.included == frozenset(vectors) - {2, 5, 7}
        assert np.array_equal(
            outcome.modular_sum, expected_sum(vectors, outcome.included)
        )


class TestStragglers:
    def test_straggler_past_deadline_is_dropped(self):
        vectors = make_vectors(8)
        # Client 4's masked input lands at t=15, after the phase-2
        # deadline (t=10) but while the others' slow unmask responses
        # (t=18) keep the round alive — so the late arrival is observed
        # and ignored rather than never sent.
        plans = {
            u: ClientPlan(latencies=(0.0, 0.0, 0.0, 8.0)) for u in vectors
        }
        plans[4] = ClientPlan(latencies=(0.0, 0.0, 15.0, 0.0))
        outcome, trace = run_round(
            vectors, threshold=5, plans=plans, phase_timeout=10.0, trace=True
        )
        assert 4 in outcome.dropped
        assert np.array_equal(
            outcome.modular_sum, expected_sum(vectors, outcome.included)
        )
        assert trace.count("phase-timeout") >= 1
        # The late masked input arrived mid-unmask and was ignored.
        assert trace.count("message-ignored") >= 1

    def test_straggler_within_deadline_is_kept(self):
        vectors = make_vectors(6)
        plans = {4: ClientPlan(latencies=(0.0, 0.0, 9.0, 0.0))}
        outcome, _ = run_round(
            vectors, threshold=4, plans=plans, phase_timeout=10.0
        )
        assert 4 in outcome.included


class TestThresholdFailures:
    def test_dropout_below_threshold_raises(self):
        vectors = make_vectors(6)
        plans = {
            1: ClientPlan(drop_phase=ROUND_MASKED_INPUT),
            2: ClientPlan(drop_phase=ROUND_MASKED_INPUT),
        }
        with pytest.raises(AggregationError, match="threshold"):
            run_round(vectors, threshold=5, plans=plans)

    def test_unmask_dropouts_below_threshold_raise(self):
        vectors = make_vectors(6)
        plans = {
            u: ClientPlan(drop_phase=ROUND_UNMASK) for u in (1, 2, 3)
        }
        with pytest.raises(AggregationError, match="threshold"):
            run_round(vectors, threshold=4, plans=plans)

    def test_everyone_offline_raises(self):
        vectors = make_vectors(4)
        plans = {
            u: ClientPlan(drop_phase=ROUND_ADVERTISE) for u in vectors
        }
        with pytest.raises(AggregationError):
            run_round(vectors, threshold=3, plans=plans)


class TestMaliciousUnmaskRequest:
    def test_same_peer_as_survivor_and_dropout_is_refused(self):
        vectors = make_vectors(6)

        def tamper(request):
            victim = min(request.survivors)
            return UnmaskRequest(
                survivors=request.survivors,
                dropouts=request.dropouts | {victim},
            )

        with pytest.raises(
            AggregationError, match="both survivor and dropout"
        ):
            run_round(vectors, threshold=4, tamper=tamper)

    def test_overlap_refused_even_with_real_dropouts(self):
        vectors = make_vectors(8)
        plans = {2: ClientPlan(drop_phase=ROUND_MASKED_INPUT)}

        def tamper(request):
            victim = min(request.survivors)
            return UnmaskRequest(
                survivors=request.survivors,
                dropouts=request.dropouts | {victim},
            )

        with pytest.raises(
            AggregationError, match="both survivor and dropout"
        ):
            run_round(vectors, threshold=5, plans=plans, tamper=tamper)

    def test_refusal_landing_during_teardown_is_surfaced(self):
        """Regression: the root-cause scan used to inspect client tasks
        only *before* the cancellation sweep, so a refusal completing
        during teardown (its task already past its last await when
        cancel() arrived) was masked by the server's threshold error."""
        import asyncio

        refusal = AggregationError(
            "refusing unmask request: clients [1] named as both survivor "
            "and dropout"
        )

        class TeardownRefusalRound(AsyncSecAggRound):
            async def _server_task(self, started_at):
                await self._clock.sleep(1.0)
                raise AggregationError("only 2 unmask responses; threshold")

            async def _client_task(self, index):
                if index != 3:
                    return
                # Swallow the cancellation the teardown sweep delivers
                # and complete with the protocol rejection instead —
                # the shape of a refusal racing the server's failure.
                try:
                    await self._clock.sleep(30.0)
                except asyncio.CancelledError:
                    pass
                raise refusal

        clock = SimulatedClock()
        secagg_round = TeardownRefusalRound(
            vectors=make_vectors(6),
            modulus=MODULUS,
            threshold=4,
            clock=clock,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(
            AggregationError, match="both survivor and dropout"
        ) as excinfo:
            clock.run(secagg_round.run())
        # Chained from the server's own (downstream) threshold error.
        assert "threshold" in str(excinfo.value.__cause__)


class TestDeterminism:
    def test_identical_seeds_replay_identically(self):
        vectors = make_vectors(8)
        plans = {
            2: ClientPlan(drop_phase=ROUND_SHARE_KEYS),
            6: ClientPlan(latencies=(0.3, 4.0, 0.1, 0.2)),
        }

        def execute():
            outcome, _ = run_round(
                vectors, threshold=5, plans=plans, phase_timeout=2.0, seed=13
            )
            return outcome

        first, second = execute(), execute()
        assert np.array_equal(first.modular_sum, second.modular_sum)
        assert first.included == second.included
        assert first.completed_at == second.completed_at


class TestValidation:
    def test_empty_cohort_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncSecAggRound(
                vectors={},
                modulus=MODULUS,
                threshold=2,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
            )

    def test_threshold_above_cohort_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncSecAggRound(
                vectors=make_vectors(3),
                modulus=MODULUS,
                threshold=4,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
            )

    def test_mismatched_dimensions_rejected(self):
        vectors = make_vectors(3)
        vectors[2] = vectors[2][:-1]
        with pytest.raises(ConfigurationError):
            AsyncSecAggRound(
                vectors=vectors,
                modulus=MODULUS,
                threshold=2,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
            )

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncSecAggRound(
                vectors=make_vectors(3),
                modulus=MODULUS,
                threshold=2,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
                phase_timeout=0.0,
            )


class TestTraceObservability:
    def test_round_events_are_logged(self):
        vectors = make_vectors(6)
        plans = {5: ClientPlan(drop_phase=ROUND_SHARE_KEYS)}
        outcome, trace = run_round(
            vectors, threshold=4, plans=plans, trace=True
        )
        assert trace.count("client-dropped") == 1
        assert trace.count("round-complete") == 1
        # One received message per phase per participating client.
        assert trace.count("message-received") >= 4 * len(outcome.included)


class TestVersionNegotiation:
    def test_unknown_version_client_is_rejected_not_crashed(self):
        """A client proposing an unsupported protocol version is refused
        at Hello with a typed Reject: its task exits cleanly, the round
        completes without it, and the sum stays exact."""
        vectors = make_vectors(6)
        clock = SimulatedClock()
        trace = SimulationTrace(clock)
        secagg_round = AsyncSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            threshold=4,
            clock=clock,
            rng=np.random.default_rng(1),
            trace=trace,
            client_versions={2: 99},
        )
        outcome = clock.run(secagg_round.run())
        assert 2 in outcome.dropped
        assert outcome.included == frozenset(vectors) - {2}
        assert np.array_equal(
            outcome.modular_sum, expected_sum(vectors, outcome.included)
        )
        rejected = trace.of_kind("client-rejected")
        assert len(rejected) == 1
        assert rejected[0].details["client"] == 2
        assert "unsupported protocol version 99" in (
            rejected[0].details["reason"]
        )

    def test_rejections_below_threshold_abort_with_typed_error(self):
        from repro.errors import NegotiationError

        vectors = make_vectors(5)
        clock = SimulatedClock()
        secagg_round = AsyncSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            threshold=4,
            clock=clock,
            rng=np.random.default_rng(1),
            client_versions={1: 7, 3: 7},
        )
        with pytest.raises(NegotiationError, match="after rejecting"):
            clock.run(secagg_round.run())


class TestMaskPrgKnob:
    def test_philox_round_sum_is_exact(self):
        vectors = make_vectors(6)
        clock = SimulatedClock()
        secagg_round = AsyncSecAggRound(
            vectors=vectors,
            modulus=MODULUS,
            threshold=4,
            clock=clock,
            rng=np.random.default_rng(3),
            plans={2: ClientPlan(drop_phase=ROUND_SHARE_KEYS)},
            phase_timeout=60.0,
            mask_prg="philox",
        )
        outcome = clock.run(secagg_round.run())
        np.testing.assert_array_equal(
            outcome.modular_sum, expected_sum(vectors, outcome.included)
        )

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown mask PRG"):
            AsyncSecAggRound(
                vectors=make_vectors(3),
                modulus=MODULUS,
                threshold=2,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
                mask_prg="rot13",
            )
