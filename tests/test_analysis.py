"""Tests for the theoretical-analysis helpers (repro.analysis)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    epsilon_curve,
    noise_variance_ratio,
    sensitivity_inflation,
    smm_expected_error,
    smm_gaussian_error_ratio,
)
from repro.core.skellam_mixture import smm_perturb
from repro.errors import ConfigurationError


class TestSmmExpectedError:
    def test_integer_data_has_no_bernoulli_term(self):
        values = np.ones((10, 4)) * 3.0
        assert smm_expected_error(values, lam=2.0) == pytest.approx(
            2 * 2.0 * 10 * 4
        )

    def test_fractional_data_adds_quantisation(self):
        values = np.full((10, 4), 0.5)
        expected = 2 * 1.0 * 10 * 4 + 10 * 4 * 0.25
        assert smm_expected_error(values, lam=1.0) == pytest.approx(expected)

    def test_gamma_rescales(self):
        values = np.ones((5, 2))
        assert smm_expected_error(values, 1.0, gamma=2.0) == pytest.approx(
            smm_expected_error(values, 1.0) / 4.0
        )

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-2, 2, size=(12, 6))
        lam = 1.5
        predicted = smm_expected_error(values, lam)
        errors = []
        for _ in range(3000):
            estimate = smm_perturb(values, lam, rng).sum(axis=0)
            errors.append(np.sum((estimate - values.sum(axis=0)) ** 2))
        assert np.mean(errors) == pytest.approx(predicted, rel=0.1)

    def test_rejects_vector_input(self):
        with pytest.raises(ConfigurationError):
            smm_expected_error(np.ones(4), 1.0)


class TestErrorRatio:
    def test_limits(self):
        assert smm_gaussian_error_ratio(2.0) == pytest.approx(1.7)
        assert smm_gaussian_error_ratio(1e9) == pytest.approx(1.2, abs=1e-6)

    def test_rejects_order_one(self):
        with pytest.raises(ConfigurationError):
            smm_gaussian_error_ratio(1.0)


class TestSensitivityInflation:
    def test_paper_regimes(self):
        # At the paper's m=2^8 FL point the baselines' sensitivity is
        # ~5x SMM's; at m=2^18 sum estimation it is ~1x.
        low_bitwidth = sensitivity_inflation(64.0, 65536)
        assert 4.5 < low_bitwidth.inflation < 5.5
        high_bitwidth = sensitivity_inflation(1024.0, 65536)
        assert 1.0 < high_bitwidth.inflation < 1.1

    def test_inflation_grows_with_dimension(self):
        small = sensitivity_inflation(32.0, 1024).inflation
        large = sensitivity_inflation(32.0, 65536).inflation
        assert large > small

    def test_inflation_shrinks_with_gamma(self):
        coarse = sensitivity_inflation(8.0, 16384).inflation
        fine = sensitivity_inflation(128.0, 16384).inflation
        assert coarse > fine


class TestNoiseVarianceRatio:
    def test_positive_and_large_in_low_bitwidth_regime(self):
        ratio = noise_variance_ratio(8.0, 16.0, 65536)
        assert ratio > 10.0

    def test_approaches_alpha_scaling_at_high_gamma(self):
        # With inflation ~1, ratio -> alpha / (1.2 alpha + 1) ~ 0.77.
        ratio = noise_variance_ratio(16.0, 2048.0, 16384)
        assert 0.5 < ratio < 1.1


class TestEpsilonCurve:
    def test_monotone_in_noise(self):
        eps_small = epsilon_curve("gaussian", 1.0, 1.0, 128, 10)
        eps_large = epsilon_curve("gaussian", 10.0, 1.0, 128, 10)
        assert eps_large < eps_small

    def test_smm_below_skellam_at_low_bitwidth(self):
        # Same per-participant lambda: SMM's bound (no rounding
        # inflation) gives a smaller epsilon.
        kwargs = dict(gamma=8.0, dimension=16384, num_participants=100)
        assert epsilon_curve("smm", 4.0, **kwargs) < epsilon_curve(
            "skellam", 4.0, **kwargs
        )

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            epsilon_curve("laplace", 1.0, 1.0, 128, 10)

    def test_finite_for_reasonable_parameters(self):
        assert math.isfinite(epsilon_curve("smm", 2.0, 64.0, 65536, 100))
