"""Tests for the mixture-sensitivity clipping (Algorithm 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClipConfig
from repro.core.clipping import (
    clip_gradient,
    clip_linf_ceiling,
    invert_sensitivity_helper,
    mixture_sensitivity,
    sensitivity_helper,
)
from repro.errors import ConfigurationError

finite_vectors = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=16,
)


class TestMixtureSensitivity:
    def test_integer_values(self):
        # phi(k) = k^2 for integers.
        assert mixture_sensitivity(np.array([2.0, -3.0])) == pytest.approx(13.0)

    def test_fractional_identity(self):
        # phi(k + p) = k^2 + p (2k + 1).
        x = 2.3
        k, p = 2, 0.3
        assert mixture_sensitivity(np.array([x])) == pytest.approx(
            k**2 + p * (2 * k + 1)
        )

    def test_zero(self):
        assert mixture_sensitivity(np.zeros(5)) == 0.0

    def test_dominates_squared_l2(self):
        # phi(x) >= x^2 always (p - p^2 >= 0).
        rng = np.random.default_rng(0)
        values = rng.normal(size=100) * 5
        assert mixture_sensitivity(values) >= float(np.sum(values**2))


class TestSensitivityHelper:
    def test_sign_convention(self):
        helper = sensitivity_helper(np.array([1.5, -1.5, 0.0]))
        assert helper[0] > 0
        assert helper[1] < 0
        assert helper[2] == 0.0

    def test_l1_norm_equals_mixture_sensitivity(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=40) * 3
        assert np.abs(sensitivity_helper(values)).sum() == pytest.approx(
            mixture_sensitivity(values)
        )

    @settings(max_examples=50, deadline=None)
    @given(finite_vectors)
    def test_property_inverse_roundtrip(self, values):
        array = np.array(values)
        recovered = invert_sensitivity_helper(sensitivity_helper(array))
        assert np.allclose(recovered, array, atol=1e-8)

    def test_monotone_in_magnitude(self):
        xs = np.array([0.1, 0.9, 1.0, 1.1, 2.7, 10.0])
        phis = np.abs(sensitivity_helper(xs))
        assert np.all(np.diff(phis) > 0)


class TestInvertHelper:
    def test_perfect_squares(self):
        # |v| = k^2 maps back to exactly k.
        values = np.array([1.0, 4.0, 9.0, 16.0])
        assert np.allclose(invert_sensitivity_helper(values), [1, 2, 3, 4])

    def test_zero(self):
        assert invert_sensitivity_helper(np.zeros(3)).tolist() == [0, 0, 0]

    def test_scaling_down_shrinks_magnitude(self):
        values = np.array([3.7, -2.2, 0.5])
        helper = sensitivity_helper(values)
        shrunk = invert_sensitivity_helper(helper * 0.5)
        assert np.all(np.abs(shrunk) <= np.abs(values))


class TestClipLinfCeiling:
    def test_ceiling_constraint_satisfied(self):
        clipped = clip_linf_ceiling(np.array([-1.9, 0.4, 2.6]), 1.0)
        assert np.all(np.ceil(np.abs(clipped)) <= 1.0)

    def test_paper_example(self):
        # "for Delta_inf = 1 and x = -1.9, we simply increase x to -1".
        assert clip_linf_ceiling(np.array([-1.9]), 1.0)[0] == -1.0

    def test_fractional_bound_uses_floor(self):
        clipped = clip_linf_ceiling(np.array([2.3]), 2.5)
        assert np.ceil(abs(clipped[0])) <= 2.5

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ConfigurationError):
            clip_linf_ceiling(np.array([1.0]), 0.0)


class TestClipGradient:
    def test_no_op_below_threshold(self):
        values = np.array([0.1, -0.2, 0.3])
        clip = ClipConfig(c=100.0, delta_inf=5.0)
        assert np.allclose(clip_gradient(values, clip), values)

    def test_sensitivity_bound_enforced(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=64) * 10
        clip = ClipConfig(c=30.0, delta_inf=4.0)
        clipped = clip_gradient(values, clip)
        assert mixture_sensitivity(clipped) <= 30.0 + 1e-6

    def test_linf_bound_enforced(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=64) * 10
        clip = ClipConfig(c=1e6, delta_inf=2.0)
        clipped = clip_gradient(values, clip)
        assert np.all(np.ceil(np.abs(clipped)) <= 2.0)

    def test_idempotent(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=32) * 8
        clip = ClipConfig(c=20.0, delta_inf=3.0)
        once = clip_gradient(values, clip)
        twice = clip_gradient(once, clip)
        assert np.allclose(once, twice, atol=1e-9)

    def test_batch_rows_clip_independently(self):
        rng = np.random.default_rng(5)
        batch = rng.normal(size=(6, 32)) * 8
        clip = ClipConfig(c=20.0, delta_inf=3.0)
        clipped = clip_gradient(batch, clip)
        for row_in, row_out in zip(batch, clipped):
            assert np.allclose(clip_gradient(row_in, clip), row_out)

    def test_preserves_signs(self):
        values = np.array([5.0, -5.0, 2.0, -2.0])
        clip = ClipConfig(c=4.0, delta_inf=10.0)
        clipped = clip_gradient(values, clip)
        assert np.all(np.sign(clipped) == np.sign(values))

    def test_zero_vector_unchanged(self):
        clip = ClipConfig(c=1.0, delta_inf=1.0)
        assert np.allclose(clip_gradient(np.zeros(8), clip), 0.0)

    @settings(max_examples=60, deadline=None)
    @given(
        finite_vectors,
        st.floats(min_value=0.5, max_value=1000.0),
        st.floats(min_value=1.0, max_value=50.0),
    )
    def test_property_eq4_invariants(self, values, c, delta_inf):
        array = np.array(values)
        clip = ClipConfig(c=c, delta_inf=delta_inf)
        clipped = clip_gradient(array, clip)
        # Both Corollary 1 preconditions hold after clipping.
        assert mixture_sensitivity(clipped) <= c * (1 + 1e-9)
        assert np.all(np.ceil(np.abs(clipped)) <= delta_inf)
