"""Tests for the fast vectorised samplers (repro.sampling.fast)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.errors import ConfigurationError
from repro.sampling.fast import (
    bernoulli_round,
    binomial_noise,
    discrete_gaussian_noise,
    skellam_noise,
)


class TestSkellamNoise:
    def test_moments(self):
        rng = np.random.default_rng(0)
        draws = skellam_noise(8.0, 200_000, rng)
        assert abs(draws.mean()) < 0.05
        assert abs(draws.var() - 16.0) < 0.3

    def test_dtype_and_shape(self):
        rng = np.random.default_rng(0)
        draws = skellam_noise(1.0, (3, 4), rng)
        assert draws.shape == (3, 4)
        assert draws.dtype == np.int64

    def test_distribution_matches_scipy(self):
        rng = np.random.default_rng(1)
        draws = skellam_noise(2.0, 100_000, rng)
        cutoff = 8
        clipped = np.clip(draws, -cutoff, cutoff)
        counts = np.bincount(clipped + cutoff, minlength=2 * cutoff + 1)
        ks = np.arange(-cutoff, cutoff + 1)
        probs = stats.skellam.pmf(ks, 2.0, 2.0)
        probs[0] += stats.skellam.cdf(-cutoff - 1, 2.0, 2.0)
        probs[-1] += stats.skellam.sf(cutoff, 2.0, 2.0)
        expected = probs * len(draws)
        mask = expected > 5
        chi_square = float(
            ((counts[mask] - expected[mask]) ** 2 / expected[mask]).sum()
        )
        assert chi_square < 42.0  # ~dof 16, 0.999 quantile

    def test_invalid_lambda(self):
        with pytest.raises(ConfigurationError):
            skellam_noise(0.0, 3, np.random.default_rng(0))


class TestDiscreteGaussianNoise:
    def test_moments(self):
        rng = np.random.default_rng(2)
        draws = discrete_gaussian_noise(9.0, 200_000, rng)
        assert abs(draws.mean()) < 0.05
        assert abs(draws.var() - 9.0) < 0.25

    def test_small_sigma_concentrates(self):
        rng = np.random.default_rng(3)
        draws = discrete_gaussian_noise(0.01, 10_000, rng)
        assert np.all(np.abs(draws) <= 1)
        assert (draws == 0).mean() > 0.99

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        draws = discrete_gaussian_noise(4.0, 100_000, rng)
        assert abs((draws > 0).mean() - (draws < 0).mean()) < 0.01

    def test_invalid_sigma(self):
        with pytest.raises(ConfigurationError):
            discrete_gaussian_noise(-1.0, 3, np.random.default_rng(0))


class TestBinomialNoise:
    def test_moments(self):
        rng = np.random.default_rng(5)
        draws = binomial_noise(100, 100_000, rng)
        assert abs(draws.mean()) < 0.1
        assert abs(draws.var() - 25.0) < 0.5

    def test_zero_trials(self):
        rng = np.random.default_rng(0)
        assert np.all(binomial_noise(0, (2, 3), rng) == 0)

    def test_odd_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            binomial_noise(7, 3, np.random.default_rng(0))

    def test_negative_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            binomial_noise(-2, 3, np.random.default_rng(0))

    def test_support_bounds(self):
        rng = np.random.default_rng(6)
        draws = binomial_noise(10, 10_000, rng)
        assert draws.min() >= -5
        assert draws.max() <= 5


class TestBernoulliRound:
    def test_integers_pass_through(self):
        rng = np.random.default_rng(0)
        values = np.array([-3.0, 0.0, 7.0])
        assert np.array_equal(bernoulli_round(values, rng), [-3, 0, 7])

    def test_output_is_neighbouring_integer(self):
        rng = np.random.default_rng(1)
        values = np.array([0.3, -1.7, 2.5])
        for _ in range(200):
            rounded = bernoulli_round(values, rng)
            assert np.all((rounded == np.floor(values)) | (rounded == np.ceil(values)))

    def test_unbiasedness(self):
        rng = np.random.default_rng(2)
        values = np.array([0.25, -0.75, 1.5, 3.999])
        rounds = np.stack([bernoulli_round(values, rng) for _ in range(40_000)])
        assert np.allclose(rounds.mean(axis=0), values, atol=0.02)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_neighbouring_integers(self, values, seed):
        rng = np.random.default_rng(seed)
        array = np.array(values)
        rounded = bernoulli_round(array, rng)
        assert np.all(rounded >= np.floor(array))
        assert np.all(rounded <= np.floor(array) + 1)

    def test_variance_is_p_one_minus_p(self):
        rng = np.random.default_rng(3)
        value = np.full(100_000, 0.3)
        rounded = bernoulli_round(value, rng)
        assert abs(rounded.var() - 0.21) < 0.01
