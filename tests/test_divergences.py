"""Tests for the RDP divergence curves (repro.accounting.divergences)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.divergences import (
    ddg_rdp,
    dgm_feasible,
    dgm_max_delta_inf,
    dgm_rdp,
    discrete_gaussian_sum_gap,
    discrete_gaussian_sum_tau,
    gaussian_rdp,
    skellam_mechanism_rdp,
    skellam_rdp,
    smm_feasible,
    smm_max_delta_inf,
    smm_rdp,
)
from repro.errors import PrivacyAccountingError


class TestGaussianRdp:
    def test_closed_form(self):
        # tau = alpha s^2 / (2 sigma^2)
        assert gaussian_rdp(2.0, 1.0, 1.0) == 1.0
        assert gaussian_rdp(4.0, 2.0, 2.0) == pytest.approx(2.0)

    def test_linear_in_alpha(self):
        assert gaussian_rdp(10, 1.0, 3.0) == pytest.approx(
            5 * gaussian_rdp(2, 1.0, 3.0)
        )

    def test_rejects_order_one(self):
        with pytest.raises(PrivacyAccountingError):
            gaussian_rdp(1.0, 1.0, 1.0)

    def test_rejects_zero_sigma(self):
        with pytest.raises(PrivacyAccountingError):
            gaussian_rdp(2.0, 1.0, 0.0)


class TestSkellamRdp:
    def test_theorem_3_constant(self):
        # tau = (1.09 alpha + 0.91)/2 * s^2/(2 lam)
        tau = skellam_rdp(3.0, 4.0, 10.0, 1.0)
        assert tau == pytest.approx((1.09 * 3 + 0.91) / 2 * 4.0 / 20.0)

    def test_comparable_to_gaussian_within_constant(self):
        # Theorem 3 remark: within a small constant of Gaussian of the
        # same variance (sigma^2 = 2 lam).
        lam = 50.0
        for alpha in [2, 4, 8, 16]:
            skellam = skellam_rdp(alpha, 1.0, lam, 1.0)
            gaussian = gaussian_rdp(alpha, 1.0, math.sqrt(2 * lam))
            assert gaussian <= skellam <= 2.0 * gaussian

    def test_feasibility_constraint_enforced(self):
        # alpha >= 2 lam / Delta_inf + 1 must raise.
        with pytest.raises(PrivacyAccountingError):
            skellam_rdp(22.0, 1.0, 10.0, 1.0)

    def test_decreases_with_lambda(self):
        taus = [skellam_rdp(2.0, 1.0, lam, 1.0) for lam in [5, 10, 100]]
        assert taus[0] > taus[1] > taus[2]


class TestSmmRdp:
    def test_corollary_1_constant(self):
        # tau = (1.2 alpha + 1)/2 * c/(2 n lam)
        tau = smm_rdp(3.0, 16.0, 240.0, 1.0)
        assert tau == pytest.approx((1.2 * 3 + 1) / 2 * 16.0 / 480.0)

    def test_feasibility_eq3(self):
        assert smm_feasible(2.0, 100.0, 1.0)
        assert not smm_feasible(2.0, 100.0, 1000.0)

    def test_infeasible_raises(self):
        with pytest.raises(PrivacyAccountingError):
            smm_rdp(5.0, 1.0, 10.0, 100.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=60),
        st.floats(min_value=1.0, max_value=1e6),
    )
    def test_max_delta_inf_is_tight(self, alpha, total_lam):
        boundary = smm_max_delta_inf(alpha, total_lam)
        assert smm_feasible(alpha, total_lam, boundary * 0.999)
        assert not smm_feasible(alpha, total_lam, boundary * 1.001)

    def test_max_delta_inf_decreases_with_order(self):
        bounds = [smm_max_delta_inf(a, 1000.0) for a in [2, 5, 10, 50]]
        assert all(b1 > b2 for b1, b2 in zip(bounds, bounds[1:]))

    def test_slightly_above_gaussian_constant(self):
        # Corollary 2 remark: leading multiplier (1.2 a + 1)/2 vs a/2.
        lam = 1000.0
        for alpha in [2, 8, 32]:
            ratio = smm_rdp(alpha, 1.0, lam, 0.5) / gaussian_rdp(
                alpha, 1.0, math.sqrt(2 * lam)
            )
            assert 1.0 < ratio < 2.0


class TestDiscreteGaussianGap:
    def test_single_summand_is_zero(self):
        assert discrete_gaussian_sum_gap(1, 4.0) == 0.0

    def test_negligible_for_large_sigma(self):
        assert discrete_gaussian_sum_gap(240, 4.0) < 1e-10

    def test_blows_up_for_small_sigma(self):
        assert discrete_gaussian_sum_gap(240, 0.25) > 1.0

    def test_increases_with_summands(self):
        gaps = [discrete_gaussian_sum_gap(n, 0.5) for n in [2, 10, 100]]
        assert gaps[0] < gaps[1] < gaps[2]

    def test_closed_form_small_case(self):
        expected = 10.0 * (
            math.exp(-2 * math.pi**2 * 1.0 * 1 / 2)
            + math.exp(-2 * math.pi**2 * 1.0 * 2 / 3)
        )
        assert discrete_gaussian_sum_gap(3, 1.0) == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(PrivacyAccountingError):
            discrete_gaussian_sum_gap(0, 1.0)
        with pytest.raises(PrivacyAccountingError):
            discrete_gaussian_sum_gap(2, 0.0)


class TestDiscreteGaussianSumTau:
    def test_reduces_to_gaussian_like_at_large_sigma(self):
        # With negligible gap the first arm is alpha s^2/(2 n sigma^2).
        tau = discrete_gaussian_sum_tau(2.0, 3.0, 100, 4.0)
        assert tau == pytest.approx(2.0 * 9.0 / (2 * 400.0), rel=1e-6)

    def test_gap_override(self):
        with_gap = discrete_gaussian_sum_tau(2.0, 1.0, 100, 4.0, gap=0.5)
        without = discrete_gaussian_sum_tau(2.0, 1.0, 100, 4.0)
        assert with_gap > without


class TestDdgRdp:
    def test_leading_term(self):
        tau = ddg_rdp(2.0, 9.0, 3.0, 100, 4.0, 128)
        assert tau == pytest.approx(2.0 * 9.0 / (2 * 400.0), rel=1e-6)

    def test_dimension_penalty_at_small_sigma(self):
        small_d = ddg_rdp(2.0, 1.0, 1.0, 100, 0.25, 10)
        large_d = ddg_rdp(2.0, 1.0, 1.0, 100, 0.25, 100_000)
        assert large_d > small_d

    def test_min_of_two_arms(self):
        # With a huge gap, the L1 arm should win for small Delta_1.
        tau = ddg_rdp(2.0, 1.0, 0.001, 50, 0.2, 1_000_000)
        first_arm = 2.0 * 1.0 / (2 * 10.0) + 1_000_000 * discrete_gaussian_sum_gap(
            50, 0.2
        )
        assert tau <= first_arm


class TestDgmRdp:
    def test_mixture_factor_over_ddg(self):
        # With negligible gap, DGM's bound is 1.1x the DDG leading term.
        ddg = ddg_rdp(2.0, 9.0, 3.0, 100, 16.0, 128)
        dgm = dgm_rdp(2.0, 9.0, 100, 16.0, 1.0, 3.0, 128)
        assert dgm == pytest.approx(1.1 * ddg, rel=1e-6)

    def test_feasibility_eq8(self):
        assert dgm_feasible(2.0, 100, 16.0, 1.0)
        assert not dgm_feasible(2.0, 100, 16.0, 1e6)

    def test_infeasible_raises(self):
        with pytest.raises(PrivacyAccountingError):
            dgm_rdp(2.0, 1.0, 100, 16.0, 1e6, 1.0, 128)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=20),
        st.floats(min_value=1.0, max_value=100.0),
    )
    def test_max_delta_inf_is_feasible(self, alpha, sigma_squared):
        boundary = dgm_max_delta_inf(alpha, 100, sigma_squared)
        if boundary > 0:
            assert dgm_feasible(alpha, 100, sigma_squared, boundary * 0.999)
            assert not dgm_feasible(alpha, 100, sigma_squared, boundary * 1.001)

    def test_empty_range_at_tiny_sigma(self):
        # tau_n explodes, leaving no feasible Delta_inf.
        assert dgm_max_delta_inf(2.0, 1000, 0.05) == 0.0


class TestSkellamMechanismRdp:
    def test_leading_term_matches_gaussian_variance(self):
        lam = 10_000.0
        tau = skellam_mechanism_rdp(4.0, 9.0, 3.0, lam)
        assert tau == pytest.approx(4.0 * 9.0 / (4 * lam), rel=1e-2)

    def test_l1_term_contributes(self):
        small_l1 = skellam_mechanism_rdp(2.0, 1.0, 0.1, 10.0)
        large_l1 = skellam_mechanism_rdp(2.0, 1.0, 100.0, 10.0)
        assert large_l1 > small_l1

    def test_rejects_invalid_lambda(self):
        with pytest.raises(PrivacyAccountingError):
            skellam_mechanism_rdp(2.0, 1.0, 1.0, 0.0)

    def test_smm_beats_skellam_mechanism_on_rounded_inputs(self):
        # The headline comparison: for the same aggregate noise, SMM's
        # bound on raw inputs (c = gamma^2) beats the Skellam mechanism's
        # bound on conditionally rounded inputs (inflated Delta_2) in the
        # low-bitwidth regime (gamma small relative to sqrt(d)).
        gamma, dimension, n_lam = 4.0, 65536, 4000.0
        smm_tau = smm_rdp(2.0, gamma**2, n_lam, 1.0)
        rounded_l2_sq = gamma**2 + dimension / 4.0  # ~Eq. (6) dominant terms
        rounded_l1 = min(
            math.sqrt(dimension) * math.sqrt(rounded_l2_sq), rounded_l2_sq
        )
        skellam_tau = skellam_mechanism_rdp(
            2.0, rounded_l2_sq, rounded_l1, n_lam
        )
        assert smm_tau < skellam_tau / 100.0
