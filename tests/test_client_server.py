"""Tests for the Algorithm 4 encoder and Algorithm 6 decoder."""

import warnings

import numpy as np
import pytest

from repro.config import ClipConfig, CompressionConfig
from repro.core.client import GradientEncoder, skellam_encoder
from repro.core.dgm import discrete_gaussian_encoder
from repro.core.server import GradientDecoder
from repro.errors import ConfigurationError, OverflowWarning
from repro.linalg.hadamard import RandomRotation


def _zero_noise(shape, rng):
    """A degenerate noise sampler for testing the deterministic pipeline."""
    return np.zeros(shape, dtype=np.int64)


@pytest.fixture
def pipeline():
    rng = np.random.default_rng(0)
    rotation = RandomRotation.create(24, rng)
    compression = CompressionConfig(modulus=2**16, gamma=128.0)
    clip = ClipConfig(c=compression.gamma**2, delta_inf=1000.0)
    encoder = GradientEncoder(
        rotation=rotation, compression=compression, clip=clip, noise=_zero_noise
    )
    decoder = GradientDecoder(rotation=rotation, compression=compression)
    return rng, rotation, compression, clip, encoder, decoder


class TestGradientEncoder:
    def test_messages_in_zm(self, pipeline):
        rng, _, compression, _, encoder, _ = pipeline
        gradients = rng.normal(size=(5, 24))
        gradients /= np.linalg.norm(gradients, axis=1, keepdims=True)
        messages = encoder.encode(gradients, rng)
        assert messages.min() >= 0
        assert messages.max() < compression.modulus

    def test_messages_are_padded_width(self, pipeline):
        rng, rotation, _, _, encoder, _ = pipeline
        gradients = rng.normal(size=(3, 24))
        assert encoder.encode(gradients, rng).shape == (3, rotation.padded_dim)

    def test_prepare_respects_clip(self, pipeline):
        from repro.core.clipping import mixture_sensitivity

        rng, _, _, clip, encoder, _ = pipeline
        gradients = rng.normal(size=(4, 24)) * 100
        prepared = encoder.prepare(gradients)
        for row in prepared:
            assert mixture_sensitivity(row) <= clip.c * (1 + 1e-9)

    def test_prepare_is_rotation_scale_for_small_inputs(self, pipeline):
        rng, rotation, compression, _, encoder, _ = pipeline
        gradients = rng.normal(size=24) * 0.01
        prepared = encoder.prepare(gradients)
        expected = compression.gamma * rotation.forward(gradients)
        assert np.allclose(prepared, expected)

    def test_skellam_encoder_rejects_bad_lambda(self, pipeline):
        _, rotation, compression, clip, _, _ = pipeline
        with pytest.raises(ConfigurationError):
            skellam_encoder(rotation, compression, clip, lam=0.0)


class TestRoundtripWithoutNoise:
    def test_sum_recovered_exactly_up_to_quantisation(self, pipeline):
        rng, _, compression, _, encoder, decoder = pipeline
        gradients = rng.normal(size=(10, 24))
        gradients /= np.linalg.norm(gradients, axis=1, keepdims=True)
        messages = encoder.encode(gradients, rng)
        aggregated = messages.sum(axis=0) % compression.modulus
        decoded = decoder.decode(aggregated)
        # Zero noise: the only error is Bernoulli quantisation, whose
        # per-coordinate std is <= sqrt(n)/2 / gamma after unscaling.
        truth = gradients.sum(axis=0)
        tolerance = 4.0 * np.sqrt(10) / 2 / compression.gamma
        assert np.allclose(decoded, truth, atol=tolerance)

    def test_unbiasedness(self, pipeline):
        rng, _, compression, _, encoder, decoder = pipeline
        gradients = rng.normal(size=(6, 24))
        gradients /= np.linalg.norm(gradients, axis=1, keepdims=True)
        truth = gradients.sum(axis=0)
        estimates = []
        for _ in range(300):
            messages = encoder.encode(gradients, rng)
            aggregated = messages.sum(axis=0) % compression.modulus
            estimates.append(decoder.decode(aggregated))
        bias = np.abs(np.mean(estimates, axis=0) - truth).max()
        assert bias < 0.02


class TestSkellamAndDgmEncoders:
    def test_skellam_encoder_noise_variance(self):
        rng = np.random.default_rng(1)
        rotation = RandomRotation.create(16, rng)
        compression = CompressionConfig(modulus=2**20, gamma=32.0)
        clip = ClipConfig(c=compression.gamma**2, delta_inf=500.0)
        lam = 3.0
        encoder = skellam_encoder(rotation, compression, clip, lam)
        zeros = np.zeros((1, 16))
        samples = np.stack(
            [encoder.encode(zeros, rng)[0] for _ in range(800)]
        ).astype(float)
        centred = np.where(samples > 2**19, samples - 2**20, samples)
        assert abs(centred.var() - 2 * lam) < 0.5

    def test_dgm_encoder_integer_sigma_rounding(self):
        rng = np.random.default_rng(2)
        rotation = RandomRotation.create(16, rng)
        compression = CompressionConfig(modulus=2**20, gamma=32.0)
        clip = ClipConfig(c=compression.gamma**2, delta_inf=500.0)
        encoder = discrete_gaussian_encoder(
            rotation, compression, clip, sigma=1.2, integer_sigma=True
        )
        zeros = np.zeros((1, 16))
        samples = np.stack(
            [encoder.encode(zeros, rng)[0] for _ in range(800)]
        ).astype(float)
        centred = np.where(samples > 2**19, samples - 2**20, samples)
        # Sigma 1.2 rounds up to 2 -> variance ~4, not ~1.44.
        assert abs(centred.var() - 4.0) < 0.6

    def test_dgm_encoder_exact_sigma(self):
        rng = np.random.default_rng(3)
        rotation = RandomRotation.create(16, rng)
        compression = CompressionConfig(modulus=2**20, gamma=32.0)
        clip = ClipConfig(c=compression.gamma**2, delta_inf=500.0)
        encoder = discrete_gaussian_encoder(
            rotation, compression, clip, sigma=1.2, integer_sigma=False
        )
        zeros = np.zeros((1, 16))
        samples = np.stack(
            [encoder.encode(zeros, rng)[0] for _ in range(800)]
        ).astype(float)
        centred = np.where(samples > 2**19, samples - 2**20, samples)
        assert abs(centred.var() - 1.44) < 0.4


class TestGradientDecoder:
    def test_saturation_warning(self):
        rng = np.random.default_rng(4)
        rotation = RandomRotation.create(4, rng)
        compression = CompressionConfig(modulus=16, gamma=1.0)
        decoder = GradientDecoder(rotation=rotation, compression=compression)
        saturated = np.array([8, 0, 0, 0])  # decodes to -8 = -m/2
        with pytest.warns(OverflowWarning):
            decoder.decode(saturated)

    def test_no_warning_when_within_range(self):
        rng = np.random.default_rng(5)
        rotation = RandomRotation.create(4, rng)
        compression = CompressionConfig(modulus=16, gamma=1.0)
        decoder = GradientDecoder(rotation=rotation, compression=compression)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            decoder.decode(np.array([1, 2, 3, 4]))

    def test_warning_suppressible(self):
        rng = np.random.default_rng(6)
        rotation = RandomRotation.create(4, rng)
        compression = CompressionConfig(modulus=16, gamma=1.0)
        decoder = GradientDecoder(
            rotation=rotation, compression=compression, warn_on_saturation=False
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            decoder.decode(np.array([8, 0, 0, 0]))
