"""Sans-I/O session tests: pure message pumping, no transport.

Drives :class:`~repro.secagg.statemachine.ClientSession` /
:class:`~repro.secagg.statemachine.ServerSession` with a hand-rolled
in-test pump — the smallest possible transport — and covers what the
transports themselves don't: version/PRG negotiation rejection at Hello
(the typed failure path), strict phase/sender validation, and the wire
accounting ledger.
"""

import numpy as np
import pytest

from repro.errors import AggregationError, ConfigurationError, NegotiationError
from repro.secagg.keys import TOY_GROUP
from repro.secagg.statemachine import (
    PHASE_TAGS,
    ClientSession,
    ServerSession,
)
from repro.secagg.wire import (
    PROTOCOL_V1,
    Hello,
    Reject,
    decode_message,
    encode_message,
)

MODULUS = 2**12
DIMENSION = 8


def make_sessions(n=5, threshold=3, seed=0, versions=None, prgs=None):
    rng = np.random.default_rng(seed)
    inputs = rng.integers(0, MODULUS, size=(n, DIMENSION), dtype=np.int64)
    clients = {
        u: ClientSession(
            index=u,
            vector=inputs[u - 1],
            modulus=MODULUS,
            threshold=threshold,
            rng=np.random.default_rng(seed + u),
            group=TOY_GROUP,
            version=(versions or {}).get(u, PROTOCOL_V1),
            mask_prg=(prgs or {}).get(u),
        )
        for u in range(1, n + 1)
    }
    server = ServerSession(
        MODULUS, DIMENSION, threshold, group=TOY_GROUP
    )
    return inputs, clients, server


def pump(clients, server, skip=frozenset()):
    """Run the full protocol synchronously; returns the recovered sum."""
    for u in sorted(clients):
        server.receive(b"".join(clients[u].start()), sender=u)
    deliveries = server.advance()
    for _ in range(3):
        for u in sorted(deliveries):
            if u in skip:
                continue
            out = clients[u].handle(deliveries[u])
            if out and clients[u].rejected is None:
                server.receive(b"".join(out), sender=u)
        deliveries = server.advance()
    return server.modular_sum


class TestPureProtocolPump:
    def test_sum_matches_plain_modular_sum(self):
        inputs, clients, server = make_sessions()
        total = pump(clients, server)
        np.testing.assert_array_equal(
            total, np.mod(inputs.sum(axis=0), MODULUS)
        )
        assert server.included == frozenset(clients)

    def test_sessions_emit_no_side_channel(self):
        # Sans-I/O: a session only ever returns bytes; nothing is sent
        # until the caller moves them.  Starting two clients and never
        # delivering leaves the server untouched.
        _, clients, server = make_sessions(n=3, threshold=2)
        clients[1].start()
        clients[2].start()
        assert server.received() == frozenset()

    def test_expected_tracks_the_shrinking_participant_set(self):
        _, clients, server = make_sessions(n=4, threshold=2)
        for u in (1, 2, 3):  # client 4 never speaks
            server.receive(b"".join(clients[u].start()), sender=u)
        deliveries = server.advance()
        assert server.expected == frozenset({1, 2, 3})
        assert set(deliveries) == {1, 2, 3}

    def test_phase_ready_once_everyone_delivered(self):
        _, clients, server = make_sessions(n=3, threshold=2)
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        deliveries = server.advance()
        assert not server.phase_ready()
        for u in sorted(deliveries):
            server.receive(b"".join(clients[u].handle(deliveries[u])), sender=u)
        assert server.phase_ready()


class TestNegotiationFailurePath:
    def test_unknown_version_rejected_at_hello_with_typed_error(self):
        inputs, clients, server = make_sessions(
            n=5, threshold=3, versions={2: 9}
        )
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        assert server.rejections == {
            2: "unsupported protocol version 9 (round speaks 1)"
        }
        deliveries = server.advance()
        # The rejected client gets a typed Reject, not roster bytes.
        _, reject = decode_message(deliveries[2])
        assert isinstance(reject, Reject)
        assert "unsupported protocol version 9" in reject.reason
        assert clients[2].handle(deliveries[2]) == []
        assert isinstance(clients[2].rejected, NegotiationError)
        # The round carries on without it and the sum stays exact.
        for _ in range(3):
            for u in sorted(deliveries):
                if u == 2:
                    continue
                out = clients[u].handle(deliveries[u])
                server.receive(b"".join(out), sender=u)
            deliveries = server.advance()
        np.testing.assert_array_equal(
            server.modular_sum,
            np.mod(np.delete(inputs, 1, axis=0).sum(axis=0), MODULUS),
        )
        assert server.included == frozenset({1, 3, 4, 5})

    def test_mismatched_prg_backend_rejected_at_hello(self):
        _, clients, server = make_sessions(n=4, threshold=2, prgs={3: "philox"})
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        assert 3 in server.rejections
        assert "philox" in server.rejections[3]
        deliveries = server.advance()
        clients[3].handle(deliveries[3])
        assert isinstance(clients[3].rejected, NegotiationError)

    def test_rejections_below_threshold_raise_negotiation_error(self):
        _, clients, server = make_sessions(
            n=3, threshold=3, versions={1: 7, 2: 7}
        )
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        with pytest.raises(NegotiationError, match="after rejecting"):
            server.advance()

    def test_negotiation_error_is_an_aggregation_error(self):
        # Round-level handlers that abort on AggregationError keep
        # working; callers can still distinguish the typed subclass.
        assert issubclass(NegotiationError, AggregationError)

    def test_rejected_client_holds_no_round_state(self):
        _, clients, server = make_sessions(n=3, threshold=2, versions={1: 5})
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        deliveries = server.advance()
        clients[1].handle(deliveries[1])
        with pytest.raises(AggregationError, match="rejected at Hello"):
            clients[1].handle(deliveries[1])

    def test_server_must_accept_at_least_one_version(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ServerSession(
                MODULUS,
                DIMENSION,
                2,
                group=TOY_GROUP,
                accept_versions=frozenset(),
            )


class TestStrictValidation:
    def test_spoofed_sender_rejected(self):
        _, clients, server = make_sessions(n=3, threshold=2)
        frames = b"".join(clients[2].start())
        with pytest.raises(AggregationError, match="claims sender"):
            server.receive(frames, sender=1)

    def test_duplicate_hello_rejected(self):
        _, clients, server = make_sessions(n=3, threshold=2)
        frames = b"".join(clients[1].start())
        server.receive(frames, sender=1)
        with pytest.raises(AggregationError, match="duplicate Hello"):
            server.receive(frames, sender=1)

    def test_advertise_without_hello_rejected(self):
        _, clients, server = make_sessions(n=3, threshold=2)
        hello, advertise = clients[1].start()
        with pytest.raises(AggregationError, match="without a Hello"):
            server.receive(advertise, sender=1)

    def test_out_of_phase_message_rejected(self):
        _, clients, server = make_sessions(n=3, threshold=2)
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        server.advance()
        late_hello = encode_message(Hello(sender=1), clients[1].header)
        with pytest.raises(AggregationError, match="advertise phase"):
            server.receive(late_hello, sender=1)

    def test_header_mismatch_mid_round_is_a_negotiation_error(self):
        _, clients, server = make_sessions(n=3, threshold=2)
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        deliveries = server.advance()
        # Rewrite the roster broadcast's PRG name in place (same length,
        # so the framing stays valid): the client must refuse the
        # foreign header rather than mis-expand masks later.
        foreign = deliveries[1].replace(b"sha256-ctr", b"sha999-ctr")
        with pytest.raises(NegotiationError, match="speaking"):
            clients[1].handle(foreign)

    def test_receive_requires_transport_authenticated_sender(self):
        """Omitting ``sender`` must hard-fail, never fall back to the
        frame-claimed origin.

        The old fallback (adopt the first frame's claimed sender when
        the caller passes none) let any connection impersonate any
        client by writing the victim's id into its frames — the exact
        attack sender binding exists to stop.
        """
        _, clients, server = make_sessions(n=3, threshold=2)
        frames = b"".join(clients[1].start())
        with pytest.raises(
            AggregationError, match="transport-authenticated"
        ):
            server.receive(frames)
        with pytest.raises(
            AggregationError, match="transport-authenticated"
        ):
            server.receive(frames, sender=None)
        # The failed calls must not have half-ingested anything: the
        # honest, bound delivery still works.
        server.receive(frames, sender=1)
        assert server.received() == frozenset({1})

    def test_spoofed_bulk_envelopes_rejected_without_fallback(self):
        """The bulk (sealed-envelope) path must also refuse a frame
        whose claimed sender differs from the bound one."""
        _, clients, server = make_sessions(n=3, threshold=2)
        for u in sorted(clients):
            server.receive(b"".join(clients[u].start()), sender=u)
        deliveries = server.advance()
        mailbox = b"".join(clients[1].handle(deliveries[1]))
        # Client 1's share-keys mailbox arrives over client 2's bound
        # connection: impersonation, regardless of what the frames say.
        with pytest.raises(AggregationError, match="claims sender"):
            server.receive(mailbox, sender=2)
        # And with no sender at all it is refused outright.
        with pytest.raises(
            AggregationError, match="transport-authenticated"
        ):
            server.receive(mailbox)

    def test_sum_unavailable_before_recovery(self):
        _, _, server = make_sessions(n=3, threshold=2)
        with pytest.raises(AggregationError, match="not been recovered"):
            server.modular_sum


class TestWireAccounting:
    def test_every_phase_and_client_is_tallied(self):
        _, clients, server = make_sessions(n=4, threshold=3)
        pump(clients, server)
        stats = server.stats
        phases = stats.phase_totals()
        assert set(phases) == set(PHASE_TAGS.values())
        # Uploads: 2 hello+advertise frames, n share envelopes, 1 masked
        # input and 1 unmask response per client.
        n = len(clients)
        assert phases["advertise"]["up_messages"] == 2 * n
        assert phases["share-keys"]["up_messages"] == n * n
        assert phases["share-keys"]["down_messages"] == n * n
        assert phases["masked-input"]["up_messages"] == n
        assert phases["unmask"]["up_messages"] == n
        assert phases["unmask"]["down_messages"] == 0
        per_client = stats.client_totals()
        assert set(per_client) == set(clients)
        assert all(entry["up_bytes"] > 0 for entry in per_client.values())

    def test_bytes_match_what_crossed_the_pump(self):
        _, clients, server = make_sessions(n=3, threshold=2)
        sent = 0
        for u in sorted(clients):
            datagram = b"".join(clients[u].start())
            sent += len(datagram)
            server.receive(datagram, sender=u)
        uploads = server.stats.phase_totals()["advertise"]
        assert uploads["up_bytes"] == sent
