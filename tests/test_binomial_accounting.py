"""Tests for the binomial mechanism accounting (repro.accounting.binomial)."""

import math

import pytest

from repro.accounting.binomial import (
    binomial_constants,
    binomial_mechanism_epsilon,
    binomial_variance_condition,
)
from repro.errors import PrivacyAccountingError


class TestBinomialConstants:
    def test_symmetric_at_half(self):
        b_p, c_p, d_p = binomial_constants(0.5)
        assert b_p == pytest.approx(1.0 / 3.0)
        assert c_p == pytest.approx(math.sqrt(2.0) * (0.75 + 1.0))
        assert d_p == pytest.approx(2.0 / 3.0)

    def test_rejects_degenerate_p(self):
        with pytest.raises(PrivacyAccountingError):
            binomial_constants(0.0)
        with pytest.raises(PrivacyAccountingError):
            binomial_constants(1.0)


class TestVarianceCondition:
    def test_large_n_passes(self):
        assert binomial_variance_condition(10**6, 0.5, 1000, 1e-5, 1.0)

    def test_small_n_fails(self):
        assert not binomial_variance_condition(100, 0.5, 1000, 1e-5, 1.0)

    def test_threshold_scales_with_dimension(self):
        # Larger d needs more variance (log d term).
        threshold_small = 23 * math.log(10 * 10 / 1e-5)
        threshold_large = 23 * math.log(10 * 10**6 / 1e-5)
        n_between = int(2 * (threshold_small + threshold_large))
        assert binomial_variance_condition(n_between, 0.5, 10, 1e-5, 1.0)


class TestBinomialEpsilon:
    def test_decreases_with_trials(self):
        epsilons = [
            binomial_mechanism_epsilon(n, 1000, 1e-5, 10.0, 5.0, 1.0)
            for n in [10**5, 10**6, 10**7]
        ]
        assert epsilons[0] > epsilons[1] > epsilons[2]

    def test_leading_term_dominates_large_n(self):
        # As N grows the Gaussian-like term ~ Delta_2 sqrt(2 log(1.25/d))
        # over sigma dominates; check within 20%.
        n, delta = 10**9, 1e-5
        eps = binomial_mechanism_epsilon(n, 1000, delta, 10.0, 5.0, 1.0)
        sigma = math.sqrt(n * 0.25)
        leading = 5.0 * math.sqrt(2 * math.log(1.25 / delta)) / sigma
        assert eps == pytest.approx(leading, rel=0.2)

    def test_grows_with_sensitivity(self):
        small = binomial_mechanism_epsilon(10**6, 1000, 1e-5, 2.0, 1.0, 1.0)
        large = binomial_mechanism_epsilon(10**6, 1000, 1e-5, 20.0, 10.0, 1.0)
        assert large > small

    def test_variance_condition_enforced(self):
        with pytest.raises(PrivacyAccountingError):
            binomial_mechanism_epsilon(100, 1000, 1e-5, 10.0, 5.0, 1.0)

    def test_rejects_invalid_delta(self):
        with pytest.raises(PrivacyAccountingError):
            binomial_mechanism_epsilon(10**6, 1000, 0.0, 1.0, 1.0, 1.0)

    def test_rejects_zero_trials(self):
        with pytest.raises(PrivacyAccountingError):
            binomial_mechanism_epsilon(0, 1000, 1e-5, 1.0, 1.0, 1.0)
