"""Cross-transport equivalence: one protocol core, identical sums.

The sans-I/O refactor's acceptance gate: the synchronous in-memory
transport (``run_bonawitz``), the simulated-clock mailbox transport
(``AsyncSecAggRound``) and the sharded process backends (shared-memory
and pickle vector transports) all drive the same
:mod:`repro.secagg.statemachine` sessions — so on a fixed seed they must
produce **bit-identical** aggregate sums, pinned here against digests
captured from the pre-refactor implementation and against the
survivors' direct modular sum (the sharded-vs-flat oracle).
"""

import hashlib

import numpy as np
import pytest

from repro.secagg.bonawitz import (
    ROUND_MASKED_INPUT,
    ROUND_UNMASK,
    run_bonawitz,
)
from repro.simulation import (
    AsyncSecAggRound,
    ClientPlan,
    ProcessBackend,
    ShardedSecAggRound,
    SimulatedClock,
    get_execution_backend,
    shared_memory_available,
)

MODULUS = 2**16
DIMENSION = 24
NUM_CLIENTS = 12

#: SHA-256 of the modular sum produced by the *pre-refactor* drivers on
#: this exact scenario (seed 20260729 inputs, seed 42 protocol rng,
#: clients 3 and 9 dropping at masked-input and unmask respectively).
#: Both transports produced this digest before the sans-I/O extraction;
#: both must keep producing it.
PRE_REFACTOR_DROPOUT_DIGEST = (
    "669f94e57b8d7f3addebafe0f8a00e5e04c54d45a7399c928f074a40c6ac4949"
)

#: Pre-refactor digest of the 3-shard composed sum, all clients online.
PRE_REFACTOR_SHARDED_DIGEST = (
    "928b2be2af72b1aaeb4093235c07e6e40be54636ab298e25aec65ec5e4aae08a"
)


@pytest.fixture
def inputs():
    rng = np.random.default_rng(20260729)
    return rng.integers(
        0, MODULUS, size=(NUM_CLIENTS, DIMENSION), dtype=np.int64
    )


def digest(array: np.ndarray) -> str:
    return hashlib.sha256(array.tobytes()).hexdigest()


def run_sync(inputs):
    return run_bonawitz(
        inputs,
        MODULUS,
        threshold=7,
        rng=np.random.default_rng(42),
        dropouts={3: ROUND_MASKED_INPUT, 9: ROUND_UNMASK},
    )


def run_mailbox(inputs):
    vectors = {u + 1: inputs[u] for u in range(NUM_CLIENTS)}
    clock = SimulatedClock()
    secagg_round = AsyncSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        threshold=7,
        clock=clock,
        rng=np.random.default_rng(42),
        plans={
            3: ClientPlan(drop_phase=ROUND_MASKED_INPUT),
            9: ClientPlan(drop_phase=ROUND_UNMASK),
        },
    )
    return clock.run(secagg_round.run())


def run_sharded(inputs, backend):
    vectors = {u + 1: inputs[u] for u in range(NUM_CLIENTS)}
    clock = SimulatedClock()
    sharded = ShardedSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        clock=clock,
        rng=np.random.default_rng(42),
        shards=3,
        backend=backend,
    )
    return sharded.execute()


class TestPreRefactorGoldens:
    def test_sync_transport_matches_pre_refactor_bits(self, inputs):
        outcome = run_sync(inputs)
        assert outcome.included == frozenset(range(1, 13)) - {3}
        assert digest(outcome.modular_sum) == PRE_REFACTOR_DROPOUT_DIGEST

    def test_mailbox_transport_matches_pre_refactor_bits(self, inputs):
        outcome = run_mailbox(inputs)
        assert outcome.included == frozenset(range(1, 13)) - {3}
        assert digest(outcome.modular_sum) == PRE_REFACTOR_DROPOUT_DIGEST

    def test_sharded_inline_matches_pre_refactor_bits(self, inputs):
        outcome = run_sharded(inputs, "inline")
        assert digest(outcome.modular_sum) == PRE_REFACTOR_SHARDED_DIGEST


class TestCrossTransportIdentity:
    def test_sync_and_mailbox_agree_bit_for_bit(self, inputs):
        sync_outcome = run_sync(inputs)
        mailbox_outcome = run_mailbox(inputs)
        assert sync_outcome.included == mailbox_outcome.included
        np.testing.assert_array_equal(
            sync_outcome.modular_sum, mailbox_outcome.modular_sum
        )

    def test_every_transport_equals_the_survivors_direct_sum(self, inputs):
        # The sharded-vs-flat oracle: whatever the transport, the output
        # is exactly the included clients' plain modular sum.
        for outcome in (run_sync(inputs), run_mailbox(inputs)):
            reference = np.mod(
                inputs[[u - 1 for u in sorted(outcome.included)]].sum(axis=0),
                MODULUS,
            )
            np.testing.assert_array_equal(outcome.modular_sum, reference)

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="platform lacks POSIX shared memory",
    )
    def test_sharded_backends_agree_bit_for_bit(self, inputs):
        inline = run_sharded(inputs, "inline")
        shm_backend = ProcessBackend(max_workers=2)
        try:
            shm = run_sharded(inputs, shm_backend)
        finally:
            shm_backend.close()
        pickle_backend = get_execution_backend("process-pickle")
        try:
            pickled = run_sharded(inputs, pickle_backend)
        finally:
            pickle_backend.close()
        assert shm_backend.name == "process"
        assert pickle_backend.name == "process-pickle"
        for outcome in (shm, pickled):
            assert outcome.included == inline.included
            assert outcome.completed_at == inline.completed_at
            np.testing.assert_array_equal(
                outcome.modular_sum, inline.modular_sum
            )
        assert digest(inline.modular_sum) == PRE_REFACTOR_SHARDED_DIGEST


class TestWireAccountingAcrossTransports:
    def test_both_flat_transports_move_the_same_message_counts(self, inputs):
        sync_stats = run_sync(inputs).wire
        mailbox_stats = run_mailbox(inputs).wire
        sync_phases = sync_stats.phase_totals()
        mailbox_phases = mailbox_stats.phase_totals()
        assert set(sync_phases) == set(mailbox_phases)
        for phase, totals in sync_phases.items():
            assert totals["up_messages"] == (
                mailbox_phases[phase]["up_messages"]
            )
            assert totals["down_messages"] == (
                mailbox_phases[phase]["down_messages"]
            )

    def test_sharded_outcome_merges_shard_ledgers(self, inputs):
        outcome = run_sharded(inputs, "inline")
        assert outcome.wire is not None
        assert set(outcome.wire.client_totals()) == set(range(1, 13))
        assert outcome.wire.total_bytes > 0
