"""Tests for the exact randomness source (repro.sampling.rng)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sampling.rng import RandIntSource


class TestRandInt:
    def test_bounds_inclusive(self):
        source = RandIntSource(seed=0)
        draws = [source.rand_int(6) for _ in range(2000)]
        assert min(draws) == 1
        assert max(draws) == 6

    def test_rand_int_one_is_constant(self):
        source = RandIntSource(seed=0)
        assert all(source.rand_int(1) == 1 for _ in range(20))

    def test_uniformity_chi_square(self):
        source = RandIntSource(seed=42)
        n, k = 60_000, 6
        counts = np.bincount(
            [source.rand_int(k) for _ in range(n)], minlength=k + 1
        )[1:]
        expected = n / k
        chi_square = float(((counts - expected) ** 2 / expected).sum())
        # 5 degrees of freedom; 0.999 quantile is ~20.5.
        assert chi_square < 25.0

    def test_invalid_bound_rejected(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            source.rand_int(0)

    def test_seed_reproducibility(self):
        first = RandIntSource(seed=7)
        second = RandIntSource(seed=7)
        assert [first.rand_int(100) for _ in range(50)] == [
            second.rand_int(100) for _ in range(50)
        ]


class TestBernoulli:
    def test_degenerate_zero(self):
        source = RandIntSource(seed=0)
        assert all(source.bernoulli(0, 5) == 0 for _ in range(20))

    def test_degenerate_one(self):
        source = RandIntSource(seed=0)
        assert all(source.bernoulli(5, 5) == 1 for _ in range(20))

    def test_mean_matches_probability(self):
        source = RandIntSource(seed=3)
        draws = [source.bernoulli(3, 10) for _ in range(40_000)]
        assert abs(np.mean(draws) - 0.3) < 0.01

    def test_output_is_binary(self):
        source = RandIntSource(seed=1)
        assert set(source.bernoulli(1, 2) for _ in range(100)) <= {0, 1}

    def test_negative_numerator_rejected(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            source.bernoulli(-1, 5)

    def test_numerator_above_denominator_rejected(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            source.bernoulli(6, 5)

    def test_zero_denominator_rejected(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            source.bernoulli(1, 0)
