"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    AggregationError,
    CalibrationError,
    ConfigurationError,
    OverflowWarning,
    PrivacyAccountingError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            AggregationError,
            CalibrationError,
            ConfigurationError,
            PrivacyAccountingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers using standard idioms (except ValueError) still work.
        assert issubclass(ConfigurationError, ValueError)

    def test_overflow_warning_is_user_warning(self):
        assert issubclass(OverflowWarning, UserWarning)

    def test_single_except_catches_library_errors(self):
        for exception_class in (
            AggregationError,
            CalibrationError,
            ConfigurationError,
            PrivacyAccountingError,
        ):
            with pytest.raises(ReproError):
                raise exception_class("boom")
