"""Tests for the classification metrics module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fl.metrics import (
    classification_report,
    confusion_matrix,
    evaluate_model,
)


class TestConfusionMatrix:
    def test_perfect_predictions_are_diagonal(self):
        labels = np.array([0, 1, 2, 1, 0])
        matrix = confusion_matrix(labels, labels, 3)
        np.testing.assert_array_equal(matrix, np.diag([2, 2, 1]))

    def test_off_diagonal_counts(self):
        labels = np.array([0, 0, 1])
        predictions = np.array([1, 0, 1])
        matrix = confusion_matrix(labels, predictions, 2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_total_equals_sample_count(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, size=100)
        predictions = rng.integers(0, 4, size=100)
        assert confusion_matrix(labels, predictions, 4).sum() == 100

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="equal-length"):
            confusion_matrix(np.array([0, 1]), np.array([0]), 2)

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="labels"):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 2)

    def test_out_of_range_predictions_rejected(self):
        with pytest.raises(ConfigurationError, match="predictions"):
            confusion_matrix(np.array([0, 1]), np.array([0, -1]), 2)

    def test_empty_inputs_allowed(self):
        matrix = confusion_matrix(np.array([], dtype=int), np.array([], dtype=int), 3)
        assert matrix.sum() == 0

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        num_classes=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30)
    def test_row_sums_are_class_counts(self, seed, num_classes):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, num_classes, size=50)
        predictions = rng.integers(0, num_classes, size=50)
        matrix = confusion_matrix(labels, predictions, num_classes)
        np.testing.assert_array_equal(
            matrix.sum(axis=1), np.bincount(labels, minlength=num_classes)
        )


class TestClassificationReport:
    def test_perfect_classifier(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        report = classification_report(labels, labels, 3)
        assert report.accuracy == 1.0
        np.testing.assert_allclose(report.precision, 1.0)
        np.testing.assert_allclose(report.recall, 1.0)
        assert report.macro_f1 == 1.0
        assert report.worst_class_recall == 1.0

    def test_constant_classifier_collapses_macro_f1(self):
        """Predicting one class keeps some accuracy but destroys macro-F1
        — the signature of DP noise collapsing classes."""
        labels = np.array([0] * 50 + [1] * 50)
        predictions = np.zeros(100, dtype=int)
        report = classification_report(labels, predictions, 2)
        assert report.accuracy == 0.5
        assert report.macro_f1 == pytest.approx(1 / 3)
        assert report.worst_class_recall == 0.0

    def test_known_precision_recall(self):
        labels = np.array([0, 0, 0, 1, 1])
        predictions = np.array([0, 0, 1, 1, 0])
        report = classification_report(labels, predictions, 2)
        assert report.precision[0] == pytest.approx(2 / 3)
        assert report.recall[0] == pytest.approx(2 / 3)
        assert report.precision[1] == pytest.approx(1 / 2)
        assert report.recall[1] == pytest.approx(1 / 2)

    def test_absent_class_has_zero_metrics(self):
        labels = np.array([0, 0])
        predictions = np.array([0, 0])
        report = classification_report(labels, predictions, 3)
        assert report.recall[2] == 0.0
        assert report.precision[2] == 0.0
        assert report.f1[2] == 0.0

    def test_f1_is_harmonic_mean(self):
        labels = np.array([0, 0, 0, 1])
        predictions = np.array([0, 1, 1, 1])
        report = classification_report(labels, predictions, 2)
        p, r = report.precision[0], report.recall[0]
        assert report.f1[0] == pytest.approx(2 * p * r / (p + r))

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25)
    def test_accuracy_matches_direct_computation(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=60)
        predictions = rng.integers(0, 3, size=60)
        report = classification_report(labels, predictions, 3)
        assert report.accuracy == pytest.approx(
            float(np.mean(labels == predictions))
        )


class TestEvaluateModel:
    def test_with_mlp_classifier(self):
        from repro.fl.data import mnist_surrogate
        from repro.fl.model import MLPClassifier

        rng = np.random.default_rng(3)
        train, test = mnist_surrogate(rng, 300, 100)
        model = MLPClassifier(
            [train.num_features, 16, train.num_classes],
            np.random.default_rng(4),
        )
        report = evaluate_model(model, test.features, test.labels)
        assert report.matrix.sum() == test.num_records
        assert 0.0 <= report.accuracy <= 1.0
        assert report.accuracy == pytest.approx(
            model.accuracy(test.features, test.labels)
        )
