"""Tests for the client population and availability models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.secagg.bonawitz import ROUND_ADVERTISE, ROUND_UNMASK
from repro.simulation import (
    AlwaysAvailable,
    BernoulliDropout,
    ClientPlan,
    Population,
    RoundChurn,
    StragglerLatency,
)
from repro.simulation.population import (
    NUM_PHASES,
    PURPOSE_AVAILABILITY,
    PURPOSE_ENCODING,
)


class TestClientPlan:
    def test_default_always_responds(self):
        plan = ClientPlan()
        for phase in range(NUM_PHASES):
            assert plan.responds_at(phase)

    def test_drop_phase_silences_later_phases(self):
        plan = ClientPlan(drop_phase=2)
        assert plan.responds_at(0) and plan.responds_at(1)
        assert not plan.responds_at(2) and not plan.responds_at(3)

    @pytest.mark.parametrize("bad", [-1, 4, 99])
    def test_invalid_drop_phase_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ClientPlan(drop_phase=bad)

    def test_wrong_latency_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientPlan(latencies=(0.1, 0.2))

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientPlan(latencies=(0.1, -0.2, 0.1, 0.1))


class TestAvailabilityModels:
    def test_always_available(self):
        model = AlwaysAvailable(latency=0.25)
        plan = model.plan(1, 0, np.random.default_rng(0))
        assert plan.drop_phase is None
        assert plan.latencies == (0.25,) * NUM_PHASES

    def test_bernoulli_dropout_rate_is_respected(self):
        model = BernoulliDropout(0.3)
        dropped = sum(
            model.plan(client, 0, np.random.default_rng(client)).drop_phase
            is not None
            for client in range(1, 2001)
        )
        assert 0.25 < dropped / 2000 < 0.35

    def test_bernoulli_dropout_phase_spans_protocol(self):
        model = BernoulliDropout(0.9)
        phases = {
            model.plan(client, 0, np.random.default_rng(client)).drop_phase
            for client in range(1, 200)
        }
        phases.discard(None)
        assert phases == set(range(ROUND_ADVERTISE, ROUND_UNMASK + 1))

    def test_straggler_latencies_positive_and_spread(self):
        model = StragglerLatency(median=0.5, sigma=1.0)
        latencies = [
            latency
            for client in range(1, 101)
            for latency in model.plan(
                client, 0, np.random.default_rng(client)
            ).latencies
        ]
        assert min(latencies) > 0
        assert max(latencies) / min(latencies) > 10  # Heavy tail.

    def test_straggler_sigma_zero_is_constant(self):
        model = StragglerLatency(median=0.5, sigma=0.0)
        plan = model.plan(1, 0, np.random.default_rng(0))
        assert plan.latencies == (0.5,) * NUM_PHASES

    def test_round_churn_is_whole_round(self):
        model = RoundChurn(0.99)
        plan = model.plan(1, 0, np.random.default_rng(1))
        assert plan.drop_phase == ROUND_ADVERTISE

    def test_models_compose_through_base(self):
        model = BernoulliDropout(
            0.99, base=StragglerLatency(median=2.0, sigma=0.0)
        )
        plan = model.plan(1, 0, np.random.default_rng(3))
        assert plan.latencies == (2.0,) * NUM_PHASES
        assert plan.drop_phase is not None

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: BernoulliDropout(1.0),
            lambda: BernoulliDropout(-0.1),
            lambda: StragglerLatency(median=0.0),
            lambda: StragglerLatency(median=1.0, sigma=-1.0),
            lambda: RoundChurn(1.0),
            lambda: AlwaysAvailable(latency=-1.0),
        ],
    )
    def test_invalid_parameters_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()


class TestPopulation:
    def test_indices_are_one_based(self):
        population = Population(5)
        assert population.client_indices == (1, 2, 3, 4, 5)

    def test_cohort_sampling_is_deterministic(self):
        first = Population(100, seed=9).sample_cohort(3, 20)
        second = Population(100, seed=9).sample_cohort(3, 20)
        assert first == second

    def test_cohorts_differ_across_rounds(self):
        population = Population(100, seed=9)
        assert population.sample_cohort(0, 20) != population.sample_cohort(1, 20)

    def test_cohort_mean_matches_expectation(self):
        population = Population(200, seed=1)
        sizes = [
            len(population.sample_cohort(r, 40)) for r in range(100)
        ]
        assert 35 < np.mean(sizes) < 45

    def test_full_rate_samples_everyone(self):
        population = Population(10, seed=0)
        assert population.sample_cohort(0, 10) == population.client_indices

    def test_client_streams_are_purpose_separated(self):
        population = Population(10, seed=4)
        a = population.client_rng(1, 3, PURPOSE_AVAILABILITY).integers(0, 2**31)
        b = population.client_rng(1, 3, PURPOSE_ENCODING).integers(0, 2**31)
        assert a != b

    def test_client_streams_are_reproducible(self):
        a = Population(10, seed=4).client_rng(2, 7, PURPOSE_ENCODING)
        b = Population(10, seed=4).client_rng(2, 7, PURPOSE_ENCODING)
        assert a.integers(0, 2**31) == b.integers(0, 2**31)

    def test_plans_cover_exactly_the_cohort(self):
        population = Population(
            20, availability=BernoulliDropout(0.5), seed=2
        )
        cohort = (1, 5, 9)
        plans = population.plans(0, cohort)
        assert set(plans) == set(cohort)

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Population(0)

    def test_expected_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Population(10).sample_cohort(0, 0)
