"""Tests for stochastic / conditional rounding (repro.mechanisms.rounding)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CalibrationError, ConfigurationError
from repro.mechanisms.rounding import (
    DEFAULT_BETA,
    conditional_round,
    conditional_rounding_bound,
    stochastic_round,
)


class TestStochasticRound:
    def test_unbiased(self):
        rng = np.random.default_rng(0)
        values = np.array([0.3, -1.6, 2.5])
        rounds = np.stack([stochastic_round(values, rng) for _ in range(30_000)])
        assert np.allclose(rounds.mean(axis=0), values, atol=0.02)

    def test_norm_inflation_worst_case(self):
        # The Section 5 example: tiny coordinates can round up to 1,
        # inflating the L2 norm by ~sqrt(d * p).
        rng = np.random.default_rng(1)
        d = 10_000
        values = np.full(d, 0.01)
        rounded = stochastic_round(values, rng)
        original_norm = np.linalg.norm(values)  # = 1.0
        rounded_norm = np.linalg.norm(rounded.astype(float))
        assert rounded_norm > 5 * original_norm


class TestConditionalRoundingBound:
    def test_default_beta_matches_paper(self):
        assert DEFAULT_BETA == pytest.approx(math.exp(-0.5))

    def test_eq6_formula(self):
        scaled_l2, d, beta = 64.0, 65536, math.exp(-0.5)
        expected = math.sqrt(
            scaled_l2**2
            + d / 4
            + math.sqrt(2 * math.log(1 / beta)) * (scaled_l2 + math.sqrt(d) / 2)
        )
        assert conditional_rounding_bound(scaled_l2, d, beta) == pytest.approx(
            expected
        )

    def test_grows_with_dimension(self):
        bounds = [
            conditional_rounding_bound(10.0, d) for d in [64, 1024, 65536]
        ]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_exceeds_scaled_norm(self):
        assert conditional_rounding_bound(32.0, 4096) > 32.0

    def test_rejects_bad_beta(self):
        with pytest.raises(ConfigurationError):
            conditional_rounding_bound(1.0, 10, beta=0.0)
        with pytest.raises(ConfigurationError):
            conditional_rounding_bound(1.0, 10, beta=1.0)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ConfigurationError):
            conditional_rounding_bound(1.0, 0)


class TestConditionalRound:
    def test_norm_bound_enforced(self):
        rng = np.random.default_rng(2)
        d = 1024
        values = rng.normal(size=(8, d))
        values *= 10.0 / np.linalg.norm(values, axis=1, keepdims=True)
        bound = conditional_rounding_bound(10.0, d)
        rounded = conditional_round(values, bound, rng)
        norms = np.linalg.norm(rounded.astype(float), axis=1)
        assert np.all(norms <= bound)

    def test_output_integer(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(2, 16))
        rounded = conditional_round(values, 100.0, rng)
        assert rounded.dtype == np.int64

    def test_single_vector(self):
        rng = np.random.default_rng(4)
        vector = rng.normal(size=16)
        rounded = conditional_round(vector, 100.0, rng)
        assert rounded.shape == (16,)

    def test_nearly_unbiased_when_bound_loose(self):
        # With a bound that never rejects, conditional rounding reduces
        # to stochastic rounding and is exactly unbiased.
        rng = np.random.default_rng(5)
        values = np.array([0.25, -0.5, 1.75])
        rounds = np.stack(
            [conditional_round(values, 1e9, rng) for _ in range(30_000)]
        )
        assert np.allclose(rounds.mean(axis=0), values, atol=0.02)

    def test_bias_when_bound_tight(self):
        # A tight bound rejects large roundings: the conditional mean
        # shifts below the input (the bias the paper criticises).
        rng = np.random.default_rng(6)
        d = 64
        values = np.full(d, 0.5)
        bound = np.linalg.norm(values) + 1.0  # just above the input norm
        rounds = np.stack(
            [conditional_round(values, bound, rng) for _ in range(2000)]
        ).astype(float)
        assert rounds.sum(axis=1).mean() < 0.5 * d - 1.0

    def test_impossible_bound_raises(self):
        rng = np.random.default_rng(7)
        values = np.full(16, 0.5)  # every rounding has norm >= ... > 0.1
        with pytest.raises(CalibrationError):
            conditional_round(values, 0.1, rng, max_attempts=20)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=1,
            max_size=32,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_rounds_to_neighbouring_integers(self, values, seed):
        rng = np.random.default_rng(seed)
        array = np.array(values)
        bound = np.linalg.norm(np.abs(array) + 1.0) + 1.0  # always feasible
        rounded = conditional_round(array, bound, rng)
        assert np.all(rounded >= np.floor(array))
        assert np.all(rounded <= np.floor(array) + 1)
