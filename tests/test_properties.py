"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold across the whole parameter space, not just the
hand-picked values of the per-module tests: accounting monotonicity,
mechanism-pipeline algebra, and clipping/encoding safety.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.divergences import gaussian_rdp, smm_rdp
from repro.accounting.rdp import rdp_to_dp, subsampled_rdp
from repro.config import ClipConfig
from repro.core.clipping import clip_gradient, mixture_sensitivity
from repro.core.skellam_mixture import smm_perturb
from repro.linalg.modular import decode_centered, encode_mod
from repro.sampling.fast import bernoulli_round

orders = st.integers(min_value=2, max_value=64)
small_floats = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


class TestAccountingProperties:
    @settings(max_examples=60, deadline=None)
    @given(orders, small_floats, st.floats(min_value=1e-9, max_value=1e-2))
    def test_conversion_monotone_in_tau(self, alpha, tau, delta):
        assert rdp_to_dp(alpha, tau, delta) <= rdp_to_dp(alpha, tau * 2, delta)

    @settings(max_examples=60, deadline=None)
    @given(orders, small_floats)
    def test_conversion_monotone_in_delta(self, alpha, tau):
        # A larger delta can only shrink epsilon.
        assert rdp_to_dp(alpha, tau, 1e-6) >= rdp_to_dp(alpha, tau, 1e-4)

    @settings(max_examples=40, deadline=None)
    @given(
        orders,
        st.floats(min_value=0.001, max_value=0.999),
        st.floats(min_value=0.5, max_value=20.0),
    )
    def test_subsampling_never_hurts(self, alpha, q, sigma):
        curve = lambda a: gaussian_rdp(a, 1.0, sigma)
        assert subsampled_rdp(alpha, q, curve) <= curve(alpha) + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=10.0, max_value=1e5),
    )
    def test_smm_rdp_monotone_in_order(self, c, total_lam):
        # tau(alpha) grows with the order at fixed noise.
        taus = []
        for alpha in (2, 4, 8):
            try:
                taus.append(smm_rdp(alpha, c, total_lam, 1.0))
            except Exception:
                return  # infeasible corner; nothing to check
        assert taus[0] <= taus[1] <= taus[2]


class TestMechanismAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_smm_perturb_preserves_shape_and_dtype(self, n, d, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(n, d)) * 3
        out = smm_perturb(values, 1.0, rng)
        assert out.shape == (n, d)
        assert out.dtype == np.int64

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=1, max_value=20),
    )
    def test_encode_decode_congruence(self, values, log_m):
        modulus = 2**log_m
        array = np.array(values).astype(np.int64)
        decoded = decode_centered(encode_mod(array, modulus), modulus)
        assert np.all((decoded - array) % modulus == 0)
        half = modulus // 2
        assert np.all(decoded >= -half)
        assert np.all(decoded < half)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-30, max_value=30, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_bernoulli_round_then_clip_sensitivity(self, values, seed):
        # Rounding a clipped vector never exceeds ceil bounds: every
        # coordinate of round(clip(x)) is within Delta_inf in magnitude.
        rng = np.random.default_rng(seed)
        clip = ClipConfig(c=50.0, delta_inf=4.0)
        clipped = clip_gradient(np.array(values), clip)
        rounded = bernoulli_round(clipped, rng)
        assert np.all(np.abs(rounded) <= 4)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_clip_scaling_equivariance(self, values, factor):
        # Scaling the thresholds with phi's homogeneity: clipping with
        # (c, inf) then measuring sensitivity never exceeds min(c, phi(x)).
        array = np.array(values)
        clip = ClipConfig(c=factor, delta_inf=1e9)
        clipped = clip_gradient(array, clip)
        assert mixture_sensitivity(clipped) <= min(
            factor, mixture_sensitivity(array)
        ) * (1 + 1e-9) + 1e-12


class TestGaussianCalibrationProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.2, max_value=8.0))
    def test_epsilon_decreasing_in_sigma(self, epsilon):
        from repro.config import PrivacyBudget
        from repro.core.calibration import AccountingSpec, calibrate_noise

        spec = AccountingSpec(budget=PrivacyBudget(epsilon=epsilon))
        result = calibrate_noise(
            lambda sigma: (lambda a: gaussian_rdp(a, 1.0, sigma)), spec
        )
        assert result.epsilon <= epsilon
        # Near-tightness of the bisection.
        assert result.epsilon >= epsilon * 0.98
