"""X25519 key agreement: unit behaviour, negotiation, and digests.

The native Curve25519 backend must be a drop-in peer of the toy
``DhGroup``: same ``agree``/``agree_batch``/``warm_agreement_cache``
surface, same session drivers, and — because pairwise masks cancel —
the same aggregate digest for the same inputs on every transport.  A
client built without the optional ``cryptography`` package must degrade
to the toy group *before* proposing a suite at Hello.
"""

import asyncio
import hashlib

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.secagg import keys as keys_module
from repro.secagg.bonawitz import run_bonawitz
from repro.secagg.keys import (
    TOY_GROUP,
    X25519_GROUP,
    DhGroup,
    X25519Group,
    agree,
    agree_batch,
    generate_keypair,
    kex_name,
    key_bits,
    resolve_group,
    warm_agreement_cache,
    x25519_available,
)
from repro.secagg.statemachine import ClientSession, ServerSession
from repro.secagg.wire import split_suite
from repro.simulation.clock import SimulatedClock
from repro.simulation.rounds import AsyncSecAggRound

requires_x25519 = pytest.mark.skipif(
    not x25519_available(), reason="cryptography not installed"
)

MODULUS = 2**31 - 1


def _digest(vector):
    return hashlib.sha256(np.ascontiguousarray(vector).tobytes()).hexdigest()


class TestGroupSurface:
    def test_metadata(self):
        assert kex_name(X25519_GROUP) == "x25519"
        assert kex_name(TOY_GROUP) == "mod-dh"
        assert key_bits(X25519_GROUP) == 256
        assert key_bits(TOY_GROUP) == TOY_GROUP.prime.bit_length()

    def test_split_suite(self):
        assert split_suite("sha256-ctr") == ("sha256-ctr", "mod-dh")
        assert split_suite("philox+x25519") == ("philox", "x25519")

    def test_bad_group_name_rejected(self):
        with pytest.raises(ConfigurationError):
            X25519Group(name="p256")

    @requires_x25519
    def test_resolve_is_identity_when_available(self):
        assert resolve_group(X25519_GROUP) is X25519_GROUP
        assert resolve_group(TOY_GROUP) is TOY_GROUP

    def test_resolve_falls_back_without_cryptography(self, monkeypatch):
        monkeypatch.setattr(keys_module, "_x25519_module", False)
        assert resolve_group(X25519_GROUP) is TOY_GROUP
        assert resolve_group(TOY_GROUP) is TOY_GROUP


@requires_x25519
class TestAgreement:
    def test_agree_is_symmetric(self):
        rng = np.random.default_rng(5)
        alice = generate_keypair(rng, X25519_GROUP)
        bob = generate_keypair(rng, X25519_GROUP)
        shared_ab = agree(alice.private, bob.public, X25519_GROUP)
        shared_ba = agree(bob.private, alice.public, X25519_GROUP)
        assert shared_ab == shared_ba
        assert len(shared_ab) == 32
        assert shared_ab != agree(
            alice.private, generate_keypair(rng, X25519_GROUP).public,
            X25519_GROUP,
        )

    def test_matches_cryptography_directly(self):
        from cryptography.hazmat.primitives.asymmetric.x25519 import (
            X25519PrivateKey,
        )

        rng = np.random.default_rng(11)
        ours = generate_keypair(rng, X25519_GROUP)
        theirs = X25519PrivateKey.generate()
        their_public = int.from_bytes(
            theirs.public_key().public_bytes_raw(), "little"
        )
        expected = hashlib.sha256(
            theirs.exchange(
                keys_module._x25519_private(ours.private).public_key()
            )
        ).digest()
        assert agree(ours.private, their_public, X25519_GROUP) == expected

    def test_degenerate_peer_rejected(self):
        rng = np.random.default_rng(3)
        pair = generate_keypair(rng, X25519_GROUP)
        for bad in (0, 1 << 256):
            with pytest.raises(ConfigurationError, match="x25519"):
                agree(pair.private, bad, X25519_GROUP)

    def test_agree_batch_matches_scalar(self):
        rng = np.random.default_rng(9)
        me = generate_keypair(rng, X25519_GROUP)
        peers = [generate_keypair(rng, X25519_GROUP) for _ in range(6)]
        batched = agree_batch(
            me.private, [p.public for p in peers], X25519_GROUP,
            own_public=me.public,
        )
        assert batched == [
            agree(me.private, p.public, X25519_GROUP) for p in peers
        ]

    def test_warm_cache_feeds_agree(self):
        rng = np.random.default_rng(13)
        pairs = {
            u: generate_keypair(rng, X25519_GROUP) for u in range(1, 6)
        }
        warmed = warm_agreement_cache(
            {u: p.private for u, p in pairs.items()},
            {u: p.public for u, p in pairs.items()},
            X25519_GROUP,
        )
        assert warmed == 5 * 4 // 2
        assert agree(
            pairs[1].private, pairs[4].public, X25519_GROUP
        ) == agree(pairs[4].private, pairs[1].public, X25519_GROUP)

    def test_keypair_validates_public(self):
        rng = np.random.default_rng(21)
        pair = generate_keypair(rng, X25519_GROUP)
        keys_module.KeyPair(
            private=pair.private, public=pair.public, group=X25519_GROUP
        )
        with pytest.raises(ConfigurationError, match="does not match"):
            keys_module.KeyPair(
                private=pair.private, public=9, group=X25519_GROUP
            )


class TestNegotiation:
    @requires_x25519
    def test_suite_strings(self):
        rng = np.random.default_rng(1)
        vector = np.zeros(4, dtype=np.int64)
        toy = ClientSession(1, vector, MODULUS, 2, rng, TOY_GROUP)
        curve = ClientSession(2, vector, MODULUS, 2, rng, X25519_GROUP)
        assert toy.header.mask_prg == "sha256-ctr"
        assert curve.header.mask_prg == "sha256-ctr+x25519"

    @requires_x25519
    def test_kex_mismatch_rejected_at_hello(self):
        rng = np.random.default_rng(2)
        vector = np.zeros(4, dtype=np.int64)
        server = ServerSession(MODULUS, 4, 2, group=TOY_GROUP)
        client = ClientSession(1, vector, MODULUS, 2, rng, X25519_GROUP)
        for frame in client.start():
            server.receive(frame, sender=1)
        assert "key-agreement backend 'x25519'" in server.rejections[1]

    def test_client_without_cryptography_falls_back(self, monkeypatch):
        monkeypatch.setattr(keys_module, "_x25519_module", False)
        rng = np.random.default_rng(3)
        vectors = rng.integers(0, 100, size=(5, 8))
        # Both sides configured for x25519 degrade to the toy group and
        # the round completes — no Reject, bare suite on the wire.
        outcome = run_bonawitz(
            vectors, modulus=MODULUS, threshold=3,
            rng=np.random.default_rng(4), group=X25519_GROUP,
        )
        assert len(outcome.included) == 5
        rng2 = np.random.default_rng(5)
        session = ClientSession(
            1, vectors[0], MODULUS, 3, rng2, X25519_GROUP
        )
        assert session.header.mask_prg == "sha256-ctr"

    def test_requesting_x25519_explicitly_raises_without_lib(
        self, monkeypatch
    ):
        monkeypatch.setattr(keys_module, "_x25519_module", False)
        with pytest.raises(ConfigurationError, match="cryptography"):
            generate_keypair(np.random.default_rng(1), X25519_GROUP)


@requires_x25519
class TestCrossBackendDigests:
    """Same inputs, same dropout schedule → same aggregate digest."""

    def _vectors(self, n=10, d=16):
        rng = np.random.default_rng(20220601)
        return rng.integers(0, 1000, size=(n, d))

    @pytest.mark.parametrize("dropouts", [None, {3: 2, 7: 3}])
    def test_run_bonawitz(self, dropouts):
        digests = {}
        for group in (TOY_GROUP, DhGroup(), X25519_GROUP):
            outcome = run_bonawitz(
                self._vectors(), modulus=MODULUS, threshold=5,
                rng=np.random.default_rng(7), group=group,
                dropouts=dict(dropouts) if dropouts else None,
            )
            digests[kex_name(group), key_bits(group)] = (
                _digest(outcome.modular_sum), outcome.included
            )
        assert len(set(digests.values())) == 1

    def test_async_round(self):
        digests = {}
        for group in (TOY_GROUP, X25519_GROUP):
            clock = SimulatedClock()
            vectors = {
                u + 1: row for u, row in enumerate(self._vectors(8, 12))
            }
            secagg_round = AsyncSecAggRound(
                vectors=vectors, modulus=MODULUS, threshold=5,
                clock=clock, rng=np.random.default_rng(9), group=group,
            )
            outcome = clock.run(secagg_round.run())
            digests[kex_name(group)] = (
                _digest(outcome.modular_sum), outcome.included
            )
        assert digests["mod-dh"] == digests["x25519"]

    def test_net_swarm(self):
        from repro.net import (
            SecAggServer, ServerConfig, SwarmConfig, expected_digest,
            run_swarm,
        )

        swarm_cfg = SwarmConfig(clients=8, threshold=4, dropouts=2, seed=42)

        async def scenario():
            server = SecAggServer(
                ServerConfig(
                    cohort_size=8, threshold=4, group=X25519_GROUP
                )
            )
            async with server:
                swarm_task = asyncio.ensure_future(
                    run_swarm(
                        "127.0.0.1", server.port, swarm_cfg,
                        group=X25519_GROUP,
                    )
                )
                results = await asyncio.wait_for(server.serve_rounds(), 60.0)
                await swarm_task
            return results

        (result,) = asyncio.run(scenario())
        assert result.aborted is None
        # The toy-DH reference digest: masks cancel, so the aggregate is
        # backend-independent for the same seeds and schedule.
        assert result.digest == expected_digest(swarm_cfg)
