"""Tests for the deterministic simulated clock and event primitives."""

import asyncio

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation import Mailbox, SimulatedClock, SimulationTrace


class TestSimulatedClock:
    def test_run_returns_value(self):
        clock = SimulatedClock()

        async def main():
            return 42

        assert clock.run(main()) == 42

    def test_sleep_advances_simulated_time(self):
        clock = SimulatedClock()

        async def main():
            await clock.sleep(2.5)
            first = clock.now
            await clock.sleep(1.5)
            return first, clock.now

        assert clock.run(main()) == (2.5, 4.0)

    def test_no_wall_time_consumed(self):
        import time

        clock = SimulatedClock()

        async def main():
            await clock.sleep(3_600.0)

        started = time.perf_counter()
        clock.run(main())
        assert time.perf_counter() - started < 1.0
        assert clock.now == 3_600.0

    def test_timers_fire_in_time_order(self):
        clock = SimulatedClock()
        order = []

        async def sleeper(delay, label):
            await clock.sleep(delay)
            order.append((label, clock.now))

        async def main():
            await asyncio.gather(
                sleeper(3.0, "c"), sleeper(1.0, "a"), sleeper(2.0, "b")
            )

        clock.run(main())
        assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_equal_times_fire_in_registration_order(self):
        clock = SimulatedClock()
        order = []

        async def sleeper(label):
            await clock.sleep(1.0)
            order.append(label)

        async def main():
            # gather starts tasks in argument order, so registration
            # order is deterministic.
            await asyncio.gather(*(sleeper(i) for i in range(5)))

        clock.run(main())
        assert order == [0, 1, 2, 3, 4]

    def test_time_persists_across_runs(self):
        clock = SimulatedClock()

        async def step():
            await clock.sleep(1.0)
            return clock.now

        assert clock.run(step()) == 1.0
        assert clock.run(step()) == 2.0

    def test_negative_delay_rejected(self):
        clock = SimulatedClock()

        async def main():
            await clock.sleep(-1.0)

        with pytest.raises(ConfigurationError):
            clock.run(main())

    def test_deadlock_detected(self):
        clock = SimulatedClock()

        async def main():
            # Wait on a future nobody will ever resolve.
            await asyncio.get_running_loop().create_future()

        with pytest.raises(SimulationError, match="deadlock"):
            clock.run(main())

    def test_busy_loop_detected(self):
        clock = SimulatedClock(max_settle_passes=50)

        async def main():
            while True:  # Never touches the clock.
                await asyncio.sleep(0)

        with pytest.raises(SimulationError, match="busy-looping"):
            clock.run(main())

    def test_run_not_reentrant(self):
        clock = SimulatedClock()

        async def inner():
            return 0

        async def outer():
            return clock.run(inner())

        with pytest.raises(SimulationError, match="not reentrant"):
            clock.run(outer())

    def test_exceptions_propagate(self):
        clock = SimulatedClock()

        async def main():
            await clock.sleep(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            clock.run(main())

    def test_call_at_in_past_clamped_to_now(self):
        clock = SimulatedClock(start=10.0)
        fired = []

        async def main():
            clock.call_at(5.0, lambda: fired.append(clock.now))
            await clock.sleep(1.0)

        clock.run(main())
        assert fired == [10.0]


class TestTimerCancellation:
    def test_cancelled_timer_never_fires_nor_advances_time(self):
        clock = SimulatedClock()
        fired = []

        async def main():
            handle = clock.call_at(100.0, lambda: fired.append("deadline"))
            handle.cancel()
            await clock.sleep(1.0)
            return clock.now

        # Time ends at the sleep's due time, not the stale deadline.
        assert clock.run(main()) == 1.0
        assert fired == []
        assert clock.pending_timers == 0

    def test_cancel_is_idempotent_and_noop_after_firing(self):
        clock = SimulatedClock()
        fired = []

        async def main():
            handle = clock.call_at(1.0, lambda: fired.append(clock.now))
            await clock.sleep(2.0)
            assert not handle.cancelled()  # It fired; cancel is a no-op.
            handle.cancel()
            handle.cancel()

        clock.run(main())
        assert fired == [1.0]
        assert clock.pending_timers == 0

    def test_pending_timers_excludes_cancelled(self):
        clock = SimulatedClock()
        handles = [clock.call_at(5.0, lambda: None) for _ in range(4)]
        assert clock.pending_timers == 4
        handles[0].cancel()
        handles[2].cancel()
        assert clock.pending_timers == 2

    def test_mass_cancellation_compacts_the_heap(self):
        clock = SimulatedClock()
        handles = [clock.call_at(5.0, lambda: None) for _ in range(64)]
        for handle in handles:
            handle.cancel()
        assert clock.pending_timers == 0
        # Lazy deletion reaped the dominating stale entries eagerly.
        assert len(clock._timers) == 0

    def test_mass_task_cancellation_keeps_pending_timers_exact(self):
        """Regression: compaction racing the late accounting of
        cancelled sleep futures (dead at Task.cancel(), noted only when
        the waiter resumes) must never skew pending_timers — it is
        derived from the heap, so it ends at exactly zero, never
        negative."""
        clock = SimulatedClock()

        async def sleeper():
            await clock.sleep(1000.0)

        async def main():
            tasks = [asyncio.ensure_future(sleeper()) for _ in range(40)]
            await clock.sleep(1.0)
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        clock.run(main())
        assert clock.pending_timers == 0


class TestMailbox:
    def test_fifo_order(self):
        clock = SimulatedClock()
        box = Mailbox(clock)

        async def main():
            box.put("a")
            box.put("b")
            return [await box.get(), await box.get()]

        assert clock.run(main()) == ["a", "b"]

    def test_get_waits_for_put(self):
        clock = SimulatedClock()
        box = Mailbox(clock)

        async def producer():
            await clock.sleep(2.0)
            box.put("late")

        async def main():
            task = asyncio.ensure_future(producer())
            item = await box.get()
            await task
            return item, clock.now

        assert clock.run(main()) == ("late", 2.0)

    def test_get_before_times_out(self):
        clock = SimulatedClock()
        box = Mailbox(clock)

        async def main():
            return await box.get_before(clock.now + 5.0), clock.now

        assert clock.run(main()) == (None, 5.0)

    def test_get_before_returns_early_arrival(self):
        clock = SimulatedClock()
        box = Mailbox(clock)

        async def producer():
            await clock.sleep(1.0)
            box.put("x")

        async def main():
            task = asyncio.ensure_future(producer())
            item = await box.get_before(clock.now + 5.0)
            await task
            return item, clock.now

        assert clock.run(main()) == ("x", 1.0)

    def test_won_race_cancels_the_deadline_timer(self):
        """Regression: get_before used to leave its deadline callback
        on the heap after the message won, so stale timers accumulated
        (~2 per exchange) and later advances walked time through them."""
        clock = SimulatedClock()
        box = Mailbox(clock)

        async def producer(count):
            for _ in range(count):
                await clock.sleep(1.0)
                box.put("x")

        async def main():
            task = asyncio.ensure_future(producer(5))
            deadline = clock.now + 100.0
            for _ in range(5):
                assert await box.get_before(deadline) == "x"
            await task
            return clock.now

        assert clock.run(main()) == 5.0
        assert clock.pending_timers == 0

    def test_len_counts_undelivered(self):
        clock = SimulatedClock()
        box = Mailbox(clock)
        box.put(1)
        box.put(2)
        assert len(box) == 2


class TestSimulationTrace:
    def test_records_are_timestamped_and_filterable(self):
        clock = SimulatedClock()
        trace = SimulationTrace(clock)

        async def main():
            trace.record("start", round=1)
            await clock.sleep(3.0)
            trace.record("finish", round=1)
            trace.record("start", round=2)

        clock.run(main())
        assert trace.count("start") == 2
        assert trace.count("finish") == 1
        finish = trace.of_kind("finish")[0]
        assert finish.time == 3.0
        assert finish.details["round"] == 1
