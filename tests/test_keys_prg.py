"""Tests for DH key agreement and the deterministic mask PRG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.secagg.kernels import (
    DEFAULT_MASK_PRG,
    PhiloxPrg,
    Sha256CounterPrg,
    get_mask_prg,
)
from repro.secagg.keys import (
    OAKLEY_GROUP_2_PRIME,
    TOY_GROUP,
    DhGroup,
    KeyPair,
    agree,
    agree_batch,
    generate_keypair,
    warm_agreement_cache,
)
from repro.secagg.prg import expand_mask, expand_mask_reference, pairwise_delta


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestDhGroup:
    def test_oakley_prime_has_expected_size(self):
        assert OAKLEY_GROUP_2_PRIME.bit_length() == 1024

    def test_default_group_is_oakley(self):
        group = DhGroup()
        assert group.prime == OAKLEY_GROUP_2_PRIME
        assert group.generator == 2

    def test_composite_modulus_rejected(self):
        with pytest.raises(ConfigurationError, match="prime"):
            DhGroup(prime=2**61, generator=3)

    def test_generator_bounds_enforced(self):
        with pytest.raises(ConfigurationError, match="generator"):
            DhGroup(prime=101, generator=1)
        with pytest.raises(ConfigurationError, match="generator"):
            DhGroup(prime=101, generator=101)


class TestKeyAgreement:
    def test_keypair_consistency_enforced(self):
        with pytest.raises(ConfigurationError, match="public key"):
            KeyPair(private=5, public=7, group=TOY_GROUP)

    def test_agreement_is_symmetric(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        bob = generate_keypair(rng, TOY_GROUP)
        assert agree(alice.private, bob.public, TOY_GROUP) == agree(
            bob.private, alice.public, TOY_GROUP
        )

    def test_agreement_symmetric_in_full_size_group(self, rng):
        group = DhGroup()
        alice = generate_keypair(rng, group)
        bob = generate_keypair(rng, group)
        assert agree(alice.private, bob.public, group) == agree(
            bob.private, alice.public, group
        )

    def test_derived_key_is_32_bytes(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        bob = generate_keypair(rng, TOY_GROUP)
        assert len(agree(alice.private, bob.public, TOY_GROUP)) == 32

    def test_distinct_pairs_get_distinct_keys(self, rng):
        alice, bob, carol = (
            generate_keypair(rng, TOY_GROUP) for _ in range(3)
        )
        ab = agree(alice.private, bob.public, TOY_GROUP)
        ac = agree(alice.private, carol.public, TOY_GROUP)
        assert ab != ac

    def test_identity_public_key_rejected(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        with pytest.raises(ConfigurationError, match="peer public"):
            agree(alice.private, 1, TOY_GROUP)

    def test_out_of_group_public_key_rejected(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        with pytest.raises(ConfigurationError):
            agree(alice.private, TOY_GROUP.prime, TOY_GROUP)

    def test_keypairs_are_fresh(self, rng):
        first = generate_keypair(rng, TOY_GROUP)
        second = generate_keypair(rng, TOY_GROUP)
        assert first.private != second.private

    def test_private_exponent_covers_large_group(self, rng):
        """Private keys in the 1024-bit group must exceed 63 bits —
        a regression guard for limb-wise sampling."""
        group = DhGroup()
        pairs = [generate_keypair(rng, group) for _ in range(8)]
        assert max(pair.private.bit_length() for pair in pairs) > 100


class TestExpandMask:
    def test_deterministic(self):
        a = expand_mask(b"seed", 64, 2**16)
        b = expand_mask(b"seed", 64, 2**16)
        np.testing.assert_array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = expand_mask(b"seed-a", 64, 2**16)
        b = expand_mask(b"seed-b", 64, 2**16)
        assert not np.array_equal(a, b)

    def test_range_power_of_two(self):
        mask = expand_mask(b"x", 1000, 256)
        assert mask.min() >= 0 and mask.max() < 256

    def test_range_general_modulus(self):
        mask = expand_mask(b"x", 1000, 1000)
        assert mask.min() >= 0 and mask.max() < 1000

    def test_prefix_stability(self):
        """Longer expansions of the same seed extend shorter ones."""
        short = expand_mask(b"s", 10, 2**20)
        long = expand_mask(b"s", 50, 2**20)
        np.testing.assert_array_equal(short, long[:10])

    def test_zero_dimension(self):
        assert expand_mask(b"s", 0, 256).shape == (0,)

    def test_bad_modulus_rejected(self):
        with pytest.raises(ConfigurationError, match="modulus"):
            expand_mask(b"s", 4, 1)

    def test_negative_dimension_rejected(self):
        with pytest.raises(ConfigurationError, match="dimension"):
            expand_mask(b"s", -1, 256)

    def test_uniformity_power_of_two(self):
        mask = expand_mask(b"uniformity", 200_000, 8)
        counts = np.bincount(mask, minlength=8)
        # Chi-square against uniform: 7 dof, 99.9% quantile ~ 24.3.
        expected = len(mask) / 8
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 30

    def test_uniformity_general_modulus(self):
        mask = expand_mask(b"uniformity", 120_000, 6)
        counts = np.bincount(mask, minlength=6)
        expected = len(mask) / 6
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 25

    @given(
        modulus=st.integers(min_value=2, max_value=2**20),
        dimension=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_property(self, modulus, dimension):
        mask = expand_mask(b"prop", dimension, modulus)
        assert mask.shape == (dimension,)
        if dimension:
            assert mask.min() >= 0 and mask.max() < modulus


class TestPairwiseDelta:
    def test_signs_cancel(self):
        plus = pairwise_delta(b"shared", 128, 2**12, sign=1)
        minus = pairwise_delta(b"shared", 128, 2**12, sign=-1)
        np.testing.assert_array_equal(np.mod(plus + minus, 2**12), 0)

    def test_invalid_sign_rejected(self):
        with pytest.raises(ConfigurationError, match="sign"):
            pairwise_delta(b"s", 4, 256, sign=0)

    def test_positive_delta_is_raw_mask(self):
        np.testing.assert_array_equal(
            pairwise_delta(b"s", 16, 256, sign=1), expand_mask(b"s", 16, 256)
        )


class TestGoldenVectors:
    """Frozen expansions captured from the pre-kernel seed implementation.

    These pin the SHA-256 counter-mode backend bit-for-bit: any change
    to the counter encoding, word order, masking, or rejection sampling
    breaks dropout recovery against recorded protocol transcripts.
    Covers the power-of-two fast path, the general-modulus rejection
    path (including a modulus with ~25% rejection probability), and the
    degenerate dimensions.
    """

    GOLDEN = {
        (b"golden-seed", 8, 2**16):
            "99760000000000009333000000000000993100000000000015bc000000000000"
            "2fae000000000000bb870000000000004bce0000000000002cf4000000000000",
        (b"golden-seed", 17, 2**16):
            "99760000000000009333000000000000993100000000000015bc000000000000"
            "2fae000000000000bb870000000000004bce0000000000002cf4000000000000"
            "c6f70000000000009501000000000000633b000000000000f122000000000000"
            "87a6000000000000c6b4000000000000c0fe0000000000006a30000000000000"
            "18f2000000000000",
        (b"\x00" * 32, 8, 2**61):
            "2c34ce1df23b830c5abf2a7f6437cc03d3067ed509ff25111df6b11b582b510b"
            "19ea44be89eece0fd4ec7482049f470a11af19384bffb30a88e77b3b1dd54c19",
        (b"golden-seed", 8, 1000):
            "a103000000000000830200000000000029000000000000009d00000000000000"
            "af0000000000000033030000000000001300000000000000c401000000000000",
        (b"\xffEdge", 13, 3):
            "0200000000000000010000000000000000000000000000000100000000000000"
            "0000000000000000010000000000000002000000000000000200000000000000"
            "0000000000000000020000000000000000000000000000000100000000000000"
            "0100000000000000",
        (b"golden-seed", 5, 2):
            "0100000000000000010000000000000001000000000000000100000000000000"
            "0100000000000000",
        (b"reject-heavy", 9, 2**62 + 11):
            "3df73f4276b5b13f0aa9684b6cca392a17f52aed394e612de5280b2731fb3733"
            "cfa76c88937c23022ae5755da82c8d1d68dbc91c796496381fe64d5dc2af6b32"
            "8147eb039cc56e00",
    }

    @pytest.mark.parametrize(
        "seed,dimension,modulus", sorted(GOLDEN, key=repr)
    )
    def test_expand_mask_matches_golden(self, seed, dimension, modulus):
        expected = np.frombuffer(
            bytes.fromhex(self.GOLDEN[(seed, dimension, modulus)]),
            dtype="<u8",
        ).astype(np.int64)
        np.testing.assert_array_equal(
            expand_mask(seed, dimension, modulus), expected
        )

    @pytest.mark.parametrize(
        "seed,dimension,modulus", sorted(GOLDEN, key=repr)
    )
    def test_reference_implementation_matches_golden(
        self, seed, dimension, modulus
    ):
        """The retained scalar path and the goldens agree forever."""
        expected = np.frombuffer(
            bytes.fromhex(self.GOLDEN[(seed, dimension, modulus)]),
            dtype="<u8",
        ).astype(np.int64)
        np.testing.assert_array_equal(
            expand_mask_reference(seed, dimension, modulus), expected
        )

    @pytest.mark.parametrize(
        "seed,dimension,modulus", sorted(GOLDEN, key=repr)
    )
    def test_kernel_backend_matches_golden(self, seed, dimension, modulus):
        expected = np.frombuffer(
            bytes.fromhex(self.GOLDEN[(seed, dimension, modulus)]),
            dtype="<u8",
        ).astype(np.int64)
        np.testing.assert_array_equal(
            Sha256CounterPrg().expand(seed, dimension, modulus), expected
        )


class TestKernelReferenceEquivalence:
    """Vectorised backend == retained scalar reference, everywhere."""

    @given(
        modulus=st.integers(min_value=2, max_value=2**20),
        dimension=st.integers(min_value=0, max_value=200),
        seed=st.binary(min_size=0, max_size=48),
    )
    @settings(max_examples=60, deadline=None)
    def test_expand_equivalence_property(self, modulus, dimension, seed):
        np.testing.assert_array_equal(
            expand_mask(seed, dimension, modulus),
            expand_mask_reference(seed, dimension, modulus),
        )

    def test_batch_rows_equal_single_expansions(self):
        prg = Sha256CounterPrg()
        seeds = [bytes([i]) * 32 for i in range(12)] + [b"", b"\x00"]
        for modulus in (2**16, 1000):
            batch = prg.expand_batch(seeds, 40, modulus)
            for row, seed in enumerate(seeds):
                np.testing.assert_array_equal(
                    batch[row], expand_mask_reference(seed, 40, modulus)
                )

    def test_batch_caching_is_transparent(self):
        prg = Sha256CounterPrg()
        seeds = [b"cached-seed" for _ in range(3)]
        first = prg.expand_batch(seeds, 16, 2**16)
        second = prg.expand_batch(seeds, 16, 2**16)
        np.testing.assert_array_equal(first, second)
        # Mutating a returned row must not poison later expansions.
        first[0, :] = -1
        np.testing.assert_array_equal(
            prg.expand(b"cached-seed", 16, 2**16), second[0]
        )


class TestPhiloxBackend:
    def test_deterministic_per_seed(self):
        prg = PhiloxPrg()
        np.testing.assert_array_equal(
            prg.expand(b"seed", 128, 2**16), prg.expand(b"seed", 128, 2**16)
        )

    def test_distinct_seeds_differ(self):
        prg = PhiloxPrg()
        assert not np.array_equal(
            prg.expand(b"seed-a", 64, 2**16), prg.expand(b"seed-b", 64, 2**16)
        )

    def test_prefix_stability(self):
        prg = PhiloxPrg()
        np.testing.assert_array_equal(
            prg.expand(b"s", 10, 2**20), prg.expand(b"s", 50, 2**20)[:10]
        )

    def test_range_general_modulus(self):
        mask = PhiloxPrg().expand(b"x", 2000, 1000)
        assert mask.min() >= 0 and mask.max() < 1000

    def test_uniformity(self):
        mask = PhiloxPrg().expand(b"uniformity", 200_000, 8)
        counts = np.bincount(mask, minlength=8)
        expected = len(mask) / 8
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 30

    def test_not_bit_compatible_with_sha_backend(self):
        # Different protocol versions really are different streams.
        assert not np.array_equal(
            PhiloxPrg().expand(b"seed", 64, 2**16),
            Sha256CounterPrg().expand(b"seed", 64, 2**16),
        )


class TestMaskPrgRegistry:
    def test_default_is_sha256_ctr(self):
        assert get_mask_prg(None) is DEFAULT_MASK_PRG
        assert DEFAULT_MASK_PRG.name == "sha256-ctr"

    def test_lookup_by_name(self):
        assert isinstance(get_mask_prg("philox"), PhiloxPrg)
        assert isinstance(get_mask_prg("sha256-ctr"), Sha256CounterPrg)

    def test_instance_passthrough(self):
        prg = PhiloxPrg()
        assert get_mask_prg(prg) is prg

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mask PRG"):
            get_mask_prg("md5-ctr")

    def test_expand_mask_accepts_backend_argument(self):
        np.testing.assert_array_equal(
            expand_mask(b"s", 32, 2**12, prg="philox"),
            PhiloxPrg().expand(b"s", 32, 2**12),
        )


class TestAgreementAcceleration:
    def test_own_public_does_not_change_derived_key(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        bob = generate_keypair(rng, TOY_GROUP)
        plain = agree(alice.private, bob.public, TOY_GROUP)
        accelerated = agree(
            alice.private, bob.public, TOY_GROUP, own_public=alice.public
        )
        mirrored = agree(
            bob.private, alice.public, TOY_GROUP, own_public=bob.public
        )
        assert plain == accelerated == mirrored

    def test_agree_batch_matches_scalar(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        peers = [generate_keypair(rng, TOY_GROUP) for _ in range(20)]
        batched = agree_batch(
            alice.private,
            [p.public for p in peers],
            TOY_GROUP,
            own_public=alice.public,
        )
        assert batched == [
            agree(alice.private, p.public, TOY_GROUP) for p in peers
        ]

    def test_agree_batch_validates_publics(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        with pytest.raises(ConfigurationError, match="peer public"):
            agree_batch(alice.private, [1], TOY_GROUP)

    def test_warm_cache_preserves_agreement_bytes(self, rng):
        pairs = {i: generate_keypair(rng, TOY_GROUP) for i in range(1, 7)}
        warmed = warm_agreement_cache(
            {i: kp.private for i, kp in pairs.items()},
            {i: kp.public for i, kp in pairs.items()},
            TOY_GROUP,
        )
        assert warmed == 6 * 5 // 2
        for i in pairs:
            for j in pairs:
                if i == j:
                    continue
                assert agree(
                    pairs[i].private,
                    pairs[j].public,
                    TOY_GROUP,
                    own_public=pairs[i].public,
                ) == agree(pairs[i].private, pairs[j].public, TOY_GROUP)
