"""Tests for DH key agreement and the deterministic mask PRG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.secagg.keys import (
    OAKLEY_GROUP_2_PRIME,
    TOY_GROUP,
    DhGroup,
    KeyPair,
    agree,
    generate_keypair,
)
from repro.secagg.prg import expand_mask, pairwise_delta


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestDhGroup:
    def test_oakley_prime_has_expected_size(self):
        assert OAKLEY_GROUP_2_PRIME.bit_length() == 1024

    def test_default_group_is_oakley(self):
        group = DhGroup()
        assert group.prime == OAKLEY_GROUP_2_PRIME
        assert group.generator == 2

    def test_composite_modulus_rejected(self):
        with pytest.raises(ConfigurationError, match="prime"):
            DhGroup(prime=2**61, generator=3)

    def test_generator_bounds_enforced(self):
        with pytest.raises(ConfigurationError, match="generator"):
            DhGroup(prime=101, generator=1)
        with pytest.raises(ConfigurationError, match="generator"):
            DhGroup(prime=101, generator=101)


class TestKeyAgreement:
    def test_keypair_consistency_enforced(self):
        with pytest.raises(ConfigurationError, match="public key"):
            KeyPair(private=5, public=7, group=TOY_GROUP)

    def test_agreement_is_symmetric(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        bob = generate_keypair(rng, TOY_GROUP)
        assert agree(alice.private, bob.public, TOY_GROUP) == agree(
            bob.private, alice.public, TOY_GROUP
        )

    def test_agreement_symmetric_in_full_size_group(self, rng):
        group = DhGroup()
        alice = generate_keypair(rng, group)
        bob = generate_keypair(rng, group)
        assert agree(alice.private, bob.public, group) == agree(
            bob.private, alice.public, group
        )

    def test_derived_key_is_32_bytes(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        bob = generate_keypair(rng, TOY_GROUP)
        assert len(agree(alice.private, bob.public, TOY_GROUP)) == 32

    def test_distinct_pairs_get_distinct_keys(self, rng):
        alice, bob, carol = (
            generate_keypair(rng, TOY_GROUP) for _ in range(3)
        )
        ab = agree(alice.private, bob.public, TOY_GROUP)
        ac = agree(alice.private, carol.public, TOY_GROUP)
        assert ab != ac

    def test_identity_public_key_rejected(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        with pytest.raises(ConfigurationError, match="peer public"):
            agree(alice.private, 1, TOY_GROUP)

    def test_out_of_group_public_key_rejected(self, rng):
        alice = generate_keypair(rng, TOY_GROUP)
        with pytest.raises(ConfigurationError):
            agree(alice.private, TOY_GROUP.prime, TOY_GROUP)

    def test_keypairs_are_fresh(self, rng):
        first = generate_keypair(rng, TOY_GROUP)
        second = generate_keypair(rng, TOY_GROUP)
        assert first.private != second.private

    def test_private_exponent_covers_large_group(self, rng):
        """Private keys in the 1024-bit group must exceed 63 bits —
        a regression guard for limb-wise sampling."""
        group = DhGroup()
        pairs = [generate_keypair(rng, group) for _ in range(8)]
        assert max(pair.private.bit_length() for pair in pairs) > 100


class TestExpandMask:
    def test_deterministic(self):
        a = expand_mask(b"seed", 64, 2**16)
        b = expand_mask(b"seed", 64, 2**16)
        np.testing.assert_array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = expand_mask(b"seed-a", 64, 2**16)
        b = expand_mask(b"seed-b", 64, 2**16)
        assert not np.array_equal(a, b)

    def test_range_power_of_two(self):
        mask = expand_mask(b"x", 1000, 256)
        assert mask.min() >= 0 and mask.max() < 256

    def test_range_general_modulus(self):
        mask = expand_mask(b"x", 1000, 1000)
        assert mask.min() >= 0 and mask.max() < 1000

    def test_prefix_stability(self):
        """Longer expansions of the same seed extend shorter ones."""
        short = expand_mask(b"s", 10, 2**20)
        long = expand_mask(b"s", 50, 2**20)
        np.testing.assert_array_equal(short, long[:10])

    def test_zero_dimension(self):
        assert expand_mask(b"s", 0, 256).shape == (0,)

    def test_bad_modulus_rejected(self):
        with pytest.raises(ConfigurationError, match="modulus"):
            expand_mask(b"s", 4, 1)

    def test_negative_dimension_rejected(self):
        with pytest.raises(ConfigurationError, match="dimension"):
            expand_mask(b"s", -1, 256)

    def test_uniformity_power_of_two(self):
        mask = expand_mask(b"uniformity", 200_000, 8)
        counts = np.bincount(mask, minlength=8)
        # Chi-square against uniform: 7 dof, 99.9% quantile ~ 24.3.
        expected = len(mask) / 8
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 30

    def test_uniformity_general_modulus(self):
        mask = expand_mask(b"uniformity", 120_000, 6)
        counts = np.bincount(mask, minlength=6)
        expected = len(mask) / 6
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 25

    @given(
        modulus=st.integers(min_value=2, max_value=2**20),
        dimension=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_property(self, modulus, dimension):
        mask = expand_mask(b"prop", dimension, modulus)
        assert mask.shape == (dimension,)
        if dimension:
            assert mask.min() >= 0 and mask.max() < modulus


class TestPairwiseDelta:
    def test_signs_cancel(self):
        plus = pairwise_delta(b"shared", 128, 2**12, sign=1)
        minus = pairwise_delta(b"shared", 128, 2**12, sign=-1)
        np.testing.assert_array_equal(np.mod(plus + minus, 2**12), 0)

    def test_invalid_sign_rejected(self):
        with pytest.raises(ConfigurationError, match="sign"):
            pairwise_delta(b"s", 4, 256, sign=0)

    def test_positive_delta_is_raw_mask(self):
        np.testing.assert_array_equal(
            pairwise_delta(b"s", 16, 256, sign=1), expand_mask(b"s", 16, 256)
        )
