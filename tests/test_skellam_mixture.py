"""Tests for the core Skellam mixture mechanism (Algorithms 1-2)."""

import numpy as np
import pytest

from repro.core.skellam_mixture import (
    estimate_sum,
    estimate_sum_1d,
    mixture_variance,
    smm_perturb,
    smm_perturb_exact,
)
from repro.errors import ConfigurationError
from repro.sampling.rng import RandIntSource


class TestSmmPerturb:
    def test_output_is_integer(self):
        rng = np.random.default_rng(0)
        values = np.array([0.3, -1.7, 2.5, 0.0])
        perturbed = smm_perturb(values, 2.0, rng)
        assert perturbed.dtype == np.int64

    def test_unbiased(self):
        rng = np.random.default_rng(1)
        values = np.array([0.25, -0.75, 1.5, 3.999, -2.0])
        samples = np.stack([smm_perturb(values, 1.0, rng) for _ in range(30_000)])
        assert np.allclose(samples.mean(axis=0), values, atol=0.05)

    def test_variance_matches_corollary_2(self):
        # Var per coordinate = 2 lam + p(1-p).
        rng = np.random.default_rng(2)
        lam, p = 1.5, 0.3
        values = np.full(50_000, 7.0 + p)
        perturbed = smm_perturb(values, lam, rng)
        expected = 2.0 * lam + p * (1.0 - p)
        assert abs(perturbed.var() - expected) < 0.1

    def test_integer_input_gets_pure_skellam(self):
        # Corner case of Section 3.2: integer x has no Bernoulli variance.
        rng = np.random.default_rng(3)
        lam = 2.0
        values = np.full(50_000, 5.0)
        perturbed = smm_perturb(values, lam, rng)
        assert abs(perturbed.var() - 2.0 * lam) < 0.1
        assert abs(perturbed.mean() - 5.0) < 0.05

    def test_matrix_input(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=(7, 11))
        assert smm_perturb(values, 1.0, rng).shape == (7, 11)


class TestSmmPerturbExact:
    def test_output_shape_and_type(self):
        source = RandIntSource(seed=0)
        values = np.array([[0.5, -1.25], [2.0, 0.125]])
        perturbed = smm_perturb_exact(values, 1, source)
        assert perturbed.shape == (2, 2)
        assert perturbed.dtype == np.int64

    def test_unbiased(self):
        source = RandIntSource(seed=1)
        values = np.array([0.25, -0.5])
        samples = np.stack(
            [smm_perturb_exact(values, 1, source) for _ in range(4000)]
        )
        assert np.allclose(samples.mean(axis=0), values, atol=0.1)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ConfigurationError):
            smm_perturb_exact(np.array([1.0]), 0, RandIntSource(seed=0))


class TestMixtureVariance:
    def test_integer_inputs_only_skellam(self):
        values = np.array([1.0, 2.0, -3.0])
        assert mixture_variance(values, 2.0) == pytest.approx(3 * 2 * 2.0)

    def test_fractional_inputs_add_bernoulli_variance(self):
        values = np.array([0.5])
        assert mixture_variance(values, 1.0) == pytest.approx(2.0 + 0.25)

    def test_matrix_input_counts_all_cells(self):
        values = np.zeros((4, 3))
        assert mixture_variance(values, 1.0) == pytest.approx(4 * 3 * 2.0)


class TestEstimateSum:
    def test_1d_estimate_close_to_truth(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(-2, 2, size=50)
        estimates = [
            estimate_sum_1d(values, 0.5, 2**16, rng) for _ in range(300)
        ]
        assert abs(np.mean(estimates) - values.sum()) < 1.0

    def test_multidim_estimate_close_to_truth(self):
        rng = np.random.default_rng(6)
        values = rng.uniform(-1, 1, size=(20, 8))
        estimates = np.stack(
            [estimate_sum(values, 0.5, 2**16, rng) for _ in range(300)]
        )
        assert np.allclose(estimates.mean(axis=0), values.sum(axis=0), atol=0.8)

    def test_empirical_variance_matches_theory(self):
        rng = np.random.default_rng(7)
        lam = 1.0
        values = np.full((30, 4), 0.5)
        estimates = np.stack(
            [estimate_sum(values, lam, 2**16, rng) for _ in range(2000)]
        )
        per_coord_theory = 30 * (2 * lam + 0.25)
        assert np.allclose(
            estimates.var(axis=0), per_coord_theory, rtol=0.15
        )

    def test_1d_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            estimate_sum_1d(np.zeros((2, 2)), 1.0, 16, np.random.default_rng(0))

    def test_multidim_rejects_vector(self):
        with pytest.raises(ConfigurationError):
            estimate_sum(np.zeros(5), 1.0, 16, np.random.default_rng(0))

    def test_wraparound_at_tiny_modulus(self):
        # Sum of 40 ones with modulus 16 must wrap: estimate != truth.
        rng = np.random.default_rng(8)
        values = np.ones((40, 1))
        estimate = estimate_sum(values, 0.25, 16, rng)
        assert estimate[0] != 40
        assert -8 <= estimate[0] < 8
