"""Tests for the Walsh-Hadamard rotation substrate (repro.linalg.hadamard)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.linalg.hadamard import (
    RandomRotation,
    fast_walsh_hadamard,
    is_power_of_two,
    naive_walsh_hadamard_matrix,
    next_power_of_two,
)


class TestPowerOfTwoHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(63_610) == 65_536

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            next_power_of_two(0)


class TestFastWalshHadamard:
    @pytest.mark.parametrize("dimension", [1, 2, 4, 8, 16, 64, 256])
    def test_matches_naive_matrix(self, dimension):
        rng = np.random.default_rng(dimension)
        matrix = naive_walsh_hadamard_matrix(dimension)
        vector = rng.normal(size=dimension)
        assert np.allclose(fast_walsh_hadamard(vector), matrix @ vector)

    def test_batch_rows_transform_independently(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(5, 32))
        transformed = fast_walsh_hadamard(batch)
        for row_in, row_out in zip(batch, transformed):
            assert np.allclose(fast_walsh_hadamard(row_in), row_out)

    def test_involution(self):
        rng = np.random.default_rng(1)
        vector = rng.normal(size=128)
        assert np.allclose(fast_walsh_hadamard(fast_walsh_hadamard(vector)), vector)

    def test_norm_preservation(self):
        rng = np.random.default_rng(2)
        batch = rng.normal(size=(4, 64))
        transformed = fast_walsh_hadamard(batch)
        assert np.allclose(
            np.linalg.norm(batch, axis=1), np.linalg.norm(transformed, axis=1)
        )

    def test_does_not_mutate_input(self):
        vector = np.ones(8)
        copy = vector.copy()
        fast_walsh_hadamard(vector)
        assert np.array_equal(vector, copy)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            fast_walsh_hadamard(np.ones(6))

    def test_rejects_3d_input(self):
        with pytest.raises(ConfigurationError):
            fast_walsh_hadamard(np.ones((2, 2, 2)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_orthonormal(self, log_dim, seed):
        dimension = 2**log_dim
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=dimension)
        transformed = fast_walsh_hadamard(vector)
        assert np.isclose(
            np.linalg.norm(transformed), np.linalg.norm(vector), rtol=1e-10
        )
        assert np.allclose(fast_walsh_hadamard(transformed), vector)


class TestRandomRotation:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        rotation = RandomRotation.create(37, rng)
        batch = rng.normal(size=(6, 37))
        assert np.allclose(rotation.inverse(rotation.forward(batch)), batch)

    def test_single_vector_roundtrip(self):
        rng = np.random.default_rng(1)
        rotation = RandomRotation.create(10, rng)
        vector = rng.normal(size=10)
        recovered = rotation.inverse(rotation.forward(vector))
        assert recovered.shape == (10,)
        assert np.allclose(recovered, vector)

    def test_padding_to_power_of_two(self):
        rng = np.random.default_rng(2)
        rotation = RandomRotation.create(100, rng)
        assert rotation.padded_dim == 128
        assert rotation.forward(np.ones(100)).shape == (128,)

    def test_norm_preserved_through_padding(self):
        rng = np.random.default_rng(3)
        rotation = RandomRotation.create(100, rng)
        vector = rng.normal(size=100)
        assert np.isclose(
            np.linalg.norm(rotation.forward(vector)), np.linalg.norm(vector)
        )

    def test_flattening_effect(self):
        # After rotation, the max coordinate should be much smaller than
        # the norm for a spiky input (the overflow-control property).
        rng = np.random.default_rng(4)
        rotation = RandomRotation.create(1024, rng)
        spike = np.zeros(1024)
        spike[3] = 1.0
        rotated = rotation.forward(spike)
        assert np.abs(rotated).max() < 0.2

    def test_wrong_width_rejected(self):
        rng = np.random.default_rng(5)
        rotation = RandomRotation.create(16, rng)
        with pytest.raises(ConfigurationError):
            rotation.forward(np.ones(17))
        with pytest.raises(ConfigurationError):
            rotation.inverse(np.ones(17))

    def test_invalid_signs_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRotation(signs=np.array([1.0, 0.5]), input_dim=2)

    def test_non_power_of_two_signs_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRotation(signs=np.ones(6), input_dim=6)

    def test_input_dim_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            RandomRotation(signs=np.ones(8), input_dim=9)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_roundtrip(self, dimension, seed):
        rng = np.random.default_rng(seed)
        rotation = RandomRotation.create(dimension, rng)
        vector = rng.normal(size=dimension)
        assert np.allclose(rotation.inverse(rotation.forward(vector)), vector)
