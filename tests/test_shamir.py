"""Unit and property tests for Shamir secret sharing."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.field import PrimeField
from repro.secagg.shamir import (
    Share,
    reconstruct_large_secret,
    reconstruct_secret,
    reconstruct_secret_scalar,
    reconstruct_secrets,
    split_large_secret,
    split_secret,
    split_secret_scalar,
    split_secrets,
)

FIELD = PrimeField(prime=(1 << 61) - 1)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestSplit:
    def test_share_count(self, rng):
        shares = split_secret(123, threshold=3, num_shares=5, rng=rng)
        assert len(shares) == 5
        assert [s.x for s in shares] == [1, 2, 3, 4, 5]

    def test_threshold_one_shares_are_the_secret(self, rng):
        # Degree-0 polynomial: every share equals the secret.
        shares = split_secret(99, threshold=1, num_shares=4, rng=rng)
        assert all(s.y == 99 for s in shares)

    def test_secret_outside_field_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="secret"):
            split_secret(FIELD.prime, 2, 3, rng, FIELD)

    def test_negative_secret_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            split_secret(-1, 2, 3, rng, FIELD)

    def test_threshold_above_share_count_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="threshold"):
            split_secret(5, threshold=4, num_shares=3, rng=rng)

    def test_zero_threshold_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            split_secret(5, threshold=0, num_shares=3, rng=rng)

    def test_too_many_shares_for_tiny_field_rejected(self, rng):
        tiny = PrimeField(prime=7)
        with pytest.raises(ConfigurationError, match="at most"):
            split_secret(3, threshold=2, num_shares=7, rng=rng, field=tiny)


class TestReconstruct:
    def test_roundtrip(self, rng):
        secret = 987654321
        shares = split_secret(secret, 3, 6, rng)
        assert reconstruct_secret(shares[:3]) == secret

    def test_any_subset_of_threshold_size_works(self, rng):
        secret = 31415926
        shares = split_secret(secret, 3, 6, rng)
        for subset in itertools.combinations(shares, 3):
            assert reconstruct_secret(subset) == secret

    def test_extra_shares_are_harmless(self, rng):
        secret = 271828
        shares = split_secret(secret, 2, 5, rng)
        assert reconstruct_secret(shares) == secret

    def test_below_threshold_gives_wrong_secret(self, rng):
        # t-1 shares determine a different (effectively random) constant
        # term; check it is not accidentally the secret for this seed.
        secret = 55555
        shares = split_secret(secret, threshold=3, num_shares=5, rng=rng)
        assert reconstruct_secret(shares[:2]) != secret

    def test_zero_shares_rejected(self):
        with pytest.raises(AggregationError, match="zero shares"):
            reconstruct_secret([])

    def test_duplicate_points_rejected(self, rng):
        shares = split_secret(5, 2, 3, rng)
        with pytest.raises(AggregationError, match="duplicate"):
            reconstruct_secret([shares[0], shares[0]])

    def test_out_of_field_value_rejected(self):
        with pytest.raises(AggregationError, match="outside"):
            reconstruct_secret([Share(x=1, y=FIELD.prime), Share(x=2, y=0)])

    def test_zero_point_rejected(self):
        # x = 0 would directly expose the secret as its own share.
        with pytest.raises(AggregationError, match="outside"):
            reconstruct_secret([Share(x=0, y=5), Share(x=1, y=6)])

    @given(
        secret=st.integers(min_value=0, max_value=FIELD.prime - 1),
        threshold=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, secret, threshold, extra, seed):
        rng = np.random.default_rng(seed)
        shares = split_secret(secret, threshold, threshold + extra, rng)
        # Reconstruct from a random threshold-sized subset.
        chosen = rng.choice(len(shares), size=threshold, replace=False)
        assert reconstruct_secret([shares[i] for i in chosen]) == secret


class TestSecrecy:
    def test_single_share_is_uniform_over_secrets(self):
        """With t >= 2, share y-values are uniform: the histogram of one
        share over many polynomial draws must not concentrate."""
        field = PrimeField(prime=101)
        rng = np.random.default_rng(3)
        values = [
            split_secret(42, 2, 3, rng, field)[0].y for _ in range(2000)
        ]
        counts = np.bincount(values, minlength=101)
        # Expected ~19.8 per bin; a degenerate scheme would pile on few.
        assert counts.max() < 60

    def test_shares_of_different_secrets_indistinguishable(self):
        """Mean |share| should not track the secret when t >= 2."""
        field = PrimeField(prime=101)
        rng = np.random.default_rng(4)
        means = []
        for secret in (0, 50, 100):
            values = [
                split_secret(secret, 2, 2, rng, field)[0].y
                for _ in range(3000)
            ]
            means.append(np.mean(values))
        assert np.ptp(means) < 10  # all near the uniform mean of 50


class TestLargeSecrets:
    def test_roundtrip_dh_sized_secret(self, rng):
        secret = (1 << 1023) + 987654321987654321
        shares = split_large_secret(secret, 3, 5, rng)
        assert reconstruct_large_secret(shares[:3]) == secret

    def test_zero_secret_roundtrips(self, rng):
        shares = split_large_secret(0, 2, 3, rng)
        assert reconstruct_large_secret(shares[:2]) == 0

    def test_single_limb_secret(self, rng):
        shares = split_large_secret(12345, 2, 4, rng)
        assert len(shares[0].ys) == 1
        assert reconstruct_large_secret(shares[1:3]) == 12345

    def test_limb_count_matches_bit_length(self, rng):
        secret = (1 << 180) - 1  # 180 bits -> 3 limbs of 60 bits
        shares = split_large_secret(secret, 2, 3, rng)
        assert len(shares[0].ys) == 3

    def test_negative_secret_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            split_large_secret(-5, 2, 3, rng)

    def test_oversized_limb_width_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="limb"):
            split_large_secret(5, 2, 3, rng, limb_bits=62)

    def test_mismatched_limb_counts_rejected(self, rng):
        a = split_large_secret(1 << 100, 2, 3, rng)
        b = split_large_secret(7, 2, 3, rng)
        with pytest.raises(AggregationError, match="limb counts"):
            reconstruct_large_secret([a[0], b[1]])

    def test_zero_shares_rejected(self):
        with pytest.raises(AggregationError):
            reconstruct_large_secret([])

    @given(
        bits=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, bits, seed):
        rng = np.random.default_rng(seed)
        secret = (1 << bits) | int(rng.integers(0, 1 << min(bits, 60) | 1))
        shares = split_large_secret(secret, 3, 4, rng)
        assert reconstruct_large_secret(shares[:3]) == secret


class TestScalarVectorEquivalence:
    """The retained scalar reference path and the vectorised kernels
    must agree share-for-share and secret-for-secret."""

    @given(
        secret=st.integers(min_value=0, max_value=FIELD.prime - 1),
        threshold=st.integers(min_value=1, max_value=6),
        extra=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstruct_agreement_property(
        self, secret, threshold, extra, seed
    ):
        """Identical shares -> identical secrets on both paths."""
        rng = np.random.default_rng(seed)
        shares = split_secret(secret, threshold, threshold + extra, rng)
        chosen = [
            shares[i]
            for i in rng.choice(len(shares), size=threshold, replace=False)
        ]
        assert (
            reconstruct_secret(chosen)
            == reconstruct_secret_scalar(chosen)
            == secret
        )

    @given(
        secret=st.integers(min_value=0, max_value=FIELD.prime - 1),
        threshold=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_cross_path_roundtrip_property(self, secret, threshold, seed):
        """Scalar-split shares reconstruct through the vectorised path
        and vice versa."""
        scalar_shares = split_secret_scalar(
            secret, threshold, threshold + 2, np.random.default_rng(seed)
        )
        vector_shares = split_secret(
            secret, threshold, threshold + 2, np.random.default_rng(seed)
        )
        assert reconstruct_secret(scalar_shares[:threshold]) == secret
        assert reconstruct_secret_scalar(vector_shares[:threshold]) == secret

    @given(
        num_secrets=st.integers(min_value=1, max_value=6),
        threshold=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_batched_split_reconstruct_roundtrip(
        self, num_secrets, threshold, extra, seed
    ):
        rng = np.random.default_rng(seed)
        secrets = [
            int(rng.integers(0, FIELD.prime)) for _ in range(num_secrets)
        ]
        num_shares = threshold + extra
        matrix = split_secrets(secrets, threshold, num_shares, rng)
        subset = rng.choice(num_shares, size=threshold, replace=False)
        xs = [int(j) + 1 for j in subset]
        rows = [[int(matrix[i, j]) for j in subset] for i in range(num_secrets)]
        assert reconstruct_secrets(xs, rows) == secrets
        # Row-by-row agreement with the scalar reference reconstruction.
        for i in range(num_secrets):
            assert reconstruct_secret_scalar(
                [Share(x=x, y=y) for x, y in zip(xs, rows[i])]
            ) == secrets[i]

    def test_small_field_routes_through_kernels(self, rng):
        field = PrimeField(prime=101)
        shares = split_secret(42, 3, 7, rng, field)
        assert reconstruct_secret(shares[2:5], field) == 42
        assert reconstruct_secret_scalar(shares[2:5], field) == 42

    def test_scalar_and_vector_validation_parity(self, rng):
        for split in (split_secret, split_secret_scalar):
            with pytest.raises(ConfigurationError):
                split(-1, 2, 3, rng)
            with pytest.raises(ConfigurationError, match="threshold"):
                split(5, 4, 3, rng)
            with pytest.raises(ConfigurationError):
                split(FIELD.prime, 2, 3, rng, FIELD)


class TestBatchedRejection:
    """The batched paths keep the scalar paths' failure modes."""

    def test_duplicate_points_rejected(self, rng):
        shares = split_secret(5, 2, 3, rng)
        duplicated = [shares[0], shares[0]]
        with pytest.raises(AggregationError, match="duplicate"):
            reconstruct_secret(duplicated)
        with pytest.raises(AggregationError, match="duplicate"):
            reconstruct_secrets([1, 1], [[shares[0].y, shares[0].y]])

    def test_zero_shares_rejected_batched(self):
        with pytest.raises(AggregationError, match="zero shares"):
            reconstruct_secret([])

    def test_empty_batch_is_empty(self):
        assert reconstruct_secrets([1, 2], []) == []

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(AggregationError, match="disagree"):
            reconstruct_secrets([1, 2, 3], [[4, 5]])

    def test_out_of_field_value_rejected_batched(self):
        with pytest.raises(AggregationError, match="outside"):
            reconstruct_secrets([1, 2], [[FIELD.prime, 0]])

    def test_zero_point_rejected_batched(self):
        with pytest.raises(AggregationError, match="outside"):
            reconstruct_secrets([0, 1], [[5, 6]])

    def test_insufficient_shares_give_wrong_secret(self, rng):
        # Below-threshold reconstruction yields an unrelated value on
        # both paths (the secrecy property, not a detectable error).
        shares = split_secret(77777, threshold=3, num_shares=5, rng=rng)
        assert reconstruct_secret(shares[:2]) != 77777
        assert reconstruct_secret_scalar(shares[:2]) != 77777

    def test_split_secrets_validates_every_secret(self, rng):
        with pytest.raises(ConfigurationError, match="secret"):
            split_secrets([1, FIELD.prime], 2, 3, rng)
