"""Tests for the synthetic dataset substrate (repro.fl.data)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fl.data import (
    Dataset,
    fashion_mnist_surrogate,
    make_synthetic_images,
    mnist_surrogate,
)
from repro.fl.model import MLPClassifier


class TestDataset:
    def test_properties(self):
        data = Dataset(np.zeros((10, 4)), np.arange(10) % 3)
        assert data.num_records == 10
        assert data.num_features == 4
        assert data.num_classes == 3

    def test_subset(self):
        data = Dataset(np.arange(20).reshape(10, 2).astype(float), np.arange(10))
        sub = data.subset(np.array([1, 3]))
        assert sub.num_records == 2
        assert np.array_equal(sub.labels, [1, 3])

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros(10), np.zeros(10, dtype=int))
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((10, 4)), np.zeros(9, dtype=int))


class TestMakeSyntheticImages:
    def test_shapes_and_ranges(self):
        rng = np.random.default_rng(0)
        train, test = make_synthetic_images(200, 50, 0.3, rng)
        assert train.features.shape == (200, 784)
        assert test.features.shape == (50, 784)
        assert train.features.min() >= 0.0
        assert train.features.max() <= 1.0
        assert set(np.unique(train.labels)) <= set(range(10))

    def test_deterministic_given_rng(self):
        first = make_synthetic_images(50, 10, 0.3, np.random.default_rng(7))
        second = make_synthetic_images(50, 10, 0.3, np.random.default_rng(7))
        assert np.array_equal(first[0].features, second[0].features)
        assert np.array_equal(first[0].labels, second[0].labels)

    @pytest.mark.slow
    def test_noise_scale_controls_difficulty(self):
        # Within-class spread grows with noise while prototypes are fixed
        # per rng stream; verify higher noise means lower separability.
        def linear_probe_accuracy(noise):
            rng = np.random.default_rng(3)
            train, test = make_synthetic_images(2000, 400, noise, rng)
            model = MLPClassifier([784, 10], np.random.default_rng(0))
            for _ in range(200):
                grad = model.mean_gradient(
                    train.features[:500], train.labels[:500]
                )
                model.set_flat_parameters(
                    model.get_flat_parameters() - 0.1 * grad
                )
            return model.accuracy(test.features, test.labels)

        easy = linear_probe_accuracy(0.1)
        hard = linear_probe_accuracy(1.2)
        assert easy > hard + 0.05, (easy, hard)

    def test_mnist_surrogate_easier_than_fashion(self):
        mnist_train, _ = mnist_surrogate(np.random.default_rng(1), 500, 100)
        fashion_train, _ = fashion_mnist_surrogate(
            np.random.default_rng(1), 500, 100
        )
        # Same prototypes (same rng stream) but more noise for fashion.
        assert fashion_train.features.std() > mnist_train.features.std() - 0.05

    def test_rejects_too_few_records(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_images(5, 50, 0.3, np.random.default_rng(0))

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_images(100, 50, -0.1, np.random.default_rng(0))

    def test_custom_class_count(self):
        rng = np.random.default_rng(2)
        train, _ = make_synthetic_images(100, 20, 0.2, rng, num_classes=4)
        assert train.num_classes <= 4

    def test_default_sizes_match_paper(self):
        # The paper's datasets: 60k train / 10k test (downscaled here to
        # keep the test fast, but the default signature matches).
        import inspect

        signature = inspect.signature(mnist_surrogate)
        assert signature.parameters["num_train"].default == 60_000
        assert signature.parameters["num_test"].default == 10_000
