"""Stream-framing edge cases: partial reads, hostile prefixes, EOF."""

import asyncio

import pytest

from repro.errors import AggregationError
from repro.net.frames import (
    MAX_DATAGRAM_BYTES,
    PREFIX_SIZE,
    encode_datagram,
    read_datagram,
    write_datagram,
)


async def socket_pair():
    """A connected (client_writer, server_reader) pair over localhost."""
    ready = asyncio.Queue()

    async def on_connect(reader, writer):
        await ready.put((reader, writer))

    server = await asyncio.start_server(on_connect, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    client_reader, client_writer = await asyncio.open_connection(
        "127.0.0.1", port
    )
    server_reader, server_writer = await ready.get()
    return server, client_reader, client_writer, server_reader, server_writer


class TestEncode:
    def test_prefix_layout(self):
        encoded = encode_datagram(b"abc")
        assert encoded[:PREFIX_SIZE] == (3).to_bytes(PREFIX_SIZE, "little")
        assert encoded[PREFIX_SIZE:] == b"abc"

    def test_empty_payload_rejected(self):
        with pytest.raises(AggregationError, match="empty datagram"):
            encode_datagram(b"")


class TestReadDatagram:
    def test_round_trip_over_real_socket(self):
        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                await write_datagram(cw, b"hello-frames")
                assert await read_datagram(sr) == b"hello-frames"
            finally:
                cw.close()
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_partial_reads_across_frame_boundaries(self):
        """A datagram dribbled in 1-byte writes — and two datagrams whose
        boundary lands mid-TCP-segment — reassemble exactly."""

        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                first = encode_datagram(b"A" * 700)
                second = encode_datagram(b"B" * 300)
                stream = first + second
                # Split at awkward offsets: inside the first prefix,
                # inside the first body, exactly at the boundary, and
                # inside the second body.
                cuts = [0, 2, 350, len(first), len(first) + 5, len(stream)]
                for lo, hi in zip(cuts, cuts[1:]):
                    cw.write(stream[lo:hi])
                    await cw.drain()
                    await asyncio.sleep(0)  # Let the kernel deliver.
                assert await read_datagram(sr) == b"A" * 700
                assert await read_datagram(sr) == b"B" * 300
            finally:
                cw.close()
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_zero_length_prefix_rejected(self):
        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                cw.write((0).to_bytes(PREFIX_SIZE, "little"))
                await cw.drain()
                with pytest.raises(AggregationError, match="zero-length"):
                    await read_datagram(sr)
            finally:
                cw.close()
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_oversized_prefix_rejected_before_allocation(self):
        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                huge = MAX_DATAGRAM_BYTES + 1
                cw.write(huge.to_bytes(PREFIX_SIZE, "little"))
                await cw.drain()
                with pytest.raises(AggregationError, match="exceeds"):
                    await read_datagram(sr)
            finally:
                cw.close()
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_custom_limit(self):
        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                await write_datagram(cw, b"x" * 100)
                with pytest.raises(AggregationError, match="64-byte limit"):
                    await read_datagram(sr, max_bytes=64)
            finally:
                cw.close()
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_clean_eof_at_boundary_returns_none(self):
        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                await write_datagram(cw, b"last")
                cw.close()
                assert await read_datagram(sr) == b"last"
                assert await read_datagram(sr) is None
            finally:
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_close_mid_prefix_raises(self):
        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                cw.write(b"\x01\x02")  # 2 of the 4 prefix bytes.
                await cw.drain()
                cw.close()
                with pytest.raises(AggregationError, match="mid-prefix"):
                    await read_datagram(sr)
            finally:
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_close_mid_datagram_raises(self):
        async def scenario():
            server, _, cw, sr, sw = await socket_pair()
            try:
                cw.write((10).to_bytes(PREFIX_SIZE, "little") + b"only4")
                await cw.drain()
                cw.close()
                with pytest.raises(AggregationError, match="mid-datagram"):
                    await read_datagram(sr)
            finally:
                sw.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
