"""Tests for the server-side optimisers (repro.fl.optimizers)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fl.optimizers import Adam, Sgd, make_optimizer


class TestSgd:
    def test_single_step(self):
        optimizer = Sgd(learning_rate=0.1)
        updated = optimizer.step(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        assert np.allclose(updated, [0.9, 2.1])

    def test_momentum_accumulates(self):
        optimizer = Sgd(learning_rate=0.1, momentum=0.9)
        params = np.array([0.0])
        gradient = np.array([1.0])
        params = optimizer.step(params, gradient)  # v = 1, step 0.1
        params = optimizer.step(params, gradient)  # v = 1.9, step 0.19
        assert params[0] == pytest.approx(-0.29)

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            Sgd(learning_rate=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            Sgd(learning_rate=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_size_is_learning_rate(self):
        # With bias correction, |first step| ~ lr regardless of scale.
        optimizer = Adam(learning_rate=0.01)
        updated = optimizer.step(np.zeros(3), np.array([1e-4, 1.0, 1e4]))
        assert np.allclose(np.abs(updated), 0.01, rtol=1e-3)

    def test_converges_on_quadratic(self):
        optimizer = Adam(learning_rate=0.1)
        params = np.array([5.0, -3.0])
        for _ in range(500):
            params = optimizer.step(params, 2.0 * params)  # grad of ||x||^2
        assert np.abs(params).max() < 0.05

    def test_descends_faster_than_sgd_on_ill_conditioned(self):
        # Quadratic with condition number 1e4.
        scales = np.array([1.0, 1e4])

        def grad(x):
            return 2.0 * scales * x

        adam_params = np.array([1.0, 1.0])
        adam = Adam(learning_rate=0.05)
        sgd_params = np.array([1.0, 1.0])
        sgd = Sgd(learning_rate=5e-5)  # largest stable lr ~ 1/1e4
        for _ in range(200):
            adam_params = adam.step(adam_params, grad(adam_params))
            sgd_params = sgd.step(sgd_params, grad(sgd_params))
        adam_loss = float(np.sum(scales * adam_params**2))
        sgd_loss = float(np.sum(scales * sgd_params**2))
        assert adam_loss < sgd_loss

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=0.1, beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=0.1, beta2=-0.1)


class TestMakeOptimizer:
    def test_builds_adam(self):
        assert isinstance(make_optimizer("adam", 0.005), Adam)

    def test_builds_sgd(self):
        assert isinstance(make_optimizer("sgd", 0.1), Sgd)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_optimizer("rmsprop", 0.1)
