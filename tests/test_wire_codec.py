"""Batched wire-codec tests: golden pins, equivalence, and round digests.

The batched codec's whole contract is *bit-identity* with the scalar
reference path — golden vectors freeze the bytes, Hypothesis pins the
scalar/batched equivalence on arbitrary inputs, and a full protocol run
is compared datagram-for-datagram across codecs.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError
from repro.secagg.bonawitz import run_bonawitz
from repro.secagg.shamir import LimbShares, Share
from repro.secagg.wire import (
    PROTOCOL_V1,
    WIRE_CODECS,
    MaskedInput,
    NegotiatedHeader,
    UnmaskColumns,
    UnmaskResponse,
    decode_message,
    decode_sealed_columns,
    decode_unmask_columns,
    encode_message,
    get_wire_codec,
    route_sealed_stack,
    set_default_wire_codec,
)

HEADER = NegotiatedHeader(version=PROTOCOL_V1, mask_prg="sha256-ctr")
SCALAR = WIRE_CODECS["scalar"]
BATCHED = WIRE_CODECS["batched"]

#: Frozen batched-codec outputs (same format contract as
#: ``tests/test_wire.py``): the masked-input and unmask hexes are
#: byte-identical to that module's per-frame golden vectors.
GOLDEN_SEALED_MATRIX = (
    "534701032300000001000a7368613235362d637472"
    "020000000500000002000000dead"
    "534701032300000001000a7368613235362d637472"
    "020000000600000002000000beef"
)
GOLDEN_MASKED = (
    "534701043d00000001000a7368613235362d637472"
    "0400000004000000000000000000000001000000000000"
    "00ffff0000000000000000000000010000"
)
GOLDEN_UNMASK = (
    "534701065100000001000a7368613235362d637472"
    "060000000200000004"
    "02000000050000000600000006000000"
    "15cd5b0701000000"
    "010000000900000006000000020001000a0800feffffffffffff1f"
)


def _columns(responder, seed_shares, key_shares, prime=2**61 - 1):
    """Build an :class:`UnmaskColumns` the way the client session does."""
    peers = sorted(seed_shares)
    dtype = np.uint64 if prime <= (1 << 64) else object
    return UnmaskColumns(
        responder=responder,
        peers=np.asarray(peers, dtype="<u4"),
        xs=np.fromiter(
            (seed_shares[p].x for p in peers), dtype="<u4", count=len(peers)
        ),
        ys=np.asarray([seed_shares[p].y for p in peers], dtype=dtype),
        key_shares=dict(sorted(key_shares.items())),
    )


class TestGoldenVectors:
    def test_sealed_matrix_matches_golden(self):
        ciphertexts = np.array([[0xDE, 0xAD], [0xBE, 0xEF]], dtype=np.uint8)
        encoded = BATCHED.encode_sealed_matrix(2, [5, 6], ciphertexts, HEADER)
        assert encoded.hex() == GOLDEN_SEALED_MATRIX

    def test_masked_input_matches_golden(self):
        vector = np.array([0, 1, 65535, 2**40], dtype=np.int64)
        assert (
            BATCHED.encode_masked_input(4, vector, HEADER).hex()
            == GOLDEN_MASKED
        )

    def test_unmask_columns_match_golden(self):
        columns = _columns(
            6,
            {2: Share(x=6, y=123456789), 5: Share(x=6, y=1)},
            {9: LimbShares(x=6, ys=(10, 2**61 - 2))},
        )
        assert (
            BATCHED.encode_unmask_columns(columns, HEADER).hex()
            == GOLDEN_UNMASK
        )

    def test_golden_unmask_decodes_to_columns(self):
        header, columns = decode_unmask_columns(bytes.fromhex(GOLDEN_UNMASK))
        assert header == HEADER
        assert columns.responder == 6
        assert columns.peers.tolist() == [2, 5]
        assert columns.xs.tolist() == [6, 6]
        assert columns.ys.tolist() == [123456789, 1]
        assert columns.key_shares == {9: LimbShares(x=6, ys=(10, 2**61 - 2))}
        _, response = decode_message(bytes.fromhex(GOLDEN_UNMASK))
        assert columns.to_response() == response


SEED_STRATEGY = st.dictionaries(
    st.integers(min_value=1, max_value=2**32 - 1),
    st.tuples(
        st.integers(min_value=1, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**128 - 1),
    ),
    max_size=12,
)
KEY_STRATEGY = st.dictionaries(
    st.integers(min_value=1, max_value=2**32 - 1),
    st.tuples(
        st.integers(min_value=1, max_value=2**32 - 1),
        st.lists(
            st.integers(min_value=0, max_value=2**128 - 1),
            min_size=1,
            max_size=4,
        ),
    ),
    max_size=6,
)


class TestScalarBatchedEquivalence:
    @given(
        sender=st.integers(min_value=1, max_value=2**32 - 1),
        recipients=st.lists(
            st.integers(min_value=1, max_value=2**32 - 1),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        width=st.integers(min_value=0, max_value=48),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_sealed_matrix(self, sender, recipients, width, data):
        raw = data.draw(
            st.binary(
                min_size=len(recipients) * width,
                max_size=len(recipients) * width,
            )
        )
        ciphertexts = np.frombuffer(raw, dtype=np.uint8).reshape(
            len(recipients), width
        )
        assert BATCHED.encode_sealed_matrix(
            sender, recipients, ciphertexts, HEADER
        ) == SCALAR.encode_sealed_matrix(
            sender, recipients, ciphertexts, HEADER
        )

    @given(
        sender=st.integers(min_value=1, max_value=2**32 - 1),
        values=st.lists(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            max_size=40,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_masked_input(self, sender, values):
        vector = np.array(values, dtype=np.int64)
        assert BATCHED.encode_masked_input(
            sender, vector, HEADER
        ) == SCALAR.encode_masked_input(sender, vector, HEADER)

    @given(
        responder=st.integers(min_value=1, max_value=2**32 - 1),
        seeds=SEED_STRATEGY,
        keys=KEY_STRATEGY,
    )
    @settings(max_examples=50, deadline=None)
    def test_unmask_columns(self, responder, seeds, keys):
        columns = _columns(
            responder,
            {p: Share(x=x, y=y) for p, (x, y) in seeds.items()},
            {p: LimbShares(x=x, ys=tuple(ys)) for p, (x, ys) in keys.items()},
            prime=2**128,  # Force the object-dtype (16-byte) column path.
        )
        assert BATCHED.encode_unmask_columns(
            columns, HEADER
        ) == SCALAR.encode_unmask_columns(columns, HEADER)

    @given(
        responder=st.integers(min_value=1, max_value=2**32 - 1),
        seeds=SEED_STRATEGY,
        keys=KEY_STRATEGY,
    )
    @settings(max_examples=50, deadline=None)
    def test_unmask_decode_round_trip(self, responder, seeds, keys):
        response = UnmaskResponse(
            responder=responder,
            seed_shares={p: Share(x=x, y=y) for p, (x, y) in seeds.items()},
            key_shares={
                p: LimbShares(x=x, ys=tuple(ys))
                for p, (x, ys) in keys.items()
            },
        )
        encoded = encode_message(response, HEADER)
        decoded = decode_unmask_columns(encoded)
        assert decoded is not None
        header, columns = decoded
        assert header == HEADER
        assert columns.to_response() == response


class TestColumnarRouting:
    def test_route_matches_per_frame_transpose(self):
        rng = np.random.default_rng(3)
        stack = rng.integers(
            0, 256, size=(5, 7, 33), dtype=np.uint8
        )
        routed = route_sealed_stack(stack)
        assert routed.shape == (7, 5, 33)
        for col in range(7):
            expected = b"".join(
                stack[row, col].tobytes() for row in range(5)
            )
            assert routed[col].tobytes() == expected

    def test_routed_mailbox_is_columnar_decodable(self):
        ciphertexts = np.arange(24, dtype=np.uint8).reshape(3, 8)
        datagrams = [
            BATCHED.encode_sealed_matrix(s, [1, 2, 3], ciphertexts, HEADER)
            for s in (1, 2, 3)
        ]
        frame_len = len(datagrams[0]) // 3
        stack = np.stack(
            [
                np.frombuffer(d, dtype=np.uint8).reshape(3, frame_len)
                for d in datagrams
            ]
        )
        routed = route_sealed_stack(stack)
        header, senders, recipients, _, _ = decode_sealed_columns(
            routed[1].tobytes()
        )
        assert header == HEADER
        assert senders == [1, 2, 3]
        assert recipients == [2, 2, 2]


class TestCodecRegistry:
    def test_default_is_batched(self):
        assert get_wire_codec(None).name == "batched"

    def test_lookup_by_name_and_instance(self):
        assert get_wire_codec("scalar") is SCALAR
        assert get_wire_codec(BATCHED) is BATCHED

    def test_unknown_name_raises(self):
        with pytest.raises(AggregationError, match="unknown wire codec"):
            get_wire_codec("zstd")
        with pytest.raises(AggregationError, match="unknown wire codec"):
            set_default_wire_codec("zstd")

    def test_set_default_round_trips(self):
        previous = set_default_wire_codec("scalar")
        try:
            assert previous == "batched"
            assert get_wire_codec(None).name == "scalar"
        finally:
            set_default_wire_codec(previous)

    def test_scalar_decode_unmask_declines(self):
        encoded = BATCHED.encode_unmask_columns(
            _columns(6, {2: Share(x=6, y=1)}, {}), HEADER
        )
        assert SCALAR.decode_unmask(encoded) is None
        assert BATCHED.decode_unmask(encoded) is not None


class TestCrossCodecRounds:
    """Full four-round protocol runs must be digest-identical."""

    def _digest(self, outcome):
        return hashlib.sha256(
            np.ascontiguousarray(outcome.modular_sum).tobytes()
        ).hexdigest()

    @pytest.mark.parametrize("dropouts", [None, {2: 2, 5: 3}])
    def test_run_bonawitz_digest_equal(self, dropouts):
        results = {}
        for codec in ("scalar", "batched"):
            rng = np.random.default_rng(20220601)
            vectors = rng.integers(0, 1000, size=(9, 24))
            outcome = run_bonawitz(
                vectors,
                modulus=2**31 - 1,
                threshold=5,
                rng=np.random.default_rng(7),
                dropouts=dict(dropouts) if dropouts else None,
                wire_codec=codec,
            )
            results[codec] = (
                self._digest(outcome),
                outcome.included,
                outcome.wire.total_messages,
                outcome.wire.total_bytes,
            )
        assert results["scalar"] == results["batched"]
