"""Tests for the MLP classifier (repro.fl.model)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fl.model import MLPClassifier, paper_mlp


@pytest.fixture
def small_model():
    return MLPClassifier([6, 5, 4, 3], np.random.default_rng(0))


class TestConstruction:
    def test_paper_architecture_parameter_count(self):
        # Section 6.2: d = 63,610 with 80 neurons per layer.
        model = paper_mlp(np.random.default_rng(0))
        assert model.num_parameters == 63_610

    def test_layer_count(self, small_model):
        assert len(small_model.layers) == 3

    def test_rejects_single_size(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier([10], np.random.default_rng(0))

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier([10, 0, 2], np.random.default_rng(0))


class TestForward:
    def test_logit_shape(self, small_model):
        inputs = np.random.default_rng(1).normal(size=(7, 6))
        assert small_model.forward(inputs).shape == (7, 3)

    def test_predict_labels_in_range(self, small_model):
        inputs = np.random.default_rng(2).normal(size=(20, 6))
        predictions = small_model.predict(inputs)
        assert predictions.min() >= 0
        assert predictions.max() <= 2

    def test_probabilities_normalised(self, small_model):
        inputs = np.random.default_rng(3).normal(size=(5, 6))
        assert np.allclose(small_model.probabilities(inputs).sum(axis=1), 1.0)

    def test_accuracy_bounds(self, small_model):
        rng = np.random.default_rng(4)
        inputs = rng.normal(size=(30, 6))
        labels = rng.integers(0, 3, size=30)
        assert 0.0 <= small_model.accuracy(inputs, labels) <= 1.0


class TestFlatParameters:
    def test_roundtrip(self, small_model):
        flat = small_model.get_flat_parameters()
        assert flat.shape == (small_model.num_parameters,)
        modified = flat + 0.5
        small_model.set_flat_parameters(modified)
        assert np.allclose(small_model.get_flat_parameters(), modified)

    def test_set_changes_forward(self, small_model):
        inputs = np.random.default_rng(5).normal(size=(3, 6))
        before = small_model.forward(inputs)
        small_model.set_flat_parameters(
            small_model.get_flat_parameters() * 2.0
        )
        after = small_model.forward(inputs)
        assert not np.allclose(before, after)

    def test_wrong_size_rejected(self, small_model):
        with pytest.raises(ConfigurationError):
            small_model.set_flat_parameters(np.zeros(3))


class TestPerExampleGradients:
    def test_shape(self, small_model):
        rng = np.random.default_rng(6)
        inputs = rng.normal(size=(9, 6))
        labels = rng.integers(0, 3, size=9)
        grads = small_model.per_example_gradients(inputs, labels)
        assert grads.shape == (9, small_model.num_parameters)

    def test_numeric_gradient_check(self, small_model):
        rng = np.random.default_rng(7)
        inputs = rng.normal(size=(3, 6))
        labels = np.array([0, 1, 2])
        analytic = small_model.per_example_gradients(inputs, labels)
        flat = small_model.get_flat_parameters()
        eps = 1e-6
        indices = rng.integers(0, small_model.num_parameters, size=12)
        for index in indices:
            bumped = flat.copy()
            bumped[index] += eps
            small_model.set_flat_parameters(bumped)
            loss_plus = np.array(
                [
                    small_model.loss(inputs[b : b + 1], labels[b : b + 1])
                    for b in range(3)
                ]
            )
            bumped[index] -= 2 * eps
            small_model.set_flat_parameters(bumped)
            loss_minus = np.array(
                [
                    small_model.loss(inputs[b : b + 1], labels[b : b + 1])
                    for b in range(3)
                ]
            )
            small_model.set_flat_parameters(flat)
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert np.allclose(numeric, analytic[:, index], atol=1e-5)

    def test_mean_gradient_consistency(self, small_model):
        rng = np.random.default_rng(8)
        inputs = rng.normal(size=(5, 6))
        labels = rng.integers(0, 3, size=5)
        per_example = small_model.per_example_gradients(inputs, labels)
        mean = small_model.mean_gradient(inputs, labels)
        assert np.allclose(mean, per_example.mean(axis=0))

    def test_gradient_descent_reduces_loss(self, small_model):
        rng = np.random.default_rng(9)
        inputs = rng.normal(size=(20, 6))
        labels = rng.integers(0, 3, size=20)
        initial_loss = small_model.loss(inputs, labels)
        for _ in range(30):
            gradient = small_model.mean_gradient(inputs, labels)
            small_model.set_flat_parameters(
                small_model.get_flat_parameters() - 0.5 * gradient
            )
        assert small_model.loss(inputs, labels) < initial_loss
