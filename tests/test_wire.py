"""Wire-format tests: golden-vector round trips and codec properties.

Mirrors the style of ``tests/test_keys_prg.py``: every message type has
a frozen-hex golden vector pinning the byte layout (so accidental format
changes fail loudly — recorded traces and cross-version negotiation
depend on stable bytes), plus Hypothesis encode/decode property tests
and malformed-frame rejection coverage.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError
from repro.secagg.shamir import LimbShares, Share
from repro.secagg.wire import (
    PROTOCOL_V1,
    WIRE_FORMAT_VERSION,
    WIRE_MAGIC,
    Advertise,
    Hello,
    MaskedInput,
    NegotiatedHeader,
    Reject,
    Resume,
    SealedShares,
    UnmaskRequest,
    UnmaskResponse,
    Welcome,
    WireStats,
    decode_frames,
    decode_message,
    encode_message,
)

HEADER = NegotiatedHeader(version=PROTOCOL_V1, mask_prg="sha256-ctr")

#: One representative message per wire type, with its frozen encoding
#: under ``HEADER``.  Regenerate only on a deliberate format-version
#: bump — these bytes are the compatibility contract.
GOLDEN = {
    "hello": (
        Hello(sender=7),
        "534701011900000001000a7368613235362d63747207000000",
    ),
    "advertise": (
        Advertise(
            index=3, channel_public=0x1F2E3D4C5B6A7988, mask_public=2
        ),
        "534701022600000001000a7368613235362d637472"
        "03000000080088796a5b4c3d2e1f010002",
    ),
    "sealed-shares": (
        SealedShares(
            sender=2, recipient=5, ciphertext=bytes.fromhex("deadbeef00")
        ),
        "534701032600000001000a7368613235362d637472"
        "020000000500000005000000deadbeef00",
    ),
    "masked-input": (
        MaskedInput(
            sender=4,
            vector=np.array([0, 1, 65535, 2**40], dtype=np.int64),
        ),
        "534701043d00000001000a7368613235362d637472"
        "0400000004000000000000000000000001000000000000"
        "00ffff0000000000000000000000010000",
    ),
    "unmask-request": (
        UnmaskRequest(survivors=frozenset({1, 3, 2}), dropouts=frozenset({9})),
        "534701052d00000001000a7368613235362d637472"
        "030000000100000002000000030000000100000009000000",
    ),
    "unmask-response": (
        UnmaskResponse(
            responder=6,
            seed_shares={2: Share(x=6, y=123456789), 5: Share(x=6, y=1)},
            key_shares={9: LimbShares(x=6, ys=(10, 2**61 - 2))},
        ),
        # Columnar seed section: count, width, peer/x/y columns; then
        # the per-peer key section.
        "534701065100000001000a7368613235362d637472"
        "060000000200000004"
        "02000000050000000600000006000000"
        "15cd5b0701000000"
        "010000000900000006000000020001000a0800feffffffffffff1f",
    ),
    "reject": (
        Reject(client=8, reason="unsupported protocol version 9"),
        "534701073900000001000a7368613235362d637472"
        "080000001e00756e737570706f727465642070726f746f636f6c2076"
        "657273696f6e2039",
    ),
    "welcome": (
        Welcome(client=5, round_id=0x0102030405060708),
        "534701082100000001000a7368613235362d637472"
        "050000000807060504030201",
    ),
    "resume": (
        Resume(sender=9, round_id=3, deliveries=2),
        "534701092200000001000a7368613235362d637472"
        "09000000030000000000000002",
    ),
}


class TestGoldenVectors:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_encoding_matches_golden(self, name):
        message, expected_hex = GOLDEN[name]
        assert encode_message(message, HEADER).hex() == expected_hex

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_golden_bytes_decode_back(self, name):
        message, golden_hex = GOLDEN[name]
        header, decoded = decode_message(bytes.fromhex(golden_hex))
        assert header == HEADER
        assert decoded == message

    def test_header_variants_are_pinned_too(self):
        frame = encode_message(
            Hello(sender=1), NegotiatedHeader(version=2, mask_prg="philox")
        )
        assert frame.hex() == (
            "53470101150000000200067068696c6f7801000000"
        )

    def test_encoding_is_deterministic_under_set_order(self):
        # frozenset iteration order varies; the encoding must not.
        a = UnmaskRequest(
            survivors=frozenset([3, 1, 2]), dropouts=frozenset([5, 4])
        )
        b = UnmaskRequest(
            survivors=frozenset([2, 3, 1]), dropouts=frozenset([4, 5])
        )
        assert encode_message(a, HEADER) == encode_message(b, HEADER)


class TestFrameStream:
    def test_concatenated_frames_decode_in_order(self):
        messages = [Hello(sender=1), Advertise(3, 17, 23), Hello(sender=2)]
        datagram = b"".join(encode_message(m, HEADER) for m in messages)
        decoded = decode_frames(datagram)
        assert [m for _, m in decoded] == messages
        assert all(h == HEADER for h, _ in decoded)

    def test_decode_message_rejects_multi_frame_datagrams(self):
        datagram = encode_message(Hello(1), HEADER) * 2
        with pytest.raises(AggregationError, match="exactly one"):
            decode_message(datagram)

    def test_empty_datagram_decodes_to_no_frames(self):
        assert decode_frames(b"") == []


class TestMalformedFrames:
    def test_bad_magic_rejected(self):
        frame = bytearray(encode_message(Hello(1), HEADER))
        frame[0:2] = b"XX"
        with pytest.raises(AggregationError, match="magic"):
            decode_frames(bytes(frame))

    def test_unknown_format_version_rejected(self):
        frame = bytearray(encode_message(Hello(1), HEADER))
        frame[2] = WIRE_FORMAT_VERSION + 1
        with pytest.raises(AggregationError, match="format version"):
            decode_frames(bytes(frame))

    def test_unknown_message_type_rejected(self):
        frame = bytearray(encode_message(Hello(1), HEADER))
        frame[3] = 99
        with pytest.raises(AggregationError, match="message type"):
            decode_frames(bytes(frame))

    def test_truncated_frame_rejected(self):
        frame = encode_message(Advertise(3, 17, 23), HEADER)
        with pytest.raises(AggregationError, match="malformed|truncated"):
            decode_frames(frame[:-3])

    def test_trailing_body_bytes_rejected(self):
        frame = bytearray(encode_message(Hello(1), HEADER))
        # Grow the declared length and append a stray byte.
        frame += b"\x00"
        frame[4:8] = len(frame).to_bytes(4, "little")
        with pytest.raises(AggregationError, match="trailing"):
            decode_frames(bytes(frame))

    def test_truncated_header_rejected(self):
        with pytest.raises(AggregationError, match="truncated header"):
            decode_frames(WIRE_MAGIC + b"\x01")

    def test_negative_integers_unencodable(self):
        with pytest.raises(AggregationError, match=">= 0"):
            encode_message(Advertise(1, -5, 2), HEADER)


class TestHypothesisRoundTrips:
    @given(
        sender=st.integers(min_value=0, max_value=2**32 - 1),
        version=st.integers(min_value=0, max_value=2**16 - 1),
        prg=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=24,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_hello_round_trip(self, sender, version, prg):
        header = NegotiatedHeader(version=version, mask_prg=prg)
        decoded_header, decoded = decode_message(
            encode_message(Hello(sender=sender), header)
        )
        assert decoded_header == header
        assert decoded == Hello(sender=sender)

    @given(
        index=st.integers(min_value=1, max_value=2**32 - 1),
        channel=st.integers(min_value=0, max_value=2**1100 - 1),
        mask=st.integers(min_value=0, max_value=2**1100 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_advertise_round_trip(self, index, channel, mask):
        message = Advertise(
            index=index, channel_public=channel, mask_public=mask
        )
        assert decode_message(encode_message(message, HEADER))[1] == message

    @given(
        sender=st.integers(min_value=1, max_value=2**32 - 1),
        recipient=st.integers(min_value=1, max_value=2**32 - 1),
        ciphertext=st.binary(max_size=256),
    )
    @settings(max_examples=50, deadline=None)
    def test_sealed_shares_round_trip(self, sender, recipient, ciphertext):
        message = SealedShares(sender, recipient, ciphertext)
        assert decode_message(encode_message(message, HEADER))[1] == message

    @given(
        sender=st.integers(min_value=1, max_value=2**32 - 1),
        values=st.lists(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            max_size=32,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_masked_input_round_trip(self, sender, values):
        message = MaskedInput(
            sender=sender, vector=np.asarray(values, dtype=np.int64)
        )
        decoded = decode_message(encode_message(message, HEADER))[1]
        assert decoded == message
        assert decoded.vector.dtype == np.int64

    @given(
        survivors=st.frozensets(
            st.integers(min_value=1, max_value=2**32 - 1), max_size=16
        ),
        dropouts=st.frozensets(
            st.integers(min_value=1, max_value=2**32 - 1), max_size=16
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_unmask_request_round_trip(self, survivors, dropouts):
        message = UnmaskRequest(survivors=survivors, dropouts=dropouts)
        assert decode_message(encode_message(message, HEADER))[1] == message

    @given(
        responder=st.integers(min_value=1, max_value=2**32 - 1),
        seeds=st.dictionaries(
            st.integers(min_value=1, max_value=2**32 - 1),
            st.tuples(
                st.integers(min_value=1, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=2**128 - 1),
            ),
            max_size=8,
        ),
        keys=st.dictionaries(
            st.integers(min_value=1, max_value=2**32 - 1),
            st.tuples(
                st.integers(min_value=1, max_value=2**32 - 1),
                st.lists(
                    st.integers(min_value=0, max_value=2**128 - 1),
                    max_size=5,
                ),
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_unmask_response_round_trip(self, responder, seeds, keys):
        message = UnmaskResponse(
            responder=responder,
            seed_shares={
                peer: Share(x=x, y=y) for peer, (x, y) in seeds.items()
            },
            key_shares={
                peer: LimbShares(x=x, ys=tuple(ys))
                for peer, (x, ys) in keys.items()
            },
        )
        assert decode_message(encode_message(message, HEADER))[1] == message

    @given(
        client=st.integers(min_value=1, max_value=2**32 - 1),
        reason=st.text(max_size=120),
    )
    @settings(max_examples=50, deadline=None)
    def test_reject_round_trip(self, client, reason):
        message = Reject(client=client, reason=reason)
        assert decode_message(encode_message(message, HEADER))[1] == message

    @given(
        client=st.integers(min_value=0, max_value=2**32 - 1),
        round_id=st.integers(min_value=0, max_value=2**64 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_welcome_round_trip(self, client, round_id):
        message = Welcome(client=client, round_id=round_id)
        assert decode_message(encode_message(message, HEADER))[1] == message

    @given(
        sender=st.integers(min_value=1, max_value=2**32 - 1),
        round_id=st.integers(min_value=0, max_value=2**64 - 1),
        deliveries=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=50, deadline=None)
    def test_resume_round_trip(self, sender, round_id, deliveries):
        message = Resume(
            sender=sender, round_id=round_id, deliveries=deliveries
        )
        assert decode_message(encode_message(message, HEADER))[1] == message


class TestWireStats:
    def test_totals_and_phase_breakdown(self):
        stats = WireStats()
        stats.record_upload("advertise", 1, 100, messages=2)
        stats.record_upload("advertise", 2, 50)
        stats.record_download("advertise", 1, 400, messages=4)
        stats.record_upload("unmask", 1, 25)
        assert stats.total_messages == 8
        assert stats.total_bytes == 575
        phases = stats.phase_totals()
        assert phases["advertise"] == {
            "up_messages": 3,
            "up_bytes": 150,
            "down_messages": 4,
            "down_bytes": 400,
        }
        assert phases["unmask"]["up_bytes"] == 25

    def test_client_totals(self):
        stats = WireStats()
        stats.record_upload("advertise", 1, 10)
        stats.record_download("share-keys", 1, 30, messages=3)
        stats.record_upload("advertise", 2, 7)
        per_client = stats.client_totals()
        assert per_client[1] == {
            "up_messages": 1,
            "up_bytes": 10,
            "down_messages": 3,
            "down_bytes": 30,
        }
        assert per_client[2]["up_bytes"] == 7

    def test_merge_folds_ledgers(self):
        a, b = WireStats(), WireStats()
        a.record_upload("advertise", 1, 10)
        b.record_upload("advertise", 1, 5, messages=2)
        b.record_download("unmask", 3, 8)
        merged = WireStats().merge([a, b])
        assert merged.total_messages == 4
        assert merged.total_bytes == 23
        assert merged.uploads["advertise"][1].bytes == 15

    def test_stats_survive_pickling(self):
        # Sharded rounds carry ledgers across process boundaries.
        import pickle

        stats = WireStats()
        stats.record_upload("advertise", 1, 10)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.total_bytes == 10

    def test_snapshot_is_a_deep_independent_copy(self):
        stats = WireStats()
        stats.record_upload("advertise", 1, 10)
        frozen = stats.snapshot()
        stats.record_upload("advertise", 1, 5, messages=2)
        stats.record_download("unmask", 2, 8)
        assert frozen.total_bytes == 10
        assert frozen.total_messages == 1
        assert stats.total_bytes == 23

    def test_diff_yields_sparse_interval_delta(self):
        stats = WireStats()
        stats.record_upload("advertise", 1, 10)
        stats.record_upload("advertise", 2, 7)
        before = stats.snapshot()
        stats.record_upload("advertise", 1, 5, messages=2)
        stats.record_download("unmask", 3, 8)
        delta = stats.diff(before)
        # Only the cells that moved appear in the delta.
        assert delta.total_bytes == 13
        assert delta.total_messages == 3
        assert 2 not in delta.uploads["advertise"]
        assert delta.phase_totals() == {
            "advertise": {
                "up_messages": 2,
                "up_bytes": 5,
                "down_messages": 0,
                "down_bytes": 0,
            },
            "unmask": {
                "up_messages": 0,
                "up_bytes": 0,
                "down_messages": 1,
                "down_bytes": 8,
            },
        }

    def test_diff_of_equal_snapshots_is_empty(self):
        stats = WireStats()
        stats.record_upload("advertise", 1, 10)
        delta = stats.diff(stats.snapshot())
        assert delta.total_bytes == 0
        assert delta.uploads == {} and delta.downloads == {}

    def test_diff_refuses_out_of_order_snapshots(self):
        stats = WireStats()
        stats.record_upload("advertise", 1, 10)
        later = stats.snapshot()
        later.record_upload("advertise", 1, 5)
        with pytest.raises(ValueError, match="went backwards"):
            stats.diff(later)

    def test_diff_refuses_foreign_streams(self):
        stats = WireStats()
        stats.record_upload("advertise", 1, 10)
        other = WireStats()
        other.record_download("unmask", 9, 3)
        with pytest.raises(ValueError, match="vanished"):
            stats.diff(other)


class TestHeaderValidation:
    def test_version_must_fit_uint16(self):
        with pytest.raises(AggregationError, match="uint16"):
            NegotiatedHeader(version=2**16, mask_prg="sha256-ctr")

    def test_prg_name_must_be_ascii(self):
        with pytest.raises(AggregationError, match="ascii"):
            NegotiatedHeader(version=1, mask_prg="φ-prg")

    def test_prg_name_must_be_nonempty(self):
        with pytest.raises(AggregationError, match="1..255"):
            NegotiatedHeader(version=1, mask_prg="")

    def test_headers_are_value_objects(self):
        assert NegotiatedHeader(1, "philox") == NegotiatedHeader(1, "philox")
        assert NegotiatedHeader(1, "philox") != NegotiatedHeader(2, "philox")
        assert dataclasses.asdict(NegotiatedHeader(1, "philox")) == {
            "version": 1,
            "mask_prg": "philox",
        }
