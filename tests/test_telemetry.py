"""Unit tests for the telemetry layer: registry, exporters, spans.

The merge-safety properties (order-independence, count/sum
preservation) carry the whole observability design — shard snapshots
relabeled and absorbed across process boundaries must equal in-process
metering — so they get property-based coverage alongside the pinned
exposition format and the strict parser.
"""

from __future__ import annotations

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simulation.clock import SimulatedClock
from repro.telemetry import (
    COHORT_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
    parse_prometheus,
    time_phase,
    to_json_lines,
    to_prometheus,
    trace_to_json_lines,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_sets_and_moves(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8.0

    def test_histogram_quantiles_interpolate(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(6.05)
        # p50 lands inside the (0.1, 1.0] bucket.
        assert 0.1 < child.quantile(0.5) <= 1.0

    def test_labels_are_memoised_children(self):
        family = MetricsRegistry().counter("by_phase_total")
        first = family.labels(phase="advertise")
        second = family.labels(phase="advertise")
        other = family.labels(phase="unmask")
        assert first is second and first is not other

    def test_label_name_le_is_reserved(self):
        family = MetricsRegistry().histogram("h_seconds")
        with pytest.raises(ConfigurationError):
            family.labels(le="0.5")

    def test_family_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("thing_total")

    def test_default_buckets_are_log_scale_and_fixed(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 21
        ratios = {
            round(b / a, 6)
            for a, b in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        }
        assert ratios == {2.0}
        assert COHORT_SIZE_BUCKETS[0] == 1.0


class TestSnapshots:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("messages_total").labels(direction="up").inc(3)
        registry.gauge("epsilon").set(1.5)
        hist = registry.histogram("latency_seconds")
        hist.observe(0.002)
        hist.observe(0.004)
        return registry

    def test_merge_adds_counters_and_histograms(self):
        snapshot = self._registry().snapshot()
        doubled = snapshot.merge(snapshot)
        assert doubled.value("messages_total", direction="up") == 6.0
        series = doubled.get("latency_seconds")
        assert series.count == 4 and series.sum == pytest.approx(0.012)

    def test_merge_gauges_right_biased(self):
        a = MetricsRegistry()
        a.gauge("epsilon").set(1.0)
        b = MetricsRegistry()
        b.gauge("epsilon").set(2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.value("epsilon") == 2.0

    def test_with_labels_existing_labels_win(self):
        snapshot = self._registry().snapshot().with_labels(
            shard="3", direction="down"
        )
        # The unlabeled series gain both labels ...
        assert snapshot.value("epsilon", shard="3", direction="down") == 1.5
        # ... but a series that already had `direction` keeps its own.
        assert snapshot.value(
            "messages_total", direction="up", shard="3"
        ) == 3.0

    def test_snapshot_pickles(self):
        snapshot = self._registry().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot

    def test_absorb_folds_relabeled_shard_snapshot(self):
        parent = self._registry()
        shard = MetricsRegistry()
        shard.counter("messages_total").labels(direction="up").inc(7)
        parent.absorb(shard.snapshot().with_labels(shard="0"))
        snapshot = parent.snapshot()
        assert snapshot.value("messages_total", direction="up") == 3.0
        assert snapshot.value(
            "messages_total", direction="up", shard="0"
        ) == 7.0
        assert snapshot.sum_values("messages_total") == 10.0

    def test_aggregate_merges_label_subsets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("phase_seconds")
        hist.labels(phase="advertise", shard="0").observe(0.002)
        hist.labels(phase="advertise", shard="1").observe(0.002)
        hist.labels(phase="unmask", shard="0").observe(0.002)
        merged = registry.snapshot().aggregate(
            "phase_seconds", phase="advertise"
        )
        assert merged.count == 2
        assert registry.snapshot().aggregate("phase_seconds", phase="x") is None


# Observations drawn over several bucket orders of magnitude, split
# into arbitrary groups: merging the groups' snapshots in any order
# must equal observing everything into one histogram.
_OBSERVATIONS = st.lists(
    st.floats(min_value=1e-5, max_value=100.0, allow_nan=False),
    min_size=0,
    max_size=40,
)


class TestHistogramMergeProperties:
    @given(values=_OBSERVATIONS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_order_independent_and_preserving(self, values, data):
        groups: list[list[float]] = [[]]
        for value in values:
            index = data.draw(
                st.integers(min_value=0, max_value=len(groups)),
                label="group",
            )
            if index == len(groups):
                groups.append([])
            groups[min(index, len(groups) - 1)].append(value)

        def snapshot_of(observations: list[float]) -> MetricsSnapshot:
            registry = MetricsRegistry()
            hist = registry.histogram("h_seconds")
            for observation in observations:
                hist.observe(observation)
            return registry.snapshot()

        direct = snapshot_of(values).get("h_seconds")
        permutation = data.draw(
            st.permutations(list(range(len(groups)))), label="order"
        )
        merged = merge_snapshots(
            [snapshot_of(groups[i]) for i in permutation]
        ).get("h_seconds")
        if not values:
            assert merged is None or merged.count == 0
            return
        assert merged.count == direct.count == len(values)
        assert merged.sum == pytest.approx(direct.sum)
        assert merged.buckets == direct.buckets


class TestExposition:
    def test_format_is_pinned(self):
        registry = MetricsRegistry()
        registry.counter("msgs_total", "Messages.").labels(dir="up").inc(3)
        registry.gauge("eps", "Budget.").set(1.5)
        registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0)
                           ).observe(0.5)
        assert to_prometheus(registry.snapshot()) == (
            "# HELP eps Budget.\n"
            "# TYPE eps gauge\n"
            "eps 1.5\n"
            "# HELP lat_seconds Latency.\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 0\n'
            'lat_seconds_bucket{le="1"} 1\n'
            'lat_seconds_bucket{le="+Inf"} 1\n'
            "lat_seconds_sum 0.5\n"
            "lat_seconds_count 1\n"
            "# HELP msgs_total Messages.\n"
            "# TYPE msgs_total counter\n"
            'msgs_total{dir="up"} 3\n'
        )

    def test_label_values_escape_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("odd_total").labels(
            detail='quote " slash \\ newline \n done'
        ).inc()
        text = to_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        assert parsed.value(
            "odd_total", detail='quote " slash \\ newline \n done'
        ) == 1.0

    def test_parse_round_trips_every_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("phase_seconds")
        hist.labels(phase="advertise").observe(0.01)
        hist.labels(phase="unmask").observe(0.5)
        registry.counter("rounds_total").labels(outcome="completed").inc(2)
        snapshot = registry.snapshot()
        parsed = parse_prometheus(to_prometheus(snapshot))
        assert parsed.types == {
            "phase_seconds": "histogram",
            "rounds_total": "counter",
        }
        assert parsed.value("rounds_total", outcome="completed") == 2.0
        assert parsed.value(
            "phase_seconds_count", phase="advertise"
        ) == 1.0

    @pytest.mark.parametrize(
        "text",
        [
            "what even is this line\n",
            # Sample before its TYPE declaration.
            "rounds_total 1\n",
            # Duplicate series.
            "# TYPE r_total counter\nr_total 1\nr_total 2\n",
            # Histogram without a +Inf bucket.
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 1\nh_sum 0.5\nh_count 1\n',
            # Non-monotone cumulative buckets.
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 2\nh_bucket{le="1.0"} 1\n'
            'h_bucket{le="+Inf"} 2\nh_sum 0.3\nh_count 2\n',
            # +Inf bucket disagreeing with _count.
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\nh_sum 0.3\nh_count 2\n',
        ],
    )
    def test_parser_rejects_malformed_exposition(self, text):
        with pytest.raises(ValueError):
            parse_prometheus(text)

    def test_json_lines_exports(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        lines = to_json_lines(registry.snapshot()).splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["c_total"]

    def test_trace_events_to_json_lines(self):
        import json

        clock = SimulatedClock()
        from repro.simulation.events import SimulationTrace

        trace = SimulationTrace(clock)
        trace.record("phase-timeout", missing={3, 1}, phase="unmask")
        (line,) = trace_to_json_lines(trace.events)
        decoded = json.loads(line)
        assert decoded["kind"] == "phase-timeout"
        assert decoded["details"]["missing"] == [1, 3]  # sets sort


class TestSpans:
    def test_time_phase_observes_both_clocks(self):
        clock = SimulatedClock()
        registry = MetricsRegistry()
        sim = registry.histogram("sim_seconds")
        wall = registry.histogram("wall_seconds")
        with time_phase(
            "advertise", clock=clock, sim_histogram=sim, wall_histogram=wall
        ) as span:
            clock.run(clock.sleep(2.5))
        assert span.sim_duration == pytest.approx(2.5)
        assert span.wall_duration >= 0.0
        snapshot = registry.snapshot()
        assert snapshot.get("sim_seconds").count == 1
        assert snapshot.get("sim_seconds").sum == pytest.approx(2.5)
        assert snapshot.get("wall_seconds").count == 1

    def test_time_phase_without_clock_skips_sim_histogram(self):
        registry = MetricsRegistry()
        sim = registry.histogram("sim_seconds")
        with time_phase("merge", sim_histogram=sim) as span:
            pass
        assert span.sim_duration is None
        assert registry.snapshot().get("sim_seconds") is None

    def test_spans_observe_on_exception(self):
        registry = MetricsRegistry()
        wall = registry.histogram("wall_seconds")
        with pytest.raises(RuntimeError):
            with time_phase("merge", wall_histogram=wall):
                raise RuntimeError("boom")
        assert registry.snapshot().get("wall_seconds").count == 1
