"""Tests for the privacy-loss-distribution (FFT) accountant."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.divergences import skellam_rdp, smm_rdp
from repro.accounting.pld import (
    PrivacyLossDistribution,
    pld_from_pmfs,
    skellam_pair_pmfs,
    skellam_pmf,
    smm_pair_pmfs,
    subsampled_pair,
    tight_epsilon,
)
from repro.accounting.rdp import best_epsilon
from repro.errors import PrivacyAccountingError


def randomized_response_pmfs(p):
    """Worst-case pair for randomized response with truth probability p."""
    return np.array([p, 1.0 - p]), np.array([1.0 - p, p])


def direct_hockey_stick(p, q, epsilon):
    """Reference delta(eps) computed directly from the PMFs."""
    ratio_mass = 0.0
    for pi, qi in zip(p, q):
        if pi > 0 and (qi == 0 or math.log(pi / qi) > epsilon):
            ratio_mass += pi - (math.exp(epsilon) * qi if qi > 0 else 0.0)
    return max(0.0, ratio_mass)


class TestPldConstruction:
    def test_identical_pmfs_give_zero_epsilon(self):
        p = np.array([0.2, 0.5, 0.3])
        pld = pld_from_pmfs(p, p)
        assert pld.epsilon(1e-5) == 0.0

    def test_disjoint_supports_are_pure_infinity(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        pld = pld_from_pmfs(p, q)
        assert pld.infinity_mass == pytest.approx(1.0)
        with pytest.raises(PrivacyAccountingError, match="no finite"):
            pld.epsilon(1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PrivacyAccountingError, match="shapes"):
            pld_from_pmfs(np.array([1.0]), np.array([0.5, 0.5]))

    def test_negative_mass_rejected(self):
        with pytest.raises(PrivacyAccountingError, match="non-negative"):
            pld_from_pmfs(np.array([-0.1, 1.1]), np.array([0.5, 0.5]))

    def test_truncated_tail_goes_to_infinity_bucket(self):
        p = np.array([0.5, 0.4])  # sums to 0.9: 0.1 missing
        q = np.array([0.5, 0.5])
        pld = pld_from_pmfs(p, q)
        assert pld.infinity_mass == pytest.approx(0.1, abs=1e-12)

    def test_delta_at_zero_is_total_variation(self):
        p = np.array([0.7, 0.2, 0.1])
        q = np.array([0.4, 0.35, 0.25])
        pld = pld_from_pmfs(p, q, grid_step=1e-6)
        tv = 0.5 * float(np.abs(p - q).sum())
        assert pld.delta(0.0) == pytest.approx(tv, abs=1e-4)

    def test_randomized_response_epsilon(self):
        """RR(p) has pure-DP epsilon log(p/(1-p)); at tiny delta the PLD
        epsilon must approach it (from below)."""
        p = 0.75
        pld = pld_from_pmfs(*randomized_response_pmfs(p), grid_step=1e-5)
        true_eps = math.log(p / (1.0 - p))
        assert pld.epsilon(1e-9) == pytest.approx(true_eps, abs=1e-3)

    def test_pessimistic_rounding(self):
        """Grid rounding must never under-report delta."""
        p = np.array([0.6, 0.4])
        q = np.array([0.3, 0.7])
        coarse = pld_from_pmfs(p, q, grid_step=0.25)
        for eps in (0.0, 0.1, 0.5):
            assert coarse.delta(eps) >= direct_hockey_stick(p, q, eps) - 1e-12

    @given(
        masses=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=6
        ),
        shift=st.integers(min_value=1, max_value=3),
        epsilon=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_delta_dominates_exact_value(self, masses, shift, epsilon):
        weights = np.array(masses)
        p = weights / weights.sum()
        q = np.roll(p, shift)
        pld = pld_from_pmfs(p, q, grid_step=1e-3)
        exact = direct_hockey_stick(p, q, epsilon)
        assert pld.delta(epsilon) >= exact - 1e-9
        # ... and is within one grid step's worth of pessimism.
        assert pld.delta(epsilon) <= direct_hockey_stick(
            p, q, epsilon - 1e-3
        ) + 1e-9


class TestComposition:
    def test_point_mass_composes_linearly(self):
        pld = PrivacyLossDistribution(
            grid_step=0.1,
            min_index=5,  # loss 0.5 with certainty
            probabilities=np.array([1.0]),
            infinity_mass=0.0,
        )
        composed = pld.compose(4)  # loss 2.0 with certainty
        assert composed.delta(1.9) == pytest.approx(1.0 - math.exp(-0.1))
        assert composed.delta(2.0) == pytest.approx(0.0, abs=1e-12)

    def test_compose_one_is_identity(self):
        p, q = randomized_response_pmfs(0.7)
        pld = pld_from_pmfs(p, q)
        assert pld.compose(1) is pld

    def test_invalid_count_rejected(self):
        p, q = randomized_response_pmfs(0.7)
        with pytest.raises(PrivacyAccountingError, match="count"):
            pld_from_pmfs(p, q).compose(0)

    def test_epsilon_grows_sublinearly(self):
        """Strong composition: eps(T) ~ sqrt(T) for small per-step loss."""
        p, q = skellam_pair_pmfs(shift=1, total_lambda=50.0)
        pld = pld_from_pmfs(p, q)
        eps_1 = pld.epsilon(1e-5)
        eps_100 = pld.compose(100).epsilon(1e-5)
        assert eps_100 < 100 * eps_1
        assert eps_100 > math.sqrt(100) * eps_1 * 0.3

    def test_composition_matches_two_step_convolution(self):
        p, q = randomized_response_pmfs(0.6)
        pld = pld_from_pmfs(p, q, grid_step=1e-4)
        via_fft = pld.compose(2)
        # The two-step delta can be computed exactly from the four
        # composed outcomes of the product mechanism.
        p2 = np.outer(p, p).ravel()
        q2 = np.outer(q, q).ravel()
        exact = direct_hockey_stick(p2, q2, 0.5)
        assert via_fft.delta(0.5) == pytest.approx(exact, abs=1e-3)

    def test_infinity_mass_accumulates(self):
        p = np.array([0.9, 0.1])
        q = np.array([1.0, 0.0])
        pld = pld_from_pmfs(p, q)
        composed = pld.compose(3)
        # Survives only if all three runs avoid the q=0 outcome.
        assert composed.infinity_mass == pytest.approx(
            1.0 - 0.9**3, abs=1e-9
        )


class TestSkellamPld:
    def test_pmf_is_normalised(self):
        support = np.arange(-200, 201)
        assert skellam_pmf(support, 10.0).sum() == pytest.approx(1.0)

    def test_invalid_lambda_rejected(self):
        with pytest.raises(PrivacyAccountingError, match="lambda"):
            skellam_pmf(np.arange(-5, 6), 0.0)

    def test_pair_pmfs_are_shifted_copies(self):
        p, q = skellam_pair_pmfs(shift=3, total_lambda=20.0)
        np.testing.assert_allclose(p[3:], q[:-3], atol=1e-15)

    def test_pld_epsilon_below_rdp_epsilon(self):
        """The tight PLD epsilon must be dominated by the RDP bound
        (Theorem 3 + Lemma 3 conversion) — the key cross-check."""
        total_lambda, shift, delta = 30.0, 2, 1e-5
        p, q = skellam_pair_pmfs(shift, total_lambda)
        pld_eps = tight_epsilon(p, q, delta)
        rdp_eps, _ = best_epsilon(
            range(2, 101),
            lambda a: skellam_rdp(a, shift**2, total_lambda, shift),
            delta,
        )
        assert pld_eps < rdp_eps

    def test_pld_epsilon_close_to_rdp_for_gaussian_regime(self):
        """At large lambda the RDP bound is near-tight: the gap should be
        a modest constant factor, not orders of magnitude."""
        total_lambda, shift, delta = 500.0, 2, 1e-5
        p, q = skellam_pair_pmfs(shift, total_lambda)
        pld_eps = tight_epsilon(p, q, delta)
        rdp_eps, _ = best_epsilon(
            range(2, 101),
            lambda a: skellam_rdp(a, shift**2, total_lambda, shift),
            delta,
        )
        assert rdp_eps / pld_eps < 3.0

    def test_epsilon_decreases_with_noise(self):
        p1, q1 = skellam_pair_pmfs(1, 10.0)
        p2, q2 = skellam_pair_pmfs(1, 100.0)
        assert tight_epsilon(p2, q2, 1e-5) < tight_epsilon(p1, q1, 1e-5)

    def test_epsilon_increases_with_shift(self):
        p1, q1 = skellam_pair_pmfs(1, 50.0)
        p2, q2 = skellam_pair_pmfs(4, 50.0)
        assert tight_epsilon(p1, q1, 1e-5) < tight_epsilon(p2, q2, 1e-5)


class TestSmmPld:
    def test_integer_value_matches_pure_skellam(self):
        p_smm, q_smm = smm_pair_pmfs(2.0, 40.0)
        p_sk, q_sk = skellam_pair_pmfs(2, 40.0)
        np.testing.assert_allclose(p_smm, p_sk, atol=1e-15)
        np.testing.assert_allclose(q_smm, q_sk, atol=1e-15)

    def test_mixture_mean_is_value(self):
        value = 1.3
        p, _ = smm_pair_pmfs(value, 25.0)
        support = np.arange(len(p)) - (len(p) - 1) // 2
        assert float(np.sum(support * p)) == pytest.approx(value, abs=1e-9)

    def test_pld_epsilon_below_theorem5_epsilon(self):
        """Tight PLD accounting must be dominated by Theorem 5's bound."""
        value, total_lambda, delta = 1.5, 200.0, 1e-5
        frac = value - math.floor(value)
        c = value**2 + frac - frac**2
        p, q = smm_pair_pmfs(value, total_lambda)
        pld_eps = tight_epsilon(p, q, delta)
        rdp_eps, _ = best_epsilon(
            range(2, 101),
            lambda a: smm_rdp(a, c, total_lambda, math.ceil(value)),
            delta,
        )
        assert pld_eps < rdp_eps

    def test_fractional_value_costs_more_than_floor_less_than_ceil(self):
        """Monotonicity of the mixture loss in the record value."""
        total_lambda, delta = 40.0, 1e-5
        eps_floor = tight_epsilon(*smm_pair_pmfs(1.0, total_lambda), delta)
        eps_mid = tight_epsilon(*smm_pair_pmfs(1.5, total_lambda), delta)
        eps_ceil = tight_epsilon(*smm_pair_pmfs(2.0, total_lambda), delta)
        assert eps_floor < eps_mid < eps_ceil


class TestSubsampling:
    def test_rate_one_is_identity(self):
        p, q = randomized_response_pmfs(0.8)
        mixture, base = subsampled_pair(p, q, 1.0)
        np.testing.assert_array_equal(mixture, p)
        np.testing.assert_array_equal(base, q)

    def test_rate_zero_removes_all_loss(self):
        p, q = randomized_response_pmfs(0.8)
        mixture, base = subsampled_pair(p, q, 0.0)
        np.testing.assert_allclose(mixture, base)

    def test_invalid_rate_rejected(self):
        p, q = randomized_response_pmfs(0.8)
        with pytest.raises(PrivacyAccountingError, match="sampling rate"):
            subsampled_pair(p, q, 1.5)

    def test_subsampling_amplifies_privacy(self):
        p, q = skellam_pair_pmfs(2, 25.0)
        full = tight_epsilon(p, q, 1e-5)
        sampled = tight_epsilon(p, q, 1e-5, sampling_rate=0.1)
        assert sampled < 0.5 * full

    def test_composed_subsampled_run_matches_fl_setting(self):
        """A miniature Algorithm-3 accounting run: T subsampled rounds."""
        p, q = smm_pair_pmfs(1.2, 60.0)
        eps = tight_epsilon(
            p, q, 1e-5, compositions=50, sampling_rate=0.05
        )
        single = tight_epsilon(p, q, 1e-5)
        assert 0 < eps < 50 * single


class TestEpsilonSearch:
    def test_epsilon_monotone_in_delta(self):
        p, q = skellam_pair_pmfs(2, 25.0)
        pld = pld_from_pmfs(p, q)
        assert pld.epsilon(1e-7) > pld.epsilon(1e-4) > pld.epsilon(1e-2)

    def test_delta_roundtrip(self):
        p, q = skellam_pair_pmfs(1, 30.0)
        pld = pld_from_pmfs(p, q)
        eps = pld.epsilon(1e-5)
        assert pld.delta(eps) <= 1e-5 + 1e-12

    def test_invalid_delta_rejected(self):
        p, q = randomized_response_pmfs(0.7)
        pld = pld_from_pmfs(p, q)
        with pytest.raises(PrivacyAccountingError, match="delta"):
            pld.epsilon(0.0)

    def test_negative_epsilon_rejected(self):
        p, q = randomized_response_pmfs(0.7)
        with pytest.raises(PrivacyAccountingError, match="epsilon"):
            pld_from_pmfs(p, q).delta(-0.1)
