"""Tests for the vectorised SecAgg kernel layer (repro.secagg.kernels)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.bonawitz import (
    _decode_payload,
    _decode_payload_matrix,
    _encode_payload,
    _encode_payload_matrix,
    run_bonawitz,
)
from repro.secagg.field import DEFAULT_FIELD
from repro.secagg.kernels import (
    batched_reconstruct,
    batched_split,
    keystream,
    keystream_batch,
    lagrange_weights_at_zero,
    sum_signed_masks,
)
from repro.secagg.prg import expand_mask, pairwise_delta
from repro.secagg.shamir import LimbShares, Share

PRIME = DEFAULT_FIELD.prime


@pytest.fixture
def rng():
    return np.random.default_rng(23)


class TestSumSignedMasks:
    def test_matches_per_peer_loop(self):
        seeds = [bytes([i, i + 1]) * 16 for i in range(30)]
        signs = [1 if i % 3 else -1 for i in range(30)]
        modulus, dimension = 2**16, 48
        reference = np.zeros(dimension, dtype=np.int64)
        for seed, sign in zip(seeds, signs):
            reference = np.mod(
                reference + pairwise_delta(seed, dimension, modulus, sign),
                modulus,
            )
        np.testing.assert_array_equal(
            sum_signed_masks(seeds, signs, dimension, modulus), reference
        )

    def test_opposite_signs_cancel(self):
        total = sum_signed_masks(
            [b"shared", b"shared"], [1, -1], 64, 2**12
        )
        np.testing.assert_array_equal(total, 0)

    def test_empty_is_zero(self):
        np.testing.assert_array_equal(
            sum_signed_masks([], [], 5, 16), np.zeros(5, dtype=np.int64)
        )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="signs"):
            sum_signed_masks([b"a"], [1, -1], 4, 16)

    def test_invalid_sign_rejected(self):
        with pytest.raises(ConfigurationError, match="sign"):
            sum_signed_masks([b"a"], [0], 4, 16)

    def test_large_modulus_accumulation_is_exact(self):
        # Sums of near-modulus masks overflow a naive int64 reduction.
        seeds = [bytes([i]) * 32 for i in range(200)]
        modulus = 2**60
        total = sum_signed_masks(seeds, [1] * len(seeds), 8, modulus)
        reference = np.zeros(8, dtype=object)
        for seed in seeds:
            reference = (reference + expand_mask(seed, 8, modulus)) % modulus
        assert total.tolist() == [int(v) for v in reference]

    def test_philox_backend_selectable(self):
        sha = sum_signed_masks([b"s"], [1], 16, 2**10)
        philox = sum_signed_masks([b"s"], [1], 16, 2**10, prg="philox")
        assert not np.array_equal(sha, philox)
        np.testing.assert_array_equal(
            philox, expand_mask(b"s", 16, 2**10, prg="philox")
        )


class TestKeystream:
    def test_deterministic_and_key_sensitive(self):
        a = keystream(b"k" * 32, 100)
        assert np.array_equal(a, keystream(b"k" * 32, 100))
        assert not np.array_equal(a, keystream(b"j" * 32, 100))

    def test_batch_rows_match_single(self):
        keys = [bytes([i]) * 32 for i in range(10)]
        batch = keystream_batch(keys, 77)
        for row, key in enumerate(keys):
            np.testing.assert_array_equal(batch[row], keystream(key, 77))

    def test_prefix_stability(self):
        np.testing.assert_array_equal(
            keystream(b"k", 10), keystream(b"k", 100)[:10]
        )

    def test_zero_length(self):
        assert keystream(b"k", 0).shape == (0,)
        assert keystream_batch([], 10).shape == (0, 10)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError, match="length"):
            keystream(b"k", -1)

    def test_bytewise_uniform(self):
        stream = keystream(b"uniformity", 200_000)
        counts = np.bincount(stream, minlength=256)
        expected = len(stream) / 256
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 340  # 255 dof, 99.9% quantile ~ 330.5


class TestBatchedShamirKernels:
    def test_split_shape_and_roundtrip(self, rng):
        secrets = rng.integers(0, PRIME, size=7, dtype=np.uint64)
        ys = batched_split(secrets, threshold=4, num_shares=9, rng=rng,
                           prime=PRIME)
        assert ys.shape == (7, 9)
        xs = np.arange(1, 10, dtype=np.uint64)
        subset = [0, 3, 5, 8]
        np.testing.assert_array_equal(
            batched_reconstruct(xs[subset], ys[:, subset], PRIME), secrets
        )

    def test_threshold_one_is_constant(self, rng):
        ys = batched_split([123], 1, 5, rng, PRIME)
        assert ys.tolist() == [[123] * 5]

    def test_secret_out_of_field_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="secrets"):
            batched_split([PRIME], 2, 3, rng, PRIME)

    def test_weights_interpolate_known_polynomial(self):
        # f(x) = 5 + 3x + 2x^2 over GF(p): weights at 0 recover f(0).
        xs = np.array([2, 7, 11], dtype=np.uint64)
        f = lambda x: (5 + 3 * x + 2 * x * x) % PRIME
        weights = lagrange_weights_at_zero(xs, PRIME)
        acc = sum(int(w) * f(int(x)) for w, x in zip(weights, xs)) % PRIME
        assert acc == 5

    def test_duplicate_points_rejected(self):
        with pytest.raises(AggregationError, match="duplicate"):
            lagrange_weights_at_zero(np.array([1, 1], dtype=np.uint64), PRIME)

    def test_zero_point_rejected(self):
        with pytest.raises(AggregationError, match="share points"):
            lagrange_weights_at_zero(np.array([0, 1], dtype=np.uint64), PRIME)

    def test_empty_points_rejected(self):
        with pytest.raises(AggregationError, match="zero shares"):
            lagrange_weights_at_zero(np.array([], dtype=np.uint64), PRIME)

    def test_mismatched_row_width_rejected(self):
        with pytest.raises(AggregationError, match="points"):
            batched_reconstruct(
                np.array([1, 2], dtype=np.uint64),
                np.array([[1, 2, 3]], dtype=np.uint64),
                PRIME,
            )

    @given(
        threshold=st.integers(min_value=1, max_value=6),
        num_secrets=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, threshold, num_secrets, seed):
        rng = np.random.default_rng(seed)
        secrets = rng.integers(0, PRIME, size=num_secrets, dtype=np.uint64)
        ys = batched_split(secrets, threshold, threshold + 2, rng, PRIME)
        xs = np.arange(1, threshold + 3, dtype=np.uint64)
        chosen = rng.choice(threshold + 2, size=threshold, replace=False)
        np.testing.assert_array_equal(
            batched_reconstruct(xs[chosen], ys[:, chosen], PRIME), secrets
        )


class TestPayloadMatrixCodec:
    @pytest.mark.parametrize("width", [8, 16])
    @pytest.mark.parametrize("num_limbs", [1, 2, 4])
    def test_matrix_encode_matches_scalar(self, width, num_limbs, rng):
        num = 6
        seed_ys = rng.integers(0, PRIME, size=num, dtype=np.uint64)
        limb_ys = rng.integers(0, PRIME, size=(num_limbs, num),
                               dtype=np.uint64)
        matrix = _encode_payload_matrix(seed_ys, limb_ys, width)
        for position in range(num):
            scalar = _encode_payload(
                Share(x=position + 1, y=int(seed_ys[position])),
                LimbShares(
                    x=position + 1,
                    ys=tuple(int(limb_ys[k, position])
                             for k in range(num_limbs)),
                ),
                width,
            )
            assert matrix[position].tobytes() == scalar

    @pytest.mark.parametrize("width", [8, 16])
    def test_matrix_decode_matches_scalar(self, width, rng):
        num, num_limbs = 5, 2
        seed_ys = rng.integers(0, PRIME, size=num, dtype=np.uint64)
        limb_ys = rng.integers(0, PRIME, size=(num_limbs, num),
                               dtype=np.uint64)
        matrix = _encode_payload_matrix(seed_ys, limb_ys, width)
        decoded = _decode_payload_matrix(matrix, width)
        for position, (seed_share, key_share) in enumerate(decoded):
            reference = _decode_payload(matrix[position].tobytes(), width)
            assert (seed_share, key_share) == reference
            assert seed_share.x == position + 1
            assert seed_share.y == int(seed_ys[position])

    def test_matrix_decode_rejects_limb_mismatch(self, rng):
        matrix = _encode_payload_matrix(
            np.array([1, 2], dtype=np.uint64),
            np.array([[3, 4]], dtype=np.uint64),
            8,
        ).copy()
        matrix[1, 12] = 9  # claim 9 limbs in row 1
        with pytest.raises(AggregationError, match="malformed"):
            _decode_payload_matrix(matrix, 8)


class TestProtocolBackendKnob:
    def test_run_bonawitz_philox_backend(self, rng):
        inputs = rng.integers(0, 2**12, size=(5, 16), dtype=np.int64)
        outcome = run_bonawitz(
            inputs, 2**12, threshold=3, rng=rng, mask_prg="philox"
        )
        np.testing.assert_array_equal(
            outcome.modular_sum, np.mod(inputs.sum(axis=0), 2**12)
        )

    def test_run_bonawitz_philox_with_dropouts(self, rng):
        inputs = rng.integers(0, 2**12, size=(6, 8), dtype=np.int64)
        outcome = run_bonawitz(
            inputs,
            2**12,
            threshold=3,
            rng=rng,
            dropouts={2: 2, 5: 3},
            mask_prg="philox",
        )
        included = sorted(outcome.included)
        expected = np.mod(
            inputs[[i - 1 for i in included]].sum(axis=0), 2**12
        )
        np.testing.assert_array_equal(outcome.modular_sum, expected)

    def test_unknown_backend_rejected(self, rng):
        inputs = rng.integers(0, 2**12, size=(3, 4), dtype=np.int64)
        with pytest.raises(ConfigurationError, match="unknown mask PRG"):
            run_bonawitz(inputs, 2**12, threshold=2, rng=rng, mask_prg="zip")


class TestSmallFieldGuard:
    def test_share_keys_rejects_field_below_limb_width(self, rng):
        # Regression: the batched split must keep split_large_secret's
        # limb-width-vs-field fail-fast.
        from repro.secagg.field import PrimeField

        tiny_field = PrimeField(prime=(1 << 31) - 1)
        inputs = rng.integers(0, 2**8, size=(3, 4), dtype=np.int64)
        with pytest.raises(ConfigurationError, match="limb width"):
            run_bonawitz(inputs, 2**8, threshold=2, rng=rng, field=tiny_field)
