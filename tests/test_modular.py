"""Tests for the modular wraparound codec (repro.linalg.modular)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.linalg.modular import decode_centered, encode_mod, wraps_around


class TestEncodeMod:
    def test_range(self):
        values = np.array([-300, -1, 0, 1, 300])
        encoded = encode_mod(values, 256)
        assert encoded.min() >= 0
        assert encoded.max() < 256

    def test_negative_values_wrap(self):
        assert np.array_equal(encode_mod(np.array([-1]), 256), [255])
        assert np.array_equal(encode_mod(np.array([-128]), 256), [128])

    def test_odd_modulus_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_mod(np.array([1]), 7)


class TestDecodeCentered:
    def test_positive_half_unchanged(self):
        residues = np.arange(0, 128)
        assert np.array_equal(decode_centered(residues, 256), residues)

    def test_negative_half_shifts(self):
        # Values m/2..m-1 map to -m/2..-1 (line 1 of Algorithm 6).
        residues = np.arange(128, 256)
        decoded = decode_centered(residues, 256)
        assert np.array_equal(decoded, residues - 256)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_centered(np.array([256]), 256)
        with pytest.raises(ConfigurationError):
            decode_centered(np.array([-1]), 256)

    def test_empty_array(self):
        assert decode_centered(np.array([], dtype=np.int64), 256).size == 0


class TestRoundtrip:
    def test_exact_recovery_in_centered_range(self):
        values = np.arange(-128, 128)
        assert np.array_equal(
            decode_centered(encode_mod(values, 256), 256), values
        )

    def test_wraparound_outside_range(self):
        # 130 is outside [-128, 128) so it comes back as 130 - 256.
        assert decode_centered(encode_mod(np.array([130]), 256), 256)[0] == -126

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=-10**9, max_value=10**9), min_size=1),
        st.integers(min_value=1, max_value=15),
    )
    def test_property_roundtrip_iff_in_range(self, values, log_modulus):
        modulus = 2**log_modulus
        array = np.array(values, dtype=np.int64)
        decoded = decode_centered(encode_mod(array, modulus), modulus)
        half = modulus // 2
        in_range = (array >= -half) & (array < half)
        assert np.array_equal(decoded[in_range], array[in_range])
        # All decoded values are congruent to the originals mod m.
        assert np.all((decoded - array) % modulus == 0)


class TestWrapsAround:
    def test_within_range(self):
        assert not wraps_around(np.array([-128, 127]), 256)

    def test_above_range(self):
        assert wraps_around(np.array([128]), 256)

    def test_below_range(self):
        assert wraps_around(np.array([-129]), 256)
