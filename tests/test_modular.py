"""Tests for the modular wraparound codec (repro.linalg.modular)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.linalg.modular import (
    decode_centered,
    encode_mod,
    horner_mod,
    inv_mod,
    mul_mod,
    pow_mod,
    pow_mod_elementwise,
    sum_mod,
    wraps_around,
)
from repro.secagg.field import MERSENNE_61


class TestEncodeMod:
    def test_range(self):
        values = np.array([-300, -1, 0, 1, 300])
        encoded = encode_mod(values, 256)
        assert encoded.min() >= 0
        assert encoded.max() < 256

    def test_negative_values_wrap(self):
        assert np.array_equal(encode_mod(np.array([-1]), 256), [255])
        assert np.array_equal(encode_mod(np.array([-128]), 256), [128])

    def test_odd_modulus_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_mod(np.array([1]), 7)


class TestDecodeCentered:
    def test_positive_half_unchanged(self):
        residues = np.arange(0, 128)
        assert np.array_equal(decode_centered(residues, 256), residues)

    def test_negative_half_shifts(self):
        # Values m/2..m-1 map to -m/2..-1 (line 1 of Algorithm 6).
        residues = np.arange(128, 256)
        decoded = decode_centered(residues, 256)
        assert np.array_equal(decoded, residues - 256)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_centered(np.array([256]), 256)
        with pytest.raises(ConfigurationError):
            decode_centered(np.array([-1]), 256)

    def test_empty_array(self):
        assert decode_centered(np.array([], dtype=np.int64), 256).size == 0


class TestRoundtrip:
    def test_exact_recovery_in_centered_range(self):
        values = np.arange(-128, 128)
        assert np.array_equal(
            decode_centered(encode_mod(values, 256), 256), values
        )

    def test_wraparound_outside_range(self):
        # 130 is outside [-128, 128) so it comes back as 130 - 256.
        assert decode_centered(encode_mod(np.array([130]), 256), 256)[0] == -126

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=-10**9, max_value=10**9), min_size=1),
        st.integers(min_value=1, max_value=15),
    )
    def test_property_roundtrip_iff_in_range(self, values, log_modulus):
        modulus = 2**log_modulus
        array = np.array(values, dtype=np.int64)
        decoded = decode_centered(encode_mod(array, modulus), modulus)
        half = modulus // 2
        in_range = (array >= -half) & (array < half)
        assert np.array_equal(decoded[in_range], array[in_range])
        # All decoded values are congruent to the originals mod m.
        assert np.all((decoded - array) % modulus == 0)


class TestWrapsAround:
    def test_within_range(self):
        assert not wraps_around(np.array([-128, 127]), 256)

    def test_above_range(self):
        assert wraps_around(np.array([128]), 256)

    def test_below_range(self):
        assert wraps_around(np.array([-129]), 256)


class TestFieldKernels:
    """128-bit-safe limb-split arithmetic against Python-int references."""

    PRIMES = [MERSENNE_61, (1 << 31) - 1, 101, 2]

    @pytest.mark.parametrize("prime", PRIMES)
    def test_mul_mod_matches_python_ints(self, prime):
        rng = np.random.default_rng(2022)
        a = rng.integers(0, prime, size=500, dtype=np.uint64)
        b = rng.integers(0, prime, size=500, dtype=np.uint64)
        expected = [(int(x) * int(y)) % prime for x, y in zip(a, b)]
        assert mul_mod(a, b, prime).tolist() == expected

    def test_mul_mod_worst_case_operands(self):
        p = MERSENNE_61
        edge = np.array([p - 1, p - 1, 1, 0, p // 2, (1 << 60) + 12345],
                        dtype=np.uint64)
        assert mul_mod(edge, edge, p).tolist() == [
            (int(v) ** 2) % p for v in edge
        ]

    def test_mul_mod_reduces_out_of_range_inputs(self):
        # Operands above the modulus are reduced, not silently wrong.
        assert int(mul_mod(np.uint64(2**63), np.uint64(3), 101)) == (
            (2**63 % 101) * 3
        ) % 101

    def test_mul_mod_oversized_modulus_rejected(self):
        with pytest.raises(ConfigurationError, match="2\\^61"):
            mul_mod(np.uint64(1), np.uint64(1), (1 << 61) + 2)

    @pytest.mark.parametrize("prime", PRIMES)
    def test_pow_mod_matches_python_pow(self, prime):
        rng = np.random.default_rng(7)
        base = rng.integers(0, prime, size=40, dtype=np.uint64)
        for exponent in (0, 1, 2, 12345, prime - 1):
            assert pow_mod(base, exponent, prime).tolist() == [
                pow(int(b), exponent, prime) for b in base
            ]

    def test_pow_mod_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError, match="exponent"):
            pow_mod(np.uint64(2), -1, 101)

    def test_pow_mod_elementwise_matches_python_pow(self):
        p = MERSENNE_61
        rng = np.random.default_rng(11)
        bases = rng.integers(1, p, size=200, dtype=np.uint64)
        exponents = rng.integers(0, p, size=200, dtype=np.uint64)
        got = pow_mod_elementwise(bases, exponents, p)
        assert got.tolist() == [
            pow(int(b), int(e), p) for b, e in zip(bases, exponents)
        ]

    @pytest.mark.parametrize("prime", [MERSENNE_61, 101])
    def test_inv_mod_inverts(self, prime):
        values = np.arange(1, min(prime, 60), dtype=np.uint64)
        assert np.all(mul_mod(inv_mod(values, prime), values, prime) == 1)

    def test_inv_mod_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            inv_mod(np.array([0], dtype=np.uint64), 101)

    @pytest.mark.parametrize("prime", [MERSENNE_61, (1 << 31) - 1, 101])
    @pytest.mark.parametrize("num_coeffs", [1, 2, 3, 8, 40])
    def test_horner_matches_python_reference(self, prime, num_coeffs):
        rng = np.random.default_rng(num_coeffs)
        coeffs = rng.integers(0, prime, size=(3, num_coeffs), dtype=np.uint64)
        xs = rng.integers(1, min(prime, 600), size=17, dtype=np.uint64)
        out = horner_mod(coeffs, xs, prime)
        for k in range(3):
            for j in range(17):
                reference = 0
                for c in reversed(coeffs[k].tolist()):
                    reference = (reference * int(xs[j]) + c) % prime
                assert int(out[k, j]) == reference

    def test_horner_large_points_use_generic_path(self):
        # Points >= 2^29 leave the lazy-reduction fast path but stay exact.
        p = MERSENNE_61
        rng = np.random.default_rng(5)
        coeffs = rng.integers(0, p, size=(2, 6), dtype=np.uint64)
        xs = rng.integers(1 << 40, p, size=5, dtype=np.uint64)
        out = horner_mod(coeffs, xs, p)
        for k in range(2):
            reference = 0
            for c in reversed(coeffs[k].tolist()):
                reference = (reference * int(xs[0]) + c) % p
            assert int(out[k, 0]) == reference

    def test_sum_mod_overflow_safe(self):
        p = MERSENNE_61
        values = np.full(5000, p - 1, dtype=np.uint64)
        assert int(sum_mod(values, p)) == (5000 * (p - 1)) % p

    def test_sum_mod_axis_and_empty(self):
        matrix = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert sum_mod(matrix, 7, axis=1).tolist() == [
            int(row.sum()) % 7 for row in matrix
        ]
        assert sum_mod(np.empty((0, 4), dtype=np.uint64), 7).tolist() == [
            0, 0, 0, 0,
        ]

    @given(
        a=st.integers(min_value=0, max_value=(1 << 61) - 2),
        b=st.integers(min_value=0, max_value=(1 << 61) - 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_mul_mod_property_mersenne(self, a, b):
        p = MERSENNE_61
        assert int(mul_mod(np.uint64(a), np.uint64(b), p)) == (a * b) % p
