"""Sharded secure aggregation: partition, backends, composition.

The load-bearing invariant — asserted exhaustively by a hypothesis
property test over random dropout schedules — is that the outer modular
composition of shard sums is *bit-identical* to the flat modular sum
over the same survivor set, under any partition, any per-shard dropout
pattern, and either execution backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError, ConfigurationError
from repro.secagg import compose_shard_sums
from repro.secagg.bonawitz import ROUND_ADVERTISE, ROUND_UNMASK
from repro.simulation import (
    ClientPlan,
    InlineBackend,
    ProcessBackend,
    ShardedSecAggRound,
    SimulatedClock,
    SimulationTrace,
    get_execution_backend,
    partition_cohort,
)
from repro.simulation.sharding import MIN_SHARD_SIZE, ShardTask, run_shard

MODULUS = 2**12
DIMENSION = 16


def make_vectors(num_clients, seed=0):
    rng = np.random.default_rng(seed)
    return {
        u: rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
        for u in range(1, num_clients + 1)
    }


def flat_sum(vectors, included):
    total = np.zeros(DIMENSION, dtype=np.int64)
    for u in included:
        total = np.mod(total + vectors[u], MODULUS)
    return total


def run_sharded(vectors, shards, plans=None, backend="inline", seed=1,
                threshold_fraction=0.6, phase_timeout=60.0, trace=False):
    clock = SimulatedClock()
    trace_log = SimulationTrace(clock) if trace else None
    sharded = ShardedSecAggRound(
        vectors=vectors,
        modulus=MODULUS,
        clock=clock,
        rng=np.random.default_rng(seed),
        shards=shards,
        threshold_fraction=threshold_fraction,
        plans=plans,
        phase_timeout=phase_timeout,
        backend=backend,
        trace=trace_log,
    )
    outcome = sharded.execute()
    return outcome, sharded, clock, trace_log


class TestPartition:
    def test_covers_cohort_exactly(self):
        cohort = tuple(range(1, 23))
        shards = partition_cohort(cohort, 4)
        flattened = sorted(u for shard in shards for u in shard)
        assert flattened == sorted(cohort)

    def test_balanced_within_one(self):
        sizes = {len(s) for s in partition_cohort(range(1, 23), 4)}
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_and_order_insensitive(self):
        cohort = [9, 3, 14, 1, 7, 2]
        assert partition_cohort(cohort, 2) == partition_cohort(
            tuple(reversed(cohort)), 2
        )

    def test_caps_shards_at_min_size(self):
        # 5 members cannot form 4 shards of >= 2: capped to 2 shards.
        shards = partition_cohort(range(1, 6), 4)
        assert len(shards) == 2
        assert all(len(s) >= MIN_SHARD_SIZE for s in shards)

    def test_single_shard_identity(self):
        assert partition_cohort((1, 2, 3), 1) == [(1, 2, 3)]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_cohort((1, 2, 3), 0)
        with pytest.raises(ConfigurationError):
            partition_cohort((), 2)
        with pytest.raises(ConfigurationError):
            partition_cohort((1, 1, 2), 2)


class TestComposeShardSums:
    def test_matches_flat_modular_sum(self):
        rng = np.random.default_rng(3)
        chunks = [
            rng.integers(0, MODULUS, size=DIMENSION, dtype=np.int64)
            for _ in range(5)
        ]
        composed = compose_shard_sums(
            [np.mod(c, MODULUS) for c in chunks], MODULUS
        )
        assert np.array_equal(
            composed, np.mod(np.sum(chunks, axis=0), MODULUS)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compose_shard_sums([], MODULUS)
        with pytest.raises(ConfigurationError):
            compose_shard_sums(
                [np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64)],
                MODULUS,
            )


class TestShardedEqualsFlat:
    def test_all_online_sum_exact(self):
        vectors = make_vectors(12)
        outcome, sharded, clock, _ = run_sharded(vectors, shards=3)
        assert sharded.num_shards == 3
        assert outcome.included == frozenset(vectors)
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, outcome.included)
        )
        assert clock.now == outcome.completed_at

    def test_dropouts_excluded_per_shard(self):
        vectors = make_vectors(12)
        plans = {2: ClientPlan(drop_phase=2), 9: ClientPlan(drop_phase=0)}
        outcome, _, _, _ = run_sharded(vectors, shards=3, plans=plans)
        assert {2, 9} <= outcome.dropped
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, outcome.included)
        )

    # Random dropout schedules: each client independently either stays
    # online or crashes at a uniform protocol phase.  The composed
    # modular sum must equal the flat sum over whatever survivor set
    # results — the acceptance-critical equivalence property.
    @settings(max_examples=12, deadline=None)
    @given(
        data=st.data(),
        num_clients=st.integers(min_value=6, max_value=14),
        shards=st.integers(min_value=1, max_value=4),
    )
    def test_random_dropout_schedules(self, data, num_clients, shards):
        vectors = make_vectors(num_clients, seed=num_clients)
        drop_phases = data.draw(
            st.lists(
                st.one_of(
                    st.none(),
                    st.integers(ROUND_ADVERTISE, ROUND_UNMASK),
                ),
                min_size=num_clients,
                max_size=num_clients,
            )
        )
        plans = {
            u: ClientPlan(drop_phase=phase)
            for u, phase in zip(sorted(vectors), drop_phases)
            if phase is not None
        }
        try:
            outcome, _, _, _ = run_sharded(
                vectors, shards=shards, plans=plans, threshold_fraction=0.5
            )
        except AggregationError:
            return  # Every shard below threshold: a legal abort.
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, outcome.included)
        )
        assert outcome.dropped == frozenset(vectors) - outcome.included


class TestShardFailureSemantics:
    def test_failed_shard_drops_members_only(self):
        vectors = make_vectors(8)
        # Partition at k=2 is (1,3,5,7)/(2,4,6,8); kill shard 1 by
        # dropping three of its four members below the 0.75 threshold.
        plans = {
            u: ClientPlan(drop_phase=ROUND_ADVERTISE) for u in (2, 4, 6)
        }
        outcome, _, _, trace = run_sharded(
            vectors, shards=2, plans=plans, threshold_fraction=0.75,
            trace=True,
        )
        assert outcome.included == {1, 3, 5, 7}
        assert outcome.dropped == {2, 4, 6, 8}
        assert np.array_equal(
            outcome.modular_sum, flat_sum(vectors, outcome.included)
        )
        assert trace.count("shard-aborted") == 1

    def test_all_shards_aborted_raises(self):
        vectors = make_vectors(8)
        plans = {
            u: ClientPlan(drop_phase=ROUND_ADVERTISE) for u in vectors
        }
        with pytest.raises(AggregationError, match="all 2 shards aborted"):
            run_sharded(vectors, shards=2, plans=plans)


class TestBackends:
    def test_process_backend_bit_identical_to_inline(self):
        vectors = make_vectors(10)
        plans = {
            3: ClientPlan(drop_phase=2),
            6: ClientPlan(latencies=(0.5, 0.2, 0.1, 0.3)),
        }
        inline_outcome, _, _, _ = run_sharded(
            vectors, shards=2, plans=plans, backend="inline"
        )
        with ProcessBackend(max_workers=2) as backend:
            process_outcome, _, _, _ = run_sharded(
                vectors, shards=2, plans=plans, backend=backend
            )
        assert np.array_equal(
            inline_outcome.modular_sum, process_outcome.modular_sum
        )
        assert inline_outcome.included == process_outcome.included
        assert inline_outcome.completed_at == process_outcome.completed_at

    def test_registry_resolution(self):
        assert isinstance(get_execution_backend(None), InlineBackend)
        assert isinstance(get_execution_backend("inline"), InlineBackend)
        assert isinstance(get_execution_backend("process"), ProcessBackend)
        backend = InlineBackend()
        assert get_execution_backend(backend) is backend
        with pytest.raises(ConfigurationError, match="unknown execution"):
            get_execution_backend("thread")


class TestShmLifecycle:
    """The shared-memory block must never outlive its round abnormally.

    ``close()`` is the happy path; these pin the failure paths — an
    abandoned transport (gc'd without close) and a worker crash
    unwinding ``run_shards`` — both of which used to leak the named
    segment until interpreter exit.
    """

    @staticmethod
    def _make_tasks(num_clients=6, shards=2):
        vectors = make_vectors(num_clients)
        members = sorted(vectors)
        per_shard = len(members) // shards
        return [
            ShardTask(
                shard_index=index,
                vectors={
                    u: vectors[u]
                    for u in members[
                        index * per_shard:(index + 1) * per_shard
                    ]
                },
                modulus=MODULUS,
                threshold=2,
                start_time=0.0,
                entropy=7,
                plans={},
                phase_timeout=10.0,
            )
            for index in range(shards)
        ]

    def test_abandoned_transport_unlinks_on_gc(self):
        import gc

        from multiprocessing import shared_memory

        from repro.simulation.shm import (
            SharedMemoryTransport,
            shared_memory_available,
        )

        if not shared_memory_available():
            pytest.skip("no POSIX shared memory on this platform")
        transport = SharedMemoryTransport()
        transport.pack(self._make_tasks())
        name = transport._segment.name
        # Dropped without close(): the finalizer must unlink.
        del transport
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_explicit_close_unlinks_and_gc_stays_quiet(self):
        import gc

        from multiprocessing import shared_memory

        from repro.simulation.shm import (
            SharedMemoryTransport,
            shared_memory_available,
        )

        if not shared_memory_available():
            pytest.skip("no POSIX shared memory on this platform")
        transport = SharedMemoryTransport()
        transport.pack(self._make_tasks())
        name = transport._segment.name
        transport.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        # The finalizer already ran; gc must not try to unlink again.
        del transport
        gc.collect()

    def test_worker_failure_unlinks_segment(self):
        from multiprocessing import shared_memory

        from repro.simulation.shm import (
            SharedMemoryTransport,
            shared_memory_available,
        )

        if not shared_memory_available():
            pytest.skip("no POSIX shared memory on this platform")

        class CrashingPool:
            def map(self, fn, iterable):
                raise RuntimeError("worker died mid-round")

            def shutdown(self, wait=True):
                pass

        backend = ProcessBackend(max_workers=2)
        backend._pool = CrashingPool()
        backend._shm_transport = SharedMemoryTransport()
        # pack() runs before map(), so the segment exists when the
        # crash unwinds; capture its name via a probe pack.
        probe = backend._shm_transport
        probe.pack(self._make_tasks())
        name = probe._segment.name
        with pytest.raises(RuntimeError, match="worker died"):
            backend.run_shards(self._make_tasks())
        # The failed round unlinked the segment and dropped the
        # transport; nothing is left to leak.
        assert backend._shm_transport is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        backend._pool = None
        backend.close()

    def test_failing_shard_round_leaves_no_named_segment(self):
        """End to end: a round whose pool dies leaves /dev/shm clean."""
        import os

        from repro.simulation.shm import shared_memory_available

        if not shared_memory_available() or not os.path.isdir("/dev/shm"):
            pytest.skip("no inspectable shared-memory filesystem")
        before = set(os.listdir("/dev/shm"))

        class CrashingPool:
            def map(self, fn, iterable):
                raise RuntimeError("worker died mid-round")

            def shutdown(self, wait=True):
                pass

        backend = ProcessBackend(max_workers=2)
        backend._pool = CrashingPool()
        with pytest.raises(RuntimeError):
            backend.run_shards(self._make_tasks())
        backend._pool = None
        backend.close()
        assert set(os.listdir("/dev/shm")) - before == set()


class TestTimingAndTraces:
    def test_round_completes_at_slowest_shard(self):
        vectors = make_vectors(8)
        # Shard of client 2 (partition (1,3,5,7)/(2,4,6,8)) is slowed.
        plans = {2: ClientPlan(latencies=(1.0, 1.0, 1.0, 1.0))}
        outcome, sharded, clock, _ = run_sharded(
            vectors, shards=2, plans=plans
        )
        durations = [
            report.ended_at - report.outcome.started_at
            for report in sharded.last_reports
        ]
        assert outcome.duration == max(durations) == pytest.approx(4.0)
        assert clock.now == outcome.completed_at

    def test_shard_clocks_leak_no_timers(self):
        vectors = make_vectors(10)
        _, sharded, _, _ = run_sharded(vectors, shards=3)
        assert all(
            report.pending_timers == 0 for report in sharded.last_reports
        )

    def test_merged_trace_is_shard_annotated_and_time_ordered(self):
        vectors = make_vectors(8)
        _, sharded, _, trace = run_sharded(vectors, shards=2, trace=True)
        merged = [
            event for event in trace.events if "shard" in event.details
        ]
        assert merged
        assert {e.details["shard"] for e in merged} == {0, 1}
        times = [e.time for e in merged]
        assert times == sorted(times)
        assert trace.count("sharded-round-complete") == 1

    def test_run_shard_report_roundtrip(self):
        vectors = make_vectors(4)
        report = run_shard(
            ShardTask(
                shard_index=0,
                vectors=vectors,
                modulus=MODULUS,
                threshold=3,
                start_time=5.0,
                entropy=99,
                plans={},
                phase_timeout=60.0,
            )
        )
        assert report.outcome is not None and report.error is None
        assert report.outcome.started_at == 5.0
        assert report.pending_timers == 0
        assert np.array_equal(
            report.outcome.modular_sum, flat_sum(vectors, vectors)
        )


class TestDeterminism:
    def test_identical_seeds_replay_identically(self):
        vectors = make_vectors(12)
        plans = {4: ClientPlan(drop_phase=1)}
        first, _, _, _ = run_sharded(vectors, shards=3, plans=plans, seed=7)
        second, _, _, _ = run_sharded(vectors, shards=3, plans=plans, seed=7)
        assert np.array_equal(first.modular_sum, second.modular_sum)
        assert first.included == second.included
        assert first.dropped == second.dropped
        assert first.completed_at == second.completed_at

    def test_different_seeds_still_sum_exactly(self):
        vectors = make_vectors(12)
        for seed in (1, 2, 3):
            outcome, _, _, _ = run_sharded(vectors, shards=3, seed=seed)
            assert np.array_equal(
                outcome.modular_sum, flat_sum(vectors, outcome.included)
            )


class TestValidation:
    def test_empty_cohort_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedSecAggRound(
                vectors={},
                modulus=MODULUS,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
                shards=2,
            )

    def test_bad_threshold_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedSecAggRound(
                vectors=make_vectors(6),
                modulus=MODULUS,
                clock=SimulatedClock(),
                rng=np.random.default_rng(0),
                shards=2,
                threshold_fraction=0.0,
            )

    def test_advance_to_refused_while_running(self):
        from repro.errors import SimulationError

        clock = SimulatedClock()

        async def main():
            clock.advance_to(10.0)

        with pytest.raises(SimulationError, match="between run"):
            clock.run(main())

    def test_advance_to_refused_past_a_live_timer(self):
        """Jumping over a pending timer would rewind `now` when it
        eventually fired; the clock refuses instead."""
        from repro.errors import SimulationError

        clock = SimulatedClock()
        handle = clock.call_at(5.0, lambda: None)
        with pytest.raises(SimulationError, match="live timer"):
            clock.advance_to(10.0)
        # Cancelled timers do not block the jump.
        handle.cancel()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_shamir_threshold_shared_rule(self):
        from repro.simulation import shamir_threshold

        assert shamir_threshold(0.6, 48) == 29  # ceil, not floor
        assert shamir_threshold(0.1, 4) == 2  # floor of 2
        assert shamir_threshold(1.0, 7) == 7
        with pytest.raises(ConfigurationError):
            shamir_threshold(0.0, 8)


class TestWirePhaseTraceEvents:
    """Per-phase wire accounting events in the merged sharded trace."""

    def _wire_events(self, trace):
        return [e for e in trace.events if e.kind == "wire-phase"]

    def test_every_shard_emits_all_four_phases(self):
        vectors = make_vectors(8)
        _, _, _, trace = run_sharded(vectors, shards=2, trace=True)
        events = self._wire_events(trace)
        per_shard = {}
        for event in events:
            assert "shard" in event.details
            per_shard.setdefault(event.details["shard"], []).append(
                event.details["phase"]
            )
        expected = ["advertise", "share-keys", "masked-input", "unmask"]
        assert set(per_shard) == {0, 1}
        for phases in per_shard.values():
            assert phases == expected

    def test_merged_events_are_time_sorted(self):
        vectors = make_vectors(12)
        plans = {u: ClientPlan(latencies=(0.1 * u, 0.0, 0.0, 0.0))
                 for u in vectors}
        _, _, _, trace = run_sharded(
            vectors, shards=3, plans=plans, trace=True
        )
        times = [e.time for e in self._wire_events(trace)]
        assert len(times) == 12  # 3 shards x 4 phases
        assert times == sorted(times)

    def test_per_shard_wire_totals_sum_to_outcome_stats(self):
        vectors = make_vectors(8)
        outcome, _, _, trace = run_sharded(vectors, shards=2, trace=True)
        events = self._wire_events(trace)
        for key in ("up_bytes", "down_bytes", "up_messages",
                    "down_messages"):
            assert sum(e.details.get(key, 0) for e in events) == sum(
                totals[key]
                for totals in outcome.wire.phase_totals().values()
            )
        assert sum(
            e.details.get("up_messages", 0)
            + e.details.get("down_messages", 0)
            for e in events
        ) == outcome.wire.total_messages
