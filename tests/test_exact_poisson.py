"""Tests for the exact Poisson samplers (Appendix A, Algorithms 7-10)."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import ConfigurationError
from repro.sampling.exact_poisson import (
    sample_poisson,
    sample_poisson_one,
    sample_poisson_sub_one,
)
from repro.sampling.rng import RandIntSource


def _chi_square_vs_poisson(samples, lam, cutoff=None):
    """Chi-square statistic of empirical counts against Poisson(lam)."""
    samples = np.asarray(samples)
    cutoff = cutoff or int(samples.max())
    counts = np.bincount(np.minimum(samples, cutoff), minlength=cutoff + 1)
    probs = stats.poisson.pmf(np.arange(cutoff + 1), lam)
    probs[-1] += stats.poisson.sf(cutoff, lam)
    expected = probs * len(samples)
    mask = expected > 5  # Standard chi-square validity rule.
    return float(((counts[mask] - expected[mask]) ** 2 / expected[mask]).sum()), int(
        mask.sum()
    )


class TestPoissonOne:
    def test_moments(self):
        source = RandIntSource(seed=0)
        draws = [sample_poisson_one(source) for _ in range(30_000)]
        assert abs(np.mean(draws) - 1.0) < 0.03
        assert abs(np.var(draws) - 1.0) < 0.05

    def test_distribution_chi_square(self):
        source = RandIntSource(seed=1)
        draws = [sample_poisson_one(source) for _ in range(30_000)]
        chi_square, bins = _chi_square_vs_poisson(draws, 1.0)
        # 0.999 quantile of chi2 with <=8 dof is < 27.
        assert chi_square < 27.0, (chi_square, bins)

    def test_non_negative(self):
        source = RandIntSource(seed=2)
        assert all(sample_poisson_one(source) >= 0 for _ in range(500))


class TestPoissonSubOne:
    def test_moments(self):
        source = RandIntSource(seed=3)
        draws = [sample_poisson_sub_one(3, 10, source) for _ in range(30_000)]
        assert abs(np.mean(draws) - 0.3) < 0.015
        assert abs(np.var(draws) - 0.3) < 0.02

    def test_distribution_chi_square(self):
        source = RandIntSource(seed=4)
        draws = [sample_poisson_sub_one(7, 10, source) for _ in range(30_000)]
        chi_square, _ = _chi_square_vs_poisson(draws, 0.7)
        assert chi_square < 27.0

    def test_rejects_rate_of_one(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_poisson_sub_one(10, 10, source)

    def test_rejects_zero_rate(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_poisson_sub_one(0, 10, source)


class TestGeneralPoisson:
    def test_zero_rate_returns_zero(self):
        source = RandIntSource(seed=0)
        assert all(sample_poisson(0, 1, source) == 0 for _ in range(10))

    def test_integer_rate_moments(self):
        source = RandIntSource(seed=5)
        draws = [sample_poisson(4, 1, source) for _ in range(20_000)]
        assert abs(np.mean(draws) - 4.0) < 0.06
        assert abs(np.var(draws) - 4.0) < 0.15

    def test_fractional_rate_moments(self):
        source = RandIntSource(seed=6)
        # lambda = 5/2
        draws = [sample_poisson(5, 2, source) for _ in range(20_000)]
        assert abs(np.mean(draws) - 2.5) < 0.05
        assert abs(np.var(draws) - 2.5) < 0.12

    def test_distribution_chi_square(self):
        source = RandIntSource(seed=7)
        draws = [sample_poisson(3, 2, source) for _ in range(30_000)]
        chi_square, _ = _chi_square_vs_poisson(draws, 1.5)
        assert chi_square < 32.0

    def test_negative_rate_rejected(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_poisson(-1, 2, source)

    def test_zero_denominator_rejected(self):
        source = RandIntSource(seed=0)
        with pytest.raises(ConfigurationError):
            sample_poisson(1, 0, source)
