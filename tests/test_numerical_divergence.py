"""Numerical validation of Theorems 3 and 5 against exact divergences."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.numerical import (
    bound_tightness,
    exact_skellam_divergence,
    exact_smm_divergence,
    gaussian_reference_divergence,
    numerical_renyi_divergence,
    theorem3_bound,
    theorem5_bound,
)
from repro.errors import PrivacyAccountingError


class TestNumericalDivergence:
    def test_identical_distributions_have_zero_divergence(self):
        p = np.array([0.25, 0.5, 0.25])
        assert numerical_renyi_divergence(p, p, 2.0) == pytest.approx(0.0)

    def test_disjoint_support_is_infinite(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert numerical_renyi_divergence(p, q, 2.0) == math.inf

    def test_known_bernoulli_value(self):
        """D_2(Bern(3/4) || Bern(1/4)) = log(9/4 * ... ) computed by hand:
        sum p^2/q = (0.75^2/0.25 + 0.25^2/0.75) = 2.25 + 1/12."""
        p = np.array([0.75, 0.25])
        q = np.array([0.25, 0.75])
        expected = math.log(0.75**2 / 0.25 + 0.25**2 / 0.75)
        assert numerical_renyi_divergence(p, q, 2.0) == pytest.approx(expected)

    def test_order_must_exceed_one(self):
        p = np.array([1.0])
        with pytest.raises(PrivacyAccountingError, match="order"):
            numerical_renyi_divergence(p, p, 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PrivacyAccountingError, match="shapes"):
            numerical_renyi_divergence(
                np.array([1.0]), np.array([0.5, 0.5]), 2.0
            )

    @given(
        alpha_low=st.floats(min_value=1.1, max_value=5.0),
        gap=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_order(self, alpha_low, gap):
        """Renyi divergence is non-decreasing in alpha."""
        p = np.array([0.6, 0.3, 0.1])
        q = np.array([0.2, 0.3, 0.5])
        low = numerical_renyi_divergence(p, q, alpha_low)
        high = numerical_renyi_divergence(p, q, alpha_low + gap)
        assert high >= low - 1e-12

    def test_zero_shift_skellam_divergence_is_zero(self):
        assert exact_skellam_divergence(0, 20.0, 3.0) == pytest.approx(
            0.0, abs=1e-12
        )


class TestTheorem3:
    @pytest.mark.parametrize("shift", [1, 2, 3, 5])
    @pytest.mark.parametrize("total_lambda", [10.0, 40.0, 160.0])
    @pytest.mark.parametrize("alpha", [2.0, 4.0, 8.0])
    def test_bound_dominates_exact(self, shift, total_lambda, alpha):
        """Theorem 3 must upper-bound the exact divergence everywhere the
        theorem's precondition alpha < 2 lam / s + 1 holds."""
        if not alpha < 2 * total_lambda / shift + 1:
            pytest.skip("outside the theorem's validity range")
        exact = exact_skellam_divergence(shift, total_lambda, alpha)
        assert exact <= theorem3_bound(shift, total_lambda, alpha) + 1e-12

    def test_bound_within_constant_factor_at_large_lambda(self):
        """At lam >> s^2 the Skellam is near-Gaussian, so the bound's
        (1.09 a + 0.91)/2 constant should be within ~2.2x of exact."""
        exact = exact_skellam_divergence(2, 400.0, 4.0)
        bound = theorem3_bound(2, 400.0, 4.0)
        assert 1.0 <= bound / exact < 2.2

    def test_exact_approaches_gaussian_at_large_lambda(self):
        """Sk(lam) -> N(0, 2 lam): exact divergence must approach
        alpha s^2 / (2 * 2 lam)."""
        shift, lam, alpha = 3, 2000.0, 2.0
        exact = exact_skellam_divergence(shift, lam, alpha)
        gaussian = gaussian_reference_divergence(shift, 2.0 * lam, alpha)
        assert exact == pytest.approx(gaussian, rel=0.05)

    def test_divergence_scales_with_shift_squared(self):
        lam, alpha = 300.0, 2.0
        d1 = exact_skellam_divergence(1, lam, alpha)
        d3 = exact_skellam_divergence(3, lam, alpha)
        assert d3 / d1 == pytest.approx(9.0, rel=0.1)

    def test_gaussian_reference_validation(self):
        with pytest.raises(PrivacyAccountingError, match="variance"):
            gaussian_reference_divergence(1.0, 0.0, 2.0)
        with pytest.raises(PrivacyAccountingError, match="order"):
            gaussian_reference_divergence(1.0, 1.0, 1.0)


class TestTheorem5:
    @pytest.mark.parametrize("value", [0.3, 0.5, 1.0, 1.5, 1.9, 2.5])
    @pytest.mark.parametrize("total_lambda", [50.0, 200.0])
    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    def test_bound_dominates_exact_both_directions(
        self, value, total_lambda, alpha
    ):
        delta_inf = math.ceil(value)
        feasible = alpha < 2 * total_lambda / delta_inf + 1 and (
            10.9 * alpha**2 - 1.8 * alpha - 9.1
        ) < 4 * total_lambda / delta_inf**2
        if not feasible:
            pytest.skip("outside Eq. (3) feasibility")
        exact = exact_smm_divergence(value, total_lambda, alpha, "worst")
        assert exact <= theorem5_bound(value, total_lambda, alpha) + 1e-12

    def test_direction_a_and_b_both_below_worst(self):
        value, lam, alpha = 1.5, 100.0, 2.0
        worst = exact_smm_divergence(value, lam, alpha, "worst")
        assert exact_smm_divergence(value, lam, alpha, "A") <= worst + 1e-15
        assert exact_smm_divergence(value, lam, alpha, "B") <= worst + 1e-15

    def test_invalid_direction_rejected(self):
        with pytest.raises(PrivacyAccountingError, match="direction"):
            exact_smm_divergence(1.0, 10.0, 2.0, "C")

    def test_integer_value_reduces_to_pure_skellam(self):
        """At integer x the mixture degenerates; exact divergences agree."""
        lam, alpha = 80.0, 3.0
        mixture = exact_smm_divergence(2.0, lam, alpha, "B")
        pure = exact_skellam_divergence(2, lam, alpha)
        assert mixture == pytest.approx(pure, rel=1e-9)

    def test_quasi_convexity_between_endpoints(self):
        """Theorem 2: the mixture divergence is at most the max of the
        floor and ceil shifted-Skellam divergences."""
        lam, alpha = 100.0, 2.0
        mid = exact_smm_divergence(1.5, lam, alpha, "B")
        floor = exact_skellam_divergence(1, lam, alpha)
        ceil = exact_skellam_divergence(2, lam, alpha)
        assert mid <= max(floor, ceil) + 1e-12

    def test_tightness_ratio_exceeds_one(self):
        assert bound_tightness(1.5, 100.0, 2.0) > 1.0

    def test_tightness_ratio_is_moderate(self):
        """The paper's future work says the constants can be reduced; the
        slack should be a small constant factor, not orders of
        magnitude, in the Gaussian-like regime."""
        ratio = bound_tightness(1.5, 400.0, 3.0)
        assert 1.0 < ratio < 4.0

    def test_zero_value_gives_infinite_ratio(self):
        assert bound_tightness(0.0, 50.0, 2.0) == math.inf

    @given(
        value=st.floats(min_value=0.05, max_value=2.95),
        seed_lambda=st.integers(min_value=1, max_value=4),
        alpha=st.sampled_from([2.0, 3.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_holds_property(self, value, seed_lambda, alpha):
        """Random spot checks of Theorem 5 across the feasible region."""
        from hypothesis import assume

        total_lambda = 100.0 * seed_lambda
        delta_inf = max(1, math.ceil(value))
        assume(
            alpha < 2 * total_lambda / delta_inf + 1
            and (10.9 * alpha**2 - 1.8 * alpha - 9.1)
            < 4 * total_lambda / delta_inf**2
        )
        exact = exact_smm_divergence(value, total_lambda, alpha, "worst")
        assert exact <= theorem5_bound(value, total_lambda, alpha) + 1e-12
