"""Tests for the RDP accountant (repro.accounting.rdp)."""

import math

import pytest

from repro.accounting.divergences import gaussian_rdp
from repro.accounting.rdp import (
    RdpAccountant,
    best_epsilon,
    compose,
    rdp_to_dp,
    subsampled_rdp,
)
from repro.errors import PrivacyAccountingError


class TestConversion:
    def test_lemma_3_formula(self):
        alpha, tau, delta = 8, 0.5, 1e-5
        expected = tau + (
            math.log(1 / delta)
            + (alpha - 1) * math.log(1 - 1 / alpha)
            - math.log(alpha)
        ) / (alpha - 1)
        assert rdp_to_dp(alpha, tau, delta) == pytest.approx(expected)

    def test_tighter_than_classic_conversion(self):
        # The CKS conversion never exceeds the classic
        # eps = tau + log(1/delta)/(alpha-1) (Mironov 2017).
        for alpha in [2, 5, 20, 100]:
            classic = 0.3 + math.log(1e5) / (alpha - 1)
            assert rdp_to_dp(alpha, 0.3, 1e-5) <= classic

    def test_rejects_invalid_inputs(self):
        with pytest.raises(PrivacyAccountingError):
            rdp_to_dp(1.0, 0.1, 1e-5)
        with pytest.raises(PrivacyAccountingError):
            rdp_to_dp(2.0, 0.1, 0.0)
        with pytest.raises(PrivacyAccountingError):
            rdp_to_dp(2.0, -0.1, 1e-5)


class TestCompose:
    def test_sum(self):
        assert compose([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_empty(self):
        assert compose([]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(PrivacyAccountingError):
            compose([0.1, -0.2])


class TestSubsampledRdp:
    def test_q_zero_gives_zero(self):
        assert subsampled_rdp(4, 0.0, lambda a: 1.0) == 0.0

    def test_q_one_gives_base(self):
        curve = lambda a: gaussian_rdp(a, 1.0, 2.0)
        assert subsampled_rdp(4, 1.0, curve) == pytest.approx(curve(4))

    def test_amplification_shrinks_tau(self):
        curve = lambda a: gaussian_rdp(a, 1.0, 1.0)
        amplified = subsampled_rdp(8, 0.01, curve)
        assert amplified < curve(8) / 10.0

    def test_monotone_in_q(self):
        curve = lambda a: gaussian_rdp(a, 1.0, 1.0)
        taus = [subsampled_rdp(6, q, curve) for q in [0.001, 0.01, 0.1, 0.5]]
        assert all(t1 < t2 for t1, t2 in zip(taus, taus[1:]))

    def test_small_q_quadratic_scaling(self):
        # For small q, tau_sub ~ O(q^2): halving q quarters tau.
        curve = lambda a: gaussian_rdp(a, 1.0, 4.0)
        tau_q = subsampled_rdp(2, 0.002, curve)
        tau_half = subsampled_rdp(2, 0.001, curve)
        assert tau_q / tau_half == pytest.approx(4.0, rel=0.1)

    def test_matches_direct_formula_small_alpha(self):
        # Hand-evaluate Lemma 2 at alpha = 2:
        # tau = log((1-q)(2q - q + 1) ... ) with the l=2 term.
        q, sigma = 0.1, 2.0
        curve = lambda a: gaussian_rdp(a, 1.0, sigma)
        expected = math.log(
            (1 - q) ** 1 * (2 * q - q + 1)
            + (1 - q) ** 0 * q**2 * math.exp(curve(2))
        )
        assert subsampled_rdp(2, q, curve) == pytest.approx(expected)

    def test_rejects_non_integer_order(self):
        with pytest.raises(PrivacyAccountingError):
            subsampled_rdp(2.5, 0.1, lambda a: 1.0)

    def test_rejects_invalid_rate(self):
        with pytest.raises(PrivacyAccountingError):
            subsampled_rdp(2, 1.5, lambda a: 1.0)


class TestBestEpsilon:
    def test_matches_manual_minimum(self):
        taus = {alpha: gaussian_rdp(alpha, 1.0, 2.0) for alpha in range(2, 101)}
        manual = min(
            rdp_to_dp(alpha, tau, 1e-5) for alpha, tau in taus.items()
        )
        epsilon, order = best_epsilon(tuple(range(2, 101)), taus, 1e-5)
        assert epsilon == pytest.approx(manual)
        assert rdp_to_dp(order, taus[order], 1e-5) == pytest.approx(epsilon)

    def test_skips_infeasible_orders(self):
        def curve(alpha):
            if alpha > 5:
                raise PrivacyAccountingError("infeasible")
            return 0.1 * alpha

        epsilon, order = best_epsilon((2, 3, 4, 5, 6, 7), curve, 1e-5)
        assert order <= 5

    def test_all_infeasible_raises(self):
        def curve(alpha):
            raise PrivacyAccountingError("infeasible")

        with pytest.raises(PrivacyAccountingError):
            best_epsilon((2, 3), curve, 1e-5)


class TestRdpAccountant:
    def test_single_gaussian_release(self):
        accountant = RdpAccountant()
        accountant.step(lambda a: gaussian_rdp(a, 1.0, 2.0))
        taus = {a: gaussian_rdp(a, 1.0, 2.0) for a in range(2, 101)}
        expected, _ = best_epsilon(tuple(range(2, 101)), taus, 1e-5)
        assert accountant.epsilon(1e-5) == pytest.approx(expected)

    def test_composition_grows_epsilon(self):
        accountant = RdpAccountant()
        curve = lambda a: gaussian_rdp(a, 1.0, 5.0)
        accountant.step(curve)
        first = accountant.epsilon(1e-5)
        accountant.step(curve, count=3)
        assert accountant.epsilon(1e-5) > first

    def test_count_equals_repeated_steps(self):
        curve = lambda a: gaussian_rdp(a, 1.0, 3.0)
        bulk = RdpAccountant()
        bulk.step(curve, count=10)
        loop = RdpAccountant()
        for _ in range(10):
            loop.step(curve)
        assert bulk.epsilon(1e-5) == pytest.approx(loop.epsilon(1e-5))

    def test_subsampled_step(self):
        accountant = RdpAccountant()
        curve = lambda a: gaussian_rdp(a, 1.0, 1.0)
        accountant.step_subsampled(curve, sampling_rate=0.01, count=100)
        plain = RdpAccountant()
        plain.step(curve, count=100)
        assert accountant.epsilon(1e-5) < plain.epsilon(1e-5)

    def test_infeasible_orders_dropped(self):
        def curve(alpha):
            if alpha >= 10:
                raise PrivacyAccountingError("infeasible above 10")
            return 0.01 * alpha

        accountant = RdpAccountant()
        accountant.step(curve)
        assert max(accountant.orders) == 9

    def test_all_orders_infeasible_raises(self):
        def curve(alpha):
            raise PrivacyAccountingError("always infeasible")

        accountant = RdpAccountant()
        with pytest.raises(PrivacyAccountingError):
            accountant.step(curve)

    def test_best_order_reported(self):
        accountant = RdpAccountant()
        accountant.step(lambda a: gaussian_rdp(a, 1.0, 2.0))
        order = accountant.best_order(1e-5)
        assert 2 <= order <= 100

    def test_rejects_bad_orders(self):
        with pytest.raises(PrivacyAccountingError):
            RdpAccountant(orders=(1, 2))
        with pytest.raises(PrivacyAccountingError):
            RdpAccountant(orders=())
