"""Cross-module integration tests.

These verify end-to-end properties that no single module can check in
isolation: the empirical error of a calibrated pipeline against the
paper's utility formula (Corollary 2), exact-vs-fast sampler agreement,
and the public API surface.
"""

import warnings

import numpy as np
import pytest
from scipy import stats

import repro
from repro.config import CompressionConfig, PrivacyBudget
from repro.core.calibration import AccountingSpec
from repro.mechanisms import InputSpec, SkellamMixtureMechanism
from repro.sampling.fast import skellam_noise
from repro.sampling.skellam import ExactSkellamSampler
from repro.sumestimation.datasets import sample_sphere


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        # The module docstring's quickstart must actually run.
        rng = np.random.default_rng(0)
        values = rng.normal(size=(50, 128))
        values /= np.linalg.norm(values, axis=1, keepdims=True)
        mechanism = repro.SkellamMixtureMechanism(
            repro.CompressionConfig(modulus=2**14, gamma=64.0)
        )
        mechanism.calibrate(
            repro.InputSpec(num_participants=50, dimension=128),
            repro.AccountingSpec(budget=repro.PrivacyBudget(epsilon=3.0)),
        )
        estimate = mechanism.estimate_sum(values, rng)
        assert estimate.shape == (128,)


class TestSmmErrorMatchesCorollary2:
    def test_empirical_vs_theoretical_error(self):
        # Calibrate SMM on a wide pipe, then compare the measured
        # per-dimension mse with the Corollary 2 decomposition:
        # (noise variance 2 n lam + Bernoulli variance) / gamma^2 / d,
        # all expressed back in the un-scaled domain.
        rng = np.random.default_rng(1)
        n, d = 30, 256
        values = sample_sphere(n, d, rng)
        compression = CompressionConfig(modulus=2**18, gamma=256.0)
        mechanism = SkellamMixtureMechanism(compression)
        mechanism.calibrate(
            InputSpec(num_participants=n, dimension=d),
            AccountingSpec(budget=PrivacyBudget(epsilon=3.0)),
        )
        truth = values.sum(axis=0)
        squared_errors = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(40):
                estimate = mechanism.estimate_sum(values, rng)
                squared_errors.append(np.mean((estimate - truth) ** 2))
        measured = float(np.mean(squared_errors))
        padded = mechanism.spec.padded_dimension
        skellam_var = 2.0 * n * mechanism.lam
        bernoulli_var_worst = n / 4.0
        predicted_upper = (skellam_var + bernoulli_var_worst) / compression.gamma**2
        predicted_lower = skellam_var / compression.gamma**2
        # Padded coordinates carry noise that folds back into d dims.
        predicted_upper *= padded / d
        predicted_lower *= 0.9 * padded / d
        assert predicted_lower * 0.7 < measured < predicted_upper * 1.3


class TestExactVsFastSamplers:
    def test_same_distribution_two_sample(self):
        # Two-sample chi-square: exact sampler vs vectorised sampler.
        lam = 2.0
        exact = np.array(ExactSkellamSampler(lam=2, seed=0).sample_many(8000))
        fast = skellam_noise(lam, 8000, np.random.default_rng(1))
        cutoff = 6
        bins = np.arange(-cutoff, cutoff + 2)
        exact_counts, _ = np.histogram(np.clip(exact, -cutoff, cutoff), bins)
        fast_counts, _ = np.histogram(np.clip(fast, -cutoff, cutoff), bins)
        totals = exact_counts + fast_counts
        mask = totals > 10
        expected_exact = totals[mask] / 2.0
        chi_square = float(
            (
                (exact_counts[mask] - expected_exact) ** 2 / expected_exact
                + (fast_counts[mask] - expected_exact) ** 2 / expected_exact
            ).sum()
        )
        # dof ~ 12; 0.999 quantile ~32.9.
        assert chi_square < 40.0

    def test_moments_agree(self):
        exact = np.array(ExactSkellamSampler(lam=4, seed=2).sample_many(5000))
        fast = skellam_noise(4.0, 5000, np.random.default_rng(3))
        assert abs(exact.var() - fast.var()) < 0.5


class TestDistributionalSanity:
    def test_aggregate_skellam_additivity(self):
        # Sum of n Skellam(lam) variates is Skellam(n lam) — the property
        # underpinning the distributed accounting (Section 2.1).
        rng = np.random.default_rng(4)
        n, lam = 16, 0.5
        sums = skellam_noise(lam, (4000, n), rng).sum(axis=1)
        ks = np.arange(-15, 16)
        probs = stats.skellam.pmf(ks, n * lam, n * lam)
        counts = np.array([(sums == k).sum() for k in ks])
        expected = probs * len(sums)
        mask = expected > 5
        chi_square = float(
            ((counts[mask] - expected[mask]) ** 2 / expected[mask]).sum()
        )
        assert chi_square < 52.0  # dof ~22, 0.999 quantile
