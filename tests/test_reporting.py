"""Tests for experiment reporting (repro.reporting)."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting import (
    ExperimentRecord,
    from_json,
    render_markdown_table,
    to_json,
    write_csv,
)


@pytest.fixture
def records():
    return [
        ExperimentRecord("fig1", "smm", "mse", 3.02, {"epsilon": 3.0, "m": 16384}),
        ExperimentRecord("fig1", "smm", "mse", 20.6, {"epsilon": 1.0, "m": 16384}),
        ExperimentRecord("fig1", "ddg", "mse", 4.81, {"epsilon": 3.0, "m": 16384}),
    ]


class TestRecord:
    def test_fields(self, records):
        assert records[0].experiment == "fig1"
        assert records[0].parameters["epsilon"] == 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentRecord("", "smm", "mse", 1.0, {})
        with pytest.raises(ConfigurationError):
            ExperimentRecord("fig1", "", "mse", 1.0, {})


class TestJsonRoundtrip:
    def test_roundtrip(self, records):
        assert from_json(to_json(records)) == records

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            from_json("not json")

    def test_non_array_rejected(self):
        with pytest.raises(ConfigurationError):
            from_json('{"a": 1}')


class TestMarkdownTable:
    def test_structure(self, records):
        table = render_markdown_table(records, "epsilon")
        lines = table.splitlines()
        assert lines[0].startswith("| mechanism |")
        assert "epsilon=3.0" in lines[0]
        assert any(line.startswith("| smm |") for line in lines)
        assert any(line.startswith("| ddg |") for line in lines)

    def test_missing_cells_dashed(self, records):
        table = render_markdown_table(records, "epsilon")
        ddg_row = next(l for l in table.splitlines() if l.startswith("| ddg"))
        assert "-" in ddg_row  # no eps=1 cell for ddg

    def test_missing_parameter_rejected(self, records):
        with pytest.raises(ConfigurationError):
            render_markdown_table(records, "batch")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_markdown_table([], "epsilon")


class TestCsv:
    def test_header_and_rows(self, records):
        csv_text = write_csv(records)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "experiment,mechanism,metric,value,epsilon,m"
        assert len(lines) == 4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            write_csv([])
