"""The real-socket SecAgg service: server, client swarm, /metrics.

The load-bearing assertion is cross-transport: a localhost swarm round
— concurrent clients, real TCP, dropouts, rejections — produces an
aggregate **bit-identical** to :func:`repro.secagg.bonawitz.run_bonawitz`
for the same seeds and schedule.  Around it: transport-boundary
behaviour a simulator cannot exercise (mid-phase disconnects, spoofed
frames from a bound connection, duplicate-id handshakes, stragglers
against a wall-clock deadline) and the live Prometheus endpoint.
"""

import asyncio

import pytest

from repro.errors import AggregationError
from repro.net import (
    ClientPlan,
    SecAggServer,
    ServerConfig,
    SwarmConfig,
    expected_digest,
    run_client,
    run_swarm,
    scrape_metrics,
    write_datagram,
)
from repro.net.frames import read_datagram
from repro.secagg.bonawitz import ROUND_SHARE_KEYS, ROUND_UNMASK
from repro.secagg.keys import TOY_GROUP
from repro.secagg.statemachine import ClientSession
from repro.secagg.wire import Hello, Reject, decode_frames, encode_message
from repro.telemetry import parse_prometheus


def run_round(server_config, swarm_config, timeout=60.0):
    """One server round against one swarm on a single event loop."""

    async def scenario():
        server = SecAggServer(server_config)
        async with server:
            swarm_task = asyncio.ensure_future(
                run_swarm("127.0.0.1", server.port, swarm_config)
            )
            results = await asyncio.wait_for(server.serve_rounds(), timeout)
            swarm = await swarm_task
        return results, swarm

    return asyncio.run(scenario())


class TestSwarmEquivalence:
    def test_16_clients_with_dropouts_bit_identical(self):
        swarm_cfg = SwarmConfig(clients=16, threshold=8, dropouts=3, seed=42)
        results, swarm = run_round(
            ServerConfig(cohort_size=16, threshold=8), swarm_cfg
        )
        (result,) = results
        assert result.aborted is None
        assert result.digest == expected_digest(swarm_cfg)
        assert len(result.included) == 13
        assert swarm.completed == 13
        assert swarm.count("dropped") == 3

    def test_64_clients_with_dropouts_bit_identical(self):
        swarm_cfg = SwarmConfig(clients=64, threshold=32, dropouts=6, seed=3)
        results, swarm = run_round(
            ServerConfig(cohort_size=64, threshold=32), swarm_cfg,
            timeout=120.0,
        )
        (result,) = results
        assert result.aborted is None
        assert result.digest == expected_digest(swarm_cfg)
        assert len(result.included) == 58
        assert swarm.completed == 58

    def test_dropout_at_every_phase_matches(self):
        for phase in (0, 1, 2, 3):
            swarm_cfg = SwarmConfig(
                clients=8, threshold=4, dropouts=2, dropout_phase=phase,
                seed=17,
            )
            cohort = 8 - (2 if phase == 0 else 0)  # Phase-0: never connect.
            results, _ = run_round(
                ServerConfig(cohort_size=cohort, threshold=4), swarm_cfg
            )
            (result,) = results
            assert result.aborted is None, f"phase {phase}: {result.aborted}"
            assert result.digest == expected_digest(swarm_cfg), (
                f"digest diverged for dropout_phase={phase}"
            )

    def test_two_rounds_back_to_back(self):
        swarm_cfg = SwarmConfig(clients=8, threshold=4, seed=5)

        async def scenario():
            server = SecAggServer(
                ServerConfig(cohort_size=8, threshold=4, rounds=2)
            )
            async with server:
                serve = asyncio.ensure_future(server.serve_rounds())
                first = await run_swarm("127.0.0.1", server.port, swarm_cfg)
                second = await run_swarm("127.0.0.1", server.port, swarm_cfg)
                results = await asyncio.wait_for(serve, 60)
            return results, first, second

        results, first, second = asyncio.run(scenario())
        assert [r.aborted for r in results] == [None, None]
        # Same seeds, same schedule -> same aggregate, both rounds.
        expected = expected_digest(swarm_cfg)
        assert [r.digest for r in results] == [expected, expected]
        assert first.completed == second.completed == 8


class TestNegotiationOverSockets:
    def test_reject_round_trip(self):
        """A bad-version client gets a typed Reject over a real socket
        and parks a NegotiationError; the round completes without it."""
        swarm_cfg = SwarmConfig(
            clients=8, threshold=4, bad_version=1, seed=11
        )
        results, swarm = run_round(
            ServerConfig(cohort_size=8, threshold=4), swarm_cfg
        )
        (result,) = results
        assert result.aborted is None
        assert result.rejected == {
            1: "unsupported protocol version 2 (round speaks 1)"
        }
        assert swarm.count("rejected") == 1
        report = next(r for r in swarm.reports if r.index == 1)
        assert "rejected at Hello" in report.detail
        assert result.digest == expected_digest(swarm_cfg)

    def test_duplicate_id_refused_with_typed_reject(self):
        async def scenario():
            server = SecAggServer(
                ServerConfig(cohort_size=2, threshold=2, join_timeout=5.0)
            )
            import numpy as np

            async with server:
                session = ClientSession(
                    index=1,
                    vector=np.zeros(32, dtype=np.int64),
                    modulus=2**16,
                    threshold=2,
                    rng=np.random.default_rng(0),
                    group=TOY_GROUP,
                )
                handshake = b"".join(session.start())
                r1, w1 = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await write_datagram(w1, handshake)
                # Second connection claiming the same id.
                r2, w2 = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await write_datagram(w2, handshake)
                answer = await asyncio.wait_for(read_datagram(r2), 10)
                frames = decode_frames(answer)
                w1.close()
                w2.close()
                return frames

        frames = asyncio.run(scenario())
        assert len(frames) == 1
        message = frames[0][1]
        assert isinstance(message, Reject)
        assert "already bound" in message.reason


class TestTransportBoundaries:
    def test_spoofed_frame_evicts_connection_not_victim(self):
        """A bound connection replaying another client's frames is
        evicted; the impersonated client still completes."""

        async def scenario():
            import numpy as np

            swarm_cfg = SwarmConfig(clients=8, threshold=4, seed=23)
            from repro.net.swarm import client_plans, derive_population

            inputs, _ = derive_population(swarm_cfg)
            plans = client_plans(swarm_cfg)

            async def spoofer(port):
                """Handshakes as client 9, then sends a frame claiming
                client 1 (who is also honestly connected)."""
                session = ClientSession(
                    index=9,
                    vector=np.zeros(
                        swarm_cfg.dimension, dtype=np.int64
                    ),
                    modulus=swarm_cfg.modulus,
                    threshold=4,
                    rng=np.random.default_rng(99),
                    group=TOY_GROUP,
                )
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    hello, advertise = session.start()
                    await write_datagram(writer, hello + advertise)
                    welcome = await asyncio.wait_for(
                        read_datagram(reader), 10
                    )
                    roster = await asyncio.wait_for(
                        read_datagram(reader), 10
                    )
                    # Phase 1: replay a frame claiming sender 1.
                    spoofed = encode_message(
                        Hello(sender=1), session.header
                    )
                    await write_datagram(writer, spoofed)
                    # The server evicts us: connection closes.
                    assert await asyncio.wait_for(
                        read_datagram(reader), 10
                    ) is None
                finally:
                    writer.close()

            server = SecAggServer(
                ServerConfig(cohort_size=9, threshold=4, phase_timeout=10.0)
            )
            async with server:
                clients = [
                    asyncio.ensure_future(
                        run_client(
                            "127.0.0.1",
                            server.port,
                            plan,
                            inputs[plan.index - 1],
                            swarm_cfg.modulus,
                            4,
                        )
                    )
                    for plan in plans
                ]
                spoof = asyncio.ensure_future(spoofer(server.port))
                results = await asyncio.wait_for(
                    server.serve_rounds(), 60
                )
                await spoof
                reports = await asyncio.gather(*clients)
            return results, reports

        results, reports = asyncio.run(scenario())
        (result,) = results
        assert result.aborted is None
        assert 9 in result.evicted
        # The victim (client 1) is untouched by the impersonation.
        assert 1 in result.included
        assert all(r.status == "completed" for r in reports)

    def test_mid_phase_disconnect_is_evicted_not_hung(self):
        """A client that vanishes after the roster broadcast is evicted
        well before the phase deadline; the round completes."""

        async def scenario():
            import numpy as np

            swarm_cfg = SwarmConfig(clients=8, threshold=4, seed=31)
            from repro.net.swarm import client_plans, derive_population

            inputs, _ = derive_population(swarm_cfg)
            plans = client_plans(swarm_cfg)

            async def vanisher(port, plan, vector):
                session = ClientSession(
                    index=plan.index,
                    vector=np.asarray(vector),
                    modulus=swarm_cfg.modulus,
                    threshold=4,
                    rng=np.random.default_rng(plan.seed),
                    group=TOY_GROUP,
                )
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                await write_datagram(writer, b"".join(session.start()))
                await asyncio.wait_for(read_datagram(reader), 10)
                writer.close()  # Gone mid share-keys, no upload.

            # A deliberately long deadline: if the disconnect were NOT
            # evicted eagerly, the round would sit out 60s per phase
            # and trip the scenario timeout.
            server = SecAggServer(
                ServerConfig(cohort_size=8, threshold=4, phase_timeout=60.0)
            )
            async with server:
                tasks = [
                    asyncio.ensure_future(
                        vanisher(
                            server.port, plan, inputs[plan.index - 1]
                        )
                        if plan.index == 8
                        else run_client(
                            "127.0.0.1",
                            server.port,
                            plan,
                            inputs[plan.index - 1],
                            swarm_cfg.modulus,
                            4,
                        )
                    )
                    for plan in plans
                ]
                results = await asyncio.wait_for(server.serve_rounds(), 15)
                await asyncio.gather(*tasks)
            return results

        results = asyncio.run(scenario())
        (result,) = results
        assert result.aborted is None
        assert 8 in result.evicted
        assert 8 not in result.included
        assert len(result.included) == 7
        # Evicting at phase start is equivalent to a share-keys dropout.
        assert result.digest == expected_digest(
            SwarmConfig(
                clients=8, threshold=4, dropouts=1,
                dropout_phase=ROUND_SHARE_KEYS, seed=31,
            )
        )

    def test_straggler_evicted_at_wall_deadline(self):
        swarm_cfg = SwarmConfig(clients=6, threshold=3, seed=13)

        async def scenario():
            from repro.net.swarm import client_plans, derive_population
            import dataclasses

            inputs, _ = derive_population(swarm_cfg)
            plans = client_plans(swarm_cfg)
            # Client 6 sleeps past the 0.8s phase deadline before its
            # unmask response (delays apply from the share-keys send).
            plans[5] = dataclasses.replace(plans[5], delay=2.0)
            server = SecAggServer(
                ServerConfig(
                    cohort_size=6, threshold=3, phase_timeout=0.8,
                    join_timeout=10.0,
                )
            )
            async with server:
                tasks = [
                    asyncio.ensure_future(
                        run_client(
                            "127.0.0.1",
                            server.port,
                            plan,
                            inputs[plan.index - 1],
                            swarm_cfg.modulus,
                            3,
                        )
                    )
                    for plan in plans
                ]
                results = await asyncio.wait_for(server.serve_rounds(), 30)
                await asyncio.gather(*tasks)
            return results

        results = asyncio.run(scenario())
        (result,) = results
        assert result.aborted is None
        assert 6 not in result.included
        assert len(result.included) == 5

    def test_chaos_cancel_round_still_completes(self):
        # The delay keeps clients mid-round long enough for both
        # staggered cancels to land before their victims finish.
        swarm_cfg = SwarmConfig(
            clients=12, threshold=4, chaos_cancel=2, seed=29, delay=0.1
        )
        results, swarm = run_round(
            ServerConfig(cohort_size=12, threshold=4, phase_timeout=10.0),
            swarm_cfg,
        )
        (result,) = results
        assert result.aborted is None
        assert swarm.count("cancelled") == 2
        assert swarm.count("cancelled") + swarm.count("completed") == 12
        assert len(result.included) == 10


class TestMetricsEndpoint:
    def test_scrape_serves_phase_latency_histograms(self):
        async def scenario():
            swarm_cfg = SwarmConfig(clients=8, threshold=4, dropouts=2, seed=7)
            server = SecAggServer(
                ServerConfig(cohort_size=8, threshold=4)
            )
            async with server:
                swarm_task = asyncio.ensure_future(
                    run_swarm("127.0.0.1", server.port, swarm_cfg)
                )
                await asyncio.wait_for(server.serve_rounds(), 60)
                await swarm_task
                text = await scrape_metrics(
                    "127.0.0.1", server.metrics_port
                )
            return text

        text = asyncio.run(scenario())
        parsed = parse_prometheus(text)
        families = parsed.family_names()
        # The very same families the simulator reports into.
        for family in (
            "secagg_phase_wall_duration_seconds",
            "secagg_rounds_total",
            "secagg_wire_bytes_total",
            "secagg_wire_messages_total",
            "secagg_clients_dropped_total",
            "net_connections_total",
            "net_round_wall_seconds",
        ):
            assert family in families, family
        for phase in ("advertise", "share-keys", "masked-input", "unmask"):
            count = parsed.value(
                "secagg_phase_wall_duration_seconds_count", phase=phase
            )
            assert count == 1.0, phase
        assert parsed.value(
            "secagg_rounds_total", outcome="completed"
        ) == 1.0

    def test_healthz_and_404(self):
        async def scenario():
            from repro.net.http import start_metrics_endpoint
            from repro.telemetry import MetricsRegistry

            endpoint = await start_metrics_endpoint(MetricsRegistry())
            port = endpoint.sockets[0].getsockname()[1]

            async def fetch(path):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    f"GET {path} HTTP/1.1\r\n\r\n".encode("ascii")
                )
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                return raw.split(b"\r\n", 1)[0]

            health = await fetch("/healthz")
            missing = await fetch("/nope")
            endpoint.close()
            await endpoint.wait_closed()
            return health, missing

        health, missing = asyncio.run(scenario())
        assert health == b"HTTP/1.1 200 OK"
        assert missing == b"HTTP/1.1 404 Not Found"


class TestClientReportEdges:
    def test_round0_dropout_never_connects(self):
        async def scenario():
            # No server at all: a phase-0 dropout must not even try.
            report = await run_client(
                "127.0.0.1",
                9,  # Reserved port; nothing listens.
                ClientPlan(index=1, seed=0, drop_at_phase=0),
                [0] * 4,
                2**16,
                2,
            )
            return report

        report = asyncio.run(scenario())
        assert report.status == "dropped"
        assert report.uploads_sent == 0

    def test_connection_refused_reports_disconnected(self):
        async def scenario():
            return await run_client(
                "127.0.0.1",
                9,
                ClientPlan(index=1, seed=0),
                [0] * 4,
                2**16,
                2,
            )

        report = asyncio.run(scenario())
        assert report.status == "disconnected"
