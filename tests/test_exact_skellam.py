"""Tests for the exact Skellam sampler and distribution helpers."""

import fractions

import numpy as np
import pytest
from scipy import stats

from repro.errors import ConfigurationError
from repro.sampling.skellam import ExactSkellamSampler, SkellamDistribution


class TestSkellamDistribution:
    def test_variance(self):
        assert SkellamDistribution(lam=4.0).variance == 8.0

    def test_pmf_matches_scipy(self):
        dist = SkellamDistribution(lam=2.0)
        ks = np.arange(-10, 11)
        assert np.allclose(dist.pmf(ks), stats.skellam.pmf(ks, 2.0, 2.0))

    def test_pmf_symmetric(self):
        dist = SkellamDistribution(lam=3.0)
        ks = np.arange(1, 8)
        assert np.allclose(dist.pmf(ks), dist.pmf(-ks))

    def test_pmf_sums_to_one(self):
        dist = SkellamDistribution(lam=1.5)
        ks = np.arange(-60, 61)
        assert abs(float(np.sum(dist.pmf(ks))) - 1.0) < 1e-12

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            SkellamDistribution(lam=0.0)


class TestExactSkellamSampler:
    def test_moments(self):
        sampler = ExactSkellamSampler(lam=2, seed=0)
        draws = np.array(sampler.sample_many(20_000))
        assert abs(draws.mean()) < 0.05
        assert abs(draws.var() - 4.0) < 0.15

    def test_symmetry(self):
        sampler = ExactSkellamSampler(lam=3, seed=1)
        draws = np.array(sampler.sample_many(20_000))
        assert abs((draws > 0).mean() - (draws < 0).mean()) < 0.02

    def test_distribution_chi_square(self):
        sampler = ExactSkellamSampler(lam=1, seed=2)
        draws = np.array(sampler.sample_many(30_000))
        cutoff = 6
        clipped = np.clip(draws, -cutoff, cutoff)
        counts = np.bincount(clipped + cutoff, minlength=2 * cutoff + 1)
        ks = np.arange(-cutoff, cutoff + 1)
        probs = stats.skellam.pmf(ks, 1, 1)
        probs[0] += stats.skellam.cdf(-cutoff - 1, 1, 1)
        probs[-1] += stats.skellam.sf(cutoff, 1, 1)
        expected = probs * len(draws)
        mask = expected > 5
        chi_square = float(
            ((counts[mask] - expected[mask]) ** 2 / expected[mask]).sum()
        )
        assert chi_square < 35.0

    def test_rational_lambda(self):
        sampler = ExactSkellamSampler(lam=fractions.Fraction(1, 2), seed=3)
        draws = np.array(sampler.sample_many(20_000))
        assert abs(draws.var() - 1.0) < 0.05

    def test_float_lambda_coerced_exactly(self):
        sampler = ExactSkellamSampler(lam=0.25, seed=0)
        assert sampler.lam == fractions.Fraction(1, 4)

    def test_seed_reproducibility(self):
        first = ExactSkellamSampler(lam=2, seed=9)
        second = ExactSkellamSampler(lam=2, seed=9)
        assert first.sample_many(100) == second.sample_many(100)

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            ExactSkellamSampler(lam=0)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ExactSkellamSampler(lam=1, seed=0).sample_many(-1)
