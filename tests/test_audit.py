"""Tests for the empirical privacy auditor (repro.audit)."""

import numpy as np
import pytest

from repro.audit import audit_sum_mechanism
from repro.config import CompressionConfig, PrivacyBudget
from repro.core.calibration import AccountingSpec
from repro.errors import ConfigurationError
from repro.mechanisms import (
    GaussianMechanism,
    InputSpec,
    SkellamMixtureMechanism,
)

SPEC = InputSpec(num_participants=8, dimension=16)
BUDGET = AccountingSpec(budget=PrivacyBudget(epsilon=2.0))


class TestAuditHonestMechanisms:
    def test_gaussian_within_claim(self):
        mechanism = GaussianMechanism()
        mechanism.calibrate(SPEC, BUDGET)
        result = audit_sum_mechanism(
            mechanism, np.random.default_rng(0), trials=800
        )
        assert not result.violated
        assert result.analytic_epsilon == 2.0
        assert result.trials == 800

    def test_smm_within_claim(self):
        mechanism = SkellamMixtureMechanism(
            CompressionConfig(modulus=2**16, gamma=128.0)
        )
        mechanism.calibrate(SPEC, BUDGET)
        result = audit_sum_mechanism(
            mechanism, np.random.default_rng(1), trials=800
        )
        assert not result.violated

    def test_empirical_epsilon_nonneg(self):
        mechanism = GaussianMechanism()
        mechanism.calibrate(SPEC, BUDGET)
        result = audit_sum_mechanism(
            mechanism, np.random.default_rng(2), trials=400
        )
        assert result.empirical_epsilon >= 0.0


class TestAuditCatchesViolations:
    def test_undernoised_mechanism_flagged(self):
        # Negative control: a mechanism claiming eps=0.05 while adding
        # eps~2 worth of noise must be caught by the distinguishing game.
        mechanism = GaussianMechanism()
        mechanism.calibrate(SPEC, BUDGET)
        # Forge the claim: pretend the mechanism satisfies eps = 0.05.
        mechanism._accounting = AccountingSpec(
            budget=PrivacyBudget(epsilon=0.05)
        )
        result = audit_sum_mechanism(
            mechanism, np.random.default_rng(3), trials=2000
        )
        assert result.violated

    def test_noiseless_mechanism_flagged(self):
        mechanism = GaussianMechanism()
        mechanism.calibrate(SPEC, BUDGET)
        mechanism.sigma = 1e-6  # Sabotage: remove the noise.
        result = audit_sum_mechanism(
            mechanism, np.random.default_rng(4), trials=800
        )
        assert result.violated


class TestValidation:
    def test_requires_calibration(self):
        mechanism = GaussianMechanism()
        with pytest.raises(Exception):
            audit_sum_mechanism(mechanism, np.random.default_rng(0))

    def test_rejects_tiny_trials(self):
        mechanism = GaussianMechanism()
        mechanism.calibrate(SPEC, BUDGET)
        with pytest.raises(ConfigurationError):
            audit_sum_mechanism(
                mechanism, np.random.default_rng(0), trials=10
            )
