"""Tests for the SecAgg simulator (repro.secagg.protocol)."""

import numpy as np
import pytest

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.protocol import (
    PairwiseMaskProtocol,
    ZeroSumMaskProtocol,
    secure_sum,
)


@pytest.fixture(params=[PairwiseMaskProtocol, ZeroSumMaskProtocol])
def protocol_class(request):
    return request.param


class TestCorrectness:
    def test_modular_sum_recovered(self, protocol_class):
        rng = np.random.default_rng(0)
        inputs = rng.integers(0, 256, size=(12, 9), dtype=np.int64)
        protocol = protocol_class(256, rng)
        assert np.array_equal(
            protocol.run(inputs), inputs.sum(axis=0) % 256
        )

    def test_single_participant(self, protocol_class):
        rng = np.random.default_rng(1)
        inputs = rng.integers(0, 64, size=(1, 5), dtype=np.int64)
        protocol = protocol_class(64, rng)
        assert np.array_equal(protocol.run(inputs), inputs[0])

    def test_two_participants(self, protocol_class):
        rng = np.random.default_rng(2)
        inputs = np.array([[63, 0], [1, 63]], dtype=np.int64)
        protocol = protocol_class(64, rng)
        assert np.array_equal(protocol.run(inputs), [0, 63])

    def test_repeated_runs_consistent(self, protocol_class):
        rng = np.random.default_rng(3)
        inputs = rng.integers(0, 16, size=(5, 4), dtype=np.int64)
        protocol = protocol_class(16, rng)
        expected = inputs.sum(axis=0) % 16
        for _ in range(5):
            assert np.array_equal(protocol.run(inputs), expected)


class TestConfidentiality:
    def test_messages_differ_from_inputs(self, protocol_class):
        rng = np.random.default_rng(4)
        inputs = np.zeros((8, 50), dtype=np.int64)
        protocol = protocol_class(256, rng)
        messages = protocol.transmit(inputs)
        # All-zero inputs produce non-zero masked messages.
        assert np.any(messages != 0)

    def test_individual_message_marginally_uniform(self, protocol_class):
        # Chi-square test of one participant's message bytes against
        # the uniform distribution on Z_16.
        rng = np.random.default_rng(5)
        modulus = 16
        inputs = np.zeros((4, 4000), dtype=np.int64)
        protocol = protocol_class(modulus, rng)
        messages = protocol.transmit(inputs)
        counts = np.bincount(messages[0], minlength=modulus)
        expected = messages.shape[1] / modulus
        chi_square = float(((counts - expected) ** 2 / expected).sum())
        # dof 15; 0.999 quantile ~37.7.
        assert chi_square < 45.0

    def test_masks_sum_to_zero(self, protocol_class):
        rng = np.random.default_rng(6)
        modulus = 128
        protocol = protocol_class(modulus, rng)
        masks = protocol._masks(7, 11)
        assert np.all(masks.sum(axis=0) % modulus == 0)


class TestValidation:
    def test_rejects_float_inputs(self, protocol_class):
        protocol = protocol_class(256, np.random.default_rng(0))
        with pytest.raises(AggregationError):
            protocol.run(np.zeros((2, 3), dtype=np.float64))

    def test_rejects_out_of_range(self, protocol_class):
        protocol = protocol_class(256, np.random.default_rng(0))
        with pytest.raises(AggregationError):
            protocol.run(np.full((2, 3), 256, dtype=np.int64))
        with pytest.raises(AggregationError):
            protocol.run(np.full((2, 3), -1, dtype=np.int64))

    def test_rejects_1d_input(self, protocol_class):
        protocol = protocol_class(256, np.random.default_rng(0))
        with pytest.raises(AggregationError):
            protocol.run(np.zeros(3, dtype=np.int64))

    def test_rejects_odd_modulus(self, protocol_class):
        with pytest.raises(ConfigurationError):
            protocol_class(15, np.random.default_rng(0))


class TestSecureSumWrapper:
    def test_both_schemes(self):
        rng = np.random.default_rng(7)
        inputs = rng.integers(0, 32, size=(6, 8), dtype=np.int64)
        expected = inputs.sum(axis=0) % 32
        assert np.array_equal(secure_sum(inputs, 32, rng, "zero-sum"), expected)
        assert np.array_equal(secure_sum(inputs, 32, rng, "pairwise"), expected)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            secure_sum(
                np.zeros((2, 2), dtype=np.int64),
                32,
                np.random.default_rng(0),
                "magic",
            )


class TestBonawitzScheme:
    def test_secure_sum_bonawitz_matches_plain_sum(self):
        rng = np.random.default_rng(21)
        inputs = rng.integers(0, 2**8, size=(5, 16), dtype=np.int64)
        result = secure_sum(inputs, 2**8, rng, scheme="bonawitz")
        np.testing.assert_array_equal(
            result, np.mod(inputs.sum(axis=0), 2**8)
        )

    def test_bonawitz_scheme_agrees_with_masks(self):
        rng = np.random.default_rng(22)
        inputs = rng.integers(0, 2**10, size=(4, 8), dtype=np.int64)
        via_bonawitz = secure_sum(
            inputs, 2**10, np.random.default_rng(1), scheme="bonawitz"
        )
        via_masks = secure_sum(
            inputs, 2**10, np.random.default_rng(2), scheme="zero-sum"
        )
        np.testing.assert_array_equal(via_bonawitz, via_masks)

    def test_unknown_scheme_error_mentions_bonawitz(self):
        inputs = np.zeros((2, 4), dtype=np.int64)
        with pytest.raises(ConfigurationError, match="bonawitz"):
            secure_sum(inputs, 2**8, np.random.default_rng(0), scheme="nope")
