"""Tests for the federated training loop (repro.fl.training)."""

import numpy as np
import pytest

from repro.config import CompressionConfig, PrivacyBudget
from repro.errors import ConfigurationError
from repro.fl.data import make_synthetic_images
from repro.fl.dpsgd import train_dpsgd
from repro.fl.model import MLPClassifier
from repro.fl.training import FederatedTrainer, TrainingConfig
from repro.mechanisms import GaussianMechanism, SkellamMixtureMechanism


@pytest.fixture(scope="module")
def tiny_task():
    rng = np.random.default_rng(0)
    return make_synthetic_images(400, 100, noise_scale=0.2, rng=rng)


def _model(seed=1):
    return MLPClassifier([784, 8, 10], np.random.default_rng(seed))


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig(rounds=10, expected_batch=5)
        assert config.optimizer == "adam"
        assert config.l2_bound == 1.0

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(rounds=0, expected_batch=5)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(rounds=10, expected_batch=0)


class TestFederatedTrainer:
    def test_non_private_training_learns(self, tiny_task):
        # Un-clipped per-example gradients have norms ~10 at init (the
        # reason DP-SGD's clipping also acts as a useful normaliser), so
        # plain Adam needs a larger step size to make headway quickly.
        train, test = tiny_task
        model = _model()
        config = TrainingConfig(rounds=100, expected_batch=40, learning_rate=0.02)
        trainer = FederatedTrainer(model, None, train, test, config)
        before = model.accuracy(test.features, test.labels)
        history = trainer.run(np.random.default_rng(2))
        assert history.final_accuracy > before + 0.15

    def test_mechanism_requires_budget(self, tiny_task):
        train, test = tiny_task
        config = TrainingConfig(rounds=5, expected_batch=10)
        with pytest.raises(ConfigurationError):
            FederatedTrainer(
                _model(), GaussianMechanism(), train, test, config
            )

    def test_batch_larger_than_population_rejected(self, tiny_task):
        train, test = tiny_task
        config = TrainingConfig(rounds=5, expected_batch=10_000)
        with pytest.raises(ConfigurationError):
            FederatedTrainer(_model(), None, train, test, config)

    def test_sampling_rate(self, tiny_task):
        train, test = tiny_task
        config = TrainingConfig(rounds=5, expected_batch=40)
        trainer = FederatedTrainer(_model(), None, train, test, config)
        assert trainer.sampling_rate == pytest.approx(0.1)

    def test_mechanism_calibrated_for_run(self, tiny_task):
        train, test = tiny_task
        mechanism = GaussianMechanism()
        config = TrainingConfig(
            rounds=8, expected_batch=40, budget=PrivacyBudget(3.0)
        )
        trainer = FederatedTrainer(mechanism=mechanism, model=_model(),
                                   train=train, test=test, config=config)
        trainer.calibrate_mechanism()
        assert mechanism.accounting.rounds == 8
        assert mechanism.accounting.sampling_rate == pytest.approx(0.1)
        assert mechanism.spec.num_participants == 40
        assert mechanism.spec.dimension == _model().num_parameters

    def test_eval_every_collects_history(self, tiny_task):
        train, test = tiny_task
        config = TrainingConfig(
            rounds=20, expected_batch=40, eval_every=5, learning_rate=0.005
        )
        trainer = FederatedTrainer(_model(), None, train, test, config)
        history = trainer.run(np.random.default_rng(3))
        assert history.evaluated_rounds == [5, 10, 15, 20]
        assert len(history.test_accuracies) == 4

    def test_dpsgd_with_loose_budget_learns(self, tiny_task):
        train, test = tiny_task
        config = TrainingConfig(
            rounds=100,
            expected_batch=40,
            budget=PrivacyBudget(50.0),
            learning_rate=0.01,
        )
        history = train_dpsgd(_model(), train, test, config, np.random.default_rng(4))
        assert history.final_accuracy > 0.45
        assert history.mechanism_summary["name"] == "gaussian"

    def test_smm_mechanism_trains_end_to_end(self, tiny_task):
        train, test = tiny_task
        mechanism = SkellamMixtureMechanism(
            CompressionConfig(modulus=2**10, gamma=32.0)
        )
        config = TrainingConfig(
            rounds=25,
            expected_batch=40,
            budget=PrivacyBudget(8.0),
            learning_rate=0.005,
        )
        trainer = FederatedTrainer(_model(), mechanism, train, test, config)
        history = trainer.run(np.random.default_rng(5))
        assert history.mechanism_summary["name"] == "smm"
        assert 0.0 <= history.final_accuracy <= 1.0
        assert history.mechanism_summary["achieved_epsilon"] <= 8.0 + 1e-6

    def test_reproducible_given_seeds(self, tiny_task):
        train, test = tiny_task
        config = TrainingConfig(rounds=10, expected_batch=20, learning_rate=0.005)
        first = FederatedTrainer(_model(7), None, train, test, config).run(
            np.random.default_rng(9)
        )
        second = FederatedTrainer(_model(7), None, train, test, config).run(
            np.random.default_rng(9)
        )
        assert first.final_accuracy == second.final_accuracy


class TestSchedulesAndDropout:
    def test_schedule_config_round_trips(self):
        config = TrainingConfig(
            rounds=10, expected_batch=5, lr_schedule="cosine"
        )
        assert config.lr_schedule == "cosine"

    def test_unknown_schedule_fails_at_run(self, tiny_task):
        train, test = tiny_task
        config = TrainingConfig(
            rounds=2, expected_batch=5, lr_schedule="bogus"
        )
        trainer = FederatedTrainer(_model(), None, train, test, config)
        with pytest.raises(ConfigurationError, match="unknown schedule"):
            trainer.run(np.random.default_rng(0))

    def test_cosine_schedule_trains(self, tiny_task):
        train, test = tiny_task
        model = _model(1)
        before = model.accuracy(test.features, test.labels)
        config = TrainingConfig(
            rounds=100,
            expected_batch=40,
            learning_rate=0.02,
            lr_schedule="cosine",
        )
        trainer = FederatedTrainer(model, None, train, test, config)
        history = trainer.run(np.random.default_rng(2))
        assert history.final_accuracy > before + 0.15

    def test_invalid_dropout_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="dropout_rate"):
            TrainingConfig(rounds=10, expected_batch=5, dropout_rate=1.0)

    def test_dropout_training_still_learns(self, tiny_task):
        """20% client dropout shrinks batches but training converges —
        the robustness property SecAgg dropout-recovery provides."""
        train, test = tiny_task
        model = _model(2)
        before = model.accuracy(test.features, test.labels)
        config = TrainingConfig(
            rounds=100,
            expected_batch=40,
            learning_rate=0.02,
            dropout_rate=0.2,
        )
        trainer = FederatedTrainer(model, None, train, test, config)
        history = trainer.run(np.random.default_rng(3))
        assert history.final_accuracy > before + 0.15

    def test_dropout_with_private_mechanism(self, tiny_task):
        train, test = tiny_task
        model = _model(13)
        config = TrainingConfig(
            rounds=5,
            expected_batch=30,
            budget=PrivacyBudget(epsilon=5.0),
            dropout_rate=0.3,
        )
        mechanism = SkellamMixtureMechanism(
            CompressionConfig(modulus=2**10, gamma=32.0)
        )
        trainer = FederatedTrainer(model, mechanism, train, test, config)
        history = trainer.run(np.random.default_rng(7))
        assert 0.0 <= history.final_accuracy <= 1.0
