"""Command-line interface for the reproduction experiments.

Seven subcommands mirror the paper's evaluation and motivation sections,
plus the production-shaped simulation layer::

    python -m repro.cli sum       # Section 6.1 distributed sum estimation
    python -m repro.cli fl        # Section 6.2 federated learning
    python -m repro.cli calibrate # inspect a mechanism's calibration
    python -m repro.cli secagg    # run the Bonawitz protocol with dropouts
    python -m repro.cli account   # RDP (Theorem 5) vs tight PLD epsilon
    python -m repro.cli attack    # Mironov floating-point attack demo
    python -m repro.cli simulate  # async dropout-tolerant FL simulation

Each prints the paper-style series rows; the benchmark suite under
``benchmarks/`` drives the same code paths with pinned configurations.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from collections.abc import Sequence

import numpy as np

from repro.config import CompressionConfig, PrivacyBudget
from repro.core.calibration import AccountingSpec
from repro.fl.data import fashion_mnist_surrogate, mnist_surrogate
from repro.fl.experiment import format_accuracy_table, run_fl_point
from repro.mechanisms import (
    CpSgdMechanism,
    DiscreteGaussianMixtureMechanism,
    DistributedDiscreteGaussian,
    GaussianMechanism,
    InputSpec,
    SkellamMechanism,
    SkellamMixtureMechanism,
)
from repro.sumestimation import (
    format_results_table,
    run_sum_estimation,
    sample_sphere,
)

MECHANISMS = ("gaussian", "smm", "skellam", "ddg", "dgm", "cpsgd")


def build_mechanism(name: str, compression: CompressionConfig | None):
    """Instantiate a mechanism by its short name."""
    if name == "gaussian":
        return GaussianMechanism()
    if compression is None:
        raise SystemExit(f"mechanism {name!r} needs --bits/--gamma")
    factories = {
        "smm": SkellamMixtureMechanism,
        "skellam": SkellamMechanism,
        "ddg": DistributedDiscreteGaussian,
        "dgm": DiscreteGaussianMixtureMechanism,
        "cpsgd": CpSgdMechanism,
    }
    return factories[name](compression)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bits", type=int, default=14)
    parser.add_argument("--gamma", type=float, default=None)
    parser.add_argument("--epsilons", type=float, nargs="+",
                        default=[1.0, 3.0, 5.0])
    parser.add_argument("--delta", type=float, default=1e-5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mechanisms", nargs="+", choices=MECHANISMS,
        default=["gaussian", "smm", "skellam", "ddg"],
    )


def _compression(args) -> CompressionConfig:
    gamma = args.gamma if args.gamma is not None else 2**args.bits / 256.0
    return CompressionConfig(modulus=2**args.bits, gamma=gamma)


def command_sum(args) -> int:
    """Run the distributed sum estimation sweep (Figure 1 style)."""
    rng = np.random.default_rng(args.seed)
    values = sample_sphere(args.participants, args.dimension, rng)
    compression = _compression(args)
    results = []
    for epsilon in args.epsilons:
        for name in args.mechanisms:
            mechanism = build_mechanism(name, compression)
            result = run_sum_estimation(
                mechanism,
                values,
                PrivacyBudget(epsilon=epsilon, delta=args.delta),
                rng,
                trials=args.trials,
            )
            results.append(result)
            print(f"eps={epsilon:4.1f}  {name:9s} mse={result.mse:12.4g}",
                  flush=True)
    print("\n" + format_results_table(results))
    return 0


def command_fl(args) -> int:
    """Run the federated-learning sweep (Figure 2/3 style)."""
    rng = np.random.default_rng(args.seed + 1000)
    maker = mnist_surrogate if args.dataset == "mnist" else fashion_mnist_surrogate
    train, test = maker(rng, args.participants, args.test_records)
    compression = _compression(args)
    results = []
    for epsilon in args.epsilons:
        for name in args.mechanisms:
            mechanism = build_mechanism(
                name, None if name == "gaussian" else compression
            )
            result = run_fl_point(
                mechanism,
                train,
                test,
                rounds=args.rounds,
                expected_batch=args.batch,
                epsilon=epsilon,
                seed=args.seed,
                hidden=args.hidden,
                learning_rate=args.learning_rate,
                delta=args.delta,
            )
            results.append(result)
            print(f"eps={epsilon:4.1f}  {name:9s} "
                  f"acc={100 * result.accuracy:5.1f}%", flush=True)
    print("\n" + format_accuracy_table(results))
    return 0


def command_calibrate(args) -> int:
    """Print one mechanism's calibration at the requested budget."""
    compression = _compression(args)
    mechanism = build_mechanism(args.mechanism, compression)
    spec = InputSpec(
        num_participants=args.participants,
        dimension=args.dimension,
        l2_bound=args.l2_bound,
    )
    accounting = AccountingSpec(
        budget=PrivacyBudget(epsilon=args.epsilons[0], delta=args.delta),
        rounds=args.rounds,
        sampling_rate=args.sampling_rate,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        mechanism.calibrate(spec, accounting)
    for key, value in mechanism.describe().items():
        print(f"{key}: {value}")
    return 0


def command_secagg(args) -> int:
    """Run the full Bonawitz protocol over random inputs with dropouts."""
    from repro.secagg import run_bonawitz

    rng = np.random.default_rng(args.seed)
    modulus = 2**args.bits
    inputs = rng.integers(
        0, modulus, size=(args.clients, args.dimension), dtype=np.int64
    )
    dropouts = {
        int(index): 2  # drop before sending the masked input
        for index in rng.choice(
            np.arange(1, args.clients + 1),
            size=args.dropouts,
            replace=False,
        )
    }
    outcome = run_bonawitz(
        inputs, modulus, threshold=args.threshold, rng=rng, dropouts=dropouts
    )
    expected = np.mod(
        inputs[[u - 1 for u in sorted(outcome.included)]].sum(axis=0), modulus
    )
    print(f"clients: {args.clients}  threshold: {args.threshold}  "
          f"dropped: {sorted(outcome.dropped) or 'none'}")
    print(f"included in sum: {len(outcome.included)} clients")
    print(f"sum correct: {bool(np.array_equal(outcome.modular_sum, expected))}")
    return 0


def command_simulate(args) -> int:
    """Run the async orchestration engine over an unreliable population."""
    from repro.simulation import (
        AlwaysAvailable,
        BernoulliDropout,
        SimulationConfig,
        SimulationEngine,
        StragglerLatency,
    )

    from repro.errors import ConfigurationError

    if args.no_telemetry and args.metrics_out:
        raise SystemExit(
            "simulate: --metrics-out needs the metrics registry; "
            "drop --no-telemetry"
        )
    try:
        availability = AlwaysAvailable(latency=args.latency)
        if args.straggler_sigma > 0:
            availability = StragglerLatency(
                median=args.latency, sigma=args.straggler_sigma
            )
        if args.dropout_rate > 0:
            availability = BernoulliDropout(
                args.dropout_rate, base=availability
            )
        config = SimulationConfig(
            population_size=args.clients,
            expected_cohort=args.cohort,
            rounds=args.rounds,
            modulus=2**args.bits,
            gamma=args.gamma if args.gamma is not None else 2**args.bits / 256.0,
            epsilon=args.epsilon if not args.no_privacy else None,
            delta=args.delta,
            threshold_fraction=args.threshold_fraction,
            phase_timeout=args.phase_timeout,
            hidden=args.hidden,
            test_records=args.test_records,
            learning_rate=args.learning_rate,
            eval_every=args.eval_every,
            dataset=args.dataset,
            seed=args.seed,
            verify_aggregate=args.verify,
            shards=args.shards,
            backend=args.backend,
            tree=args.tree,
            compose=args.compose,
            rebalance=args.rebalance,
            telemetry=not args.no_telemetry,
            trace_max_events=args.trace_max_events,
            chaos=args.chaos,
        )
        engine = SimulationEngine(config, availability=availability)
    except ConfigurationError as error:
        raise SystemExit(f"simulate: {error}")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = engine.run()
    topology = config.aggregation_topology()
    if topology is not None:
        # The partition caps the effective count per level so every
        # shard keeps at least two clients.
        shape = (
            f"tree {topology.describe()}"
            if args.tree is not None
            else f"up to {args.shards} shards per round"
        )
        extras = f"{args.backend} backend, {config.compose} compose"
        if config.rebalance:
            extras += ", rebalance on"
        print(f"sharding: {shape} ({extras})", flush=True)
    for record in result.records:
        status = "aborted" if record.aborted else (
            f"included={len(record.included):3d} "
            f"dropped={len(record.dropped):3d}"
        )
        check = (
            "" if record.aggregate_matches is None
            else f"  exact={record.aggregate_matches}"
        )
        if record.recovered:
            check += "  recovered"
        print(f"round {record.index:3d}: cohort={len(record.cohort):3d} "
              f"{status}  eps={record.epsilon:6.3f}  "
              f"t={record.completed_at:8.1f}s{check}", flush=True)
    wire_messages = sum(record.wire_messages for record in result.records)
    wire_bytes = sum(record.wire_bytes for record in result.records)
    print(f"\nsimulated time: {result.sim_duration:.1f}s over "
          f"{len(result.records)} rounds")
    if wire_messages:
        rounds_with_traffic = sum(
            1 for record in result.records if record.wire_messages
        )
        print(f"wire traffic: {wire_messages} messages, "
              f"{wire_bytes / 1024:.1f} KiB total "
              f"({wire_bytes / rounds_with_traffic / 1024:.1f} KiB/round "
              f"over {rounds_with_traffic} aggregation rounds)")
    print(f"cumulative privacy: eps={result.epsilon:.4f} "
          f"delta={result.delta:g}")
    print(f"final test accuracy: {100 * result.final_accuracy:.1f}%")
    print(f"parameters digest: {result.parameters_digest}")
    if result.metrics is not None:
        rows = [
            row for row in result.metrics.phase_latency_rows()
            if row.get("sim_p50") is not None
        ]
        if rows:
            print("phase latency (simulated seconds):")
            for row in rows:
                print(f"  {row['phase']:>12s}: p50={row['sim_p50']:7.3f}s  "
                      f"p99={row['sim_p99']:7.3f}s  "
                      f"(wall p50={row['wall_p50'] * 1e3:.1f}ms)")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(result.metrics.to_prometheus())
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out:
        from repro.telemetry import trace_to_json_lines

        with open(args.trace_out, "w", encoding="utf-8") as handle:
            for line in trace_to_json_lines(engine.trace.events):
                handle.write(line)
                handle.write("\n")
        print(f"trace written to {args.trace_out} "
              f"({len(engine.trace)} events, "
              f"{engine.trace.dropped_events} dropped)")
    return 0


def command_account(args) -> int:
    """Compare Theorem-5 RDP accounting against the tight PLD epsilon."""
    from repro.accounting.pld import smm_pair_pmfs, tight_epsilon
    from repro.accounting.rdp import best_epsilon
    from repro.accounting.divergences import smm_rdp
    from repro.errors import PrivacyAccountingError
    import math

    value = args.value
    frac = value - math.floor(value)
    c = value**2 + frac - frac**2
    delta_inf = max(1, math.ceil(value))
    print(f"record value x = {value}, mixture sensitivity c = {c:.4f}")
    print(f"{'n*lambda':>10s} {'RDP eps':>10s} {'PLD eps':>10s} {'ratio':>7s}")
    for total_lambda in args.lambdas:
        p, q = smm_pair_pmfs(value, total_lambda)
        pld = tight_epsilon(p, q, args.delta)
        try:
            rdp, _ = best_epsilon(
                range(2, 101),
                lambda a: smm_rdp(a, c, total_lambda, delta_inf),
                args.delta,
            )
            ratio = f"{rdp / pld:7.2f}"
            rdp_text = f"{rdp:10.4f}"
        except (PrivacyAccountingError, ValueError, OverflowError) as error:
            # Expected accounting failures only (no finite RDP order
            # under delta, numeric overflow at extreme lambda); genuine
            # defects in the RDP path must propagate, not print "n/a".
            rdp_text, ratio = f"{'n/a':>10s}", f"{'-':>7s}"
            print(f"{total_lambda:10.1f} {rdp_text} {pld:10.4f} {ratio}"
                  f"  ({error})")
            continue
        print(f"{total_lambda:10.1f} {rdp_text} {pld:10.4f} {ratio}")
    return 0


def command_attack(args) -> int:
    """Demonstrate the Mironov floating-point attack and the defence."""
    from repro.attacks import attack_success_rate

    rng = np.random.default_rng(args.seed)
    report = attack_success_rate(
        scale=args.scale,
        rng=rng,
        trials=args.trials,
        answers=(0.0, args.sensitivity),
        uniform_points=args.uniform_points,
        bits=args.mantissa_bits,
    )
    print(f"floating-point Laplace at {args.mantissa_bits} mantissa bits:")
    print(f"  trials: {report.trials}")
    print(f"  answer identified outright: {report.identified} "
          f"({100 * report.success_rate:.1f}%)")
    print(f"  wrong identifications: {report.errors}")
    print("integer Skellam noise: support is all of Z for every answer -> "
          "the distinguisher never concludes (0.0%)")
    return 0


def command_serve(args) -> int:
    """Serve SecAgg rounds to real TCP clients (the repro.net server)."""
    import asyncio
    import signal

    from repro.net import SecAggServer, ServerConfig
    from repro.telemetry import to_prometheus

    cohort = args.cohort
    threshold = (
        args.threshold if args.threshold is not None else max(2, cohort // 2)
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        metrics_port=None if args.metrics_port < 0 else args.metrics_port,
        modulus=1 << args.bits,
        dimension=args.dimension,
        threshold=threshold,
        cohort_size=cohort,
        rounds=args.rounds,
        phase_timeout=args.phase_timeout,
        join_timeout=args.join_timeout,
        mask_prg=args.mask_prg,
        resume_grace=args.resume_grace,
        journal_path=args.journal,
        round_epsilon=args.round_epsilon,
    )
    server = SecAggServer(config)

    async def run():
        loop = asyncio.get_running_loop()

        def graceful(signame: str) -> None:
            print(f"{signame}: draining the in-flight round, then exiting",
                  flush=True)
            server.request_stop()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, graceful, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError):
                pass  # Platforms without loop signal handlers.
        async with server:
            banner = (
                f"secagg server listening on {config.host}:{server.port}"
            )
            if server.metrics_port is not None:
                banner += f" (/metrics on port {server.metrics_port})"
            print(banner)
            sys.stdout.flush()  # The CI smoke step tails this from a file.
            return await server.serve_rounds()

    results = asyncio.run(run())
    for result in results:
        if result.aborted is not None:
            print(f"round {result.index}: ABORTED: {result.aborted}")
            continue
        print(f"round {result.index}: {len(result.included)} included, "
              f"{len(result.dropped)} dropped "
              f"({len(result.evicted)} evicted, "
              f"{len(result.rejected)} rejected at Hello) "
              f"in {result.wall_duration:.3f}s  digest={result.digest}")
    if args.digest_out:
        with open(args.digest_out, "w", encoding="utf-8") as handle:
            for result in results:
                handle.write(f"{result.digest or 'aborted'}\n")
        print(f"digests written to {args.digest_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(server.metrics.snapshot()))
        print(f"metrics written to {args.metrics_out}")
    return 0 if all(r.aborted is None for r in results) else 1


def command_swarm(args) -> int:
    """Run a swarm of concurrent SecAgg clients against a server."""
    import asyncio

    from repro.net import SwarmConfig, expected_digest, run_swarm

    config = SwarmConfig(
        clients=args.clients,
        dimension=args.dimension,
        modulus=1 << args.bits,
        threshold=args.threshold,
        seed=args.seed,
        dropouts=args.dropouts,
        dropout_phase=args.dropout_phase,
        bad_version=args.bad_version,
        delay=args.delay,
        jitter=args.jitter,
        chaos_cancel=args.chaos_cancel,
        mask_prg=args.mask_prg,
        client_timeout=args.timeout,
        connect_timeout=args.connect_timeout,
        max_retries=args.max_retries,
        transient_disconnects=args.transient_disconnects,
        transient_phase=args.transient_phase,
    )
    result = asyncio.run(run_swarm(args.host, args.port, config))
    for status in ("completed", "dropped", "rejected", "disconnected",
                   "resume-rejected", "cancelled", "error"):
        count = result.count(status)
        if count:
            print(f"{status:>15s}: {count}")
    if result.retries or result.resumes:
        print(f"        retries: {result.retries}")
        print(f"        resumes: {result.resumes}")
    for report in result.reports:
        if report.status == "error":
            print(f"  client {report.index} error: {report.detail}")
    if args.show_expected_digest:
        if args.chaos_cancel:
            print("expected digest: n/a (chaos mode is not replayable "
                  "in memory)")
        else:
            print(f"expected digest: {expected_digest(config)}")
    return 0 if result.completed else 1


def command_chaos(args) -> int:
    """Kill -9 a live server mid-round, restart it, check recovery."""
    from repro.resilience.smoke import run_chaos_smoke

    result = run_chaos_smoke(
        clients=args.clients,
        threshold=args.threshold,
        dropouts=args.dropouts,
        transient_disconnects=args.transient_disconnects,
        dimension=args.dimension,
        bits=args.bits,
        seed=args.seed,
        delay=args.delay,
        timeout=args.timeout,
        work_dir=args.keep_dir,
        log=lambda line: print(line, flush=True),
    )
    for line in result.checks:
        print(f"   ok: {line}")
    for line in result.failures:
        print(f" FAIL: {line}")
    if not result.ok:
        print(f"artifacts kept in {result.work_dir}")
    print("chaos smoke: " + ("PASS" if result.ok else "FAIL"))
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    sum_parser = subparsers.add_parser(
        "sum", help="distributed sum estimation sweep"
    )
    _add_common_arguments(sum_parser)
    sum_parser.add_argument("--participants", type=int, default=100)
    sum_parser.add_argument("--dimension", type=int, default=4096)
    sum_parser.add_argument("--trials", type=int, default=1)
    sum_parser.set_defaults(handler=command_sum)

    fl_parser = subparsers.add_parser("fl", help="federated learning sweep")
    _add_common_arguments(fl_parser)
    fl_parser.add_argument("--dataset", choices=["mnist", "fashion"],
                           default="mnist")
    fl_parser.add_argument("--participants", type=int, default=12_000)
    fl_parser.add_argument("--test-records", type=int, default=500)
    fl_parser.add_argument("--batch", type=int, default=100)
    fl_parser.add_argument("--rounds", type=int, default=80)
    fl_parser.add_argument("--hidden", type=int, default=16)
    fl_parser.add_argument("--learning-rate", type=float, default=0.01)
    fl_parser.set_defaults(handler=command_fl)

    calibrate_parser = subparsers.add_parser(
        "calibrate", help="inspect one mechanism's calibration"
    )
    _add_common_arguments(calibrate_parser)
    calibrate_parser.add_argument("--mechanism", choices=MECHANISMS,
                                  default="smm")
    calibrate_parser.add_argument("--participants", type=int, default=100)
    calibrate_parser.add_argument("--dimension", type=int, default=4096)
    calibrate_parser.add_argument("--l2-bound", type=float, default=1.0)
    calibrate_parser.add_argument("--rounds", type=int, default=1)
    calibrate_parser.add_argument("--sampling-rate", type=float, default=1.0)
    calibrate_parser.set_defaults(handler=command_calibrate)

    secagg_parser = subparsers.add_parser(
        "secagg", help="run the Bonawitz protocol with dropouts"
    )
    secagg_parser.add_argument("--clients", type=int, default=8)
    secagg_parser.add_argument("--dimension", type=int, default=64)
    secagg_parser.add_argument("--bits", type=int, default=10)
    secagg_parser.add_argument("--threshold", type=int, default=5)
    secagg_parser.add_argument("--dropouts", type=int, default=2)
    secagg_parser.add_argument("--seed", type=int, default=0)
    secagg_parser.set_defaults(handler=command_secagg)

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="async dropout-tolerant federated simulation",
    )
    simulate_parser.add_argument("--clients", type=int, default=32)
    simulate_parser.add_argument("--cohort", type=int, default=16)
    simulate_parser.add_argument("--rounds", type=int, default=5)
    simulate_parser.add_argument("--bits", type=int, default=16)
    simulate_parser.add_argument("--gamma", type=float, default=None)
    simulate_parser.add_argument("--epsilon", type=float, default=5.0,
                                 help="privacy budget for the whole run")
    simulate_parser.add_argument("--delta", type=float, default=1e-5)
    simulate_parser.add_argument("--no-privacy", action="store_true",
                                 help="train without a mechanism")
    simulate_parser.add_argument("--dropout-rate", type=float, default=0.1,
                                 help="per-round Bernoulli dropout rate")
    simulate_parser.add_argument("--straggler-sigma", type=float, default=0.0,
                                 help="log-normal latency spread (0 = constant)")
    simulate_parser.add_argument("--latency", type=float, default=0.05,
                                 help="median per-phase upload latency (s)")
    simulate_parser.add_argument("--threshold-fraction", type=float,
                                 default=0.6)
    simulate_parser.add_argument("--phase-timeout", type=float, default=60.0)
    simulate_parser.add_argument("--hidden", type=int, default=8)
    simulate_parser.add_argument("--test-records", type=int, default=128)
    simulate_parser.add_argument("--learning-rate", type=float, default=0.01)
    simulate_parser.add_argument("--eval-every", type=int, default=0)
    simulate_parser.add_argument("--dataset", choices=["mnist", "fashion"],
                                 default="mnist")
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.add_argument("--verify", action="store_true",
                                 help="check each aggregate against the "
                                      "survivors' direct modular sum")
    simulate_parser.add_argument("--shards", type=int, default=1,
                                 help="SecAgg shards per round (1 = flat "
                                      "protocol; k > 1 composes k Bonawitz "
                                      "sub-rounds modularly)")
    simulate_parser.add_argument("--backend",
                                 choices=["inline", "process",
                                          "process-pickle"],
                                 default="inline",
                                 help="shard execution backend (process = "
                                      "parallel OS process pool over the "
                                      "shared-memory vector transport; "
                                      "process-pickle ships vectors in the "
                                      "task pickle)")
    simulate_parser.add_argument("--tree", metavar="SHAPE", default=None,
                                 help="aggregation-tree topology, root level "
                                      "first (e.g. '8' or '4x4'); overrides "
                                      "--shards with an N-level "
                                      "region-to-global tree")
    simulate_parser.add_argument("--compose", choices=["clear", "secagg"],
                                 default="clear",
                                 help="how interior tree nodes combine child "
                                      "sums: 'clear' adds them modularly "
                                      "(intermediate sums visible to the "
                                      "server), 'secagg' runs an outer "
                                      "Bonawitz round over them (intermediate "
                                      "sums stay masked); the result is "
                                      "bit-identical either way")
    simulate_parser.add_argument("--rebalance", action="store_true",
                                 help="re-home survivors of a below-threshold "
                                      "shard onto sibling shards before the "
                                      "masking phase commits, instead of "
                                      "dropping them with the shard")
    simulate_parser.add_argument("--metrics-out", metavar="PATH",
                                 default=None,
                                 help="write end-of-run metrics in "
                                      "Prometheus text exposition format")
    simulate_parser.add_argument("--trace-out", metavar="PATH", default=None,
                                 help="write the simulation trace as JSON "
                                      "lines")
    simulate_parser.add_argument("--no-telemetry", action="store_true",
                                 help="skip the metrics registry entirely "
                                      "(results are bit-identical either "
                                      "way)")
    simulate_parser.add_argument("--trace-max-events", type=int, default=None,
                                 help="ring-buffer cap on retained trace "
                                      "events (default: keep all)")
    simulate_parser.add_argument("--chaos", metavar="SCHEDULE", default=None,
                                 help="fault schedule, ';'-separated: "
                                      "kill@<phase>[:rN] (server crash, "
                                      "retried once), abort@<phase>[:rN] "
                                      "(crash, no restart), "
                                      "blackout:<K>@<phase>[:rN], "
                                      "partition:<K>@<phase>/<secs>[:rN]; "
                                      "phases by wire tag, e.g. "
                                      "'kill@masked-input:r2'")
    simulate_parser.set_defaults(handler=command_simulate)

    account_parser = subparsers.add_parser(
        "account", help="RDP vs tight PLD accounting for SMM"
    )
    account_parser.add_argument("--value", type=float, default=1.5)
    account_parser.add_argument("--delta", type=float, default=1e-5)
    account_parser.add_argument(
        "--lambdas", type=float, nargs="+",
        default=[50.0, 100.0, 200.0, 400.0, 800.0],
    )
    account_parser.set_defaults(handler=command_account)

    attack_parser = subparsers.add_parser(
        "attack", help="Mironov floating-point attack demonstration"
    )
    attack_parser.add_argument("--scale", type=float, default=1.0)
    attack_parser.add_argument("--sensitivity", type=float, default=1 / 3)
    attack_parser.add_argument("--trials", type=int, default=500)
    attack_parser.add_argument("--uniform-points", type=int, default=1024)
    attack_parser.add_argument("--mantissa-bits", type=int, default=12)
    attack_parser.add_argument("--seed", type=int, default=0)
    attack_parser.set_defaults(handler=command_attack)

    serve_parser = subparsers.add_parser(
        "serve", help="serve SecAgg rounds over TCP (real sockets)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="TCP port (0 = ephemeral, printed at "
                                   "start-up)")
    serve_parser.add_argument("--metrics-port", type=int, default=0,
                              help="HTTP /metrics port (0 = ephemeral, "
                                   "-1 = disabled)")
    serve_parser.add_argument("--cohort", type=int, default=16,
                              help="clients admitted into each round")
    serve_parser.add_argument("--threshold", type=int, default=None,
                              help="Shamir threshold (default: cohort // 2)")
    serve_parser.add_argument("--dimension", type=int, default=32)
    serve_parser.add_argument("--bits", type=int, default=16,
                              help="aggregation modulus is 2**bits")
    serve_parser.add_argument("--rounds", type=int, default=1)
    serve_parser.add_argument("--phase-timeout", type=float, default=30.0,
                              help="wall seconds before stragglers are "
                                   "evicted from a phase")
    serve_parser.add_argument("--join-timeout", type=float, default=30.0)
    serve_parser.add_argument("--mask-prg", default=None)
    serve_parser.add_argument("--digest-out", metavar="PATH", default=None,
                              help="write one aggregate digest per round "
                                   "(CI compares against the in-memory "
                                   "transport)")
    serve_parser.add_argument("--metrics-out", metavar="PATH", default=None,
                              help="write final metrics in Prometheus text "
                                   "exposition format")
    serve_parser.add_argument("--journal", metavar="PATH", default=None,
                              help="durable round journal (JSON lines); a "
                                   "restarted server resumes the last "
                                   "committed phase from it")
    serve_parser.add_argument("--resume-grace", type=float, default=0.0,
                              help="seconds a dropped connection is parked "
                                   "awaiting a Resume before eviction "
                                   "(0 = evict immediately, the historical "
                                   "behaviour)")
    serve_parser.add_argument("--round-epsilon", type=float, default=0.0,
                              help="privacy-ledger charge per completed "
                                   "round (journalled idempotently by "
                                   "round id)")
    serve_parser.set_defaults(handler=command_serve)

    swarm_parser = subparsers.add_parser(
        "swarm", help="drive N concurrent SecAgg clients at a server"
    )
    swarm_parser.add_argument("--host", default="127.0.0.1")
    swarm_parser.add_argument("--port", type=int, required=True)
    swarm_parser.add_argument("--clients", type=int, default=16)
    swarm_parser.add_argument("--dimension", type=int, default=32)
    swarm_parser.add_argument("--bits", type=int, default=16)
    swarm_parser.add_argument("--threshold", type=int, default=None,
                              help="Shamir threshold (default: clients // 2;"
                                   " must match the server)")
    swarm_parser.add_argument("--seed", type=int, default=7)
    swarm_parser.add_argument("--dropouts", type=int, default=0,
                              help="deterministic dropouts: the last K "
                                   "indices stop at --dropout-phase")
    swarm_parser.add_argument("--dropout-phase", type=int, default=2,
                              choices=[0, 1, 2, 3])
    swarm_parser.add_argument("--bad-version", type=int, default=0,
                              help="clients proposing an unsupported "
                                   "protocol version (typed Reject)")
    swarm_parser.add_argument("--delay", type=float, default=0.0,
                              help="fixed sleep before every send (s)")
    swarm_parser.add_argument("--jitter", type=float, default=0.0,
                              help="max deterministic per-client extra "
                                   "delay (s)")
    swarm_parser.add_argument("--chaos-cancel", type=int, default=0,
                              help="client tasks cancelled mid-round")
    swarm_parser.add_argument("--mask-prg", default=None)
    swarm_parser.add_argument("--timeout", type=float, default=60.0,
                              help="per-delivery client timeout (s)")
    swarm_parser.add_argument("--connect-timeout", type=float, default=10.0,
                              help="seconds before a dial attempt is "
                                   "abandoned (fixes the historical hang "
                                   "against a dead address)")
    swarm_parser.add_argument("--max-retries", type=int, default=0,
                              help="reconnect/resume attempts per client "
                                   "with capped exponential backoff "
                                   "(0 = fail fast, the historical "
                                   "behaviour)")
    swarm_parser.add_argument("--transient-disconnects", type=int, default=0,
                              help="clients that deliberately drop their "
                                   "TCP connection at --transient-phase and "
                                   "resume (requires --max-retries > 0)")
    swarm_parser.add_argument("--transient-phase", type=int, default=2,
                              choices=[1, 2, 3],
                              help="phase at which transient clients "
                                   "disconnect")
    swarm_parser.add_argument("--show-expected-digest", action="store_true",
                              help="also print the in-memory reference "
                                   "digest for this schedule")
    swarm_parser.set_defaults(handler=command_swarm)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="kill -9 a live server mid-round, restart it, and assert "
             "the recovered round's digest and ledger charge",
    )
    chaos_parser.add_argument("--clients", type=int, default=16)
    chaos_parser.add_argument("--threshold", type=int, default=None,
                              help="Shamir threshold (default: clients // 2)")
    chaos_parser.add_argument("--dropouts", type=int, default=3)
    chaos_parser.add_argument("--transient-disconnects", type=int, default=2)
    chaos_parser.add_argument("--dimension", type=int, default=32)
    chaos_parser.add_argument("--bits", type=int, default=16)
    chaos_parser.add_argument("--seed", type=int, default=7)
    chaos_parser.add_argument("--delay", type=float, default=0.25,
                              help="per-phase client delay; widens the "
                                   "mid-round window the kill lands in")
    chaos_parser.add_argument("--timeout", type=float, default=180.0,
                              help="overall smoke deadline (s)")
    chaos_parser.add_argument("--keep-dir", metavar="PATH", default=None,
                              help="run in PATH and keep the journal and "
                                   "server logs (default: temp dir, "
                                   "deleted on success)")
    chaos_parser.set_defaults(handler=command_chaos)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
