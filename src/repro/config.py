"""Shared configuration dataclasses for the SMM reproduction library.

The paper's pipelines are parameterised by three orthogonal groups of
settings, each captured by one frozen dataclass:

* :class:`PrivacyBudget` — the target ``(epsilon, delta)`` guarantee and the
  range of Renyi orders searched when converting RDP to approximate DP.
* :class:`CompressionConfig` — the secure-aggregation wire format: modulus
  ``m`` (equivalently the per-dimension bitwidth) and scale parameter
  ``gamma`` (line 2 of Algorithm 4).
* :class:`ClipConfig` — the clipping thresholds ``c`` and ``Delta_inf`` used
  by Algorithm 5 (SMM/DGM) or the ``Delta_2``/``Delta_1`` bounds used by the
  baselines.

Instances are immutable and validate themselves on construction, so an
invalid combination fails loudly at configuration time instead of deep
inside a training loop.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError

#: Default failure probability used throughout the paper's experiments.
DEFAULT_DELTA = 1e-5

#: Renyi orders searched for the optimal RDP -> (eps, delta) conversion.
#: The paper states "the optimal RDP order is chosen from integers from
#: 2 to 100" (Section 6.1).
DEFAULT_ORDERS = tuple(range(2, 101))


@dataclasses.dataclass(frozen=True)
class PrivacyBudget:
    """A target ``(epsilon, delta)``-DP guarantee.

    Attributes:
        epsilon: The DP epsilon; must be positive.
        delta: The DP delta; must lie in ``(0, 1)``.
        orders: Candidate integer Renyi orders for the accountant's
            optimisation (Definition 3 / Lemma 3).
    """

    epsilon: float
    delta: float = DEFAULT_DELTA
    orders: tuple[int, ...] = DEFAULT_ORDERS

    def __post_init__(self) -> None:
        if not self.epsilon > 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if not 0 < self.delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {self.delta}")
        if not self.orders:
            raise ConfigurationError("orders must be a non-empty tuple")
        if any(order < 2 for order in self.orders):
            raise ConfigurationError("all Renyi orders must be >= 2")


@dataclasses.dataclass(frozen=True)
class CompressionConfig:
    """Wire format shared by all distributed mechanisms.

    Attributes:
        modulus: The SecAgg modulus ``m``; each coordinate of a client
            message lives in ``Z_m``.  Must be an even integer >= 2 (the
            paper uses powers of two, e.g. ``2**8`` for one byte per
            dimension).
        gamma: The scale parameter applied to the rotated gradient (line 2
            of Algorithm 4); must be positive.
    """

    modulus: int
    gamma: float

    def __post_init__(self) -> None:
        if self.modulus < 2 or self.modulus % 2 != 0:
            raise ConfigurationError(
                f"modulus must be an even integer >= 2, got {self.modulus}"
            )
        if not self.gamma > 0:
            raise ConfigurationError(f"gamma must be positive, got {self.gamma}")

    @property
    def bitwidth(self) -> float:
        """Communication cost per dimension in bits, ``log2(m)``."""
        return math.log2(self.modulus)


@dataclasses.dataclass(frozen=True)
class ClipConfig:
    """Clipping thresholds for the SMM/DGM mixture-sensitivity clip.

    Attributes:
        c: Bound on the per-participant mixture sensitivity
            ``sum_j |x_j|^2 + p_j - p_j^2`` (Eq. (4)); must be positive.
        delta_inf: The L-infinity bound ``Delta_inf`` on ``ceil(|x_j|)``
            (Eq. (3)); must be positive.  Values below 1 force every
            coordinate to zero after clipping — a legal but degenerate
            regime the calibrator reports via its diagnostics.
    """

    c: float
    delta_inf: float

    def __post_init__(self) -> None:
        if not self.c > 0:
            raise ConfigurationError(f"c must be positive, got {self.c}")
        if not self.delta_inf > 0:
            raise ConfigurationError(
                f"delta_inf must be positive, got {self.delta_inf}"
            )
