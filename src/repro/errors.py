"""Exception hierarchy for the SMM reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied by the caller.

    Examples: a non-positive noise parameter, a modulus that is not a power
    of two, or clipping thresholds that violate the feasibility constraints
    of Eq. (3) in the paper.
    """


class CalibrationError(ReproError):
    """Noise calibration could not meet the requested privacy budget.

    Raised when the binary search for a noise parameter fails to find any
    value satisfying the target (epsilon, delta) under the mechanism's
    feasibility constraints.
    """


class PrivacyAccountingError(ReproError):
    """An RDP/(epsilon, delta) accounting computation is infeasible.

    Examples: a Renyi order outside the valid range of a divergence bound,
    or a subsampling rate outside [0, 1].
    """


class AggregationError(ReproError):
    """A secure-aggregation protocol invariant was violated.

    Examples: participants submitting vectors of mismatched length, or a
    message containing values outside ``Z_m``.
    """


class NegotiationError(AggregationError):
    """Protocol-version/backend negotiation failed at the Hello handshake.

    Raised (or stored as a client session's terminal state) when a
    participant proposes a protocol version or mask-PRG backend the
    server does not accept, or when rejections push the accepted roster
    below the Shamir threshold.  A subclass of
    :class:`AggregationError`, so existing round-level handlers treat it
    as the round failure it is — but typed, so negotiation failures are
    distinguishable from mid-round protocol violations.
    """


class ConflictError(AggregationError):
    """A resumed participant re-submitted *different* bytes for a phase.

    The at-most-once guard: a client that reconnects mid-round may
    re-request delivery and re-send the exact upload it already sent
    (idempotent redelivery, byte-compared), but submitting a different
    masked input — or any other phase upload — for the same round is a
    protocol violation that must evict the client, never silently
    replace its contribution.  A subclass of :class:`AggregationError`
    so round-level handlers treat it as the round failure it is, but
    typed so transports can emit a distinct rejection reason.
    """


class ChaosKillError(AggregationError):
    """An injected chaos fault killed the server mid-round.

    Raised by the simulated round driver when a
    :class:`~repro.resilience.chaos.ServerKill` fault fires.  Typed so
    the engine can tell an *injected* crash (which may be retried as a
    restart) from a genuine protocol failure, which must abort.
    """


class SimulationError(ReproError):
    """The event-driven simulation cannot make progress.

    Examples: every task is blocked on the simulated clock with no timer
    pending (a deadlock), or a coroutine busy-loops without ever awaiting
    a clock primitive so simulated time can never advance.
    """


class OverflowWarning(UserWarning):
    """The aggregate (signal plus noise) likely exceeded ``[-m/2, m/2)``.

    Modular wraparound then corrupts the decoded sum.  This is the failure
    mode the paper reports for DDG/Skellam/cpSGD at small bitwidths; the
    library warns rather than raises because the experiments intentionally
    exercise this regime.
    """
