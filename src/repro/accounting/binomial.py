"""(epsilon, delta) guarantee of the binomial mechanism (cpSGD).

Implements the accounting of Agarwal et al. 2018 ("cpSGD", their Theorem
1) for noise ``Binomial(N, p) - N p`` added to an integer-valued query
with sensitivities ``Delta_1, Delta_2, Delta_inf``:

provided the variance condition
``N p (1-p) >= max(23 log(10 d / delta), 2 Delta_inf / s)`` holds, the
mechanism is ``(epsilon, delta)``-DP with

``epsilon = Delta_2 sqrt(2 log(1.25/delta)) / (s sqrt(Np(1-p)))
          + (Delta_2 c_p sqrt(log(10/delta)) + Delta_1 b_p)
            / (s N p (1-p) (1 - delta/10))
          + ((2/3) Delta_inf log(1.25/delta) + Delta_inf d_p log(20 d/delta)
            log(10/delta)) / (s N p (1-p))``

with the constants ``b_p, c_p, d_p`` below.  The leading term is the
Gaussian-mechanism epsilon for matching variance; the remaining terms are
the price of discreteness.  See DESIGN.md §4 for scope notes.
"""

from __future__ import annotations

import math

from repro.errors import PrivacyAccountingError


def binomial_constants(p: float) -> tuple[float, float, float]:
    """The constants ``(b_p, c_p, d_p)`` of cpSGD's Theorem 1.

    ``b_p = (2/3)(p^2 + (1-p)^2) + (1 - 2p)``,
    ``c_p = sqrt(2)(3 p^3 + 3 (1-p)^3 + 2 p^2 + 2 (1-p)^2)``,
    ``d_p = (4/3)(p^2 + (1-p)^2)``.
    """
    if not 0 < p < 1:
        raise PrivacyAccountingError(f"p must be in (0, 1), got {p}")
    q = 1.0 - p
    b_p = (2.0 / 3.0) * (p**2 + q**2) + (1.0 - 2.0 * p)
    c_p = math.sqrt(2.0) * (3.0 * p**3 + 3.0 * q**3 + 2.0 * p**2 + 2.0 * q**2)
    d_p = (4.0 / 3.0) * (p**2 + q**2)
    return b_p, c_p, d_p


def binomial_variance_condition(
    num_trials: int, p: float, dimension: int, delta: float, delta_inf: float,
    quantization_scale: float = 1.0,
) -> bool:
    """Check cpSGD Theorem 1's variance precondition."""
    variance = num_trials * p * (1.0 - p)
    threshold = max(
        23.0 * math.log(10.0 * dimension / delta),
        2.0 * delta_inf / quantization_scale,
    )
    return variance >= threshold


def binomial_mechanism_epsilon(
    num_trials: int,
    dimension: int,
    delta: float,
    l1_sensitivity: float,
    l2_sensitivity: float,
    linf_sensitivity: float,
    p: float = 0.5,
    quantization_scale: float = 1.0,
) -> float:
    """Per-release epsilon of the binomial mechanism at the given delta.

    Args:
        num_trials: Total ``N`` of the aggregated binomial noise.
        dimension: Query dimension ``d``.
        delta: Per-release delta.
        l1_sensitivity: ``Delta_1`` of the (rounded, scaled) query.
        l2_sensitivity: ``Delta_2`` of the (rounded, scaled) query.
        linf_sensitivity: ``Delta_inf`` of the (rounded, scaled) query.
        p: Bernoulli success probability (1/2 in all experiments).
        quantization_scale: ``s``; 1 for integer-grid quantization.

    Returns:
        The epsilon of one release.

    Raises:
        PrivacyAccountingError: If the variance precondition fails (the
            noise is too small for the theorem to apply).
    """
    if num_trials < 1:
        raise PrivacyAccountingError(f"N must be >= 1, got {num_trials}")
    if not 0 < delta < 1:
        raise PrivacyAccountingError(f"delta must be in (0, 1), got {delta}")
    if not binomial_variance_condition(
        num_trials, p, dimension, delta, linf_sensitivity, quantization_scale
    ):
        raise PrivacyAccountingError(
            "binomial variance condition fails: "
            f"N p (1-p) = {num_trials * p * (1 - p):.1f} below threshold"
        )
    b_p, c_p, d_p = binomial_constants(p)
    variance = num_trials * p * (1.0 - p)
    s = quantization_scale
    gaussian_like = (
        l2_sensitivity * math.sqrt(2.0 * math.log(1.25 / delta))
        / (s * math.sqrt(variance))
    )
    second = (
        l2_sensitivity * c_p * math.sqrt(math.log(10.0 / delta))
        + l1_sensitivity * b_p
    ) / (s * variance * (1.0 - delta / 10.0))
    third = (
        (2.0 / 3.0) * linf_sensitivity * math.log(1.25 / delta)
        + linf_sensitivity
        * d_p
        * math.log(20.0 * dimension / delta)
        * math.log(10.0 / delta)
    ) / (s * variance)
    return gaussian_like + second + third
