"""Closed-form Renyi-divergence (RDP) curves for every mechanism.

Each function returns the per-release RDP parameter ``tau`` such that the
mechanism satisfies ``(alpha, tau)``-RDP, together with feasibility
predicates for the constraints the bounds require.  Paper references:

* :func:`gaussian_rdp` — continuous Gaussian, Mironov 2017 (quoted after
  Definition 4): ``tau = alpha * s^2 / (2 sigma^2)``.
* :func:`skellam_rdp` — Theorems 3-4 (the paper's clean L2-only bound for
  pure symmetric Skellam noise).
* :func:`smm_rdp` — Theorem 5 / Corollary 1 (the Skellam *mixture*).
* :func:`smm_max_delta_inf` — the largest ``Delta_inf`` permitted by the
  feasibility constraints Eq. (3) (resp. Eq. (5) with ``n = |B|``).
* :func:`discrete_gaussian_sum_tau` / :func:`ddg_rdp` — Theorem 7
  (Kairouz et al.), used by the DDG baseline.
* :func:`dgm_rdp` / :func:`dgm_max_delta_inf` — Theorem 8 / Corollary 3
  (Appendix B, the discrete Gaussian mixture).
* :func:`skellam_mechanism_rdp` — the Agarwal et al. [3] bound for the
  (non-mixture) Skellam mechanism, which additionally involves the L1
  sensitivity; see DESIGN.md §4 for the exact form adopted.

Conventions: ``Sk(lam, lam)`` noise has variance ``2 * lam``;
``total_lam`` always denotes the parameter of the *aggregated* noise
(``n * lam`` when ``n`` participants each add ``Sk(lam, lam)``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import PrivacyAccountingError


def _check_order(alpha: float) -> None:
    if not alpha > 1:
        raise PrivacyAccountingError(f"Renyi order must be > 1, got {alpha}")


def gaussian_rdp(alpha: float, l2_sensitivity: float, sigma: float) -> float:
    """RDP of the continuous Gaussian mechanism.

    ``tau(alpha) = alpha * Delta_2^2 / (2 sigma^2)`` (Mironov 2017).

    Args:
        alpha: Renyi order (> 1).
        l2_sensitivity: L2 sensitivity ``Delta_2`` of the query.
        sigma: Standard deviation of the per-coordinate Gaussian noise.
    """
    _check_order(alpha)
    if sigma <= 0:
        raise PrivacyAccountingError(f"sigma must be positive, got {sigma}")
    return alpha * l2_sensitivity**2 / (2.0 * sigma**2)


def skellam_rdp(
    alpha: float, l2_squared: float, total_lam: float, delta_inf: float
) -> float:
    """RDP of pure symmetric Skellam noise (Theorems 3-4).

    ``tau(alpha) = (1.09 alpha + 0.91)/2 * c / (2 lam)`` where ``c`` bounds
    the squared L2 norm of the integer shift and ``lam`` parameterises the
    aggregate noise ``Sk(lam, lam)``.  Valid when
    ``alpha < 2 lam / Delta_inf + 1``.

    Args:
        alpha: Renyi order (> 1).
        l2_squared: Bound ``c`` on the squared L2 norm of the shift vector.
        total_lam: Parameter of the aggregated Skellam noise.
        delta_inf: L-infinity bound on the shift vector.

    Raises:
        PrivacyAccountingError: If the feasibility constraint fails.
    """
    _check_order(alpha)
    if total_lam <= 0:
        raise PrivacyAccountingError(f"lambda must be positive, got {total_lam}")
    if not alpha < 2.0 * total_lam / delta_inf + 1.0:
        raise PrivacyAccountingError(
            f"Theorem 4 requires alpha < 2*lam/Delta_inf + 1; got alpha={alpha}, "
            f"lam={total_lam}, Delta_inf={delta_inf}"
        )
    return (1.09 * alpha + 0.91) / 2.0 * l2_squared / (2.0 * total_lam)


def smm_feasible(alpha: float, total_lam: float, delta_inf: float) -> bool:
    """Check the SMM feasibility constraints Eq. (3) (with ``n lam`` folded).

    Eq. (3): ``alpha < 2 n lam / Delta_inf + 1`` and
    ``10.9 alpha^2 - 1.8 alpha - 9.1 < 4 n lam / Delta_inf^2``.
    """
    _check_order(alpha)
    if total_lam <= 0 or delta_inf <= 0:
        return False
    first = alpha < 2.0 * total_lam / delta_inf + 1.0
    second = (10.9 * alpha**2 - 1.8 * alpha - 9.1) < 4.0 * total_lam / delta_inf**2
    return first and second


def smm_max_delta_inf(alpha: float, total_lam: float) -> float:
    """Largest ``Delta_inf`` satisfying Eq. (3) for the given order.

    Inverts the two constraints of Eq. (3):
    ``Delta_inf < 2 n lam / (alpha - 1)`` and
    ``Delta_inf < sqrt(4 n lam / (10.9 alpha^2 - 1.8 alpha - 9.1))``.
    The quadratic ``10.9 alpha^2 - 1.8 alpha - 9.1`` is positive for every
    ``alpha > 1``, so both bounds are finite.
    """
    _check_order(alpha)
    if total_lam <= 0:
        raise PrivacyAccountingError(f"lambda must be positive, got {total_lam}")
    from_first = 2.0 * total_lam / (alpha - 1.0)
    quadratic = 10.9 * alpha**2 - 1.8 * alpha - 9.1
    from_second = math.sqrt(4.0 * total_lam / quadratic)
    return min(from_first, from_second)


def smm_rdp(
    alpha: float, c: float, total_lam: float, delta_inf: float
) -> float:
    """RDP of the Skellam mixture mechanism (Theorem 5 / Corollary 1).

    ``tau(alpha) = (1.2 alpha + 1)/2 * c / (2 n lam)`` where ``c`` bounds
    each participant's mixture sensitivity
    ``sum_j |x_j|^2 + p_j - p_j^2`` (Eq. (4)) and ``total_lam = n * lam``.

    Args:
        alpha: Renyi order (> 1).
        c: The mixture-sensitivity clipping threshold.
        total_lam: Parameter of the aggregated Skellam noise (``n * lam``).
        delta_inf: L-infinity clipping bound, for the feasibility check.

    Raises:
        PrivacyAccountingError: If Eq. (3) fails for these parameters.
    """
    if not smm_feasible(alpha, total_lam, delta_inf):
        raise PrivacyAccountingError(
            f"Eq. (3) infeasible: alpha={alpha}, n*lam={total_lam}, "
            f"Delta_inf={delta_inf}"
        )
    return (1.2 * alpha + 1.0) / 2.0 * c / (2.0 * total_lam)


def discrete_gaussian_sum_gap(num_summands: int, sigma_squared: float) -> float:
    """The divergence gap ``tau_n`` of Canonne et al. (Eq. (7)).

    ``tau_n = 10 * sum_{k=1}^{n-1} exp(-2 pi^2 sigma^2 k / (k+1))`` measures
    how far the sum of ``n`` independent ``N_Z(0, sigma^2)`` variates is
    from a single ``N_Z(0, n sigma^2)``.  It is negligible for
    ``sigma >= 1`` but blows up at the small noise scales forced by small
    bitwidths — the source of DDG/DGM's degradation in Figures 4-5.
    """
    if num_summands < 1:
        raise PrivacyAccountingError(
            f"num_summands must be >= 1, got {num_summands}"
        )
    if sigma_squared <= 0:
        raise PrivacyAccountingError(
            f"sigma^2 must be positive, got {sigma_squared}"
        )
    if num_summands == 1:
        return 0.0
    k = np.arange(1, num_summands, dtype=np.float64)
    exponents = -2.0 * math.pi**2 * sigma_squared * k / (k + 1.0)
    return float(10.0 * np.exp(exponents).sum())


def discrete_gaussian_sum_tau(
    alpha: float,
    shift_l2: float,
    num_summands: int,
    sigma_squared: float,
    gap: float | None = None,
) -> float:
    """Renyi divergence bound for a shift of summed discrete Gaussians.

    Theorem 7 (one-dimensional, applied with ``|s| = shift_l2``):
    ``D_alpha(s + Z_{n,sigma^2} || Z_{n,sigma^2}) <=
    min(alpha s^2/(2 n sigma^2) + tau_n, (alpha/2)(s/(sqrt(n) sigma) + tau_n)^2)``.
    """
    _check_order(alpha)
    tau_n = (
        gap
        if gap is not None
        else discrete_gaussian_sum_gap(num_summands, sigma_squared)
    )
    n_sigma_sq = num_summands * sigma_squared
    first = alpha * shift_l2**2 / (2.0 * n_sigma_sq) + tau_n
    second = (alpha / 2.0) * (shift_l2 / math.sqrt(n_sigma_sq) + tau_n) ** 2
    return min(first, second)


def ddg_rdp(
    alpha: float,
    l2_squared: float,
    l1_sensitivity: float,
    num_summands: int,
    sigma_squared: float,
    dimension: int,
    gap: float | None = None,
) -> float:
    """RDP of the distributed discrete Gaussian mechanism (Kairouz et al.).

    Multi-dimensional extension of Theorem 7 for integer-valued inputs with
    ``||s||_2^2 <= l2_squared`` and ``||s||_1 <= l1_sensitivity``:

    ``tau(alpha) = min(alpha c/(2 n sigma^2) + d tau_n,
    alpha c/(2 n sigma^2) + alpha Delta_1 tau_n/(sqrt(n) sigma) + d tau_n^2)``

    (the structure of Corollary 3 without the mixture's 1.1 factors).

    ``gap`` optionally supplies a precomputed
    :func:`discrete_gaussian_sum_gap` value (the calibrator evaluates this
    curve thousands of times with fixed ``n`` and ``sigma^2``).
    """
    _check_order(alpha)
    tau_n = (
        gap
        if gap is not None
        else discrete_gaussian_sum_gap(num_summands, sigma_squared)
    )
    n_sigma_sq = num_summands * sigma_squared
    leading = alpha * l2_squared / (2.0 * n_sigma_sq)
    first = leading + dimension * tau_n
    second = (
        leading
        + alpha * l1_sensitivity * tau_n / math.sqrt(n_sigma_sq)
        + dimension * tau_n**2
    )
    return min(first, second)


def dgm_feasible(
    alpha: float,
    num_summands: int,
    sigma_squared: float,
    delta_inf: float,
    gap: float | None = None,
) -> bool:
    """Check the DGM feasibility constraints Eq. (8).

    ``alpha Delta_inf^2/(2 n sigma^2) + tau_n < 0.1/(alpha - 1)`` and
    ``(Delta_inf/(sqrt(n) sigma) + tau_n)^2 < 0.2/(alpha^2 - alpha)``.
    """
    _check_order(alpha)
    if sigma_squared <= 0 or delta_inf <= 0:
        return False
    tau_n = (
        gap
        if gap is not None
        else discrete_gaussian_sum_gap(num_summands, sigma_squared)
    )
    n_sigma_sq = num_summands * sigma_squared
    first = alpha * delta_inf**2 / (2.0 * n_sigma_sq) + tau_n < 0.1 / (alpha - 1.0)
    second = (delta_inf / math.sqrt(n_sigma_sq) + tau_n) ** 2 < 0.2 / (
        alpha**2 - alpha
    )
    return first and second


def dgm_max_delta_inf(
    alpha: float,
    num_summands: int,
    sigma_squared: float,
    gap: float | None = None,
) -> float:
    """Largest ``Delta_inf`` satisfying Eq. (8); 0.0 if none exists."""
    _check_order(alpha)
    tau_n = (
        gap
        if gap is not None
        else discrete_gaussian_sum_gap(num_summands, sigma_squared)
    )
    n_sigma_sq = num_summands * sigma_squared
    slack_first = 0.1 / (alpha - 1.0) - tau_n
    slack_second = math.sqrt(0.2 / (alpha**2 - alpha)) - tau_n
    if slack_first <= 0 or slack_second <= 0:
        return 0.0
    from_first = math.sqrt(slack_first * 2.0 * n_sigma_sq / alpha)
    from_second = slack_second * math.sqrt(n_sigma_sq)
    return min(from_first, from_second)


def dgm_rdp(
    alpha: float,
    c: float,
    num_summands: int,
    sigma_squared: float,
    delta_inf: float,
    l1_sensitivity: float,
    dimension: int,
    gap: float | None = None,
) -> float:
    """RDP of the discrete Gaussian mixture (Theorem 8 / Corollary 3).

    ``tau = min(1.1 alpha c/(2 n sigma^2) + 1.1 d tau_n,
    1.1 alpha c/(2 n sigma^2) + 1.1 alpha Delta_1 tau_n/(sqrt(n) sigma)
    + 1.1 d tau_n^2)``.

    Raises:
        PrivacyAccountingError: If Eq. (8) fails for these parameters.
    """
    if gap is None:
        gap = discrete_gaussian_sum_gap(num_summands, sigma_squared)
    if not dgm_feasible(alpha, num_summands, sigma_squared, delta_inf, gap=gap):
        raise PrivacyAccountingError(
            f"Eq. (8) infeasible: alpha={alpha}, n={num_summands}, "
            f"sigma^2={sigma_squared}, Delta_inf={delta_inf}"
        )
    tau_n = gap
    n_sigma_sq = num_summands * sigma_squared
    leading = 1.1 * alpha * c / (2.0 * n_sigma_sq)
    first = leading + 1.1 * dimension * tau_n
    second = (
        leading
        + 1.1 * alpha * l1_sensitivity * tau_n / math.sqrt(n_sigma_sq)
        + 1.1 * dimension * tau_n**2
    )
    return min(first, second)


def skellam_mechanism_rdp(
    alpha: float,
    l2_squared: float,
    l1_sensitivity: float,
    total_lam: float,
) -> float:
    """RDP of the (non-mixture) Skellam mechanism of Agarwal et al. [3].

    The bound involves both sensitivities (the limitation Section 3.3
    criticises):

    ``tau(alpha) = alpha Delta_2^2/(4 lam)
    + min((2 alpha - 1) Delta_2^2 + 6 Delta_1, 3 Delta_1) / (16 lam^2)``

    with ``lam`` the aggregate noise parameter (variance ``2 lam``); the
    leading term matches Gaussian noise of the same variance.  See
    DESIGN.md §4 for the provenance of this form.
    """
    _check_order(alpha)
    if total_lam <= 0:
        raise PrivacyAccountingError(f"lambda must be positive, got {total_lam}")
    leading = alpha * l2_squared / (4.0 * total_lam)
    correction = min(
        (2.0 * alpha - 1.0) * l2_squared + 6.0 * l1_sensitivity,
        3.0 * l1_sensitivity,
    ) / (16.0 * total_lam**2)
    return leading + correction
