"""Privacy accounting: RDP curves, composition, subsampling, conversion."""

from repro.accounting.binomial import (
    binomial_constants,
    binomial_mechanism_epsilon,
    binomial_variance_condition,
)
from repro.accounting.composition import (
    advanced_composition,
    best_composition,
    linear_composition,
)
from repro.accounting.divergences import (
    ddg_rdp,
    dgm_feasible,
    dgm_max_delta_inf,
    dgm_rdp,
    discrete_gaussian_sum_gap,
    discrete_gaussian_sum_tau,
    gaussian_rdp,
    skellam_mechanism_rdp,
    skellam_rdp,
    smm_feasible,
    smm_max_delta_inf,
    smm_rdp,
)
from repro.accounting.pld import (
    PrivacyLossDistribution,
    pld_from_pmfs,
    skellam_pair_pmfs,
    skellam_pmf,
    smm_pair_pmfs,
    subsampled_pair,
    tight_epsilon,
)
from repro.accounting.rdp import (
    RdpAccountant,
    best_epsilon,
    compose,
    rdp_to_dp,
    subsampled_rdp,
)

__all__ = [
    "PrivacyLossDistribution",
    "RdpAccountant",
    "advanced_composition",
    "best_composition",
    "best_epsilon",
    "binomial_constants",
    "binomial_mechanism_epsilon",
    "binomial_variance_condition",
    "compose",
    "ddg_rdp",
    "dgm_feasible",
    "dgm_max_delta_inf",
    "dgm_rdp",
    "discrete_gaussian_sum_gap",
    "discrete_gaussian_sum_tau",
    "gaussian_rdp",
    "linear_composition",
    "pld_from_pmfs",
    "rdp_to_dp",
    "skellam_mechanism_rdp",
    "skellam_pair_pmfs",
    "skellam_pmf",
    "skellam_rdp",
    "smm_feasible",
    "smm_max_delta_inf",
    "smm_pair_pmfs",
    "smm_rdp",
    "subsampled_pair",
    "subsampled_rdp",
    "tight_epsilon",
]
