"""Renyi-DP accountant: composition, subsampling, and DP conversion.

Implements the three accounting lemmata of Section 2.3:

* **Composition** (Lemma 1): RDP parameters at a fixed order add up.
* **Poisson subsampling** (Lemma 2, Zhu-Wang / Mironov et al.): a
  mechanism run on a ``q``-sampled subset enjoys amplified RDP.  (The
  restatement inside Theorem 6 contains a sign misprint, ``alpha q - q -
  1``; we implement Lemma 2's ``alpha q - q + 1``, the published formula.)
* **Conversion** (Lemma 3, Canonne-Kamath-Steinke): any
  ``(alpha, tau)``-RDP guarantee yields ``(epsilon, delta)``-DP with
  ``epsilon = tau + (log(1/delta) + (alpha-1) log(1 - 1/alpha) -
  log(alpha)) / (alpha - 1)``.

The :class:`RdpAccountant` tracks a vector of RDP parameters over integer
orders, composes mechanisms, and reports the best (smallest) converted
epsilon over the order grid — exactly the procedure the paper uses
("the optimal RDP order is chosen from integers from 2 to 100").
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from scipy.special import gammaln, logsumexp

from repro.errors import PrivacyAccountingError

#: Type of a per-order RDP curve: order -> tau (may raise
#: PrivacyAccountingError when the order is infeasible for the mechanism).
RdpCurve = Callable[[int], float]


def rdp_to_dp(alpha: float, tau: float, delta: float) -> float:
    """Convert ``(alpha, tau)``-RDP to ``(epsilon, delta)``-DP (Lemma 3)."""
    if not alpha > 1:
        raise PrivacyAccountingError(f"Renyi order must be > 1, got {alpha}")
    if not 0 < delta < 1:
        raise PrivacyAccountingError(f"delta must be in (0, 1), got {delta}")
    if tau < 0:
        raise PrivacyAccountingError(f"tau must be non-negative, got {tau}")
    correction = (
        math.log(1.0 / delta)
        + (alpha - 1.0) * math.log(1.0 - 1.0 / alpha)
        - math.log(alpha)
    ) / (alpha - 1.0)
    return tau + correction


def compose(taus: Sequence[float]) -> float:
    """Compose RDP parameters at a fixed order (Lemma 1): they add."""
    if any(tau < 0 for tau in taus):
        raise PrivacyAccountingError("RDP parameters must be non-negative")
    return float(sum(taus))


def subsampled_rdp(alpha: int, sampling_rate: float, curve: RdpCurve) -> float:
    """Amplified RDP of a Poisson-subsampled mechanism (Lemma 2).

    ``tau_sub(alpha) = 1/(alpha-1) * log((1-q)^{alpha-1} (alpha q - q + 1)
    + sum_{l=2}^{alpha} C(alpha, l) (1-q)^{alpha-l} q^l e^{(l-1) tau(l)})``.

    Args:
        alpha: Integer Renyi order >= 2.
        sampling_rate: Poisson sampling probability ``q`` in [0, 1].
        curve: The base mechanism's RDP curve; evaluated at ``l = 2..alpha``.

    Returns:
        The subsampled RDP parameter at order ``alpha``.
    """
    if not isinstance(alpha, int) or alpha < 2:
        raise PrivacyAccountingError(
            f"subsampling lemma needs an integer order >= 2, got {alpha}"
        )
    if not 0 <= sampling_rate <= 1:
        raise PrivacyAccountingError(
            f"sampling rate must be in [0, 1], got {sampling_rate}"
        )
    if sampling_rate == 0:
        return 0.0
    if sampling_rate == 1:
        return curve(alpha)
    q = sampling_rate
    log_q = math.log(q)
    log_one_minus_q = math.log1p(-q)
    log_terms = [
        (alpha - 1) * log_one_minus_q + math.log(alpha * q - q + 1.0)
    ]
    log_alpha_factorial = gammaln(alpha + 1)
    for order in range(2, alpha + 1):
        log_binom = (
            log_alpha_factorial - gammaln(order + 1) - gammaln(alpha - order + 1)
        )
        log_terms.append(
            log_binom
            + (alpha - order) * log_one_minus_q
            + order * log_q
            + (order - 1) * curve(order)
        )
    return float(logsumexp(log_terms)) / (alpha - 1)


def best_epsilon(
    orders: Sequence[int],
    taus: Callable[[int], float] | dict[int, float],
    delta: float,
) -> tuple[float, int]:
    """Smallest converted epsilon over a grid of Renyi orders.

    Orders at which the RDP curve is infeasible (raises
    :class:`PrivacyAccountingError`) are skipped.

    Args:
        orders: Candidate integer orders.
        taus: RDP parameter per order (mapping or callable).
        delta: Target DP delta.

    Returns:
        ``(epsilon, order)`` achieving the minimum.

    Raises:
        PrivacyAccountingError: If no order is feasible.
    """
    lookup = taus.__getitem__ if isinstance(taus, dict) else taus
    best: tuple[float, int] | None = None
    for alpha in orders:
        try:
            tau = lookup(alpha)
            epsilon = rdp_to_dp(alpha, tau, delta)
        except (PrivacyAccountingError, KeyError):
            continue
        if best is None or epsilon < best[0]:
            best = (epsilon, alpha)
    if best is None:
        raise PrivacyAccountingError(
            "no feasible Renyi order: the mechanism's constraints exclude "
            "every candidate order"
        )
    return best


class RdpAccountant:
    """Accumulates RDP over a training run and converts to ``(eps, delta)``.

    The accountant holds one running RDP total per candidate order.  Orders
    that become infeasible for some composed mechanism are dropped (their
    curve raised :class:`PrivacyAccountingError`), mirroring the paper's
    constrained optimal-order selection.

    Args:
        orders: Candidate integer Renyi orders (default 2..100, as in the
            paper's experiments).
    """

    def __init__(self, orders: Sequence[int] = tuple(range(2, 101))) -> None:
        if not orders or any(
            (not isinstance(order, int)) or order < 2 for order in orders
        ):
            raise PrivacyAccountingError("orders must be integers >= 2")
        self._totals: dict[int, float] = {order: 0.0 for order in orders}

    @property
    def orders(self) -> tuple[int, ...]:
        """Orders still feasible for every composed mechanism."""
        return tuple(sorted(self._totals))

    def step(self, curve: RdpCurve, count: int = 1) -> None:
        """Compose ``count`` executions of a mechanism with RDP ``curve``.

        Args:
            curve: Per-order RDP parameter of one execution.
            count: Number of independent executions (Lemma 1).
        """
        if count < 0:
            raise PrivacyAccountingError(f"count must be >= 0, got {count}")
        updated: dict[int, float] = {}
        for order, total in self._totals.items():
            try:
                updated[order] = total + count * curve(order)
            except PrivacyAccountingError:
                continue
        if not updated:
            raise PrivacyAccountingError(
                "mechanism infeasible at every tracked Renyi order"
            )
        self._totals = updated

    def step_subsampled(
        self, curve: RdpCurve, sampling_rate: float, count: int = 1
    ) -> None:
        """Compose ``count`` Poisson-subsampled executions (Lemmas 1 + 2)."""
        self.step(
            lambda alpha: subsampled_rdp(alpha, sampling_rate, curve), count
        )

    def epsilon(self, delta: float) -> float:
        """Best converted epsilon at the given delta (Lemma 3)."""
        value, _ = best_epsilon(self.orders, dict(self._totals), delta)
        return value

    def best_order(self, delta: float) -> int:
        """The order attaining :meth:`epsilon`."""
        _, order = best_epsilon(self.orders, dict(self._totals), delta)
        return order
