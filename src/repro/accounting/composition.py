"""(epsilon, delta) composition theorems for mechanisms without RDP.

cpSGD's binomial mechanism "is based on (eps, delta)-DP instead of RDP"
(Section 5), so the paper accounts for its ``T`` training rounds with both
**linear composition** and **advanced composition** (Dwork-Roth) and keeps
the stronger of the two.  This module provides exactly that.
"""

from __future__ import annotations

import math

from repro.errors import PrivacyAccountingError


def linear_composition(
    epsilon_per_round: float, delta_per_round: float, num_rounds: int
) -> tuple[float, float]:
    """Basic composition: epsilons and deltas add across rounds."""
    _validate(epsilon_per_round, delta_per_round, num_rounds)
    return num_rounds * epsilon_per_round, num_rounds * delta_per_round


def advanced_composition(
    epsilon_per_round: float,
    delta_per_round: float,
    num_rounds: int,
    delta_slack: float,
) -> tuple[float, float]:
    """Advanced composition (Dwork-Roth Theorem 3.20).

    ``T`` executions of an ``(eps, delta)``-DP mechanism satisfy
    ``(eps', T delta + delta_slack)``-DP with
    ``eps' = sqrt(2 T ln(1/delta_slack)) eps + T eps (e^eps - 1)``.

    Args:
        epsilon_per_round: Per-round epsilon.
        delta_per_round: Per-round delta.
        num_rounds: Number of composed executions ``T``.
        delta_slack: The additional slack ``delta~ > 0``.
    """
    _validate(epsilon_per_round, delta_per_round, num_rounds)
    if not delta_slack > 0:
        raise PrivacyAccountingError(
            f"delta_slack must be positive, got {delta_slack}"
        )
    epsilon = math.sqrt(
        2.0 * num_rounds * math.log(1.0 / delta_slack)
    ) * epsilon_per_round + num_rounds * epsilon_per_round * (
        math.exp(epsilon_per_round) - 1.0
    )
    return epsilon, num_rounds * delta_per_round + delta_slack


def best_composition(
    epsilon_per_round: float,
    delta_per_round: float,
    num_rounds: int,
    delta_target: float,
) -> float:
    """Strongest total epsilon over {linear, advanced} composition.

    Follows Section 6.2: "for cpSGD, we apply both linear composition and
    advanced composition for privacy accounting and choose the stronger
    guarantee between them."  The advanced variant spends half the
    remaining delta budget as slack.

    Args:
        epsilon_per_round: Per-round epsilon.
        delta_per_round: Per-round delta.
        num_rounds: Number of composed executions.
        delta_target: Total delta budget that must not be exceeded.

    Returns:
        The smaller total epsilon whose total delta is within budget.

    Raises:
        PrivacyAccountingError: If even linear composition exceeds the
            delta budget.
    """
    _validate(epsilon_per_round, delta_per_round, num_rounds)
    # The relative tolerance absorbs float rounding when the caller splits
    # the budget as delta_target / num_rounds exactly.
    if num_rounds * delta_per_round > delta_target * (1.0 + 1e-9):
        raise PrivacyAccountingError(
            "per-round delta too large: "
            f"{num_rounds} * {delta_per_round} > {delta_target}"
        )
    linear_eps, _ = linear_composition(
        epsilon_per_round, delta_per_round, num_rounds
    )
    candidates = [linear_eps]
    delta_slack = (delta_target - num_rounds * delta_per_round) / 2.0
    if delta_slack > 0:
        advanced_eps, _ = advanced_composition(
            epsilon_per_round, delta_per_round, num_rounds, delta_slack
        )
        candidates.append(advanced_eps)
    return min(candidates)


def _validate(epsilon: float, delta: float, num_rounds: int) -> None:
    if epsilon < 0:
        raise PrivacyAccountingError(f"epsilon must be >= 0, got {epsilon}")
    if not 0 <= delta < 1:
        raise PrivacyAccountingError(f"delta must be in [0, 1), got {delta}")
    if num_rounds < 1:
        raise PrivacyAccountingError(f"num_rounds must be >= 1, got {num_rounds}")
