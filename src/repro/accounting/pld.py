"""Privacy-loss-distribution (PLD) accountant with FFT composition.

The paper's Related Work cites Koskela et al. (AISTATS 2021, reference
[34]) as the tight alternative to RDP accounting for discrete-valued
mechanisms.  This module implements that accountant for the integer
noise distributions in this library, which serves two purposes:

* an **independent check** on the RDP pipeline — the tight
  ``epsilon(delta)`` from the PLD lower-bounds any valid conversion, so
  RDP results must dominate it; and
* an **ablation** quantifying how much of the paper's epsilon is
  accounting slack versus mechanism noise (see
  ``benchmarks/test_ablations.py``).

Background.  For output distributions ``P`` (on ``X``) and ``Q`` (on a
neighbouring ``X'``), the privacy loss at outcome ``o`` is ``L(o) =
log(P(o)/Q(o))`` and the PLD is the distribution of ``L(o)`` under
``o ~ P``.  Tight approximate DP is the hockey-stick divergence

``delta(eps) = E_P[max(0, 1 - e^{eps - L})] + Pr_P[Q = 0]``,

and the loss of a ``T``-fold independent composition is the sum of the
per-step losses, so the composed PLD is the ``T``-fold convolution of
the single-step PLD — computed here on a uniform grid with FFT
exponentiation.  Discretisation rounds losses *up* (the pessimistic
direction), and mass lost to FFT noise is routed to the
infinite-loss bucket, so reported deltas are conservative.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
from scipy import stats

from repro.errors import PrivacyAccountingError

#: Default discretisation step for privacy losses (natural-log units).
DEFAULT_GRID_STEP = 1e-3

#: Default PMF tail mass truncated into the infinity bucket per side.
DEFAULT_TAIL_MASS = 1e-12


@dataclasses.dataclass(frozen=True)
class PrivacyLossDistribution:
    """A discretised PLD: atoms on a uniform loss grid plus an
    infinite-loss bucket.

    Attributes:
        grid_step: Spacing of the loss grid.
        min_index: Grid index of the first atom (loss = index * step).
        probabilities: Atom masses, ``probabilities[k]`` at loss
            ``(min_index + k) * grid_step``.
        infinity_mass: Mass at loss ``+infinity`` (outcomes impossible
            under ``Q``, plus truncated tails).
    """

    grid_step: float
    min_index: int
    probabilities: np.ndarray
    infinity_mass: float

    def __post_init__(self) -> None:
        if self.grid_step <= 0:
            raise PrivacyAccountingError(
                f"grid step must be positive, got {self.grid_step}"
            )
        if not 0 <= self.infinity_mass <= 1 + 1e-9:
            raise PrivacyAccountingError(
                f"infinity mass must be a probability, got "
                f"{self.infinity_mass}"
            )
        total = float(np.sum(self.probabilities)) + self.infinity_mass
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise PrivacyAccountingError(
                f"PLD masses must sum to 1, got {total}"
            )

    @property
    def losses(self) -> np.ndarray:
        """The grid of loss values carrying the atoms."""
        return (
            np.arange(len(self.probabilities)) + self.min_index
        ) * self.grid_step

    def delta(self, epsilon: float) -> float:
        """Tight ``delta`` at the given ``epsilon`` (hockey-stick)."""
        if epsilon < 0:
            raise PrivacyAccountingError(
                f"epsilon must be >= 0, got {epsilon}"
            )
        losses = self.losses
        above = losses > epsilon
        contributions = self.probabilities[above] * (
            1.0 - np.exp(epsilon - losses[above])
        )
        return float(np.sum(contributions)) + self.infinity_mass

    def epsilon(self, delta: float) -> float:
        """Smallest ``epsilon`` with ``delta(epsilon) <= delta``.

        Raises:
            PrivacyAccountingError: If even ``epsilon = +inf`` cannot meet
                ``delta`` (i.e. ``infinity_mass > delta``).
        """
        if not 0 < delta < 1:
            raise PrivacyAccountingError(
                f"delta must be in (0, 1), got {delta}"
            )
        if self.infinity_mass > delta:
            raise PrivacyAccountingError(
                f"infinite-loss mass {self.infinity_mass:.3g} exceeds "
                f"delta={delta:.3g}; no finite epsilon exists"
            )
        if self.delta(0.0) <= delta:
            return 0.0
        low, high = 0.0, float(max(self.losses.max(), self.grid_step))
        while self.delta(high) > delta:
            high *= 2.0
            if high > 1e8:
                raise PrivacyAccountingError("epsilon search diverged")
        for _ in range(100):
            mid = 0.5 * (low + high)
            if self.delta(mid) > delta:
                low = mid
            else:
                high = mid
        return high

    def compose(self, count: int) -> "PrivacyLossDistribution":
        """The PLD of ``count`` independent runs (FFT self-convolution).

        Args:
            count: Number of compositions (>= 1).

        Returns:
            The composed PLD on the same grid step.
        """
        if count < 1:
            raise PrivacyAccountingError(f"count must be >= 1, got {count}")
        if count == 1:
            return self
        finite = self.probabilities
        out_len = count * (len(finite) - 1) + 1
        fft_len = 1 << max(1, (out_len - 1)).bit_length()
        spectrum = np.fft.rfft(finite, fft_len)
        composed = np.fft.irfft(spectrum**count, fft_len)[:out_len]
        # FFT round-off can go slightly negative; clip and route the
        # clipped mass (and the deficit vs the exact total) to infinity,
        # keeping delta() an upper bound.
        composed = np.clip(composed, 0.0, None)
        finite_total = float(np.sum(finite)) ** count
        overshoot = float(np.sum(composed)) - finite_total
        if overshoot > 0:
            composed *= finite_total / float(np.sum(composed))
        new_infinity = 1.0 - float(np.sum(composed))
        return PrivacyLossDistribution(
            grid_step=self.grid_step,
            min_index=count * self.min_index,
            probabilities=composed,
            infinity_mass=min(max(new_infinity, 0.0), 1.0),
        )


def pld_from_pmfs(
    p: np.ndarray,
    q: np.ndarray,
    grid_step: float = DEFAULT_GRID_STEP,
) -> PrivacyLossDistribution:
    """Build a (pessimistic) PLD from two PMFs on a common support.

    Losses ``log(p_i / q_i)`` are rounded *up* to the grid; outcomes with
    ``q_i = 0 < p_i`` go to the infinity bucket.  Outcomes with
    ``p_i = 0`` carry no mass under ``P`` and are skipped.

    Args:
        p: PMF of the mechanism on ``X`` (the numerator distribution).
        q: PMF on the neighbouring ``X'``, aligned index-by-index.
        grid_step: Loss discretisation step.

    Returns:
        The discretised PLD.

    Raises:
        PrivacyAccountingError: On mismatched shapes or negative masses.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise PrivacyAccountingError(
            f"PMF shapes differ: {p.shape} vs {q.shape}"
        )
    if (p < 0).any() or (q < 0).any():
        raise PrivacyAccountingError("PMFs must be non-negative")
    support = p > 0
    infinity_mass = float(np.sum(p[support & (q == 0)]))
    # Any mass p fails to account for (truncated tails) is also routed to
    # infinity so delta stays an upper bound.
    infinity_mass += max(0.0, 1.0 - float(np.sum(p)))
    finite = support & (q > 0)
    if not finite.any():
        return PrivacyLossDistribution(
            grid_step=grid_step,
            min_index=0,
            probabilities=np.array([1.0 - infinity_mass]),
            infinity_mass=infinity_mass,
        )
    losses = np.log(p[finite]) - np.log(q[finite])
    masses = p[finite]
    indices = np.ceil(losses / grid_step - 1e-12).astype(np.int64)
    min_index = int(indices.min())
    probabilities = np.zeros(int(indices.max()) - min_index + 1)
    np.add.at(probabilities, indices - min_index, masses)
    return PrivacyLossDistribution(
        grid_step=grid_step,
        min_index=min_index,
        probabilities=probabilities,
        infinity_mass=infinity_mass,
    )


def _skellam_support(
    total_lambda: float, max_shift: int, tail_mass: float
) -> np.ndarray:
    """Integer support covering all shifted Skellams up to ``tail_mass``."""
    std = math.sqrt(2.0 * total_lambda)
    # Chernoff-style half-width: generous constant keeps tails < 1e-12.
    half_width = int(math.ceil(10.0 * std + 30.0)) + abs(max_shift)
    del tail_mass  # width chosen conservatively; kept for API clarity
    return np.arange(-half_width, half_width + 1)


def skellam_pmf(support: np.ndarray, total_lambda: float) -> np.ndarray:
    """PMF of the symmetric Skellam ``Sk(lambda, lambda)`` on ``support``."""
    if total_lambda <= 0:
        raise PrivacyAccountingError(
            f"lambda must be positive, got {total_lambda}"
        )
    return stats.skellam.pmf(support, total_lambda, total_lambda)


def skellam_pair_pmfs(
    shift: int,
    total_lambda: float,
    tail_mass: float = DEFAULT_TAIL_MASS,
) -> tuple[np.ndarray, np.ndarray]:
    """The worst-case (P, Q) pair for pure Skellam noise on integer data.

    ``P = shift + Sk(lambda, lambda)`` and ``Q = Sk(lambda, lambda)`` on a
    shared truncated support — the Theorem 3 pair.

    Args:
        shift: The differing record's value ``s``.
        total_lambda: Aggregate noise parameter ``n * lambda``.
        tail_mass: Truncation budget (routed to the infinity bucket).

    Returns:
        ``(p, q)`` PMF arrays on the common support.
    """
    support = _skellam_support(total_lambda, shift, tail_mass)
    q = skellam_pmf(support, total_lambda)
    p = skellam_pmf(support - shift, total_lambda)
    return p, q


def smm_pair_pmfs(
    value: float,
    total_lambda: float,
    tail_mass: float = DEFAULT_TAIL_MASS,
) -> tuple[np.ndarray, np.ndarray]:
    """The worst-case (P, Q) pair for the Skellam *mixture* mechanism.

    By Lemma 4 the binding pair is the all-zero dataset versus the same
    dataset plus one record of (scaled) value ``x``:

    ``Q = Sk(n lambda)`` and
    ``P = (1 - p) (floor(x) + Sk) + p (ceil(x) + Sk)``, ``p = x - floor(x)``.

    Args:
        value: The extra record's scaled value ``x_{n+1}``.
        total_lambda: Aggregate noise parameter ``n * lambda``.
        tail_mass: Truncation budget.

    Returns:
        ``(p, q)`` PMF arrays on the common support.
    """
    floor = math.floor(value)
    frac = value - floor
    max_shift = max(abs(floor), abs(floor + 1) if frac > 0.0 else 0)
    support = _skellam_support(total_lambda, max_shift, tail_mass)
    q = skellam_pmf(support, total_lambda)
    p = (1.0 - frac) * skellam_pmf(support - floor, total_lambda)
    if frac > 0.0:
        p = p + frac * skellam_pmf(support - floor - 1, total_lambda)
    return p, q


def subsampled_pair(
    p: np.ndarray, q: np.ndarray, sampling_rate: float
) -> tuple[np.ndarray, np.ndarray]:
    """Poisson-subsample a worst-case pair (remove-one adjacency).

    With sampling rate ``s``, the differing record participates with
    probability ``s``, so the mechanism on the larger dataset becomes the
    mixture ``(1 - s) Q + s P`` while the smaller dataset still yields
    ``Q``.

    Args:
        p: PMF with the extra record present.
        q: PMF without it.
        sampling_rate: Poisson participation probability in [0, 1].

    Returns:
        The pair ``((1-s) q + s p, q)``.
    """
    if not 0 <= sampling_rate <= 1:
        raise PrivacyAccountingError(
            f"sampling rate must be in [0, 1], got {sampling_rate}"
        )
    return (1.0 - sampling_rate) * q + sampling_rate * p, q


def tight_epsilon(
    p: np.ndarray,
    q: np.ndarray,
    delta: float,
    compositions: int = 1,
    sampling_rate: float = 1.0,
    grid_step: float = DEFAULT_GRID_STEP,
) -> float:
    """Tight ``epsilon`` of a (possibly subsampled, composed) mechanism.

    Accounts both adjacency directions — ``(P, Q)`` and ``(Q, P)`` — and
    returns the larger epsilon, which is the guarantee that holds for
    add *and* remove neighbouring datasets.

    Args:
        p: Worst-case PMF with the differing record.
        q: Worst-case PMF without it.
        delta: Target DP delta.
        compositions: Number of adaptive repetitions ``T``.
        sampling_rate: Poisson subsampling rate per repetition.
        grid_step: PLD discretisation step.

    Returns:
        The tight (up to discretisation pessimism) epsilon.
    """
    mixture, base = subsampled_pair(p, q, sampling_rate)
    epsilons = []
    for numerator, denominator in ((mixture, base), (base, mixture)):
        pld = pld_from_pmfs(numerator, denominator, grid_step)
        epsilons.append(pld.compose(compositions).epsilon(delta))
    return max(epsilons)
