"""The evaluation model: a ReLU multi-layer perceptron (pure numpy).

Section 6.2: "we train a three-layer neural network with fully connected
layers and ReLU activation ... 80 neurons per layer, resulting in a model
with d = 63,610 weights."  :func:`paper_mlp` builds exactly that network;
:class:`MLPClassifier` supports any layer widths so the experiment
harness can run scaled-down instances (see DESIGN.md §4).

The class exposes the two operations federated DP-SGD needs:

* :meth:`per_example_gradients` — one flattened gradient per example
  (each FL participant owns one record), and
* :meth:`get_flat_parameters` / :meth:`set_flat_parameters` — the server's
  view of the model as a single vector, matching the flat gradient layout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fl.layers import (
    DenseLayer,
    relu,
    relu_grad,
    softmax,
    softmax_cross_entropy,
)


class MLPClassifier:
    """A fully connected ReLU classifier with per-example gradients.

    Args:
        layer_sizes: Widths ``[input, hidden..., output]``; at least two
            entries.
        rng: Generator for weight initialisation.
    """

    def __init__(self, layer_sizes: list[int], rng: np.random.Generator) -> None:
        if len(layer_sizes) < 2:
            raise ConfigurationError(
                f"need at least input and output sizes, got {layer_sizes}"
            )
        if any(size < 1 for size in layer_sizes):
            raise ConfigurationError(f"layer sizes must be >= 1: {layer_sizes}")
        self.layers = [
            DenseLayer.initialise(fan_in, fan_out, rng)
            for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:])
        ]
        self.layer_sizes = list(layer_sizes)

    @property
    def num_parameters(self) -> int:
        """Total number of trainable parameters ``d``."""
        return sum(layer.num_parameters for layer in self.layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for a ``(B, input_dim)`` batch."""
        activations = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers[:-1]:
            activations = relu(layer.forward(activations))
        return self.layers[-1].forward(activations)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.forward(inputs).argmax(axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions."""
        return float(np.mean(self.predict(inputs) == labels))

    def loss(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy over the batch."""
        losses, _ = softmax_cross_entropy(self.forward(inputs), labels)
        return float(losses.mean())

    def probabilities(self, inputs: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return softmax(self.forward(inputs))

    def per_example_gradients(
        self, inputs: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Flattened gradient of every example's own loss.

        Args:
            inputs: ``(B, input_dim)`` features.
            labels: ``(B,)`` integer labels.

        Returns:
            ``(B, num_parameters)`` float64 array; row ``i`` is the
            gradient of example ``i``'s cross-entropy loss w.r.t. all
            parameters, in :meth:`get_flat_parameters` layout.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        batch = inputs.shape[0]
        # Forward, keeping pre-activations and layer inputs.
        layer_inputs: list[np.ndarray] = []
        pre_activations: list[np.ndarray] = []
        activations = inputs
        for layer in self.layers[:-1]:
            layer_inputs.append(activations)
            pre = layer.forward(activations)
            pre_activations.append(pre)
            activations = relu(pre)
        layer_inputs.append(activations)
        logits = self.layers[-1].forward(activations)
        _, delta = softmax_cross_entropy(logits, labels)
        # Backward, collecting per-example flat gradients layer by layer.
        flat_chunks: list[np.ndarray] = [np.empty(0)] * len(self.layers)
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            weight_grads, bias_grads, input_grads = layer.per_example_gradients(
                layer_inputs[index], delta
            )
            flat_chunks[index] = np.concatenate(
                [weight_grads.reshape(batch, -1), bias_grads], axis=1
            )
            if index > 0:
                delta = input_grads * relu_grad(pre_activations[index - 1])
        return np.concatenate(flat_chunks, axis=1)

    def mean_gradient(self, inputs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Flat gradient of the mean loss (non-private training)."""
        return self.per_example_gradients(inputs, labels).mean(axis=0)

    def get_flat_parameters(self) -> np.ndarray:
        """All parameters as one vector (weights then bias, per layer)."""
        chunks = []
        for layer in self.layers:
            chunks.append(layer.weights.ravel())
            chunks.append(layer.bias.ravel())
        return np.concatenate(chunks)

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load parameters from a :meth:`get_flat_parameters`-layout vector."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (self.num_parameters,):
            raise ConfigurationError(
                f"expected {self.num_parameters} parameters, got {flat.shape}"
            )
        offset = 0
        for layer in self.layers:
            size = layer.weights.size
            layer.weights = flat[offset : offset + size].reshape(
                layer.weights.shape
            )
            offset += size
            size = layer.bias.size
            layer.bias = flat[offset : offset + size].copy()
            offset += size


def paper_mlp(rng: np.random.Generator, hidden: int = 80) -> MLPClassifier:
    """The Section 6.2 architecture: 784 -> hidden -> 10.

    The paper's "three-layer neural network ... 80 neurons per layer"
    counts the input, hidden and output layers: with ``hidden = 80`` the
    parameter count is 784*80 + 80 + 80*10 + 10 = 63,610, exactly the
    ``d`` reported in Section 6.2.
    """
    return MLPClassifier([784, hidden, 10], rng)
