"""Synthetic image-classification datasets (MNIST / Fashion-MNIST stand-ins).

The paper evaluates on MNIST and Fashion-MNIST; those image files are not
available in this offline environment, so we build synthetic surrogates
with the same interface and task geometry (DESIGN.md §4): 10 classes,
28x28 = 784 features in [0, 1], one record per participant.

Each class is defined by a smooth random prototype image (low-frequency
random field); a sample is its prototype under a random brightness factor
plus per-pixel Gaussian noise.  The ``noise_scale`` knob controls class
overlap and hence the non-private accuracy ceiling:
:func:`mnist_surrogate` is tuned to the high-90s ceiling of MNIST and
:func:`fashion_mnist_surrogate` to the high-80s ceiling of Fashion-MNIST.
What the experiments measure — how DP noise in gradient sums erodes test
accuracy — depends on the gradient geometry, not on the pixels being
handwritten digits.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class Dataset:
    """A supervised dataset: one record per FL participant.

    Attributes:
        features: ``(n, d)`` float array.
        labels: ``(n,)`` integer class labels.
    """

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ConfigurationError("features must be a 2-d array")
        if self.labels.shape != (self.features.shape[0],):
            raise ConfigurationError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.features.shape[0]} records"
            )

    @property
    def num_records(self) -> int:
        """Number of records (== number of FL participants)."""
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimension."""
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        """Number of distinct labels."""
        return int(self.labels.max()) + 1

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A view of the selected records."""
        return Dataset(self.features[indices], self.labels[indices])


def _smooth_prototype(
    side: int, rng: np.random.Generator, smoothing_passes: int = 3
) -> np.ndarray:
    """A smooth random field in [0, 1] of shape ``(side, side)``.

    Starts from coarse uniform noise on a ``side/4`` grid, upsamples, and
    applies a few 3x3 box-blur passes — a cheap stand-in for the
    low-frequency structure of real image classes.
    """
    coarse_side = max(side // 4, 2)
    coarse = rng.uniform(0.0, 1.0, size=(coarse_side, coarse_side))
    image = np.kron(coarse, np.ones((side // coarse_side + 1,) * 2))
    image = image[:side, :side]
    for _ in range(smoothing_passes):
        padded = np.pad(image, 1, mode="edge")
        image = (
            padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
            + padded[1:-1, :-2] + padded[1:-1, 1:-1] + padded[1:-1, 2:]
            + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
        ) / 9.0
    image -= image.min()
    peak = image.max()
    if peak > 0:
        image /= peak
    return image


def make_synthetic_images(
    num_train: int,
    num_test: int,
    noise_scale: float,
    rng: np.random.Generator,
    num_classes: int = 10,
    side: int = 28,
    brightness_jitter: float = 0.2,
) -> tuple[Dataset, Dataset]:
    """Generate a train/test pair of synthetic image datasets.

    Args:
        num_train: Training records (participants).
        num_test: Held-out test records.
        noise_scale: Standard deviation of per-pixel noise; larger values
            increase class overlap and lower the accuracy ceiling.
        rng: Numpy random generator (prototypes and samples).
        num_classes: Number of classes.
        side: Image side length (features = ``side**2``).
        brightness_jitter: Range of the per-sample brightness factor
            ``1 +- jitter``.

    Returns:
        ``(train, test)`` datasets with features clipped to [0, 1].
    """
    if num_train < num_classes or num_test < num_classes:
        raise ConfigurationError(
            "need at least one record per class in each split"
        )
    if noise_scale < 0:
        raise ConfigurationError(
            f"noise_scale must be >= 0, got {noise_scale}"
        )
    prototypes = np.stack(
        [_smooth_prototype(side, rng).ravel() for _ in range(num_classes)]
    )

    def draw(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        brightness = rng.uniform(
            1.0 - brightness_jitter, 1.0 + brightness_jitter, size=(count, 1)
        )
        noise = rng.normal(0.0, noise_scale, size=(count, side * side))
        features = np.clip(prototypes[labels] * brightness + noise, 0.0, 1.0)
        return features, labels

    train_features, train_labels = draw(num_train)
    test_features, test_labels = draw(num_test)
    return (
        Dataset(train_features, train_labels),
        Dataset(test_features, test_labels),
    )


def mnist_surrogate(
    rng: np.random.Generator, num_train: int = 60_000, num_test: int = 10_000
) -> tuple[Dataset, Dataset]:
    """MNIST stand-in: 10 well-separated classes (high-90s ceiling)."""
    return make_synthetic_images(num_train, num_test, noise_scale=0.30, rng=rng)


def fashion_mnist_surrogate(
    rng: np.random.Generator, num_train: int = 60_000, num_test: int = 10_000
) -> tuple[Dataset, Dataset]:
    """Fashion-MNIST stand-in: heavier class overlap (high-80s ceiling)."""
    return make_synthetic_images(num_train, num_test, noise_scale=0.55, rng=rng)
