"""Server-side optimisers over the flat parameter vector.

The server's model update (Algorithm 3 line 9) consumes the decoded
gradient estimate.  The paper trains with Adam at learning rate 0.005
(Section 6.2: "for all experiments, we use the Adam optimizer with
learning rate 0.005"); plain SGD is provided for the ablations.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError


class Optimizer(abc.ABC):
    """Stateful first-order optimiser on a flat parameter vector."""

    def __init__(self, learning_rate: float) -> None:
        if not learning_rate > 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        self.learning_rate = learning_rate

    @abc.abstractmethod
    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return the updated parameter vector."""


class Sgd(Optimizer):
    """Vanilla stochastic gradient descent, optional momentum.

    Args:
        learning_rate: Step size.
        momentum: Momentum coefficient in [0, 1); 0 disables momentum.
    """

    def __init__(self, learning_rate: float, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0 <= momentum < 1:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}"
            )
        self.momentum = momentum
        self._velocity: np.ndarray | None = None

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        if self._velocity is None:
            self._velocity = np.zeros_like(parameters)
        self._velocity = self.momentum * self._velocity + gradient
        return parameters - self.learning_rate * self._velocity


class Adam(Optimizer):
    """Adam (Kingma and Ba, 2015) with standard bias correction.

    Args:
        learning_rate: Step size (0.005 in the paper's experiments).
        beta1: First-moment decay.
        beta2: Second-moment decay.
        epsilon: Denominator stabiliser.
    """

    def __init__(
        self,
        learning_rate: float = 0.005,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ConfigurationError(
                f"betas must be in [0, 1), got {beta1}, {beta2}"
            )
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment: np.ndarray | None = None
        self._second_moment: np.ndarray | None = None

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        if self._first_moment is None:
            self._first_moment = np.zeros_like(parameters)
            self._second_moment = np.zeros_like(parameters)
        self._step_count += 1
        self._first_moment = (
            self.beta1 * self._first_moment + (1.0 - self.beta1) * gradient
        )
        self._second_moment = self.beta2 * self._second_moment + (
            1.0 - self.beta2
        ) * gradient**2
        corrected_first = self._first_moment / (
            1.0 - self.beta1**self._step_count
        )
        corrected_second = self._second_moment / (
            1.0 - self.beta2**self._step_count
        )
        return parameters - self.learning_rate * corrected_first / (
            np.sqrt(corrected_second) + self.epsilon
        )


def make_optimizer(name: str, learning_rate: float) -> Optimizer:
    """Build an optimiser by name (``"adam"`` or ``"sgd"``)."""
    builders = {"adam": Adam, "sgd": Sgd}
    if name not in builders:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; expected one of {sorted(builders)}"
        )
    return builders[name](learning_rate)
