"""Learning-rate schedules for the server optimiser.

The paper trains with a fixed learning rate and notes that "additional
details on the updating process (e.g., learning rate schedule, weight
decay)" do not affect the framework or the privacy guarantees
(Section 4).  These schedules make that claim exercisable: they modify
only the server-side step size, never the clients' perturbation, so any
schedule composes with any mechanism at zero privacy cost.
"""

from __future__ import annotations

import abc
import math

from repro.errors import ConfigurationError


class Schedule(abc.ABC):
    """A learning-rate schedule over 1-based round indices.

    Args:
        base_rate: The rate at round 1 (before any decay).
    """

    def __init__(self, base_rate: float) -> None:
        if not base_rate > 0:
            raise ConfigurationError(
                f"base_rate must be positive, got {base_rate}"
            )
        self.base_rate = base_rate

    @abc.abstractmethod
    def rate(self, round_index: int) -> float:
        """The learning rate to apply at the given round (>= 1)."""

    def _check_round(self, round_index: int) -> None:
        if round_index < 1:
            raise ConfigurationError(
                f"round_index must be >= 1, got {round_index}"
            )


class ConstantSchedule(Schedule):
    """The paper's setting: a fixed learning rate every round."""

    def rate(self, round_index: int) -> float:
        self._check_round(round_index)
        return self.base_rate


class StepDecay(Schedule):
    """Multiply the rate by ``factor`` every ``period`` rounds.

    Args:
        base_rate: Initial rate.
        period: Rounds between decays (>= 1).
        factor: Multiplier in (0, 1].
    """

    def __init__(
        self, base_rate: float, period: int, factor: float = 0.5
    ) -> None:
        super().__init__(base_rate)
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if not 0 < factor <= 1:
            raise ConfigurationError(
                f"factor must be in (0, 1], got {factor}"
            )
        self.period = period
        self.factor = factor

    def rate(self, round_index: int) -> float:
        self._check_round(round_index)
        return self.base_rate * self.factor ** ((round_index - 1) // self.period)


class CosineAnnealing(Schedule):
    """Cosine decay from ``base_rate`` to ``floor_rate`` over the run.

    Args:
        base_rate: Initial rate.
        total_rounds: Length of the schedule ``T``.
        floor_rate: Rate at round ``T`` (default 0).
    """

    def __init__(
        self, base_rate: float, total_rounds: int, floor_rate: float = 0.0
    ) -> None:
        super().__init__(base_rate)
        if total_rounds < 1:
            raise ConfigurationError(
                f"total_rounds must be >= 1, got {total_rounds}"
            )
        if not 0 <= floor_rate <= base_rate:
            raise ConfigurationError(
                f"floor_rate must lie in [0, base_rate], got {floor_rate}"
            )
        self.total_rounds = total_rounds
        self.floor_rate = floor_rate

    def rate(self, round_index: int) -> float:
        self._check_round(round_index)
        progress = min(round_index - 1, self.total_rounds - 1) / max(
            self.total_rounds - 1, 1
        )
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor_rate + (self.base_rate - self.floor_rate) * cosine


class LinearWarmup(Schedule):
    """Ramp linearly to the wrapped schedule's rate, then follow it.

    Args:
        inner: The schedule to follow after warmup.
        warmup_rounds: Rounds over which the rate ramps from
            ``inner.rate(1) / warmup_rounds`` to the full value.
    """

    def __init__(self, inner: Schedule, warmup_rounds: int) -> None:
        super().__init__(inner.base_rate)
        if warmup_rounds < 1:
            raise ConfigurationError(
                f"warmup_rounds must be >= 1, got {warmup_rounds}"
            )
        self.inner = inner
        self.warmup_rounds = warmup_rounds

    def rate(self, round_index: int) -> float:
        self._check_round(round_index)
        target = self.inner.rate(round_index)
        if round_index >= self.warmup_rounds:
            return target
        return target * round_index / self.warmup_rounds


def make_schedule(
    name: str, base_rate: float, total_rounds: int
) -> Schedule:
    """Build a schedule by short name.

    Args:
        name: ``"constant"``, ``"step"`` (halve every quarter of the run),
            ``"cosine"``, or ``"warmup-cosine"`` (5% warmup).
        base_rate: Initial learning rate.
        total_rounds: Run length, used by the decaying schedules.

    Raises:
        ConfigurationError: On an unknown name.
    """
    if name == "constant":
        return ConstantSchedule(base_rate)
    if name == "step":
        return StepDecay(base_rate, period=max(1, total_rounds // 4))
    if name == "cosine":
        return CosineAnnealing(base_rate, total_rounds)
    if name == "warmup-cosine":
        warmup = max(1, total_rounds // 20)
        return LinearWarmup(
            CosineAnnealing(base_rate, total_rounds), warmup
        )
    raise ConfigurationError(
        f"unknown schedule {name!r}; expected one of "
        f"['constant', 'cosine', 'step', 'warmup-cosine']"
    )
