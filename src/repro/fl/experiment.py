"""Federated-learning experiment harness (Figures 2, 3 and 5).

The paper's FL figures sweep test accuracy over privacy level ``epsilon``,
batch size ``|B|``, scale ``gamma`` and bitwidth ``m`` for each mechanism.
:func:`run_fl_point` evaluates one cell of such a grid;
:func:`format_accuracy_table` renders a completed grid as the
paper-style series table.

The default geometry is the scaled-down configuration of DESIGN.md §4
(the accountant is exact at any scale, so the mechanism ordering and the
bitwidth crossover are preserved); callers reproduce the paper's exact
geometry by passing ``hidden=80``, 60 000 records and the paper's round
counts.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from repro.config import PrivacyBudget
from repro.errors import CalibrationError
from repro.fl.data import Dataset
from repro.fl.model import MLPClassifier
from repro.fl.training import FederatedTrainer, TrainingConfig
from repro.mechanisms.base import SumEstimator


@dataclasses.dataclass(frozen=True)
class FlPointResult:
    """Outcome of one FL grid cell.

    Attributes:
        mechanism: Mechanism short name (``"none"`` for non-private).
        epsilon: Privacy level (``nan`` for non-private).
        accuracy: Final test accuracy.
        summary: Mechanism calibration description.
    """

    mechanism: str
    epsilon: float
    accuracy: float
    summary: dict


def run_fl_point(
    mechanism: SumEstimator | None,
    train: Dataset,
    test: Dataset,
    rounds: int,
    expected_batch: int,
    epsilon: float | None,
    seed: int = 0,
    hidden: int = 16,
    learning_rate: float = 0.01,
    delta: float = 1e-5,
) -> FlPointResult:
    """Train one model under one mechanism/privacy configuration.

    Models are initialised from ``seed`` so every mechanism in a sweep
    starts from identical weights; the training randomness derives from
    ``seed + 1``.

    Args:
        mechanism: Un-calibrated mechanism, or ``None`` for non-private.
        train: Training dataset.
        test: Evaluation dataset.
        rounds: Training rounds ``T``.
        expected_batch: Expected participants per round ``|B|``.
        epsilon: Target epsilon (ignored when ``mechanism`` is ``None``).
        seed: Base seed for model init and training randomness.
        hidden: Width of the single hidden layer (80 in the paper).
        learning_rate: Adam learning rate.
        delta: DP delta.

    Returns:
        The cell's result; infeasible calibrations yield ``accuracy = nan``.
    """
    model = MLPClassifier(
        [train.num_features, hidden, train.num_classes],
        np.random.default_rng(seed),
    )
    budget = (
        PrivacyBudget(epsilon=epsilon, delta=delta)
        if mechanism is not None and epsilon is not None
        else None
    )
    config = TrainingConfig(
        rounds=rounds,
        expected_batch=expected_batch,
        budget=budget,
        learning_rate=learning_rate,
    )
    trainer = FederatedTrainer(model, mechanism, train, test, config)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # Overflow is part of the data.
            history = trainer.run(np.random.default_rng(seed + 1))
    except CalibrationError:
        return FlPointResult(
            mechanism=mechanism.name if mechanism else "none",
            epsilon=epsilon if epsilon is not None else float("nan"),
            accuracy=float("nan"),
            summary=mechanism.describe() if mechanism else {},
        )
    return FlPointResult(
        mechanism=mechanism.name if mechanism else "none",
        epsilon=epsilon if epsilon is not None else float("nan"),
        accuracy=history.final_accuracy,
        summary=history.mechanism_summary,
    )


def format_accuracy_table(
    results: list[FlPointResult], column_key: str = "epsilon"
) -> str:
    """Render FL results as a paper-style table (rows = mechanisms).

    Args:
        results: Grid cells; the column value is read from
            ``result.epsilon`` (or from ``summary[column_key]`` for other
            sweeps).
        column_key: Name of the swept variable, used in the header.

    Returns:
        A fixed-width text table of test accuracies in percent.
    """
    by_mechanism: dict[str, dict[float, float]] = {}
    columns: list[float] = []
    for result in results:
        column = result.epsilon
        by_mechanism.setdefault(result.mechanism, {})[column] = result.accuracy
        if column not in columns:
            columns.append(column)
    header = f"{column_key:>10s}  " + "  ".join(
        f"{column:8.3g}" for column in columns
    )
    lines = [header]
    for name, cells in by_mechanism.items():
        rendered = "  ".join(
            f"{100.0 * cells.get(column, float('nan')):8.1f}"
            for column in columns
        )
        lines.append(f"{name:>10s}  {rendered}")
    return "\n".join(lines)
