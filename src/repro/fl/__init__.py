"""Federated-learning substrate: model, data, optimisers, training loop."""

from repro.fl.data import (
    Dataset,
    fashion_mnist_surrogate,
    make_synthetic_images,
    mnist_surrogate,
)
from repro.fl.dpsgd import train_dpsgd
from repro.fl.experiment import (
    FlPointResult,
    format_accuracy_table,
    run_fl_point,
)
from repro.fl.layers import (
    DenseLayer,
    relu,
    relu_grad,
    softmax,
    softmax_cross_entropy,
)
from repro.fl.metrics import (
    ClassificationReport,
    classification_report,
    confusion_matrix,
    evaluate_model,
)
from repro.fl.model import MLPClassifier, paper_mlp
from repro.fl.optimizers import Adam, Optimizer, Sgd, make_optimizer
from repro.fl.schedules import (
    ConstantSchedule,
    CosineAnnealing,
    LinearWarmup,
    Schedule,
    StepDecay,
    make_schedule,
)
from repro.fl.training import FederatedTrainer, TrainingConfig, TrainingHistory

__all__ = [
    "Adam",
    "ClassificationReport",
    "ConstantSchedule",
    "CosineAnnealing",
    "Dataset",
    "DenseLayer",
    "FederatedTrainer",
    "FlPointResult",
    "LinearWarmup",
    "MLPClassifier",
    "Optimizer",
    "Schedule",
    "Sgd",
    "StepDecay",
    "TrainingConfig",
    "TrainingHistory",
    "classification_report",
    "confusion_matrix",
    "evaluate_model",
    "fashion_mnist_surrogate",
    "format_accuracy_table",
    "make_optimizer",
    "make_schedule",
    "make_synthetic_images",
    "mnist_surrogate",
    "paper_mlp",
    "relu",
    "relu_grad",
    "run_fl_point",
    "softmax",
    "softmax_cross_entropy",
    "train_dpsgd",
]
