"""Classification metrics beyond plain accuracy.

The paper reports test accuracy; richer metrics (confusion matrix,
per-class precision/recall/F1) let the examples and ablations show *how*
DP noise degrades a model — typically by collapsing rare classes first —
rather than just *how much*.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


def confusion_matrix(
    labels: np.ndarray, predictions: np.ndarray, num_classes: int
) -> np.ndarray:
    """Count matrix ``C[i, j]`` = examples of true class ``i`` predicted
    as class ``j``.

    Args:
        labels: True integer labels in ``[0, num_classes)``.
        predictions: Predicted integer labels, same shape.
        num_classes: Number of classes ``K``.

    Returns:
        ``(K, K)`` int64 matrix.

    Raises:
        ConfigurationError: On shape mismatch or out-of-range labels.
    """
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape or labels.ndim != 1:
        raise ConfigurationError(
            f"labels and predictions must be equal-length 1-d arrays, got "
            f"{labels.shape} and {predictions.shape}"
        )
    if num_classes < 1:
        raise ConfigurationError(
            f"num_classes must be >= 1, got {num_classes}"
        )
    for name, values in (("labels", labels), ("predictions", predictions)):
        if values.size and (
            values.min() < 0 or values.max() >= num_classes
        ):
            raise ConfigurationError(
                f"{name} must lie in [0, {num_classes}), got range "
                f"[{values.min()}, {values.max()}]"
            )
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


@dataclasses.dataclass(frozen=True)
class ClassificationReport:
    """Per-class and aggregate metrics derived from a confusion matrix.

    Attributes:
        matrix: The ``(K, K)`` confusion matrix.
        accuracy: Overall fraction correct.
        precision: Per-class precision (0 where the class was never
            predicted).
        recall: Per-class recall (0 where the class has no examples).
        f1: Per-class F1 (harmonic mean; 0 where undefined).
    """

    matrix: np.ndarray
    accuracy: float
    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray

    @property
    def macro_f1(self) -> float:
        """Unweighted mean of per-class F1 — sensitive to collapsed
        classes, unlike accuracy."""
        return float(self.f1.mean())

    @property
    def worst_class_recall(self) -> float:
        """Recall of the most-damaged class."""
        return float(self.recall.min())


def classification_report(
    labels: np.ndarray, predictions: np.ndarray, num_classes: int
) -> ClassificationReport:
    """Compute the full report from labels and predictions.

    Args:
        labels: True integer labels.
        predictions: Predicted integer labels.
        num_classes: Number of classes.

    Returns:
        The per-class and aggregate metrics.
    """
    matrix = confusion_matrix(labels, predictions, num_classes)
    total = matrix.sum()
    correct = np.trace(matrix)
    predicted_totals = matrix.sum(axis=0).astype(np.float64)
    true_totals = matrix.sum(axis=1).astype(np.float64)
    diagonal = np.diag(matrix).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(
            predicted_totals > 0, diagonal / predicted_totals, 0.0
        )
        recall = np.where(true_totals > 0, diagonal / true_totals, 0.0)
        denominator = precision + recall
        f1 = np.where(
            denominator > 0, 2.0 * precision * recall / denominator, 0.0
        )
    return ClassificationReport(
        matrix=matrix,
        accuracy=float(correct / total) if total else 0.0,
        precision=precision,
        recall=recall,
        f1=f1,
    )


def evaluate_model(model, features: np.ndarray, labels: np.ndarray):
    """Run a model over a dataset and report classification metrics.

    Args:
        model: Any object with ``predict(features) -> labels`` and a
            ``num_classes``-sized output layer (e.g.
            :class:`repro.fl.model.MLPClassifier`).
        features: ``(n, d)`` input matrix.
        labels: Length-``n`` true labels.

    Returns:
        A :class:`ClassificationReport`.
    """
    predictions = model.predict(features)
    num_classes = int(max(labels.max(), predictions.max())) + 1
    return classification_report(labels, predictions, num_classes)
