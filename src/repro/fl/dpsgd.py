"""The centralised DPSGD baseline (Abadi et al. 2016).

DPSGD is exactly the federated loop of Algorithm 3 with the distributed
mechanism replaced by a trusted curator adding continuous Gaussian noise
to the clipped gradient sum — i.e. :class:`GaussianMechanism` plugged
into :class:`FederatedTrainer`.  Poisson subsampling amplification and
the moments-style RDP accounting are shared with every other mechanism
through :mod:`repro.core.calibration`, matching how the paper accounts
DPSGD ("we have also included the strong central-model DPSGD as a
baseline", Section 6.2).
"""

from __future__ import annotations

import numpy as np

from repro.fl.data import Dataset
from repro.fl.model import MLPClassifier
from repro.fl.training import FederatedTrainer, TrainingConfig, TrainingHistory
from repro.mechanisms.gaussian import GaussianMechanism


def train_dpsgd(
    model: MLPClassifier,
    train: Dataset,
    test: Dataset,
    config: TrainingConfig,
    rng: np.random.Generator,
) -> TrainingHistory:
    """Train ``model`` with centralised DPSGD under ``config.budget``.

    Args:
        model: The model to train (updated in place).
        train: Training dataset.
        test: Evaluation dataset.
        config: Hyper-parameters; ``config.budget`` must be set.
        rng: Generator for sampling and noise.

    Returns:
        The training history (same schema as federated runs).
    """
    trainer = FederatedTrainer(
        model=model,
        mechanism=GaussianMechanism(),
        train=train,
        test=test,
        config=config,
    )
    return trainer.run(rng)
