"""Federated learning with distributed DP (Algorithm 3 / Algorithm 13).

One :class:`FederatedTrainer` round performs exactly the paper's loop:

1. the server "shares" the current parameters (our model object holds
   them),
2. a Poisson-sampled subset of participants is selected with rate ``q``
   (line 3; each record is one participant, Section 6.2),
3. each selected participant computes the gradient of *her own* record
   (line 5) and perturbs/encodes it with the plugged-in mechanism
   (line 6 — Algorithm 4 for SMM, Algorithm 14 for DGM, the conditional-
   rounding pipelines for DDG/Skellam/cpSGD, or plain Gaussian for the
   centralised DPSGD baseline),
4. the mechanism's secure aggregation + server decode yield the noisy
   gradient sum (lines 7-8), and
5. the server updates the model with Adam/SGD on
   ``noisy_sum / expected_batch`` (line 9; dividing by the *expected*
   batch size keeps the actual participation count private, the standard
   DPSGD convention).

Privacy calibration happens once, before training: the mechanism is
calibrated for ``T`` rounds of Poisson-subsampled composition at rate
``q`` (Theorem 6 / Theorem 9 accounting), so the *final* model satisfies
the requested ``(epsilon, delta)``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import PrivacyBudget
from repro.core.calibration import AccountingSpec
from repro.errors import ConfigurationError
from repro.fl.data import Dataset
from repro.fl.model import MLPClassifier
from repro.fl.optimizers import make_optimizer
from repro.fl.schedules import make_schedule
from repro.mechanisms.base import InputSpec, SumEstimator


@dataclasses.dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one FL training run.

    Attributes:
        rounds: Number of training iterations ``T``.
        expected_batch: Expected participants per round ``|B|``; the
            Poisson rate is ``q = expected_batch / num_records``.
        budget: Target ``(epsilon, delta)`` for the whole run; ``None``
            trains without privacy (the non-private ceiling).
        learning_rate: Server optimiser step size (0.005 in the paper).
        optimizer: ``"adam"`` (the paper's choice) or ``"sgd"``.
        l2_bound: Gradient L2 clipping norm ``Delta_2`` (1 in the paper).
        eval_every: Evaluate test accuracy every this many rounds (and
            always at the end); ``0`` evaluates only at the end.
        lr_schedule: Server learning-rate schedule name (see
            :func:`repro.fl.schedules.make_schedule`); ``"constant"``
            is the paper's setting.  Schedules act server-side only, so
            they never affect the privacy guarantee.
        dropout_rate: Probability that a sampled participant drops out
            before her perturbed gradient reaches aggregation (models
            SecAgg dropouts).  Calibration still targets
            ``expected_batch`` contributors, so nonzero dropout trades a
            slightly noisier-than-nominal aggregate for robustness —
            the regime the Bonawitz protocol is designed to survive.
    """

    rounds: int
    expected_batch: int
    budget: PrivacyBudget | None = None
    learning_rate: float = 0.005
    optimizer: str = "adam"
    l2_bound: float = 1.0
    eval_every: int = 0
    lr_schedule: str = "constant"
    dropout_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if self.expected_batch < 1:
            raise ConfigurationError(
                f"expected_batch must be >= 1, got {self.expected_batch}"
            )
        if self.eval_every < 0:
            raise ConfigurationError(
                f"eval_every must be >= 0, got {self.eval_every}"
            )
        if not 0 <= self.dropout_rate < 1:
            raise ConfigurationError(
                f"dropout_rate must be in [0, 1), got {self.dropout_rate}"
            )


@dataclasses.dataclass
class TrainingHistory:
    """Metrics collected during a run.

    Attributes:
        evaluated_rounds: Round indices at which test accuracy was taken.
        test_accuracies: Test accuracy at those rounds.
        final_accuracy: Test accuracy of the final model.
        final_loss: Test cross-entropy of the final model.
        mechanism_summary: The mechanism's calibration description.
    """

    evaluated_rounds: list[int] = dataclasses.field(default_factory=list)
    test_accuracies: list[float] = dataclasses.field(default_factory=list)
    final_accuracy: float = 0.0
    final_loss: float = 0.0
    mechanism_summary: dict = dataclasses.field(default_factory=dict)


class FederatedTrainer:
    """Run Algorithm 3 with a pluggable perturbation mechanism.

    Args:
        model: The shared model (updated in place).
        mechanism: A :class:`SumEstimator` (un-calibrated; the trainer
            calibrates it for this run's ``T`` and ``q``), or ``None``
            for non-private training.
        train: Training dataset (one record per participant).
        test: Held-out evaluation dataset.
        config: Hyper-parameters and privacy budget.
    """

    def __init__(
        self,
        model: MLPClassifier,
        mechanism: SumEstimator | None,
        train: Dataset,
        test: Dataset,
        config: TrainingConfig,
    ) -> None:
        if config.expected_batch > train.num_records:
            raise ConfigurationError(
                f"expected_batch {config.expected_batch} exceeds the "
                f"{train.num_records} available participants"
            )
        if mechanism is not None and config.budget is None:
            raise ConfigurationError(
                "a privacy budget is required when a mechanism is supplied"
            )
        self.model = model
        self.mechanism = mechanism
        self.train = train
        self.test = test
        self.config = config
        self.sampling_rate = config.expected_batch / train.num_records

    def calibrate_mechanism(self) -> None:
        """Calibrate the mechanism for this run's composition (Theorem 6)."""
        if self.mechanism is None or self.config.budget is None:
            return
        spec = InputSpec(
            num_participants=self.config.expected_batch,
            dimension=self.model.num_parameters,
            l2_bound=self.config.l2_bound,
        )
        accounting = AccountingSpec(
            budget=self.config.budget,
            rounds=self.config.rounds,
            sampling_rate=self.sampling_rate,
        )
        self.mechanism.calibrate(spec, accounting)

    def _select_round_participants(
        self, rng: np.random.Generator, round_index: int
    ) -> np.ndarray:
        """Record indices participating in one round (may be empty).

        The default is the paper's regime: Poisson sampling at rate
        ``q``, thinned by ``config.dropout_rate``.  Subclasses (e.g. the
        :mod:`repro.simulation` engine) override this to drive selection
        from a client population model instead.
        """
        selected = rng.random(self.train.num_records) < self.sampling_rate
        if self.config.dropout_rate > 0:
            surviving = (
                rng.random(self.train.num_records) >= self.config.dropout_rate
            )
            selected &= surviving
        return np.flatnonzero(selected)

    def _aggregate_gradients(
        self, batch: Dataset, rng: np.random.Generator, round_index: int
    ) -> np.ndarray | None:
        """The server's gradient estimate for one sampled batch.

        Returns ``None`` to skip the round's model update (the default
        never does; the async simulation engine does when an aggregation
        round aborts below the SecAgg threshold).
        """
        per_example = self.model.per_example_gradients(
            batch.features, batch.labels
        )
        if self.mechanism is None:
            gradient_sum = per_example.sum(axis=0)
        else:
            gradient_sum = self.mechanism.estimate_sum(per_example, rng)
        return gradient_sum / self.config.expected_batch

    def run(self, rng: np.random.Generator) -> TrainingHistory:
        """Train for ``config.rounds`` rounds; returns collected metrics.

        Args:
            rng: Generator driving Poisson sampling, mechanism noise and
                SecAgg masks.
        """
        self.calibrate_mechanism()
        optimizer = make_optimizer(
            self.config.optimizer, self.config.learning_rate
        )
        schedule = make_schedule(
            self.config.lr_schedule,
            self.config.learning_rate,
            self.config.rounds,
        )
        history = TrainingHistory()
        if self.mechanism is not None:
            history.mechanism_summary = self.mechanism.describe()
        parameters = self.model.get_flat_parameters()
        for round_index in range(1, self.config.rounds + 1):
            participants = self._select_round_participants(rng, round_index)
            if participants.size == 0:
                continue  # Empty Poisson sample: no update this round.
            optimizer.learning_rate = schedule.rate(round_index)
            batch = self.train.subset(participants)
            gradient = self._aggregate_gradients(batch, rng, round_index)
            if gradient is None:
                continue  # Aggregation aborted: no update this round.
            parameters = optimizer.step(parameters, gradient)
            self.model.set_flat_parameters(parameters)
            if (
                self.config.eval_every
                and round_index % self.config.eval_every == 0
            ):
                history.evaluated_rounds.append(round_index)
                history.test_accuracies.append(
                    self.model.accuracy(self.test.features, self.test.labels)
                )
        history.final_accuracy = self.model.accuracy(
            self.test.features, self.test.labels
        )
        history.final_loss = self.model.loss(
            self.test.features, self.test.labels
        )
        return history
