"""Neural-network layers with *per-example* gradients (pure numpy).

Differentially private SGD needs the gradient of every individual
example's loss — each FL participant perturbs *her own* gradient
(Algorithm 3 line 5) — so the backward pass here returns, for a batch of
``B`` examples, parameter gradients of shape ``(B, ...)`` rather than the
batch-mean a standard framework computes.  For a dense layer this is one
outer product per example, vectorised as an einsum.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass
class DenseLayer:
    """A fully connected layer ``y = x W + b`` with per-example gradients.

    Attributes:
        weights: ``(fan_in, fan_out)`` parameter matrix.
        bias: ``(fan_out,)`` parameter vector.
    """

    weights: np.ndarray
    bias: np.ndarray

    def __post_init__(self) -> None:
        if self.weights.ndim != 2:
            raise ConfigurationError("weights must be a 2-d array")
        if self.bias.shape != (self.weights.shape[1],):
            raise ConfigurationError(
                f"bias shape {self.bias.shape} does not match fan-out "
                f"{self.weights.shape[1]}"
            )

    @classmethod
    def initialise(
        cls, fan_in: int, fan_out: int, rng: np.random.Generator
    ) -> "DenseLayer":
        """He-initialise a layer (suits the ReLU activations used here)."""
        scale = np.sqrt(2.0 / fan_in)
        weights = rng.normal(0.0, scale, size=(fan_in, fan_out))
        return cls(weights=weights, bias=np.zeros(fan_out))

    @property
    def num_parameters(self) -> int:
        """Total parameter count (weights + bias)."""
        return self.weights.size + self.bias.size

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Apply the affine map to a ``(B, fan_in)`` batch."""
        return inputs @ self.weights + self.bias

    def per_example_gradients(
        self, inputs: np.ndarray, output_grads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward pass returning per-example parameter gradients.

        Args:
            inputs: The ``(B, fan_in)`` batch fed to :meth:`forward`.
            output_grads: ``(B, fan_out)`` gradients of each example's
                loss w.r.t. this layer's output.

        Returns:
            ``(weight_grads, bias_grads, input_grads)`` with shapes
            ``(B, fan_in, fan_out)``, ``(B, fan_out)``, ``(B, fan_in)``.
        """
        weight_grads = np.einsum("bi,bo->bio", inputs, output_grads)
        input_grads = output_grads @ self.weights.T
        return weight_grads, output_grads, input_grads


def relu(values: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(values, 0.0)


def relu_grad(pre_activation: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation values."""
    return (pre_activation > 0.0).astype(np.float64)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-example cross-entropy loss and its gradient w.r.t. the logits.

    Args:
        logits: ``(B, num_classes)`` raw scores.
        labels: ``(B,)`` integer class labels.

    Returns:
        ``(losses, logit_grads)`` — per-example losses ``(B,)`` and
        gradients ``(B, num_classes)`` of each example's own loss.
    """
    if logits.ndim != 2:
        raise ConfigurationError("logits must be a (batch, classes) array")
    if labels.shape != (logits.shape[0],):
        raise ConfigurationError(
            f"labels shape {labels.shape} does not match batch "
            f"{logits.shape[0]}"
        )
    probabilities = softmax(logits)
    batch_indices = np.arange(logits.shape[0])
    picked = np.clip(probabilities[batch_indices, labels], 1e-12, None)
    losses = -np.log(picked)
    logit_grads = probabilities.copy()
    logit_grads[batch_indices, labels] -= 1.0
    return losses, logit_grads
