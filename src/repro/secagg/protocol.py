"""Black-box SecAgg *contract* simulator over ``Z_m^d``.

The paper treats SecAgg (Bonawitz et al.) as a black box with one
behaviour: given one vector in ``Z_m^d`` per participant, it reveals *only*
the coordinate-wise modular sum — no party (server included) learns
anything else about an individual vector.  The DP analysis (Section 2.4)
relies exactly on this input/output contract, so the simulator reproduces
it faithfully:

* every participant's transmitted message is their input plus masks that
  are uniform over ``Z_m`` (individually, each message is marginally
  uniform — the confidentiality property), and
* the masks cancel in the aggregate, so the revealed modular sum equals
  the modular sum of the true inputs (the correctness property).

.. note::
   This module is **not** a protocol implementation — it has no rounds,
   no key agreement, no dropout story.  The protocol itself lives in the
   sans-I/O core (:mod:`repro.secagg.wire` typed messages +
   :mod:`repro.secagg.statemachine` sessions) and its transports
   (:func:`repro.secagg.bonawitz.run_bonawitz`,
   :class:`repro.simulation.rounds.AsyncSecAggRound`); reach it from
   here with ``secure_sum(..., scheme="bonawitz")``.  What remains here
   is the fast input/output contract the experiment pipelines batch
   against.

Two mask schemes are provided.  :class:`PairwiseMaskProtocol` mirrors the
real protocol's mask structure — each unordered pair of participants
expands a shared seed into a mask that one adds and the other subtracts
(``O(n^2 d)`` work) — and since the sans-I/O refactor it expands those
masks through the *same* kernel layer the Bonawitz core uses
(:func:`repro.secagg.kernels.sum_signed_masks`), so the repository has
exactly one pairwise-mask implementation.  :class:`ZeroSumMaskProtocol`
samples ``n - 1`` uniform masks and gives the last participant the
negated sum (``O(n d)`` work) — the same marginal-uniformity and
cancellation properties under the paper's honest-but-curious,
no-collusion threat model, used by the experiment pipelines for speed.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.kernels import MaskPrg, get_mask_prg, sum_signed_masks


def _validate_inputs(inputs: np.ndarray, modulus: int) -> np.ndarray:
    """Check that ``inputs`` is an ``(n, d)`` integer array over ``Z_m``."""
    inputs = np.asarray(inputs)
    if inputs.ndim != 2:
        raise AggregationError(
            f"expected a (participants, dimension) array, got ndim={inputs.ndim}"
        )
    if not np.issubdtype(inputs.dtype, np.integer):
        raise AggregationError(
            f"SecAgg inputs must be integers, got dtype={inputs.dtype}"
        )
    if inputs.size and (inputs.min() < 0 or inputs.max() >= modulus):
        raise AggregationError(
            f"SecAgg inputs must lie in [0, {modulus}), got range "
            f"[{inputs.min()}, {inputs.max()}]"
        )
    return inputs.astype(np.int64)


class SecureAggregator(abc.ABC):
    """Black-box secure aggregation of integer vectors over ``Z_m``.

    Args:
        modulus: The group modulus ``m``; must be an even integer >= 2.
        rng: Generator used to draw the (simulated) shared mask seeds.
    """

    def __init__(self, modulus: int, rng: np.random.Generator) -> None:
        if modulus < 2 or modulus % 2 != 0:
            raise ConfigurationError(
                f"modulus must be an even integer >= 2, got {modulus}"
            )
        self._modulus = modulus
        self._rng = rng

    @property
    def modulus(self) -> int:
        """The group modulus ``m``."""
        return self._modulus

    @abc.abstractmethod
    def _masks(self, num_participants: int, dimension: int) -> np.ndarray:
        """Return an ``(n, d)`` mask array whose modular column sums are 0."""

    def transmit(self, inputs: np.ndarray) -> np.ndarray:
        """Produce the masked messages each participant would send.

        Args:
            inputs: ``(n, d)`` integer array with entries in ``Z_m``.

        Returns:
            ``(n, d)`` array of masked messages, each entry in ``Z_m``.
        """
        inputs = _validate_inputs(inputs, self._modulus)
        masks = self._masks(inputs.shape[0], inputs.shape[1])
        return np.mod(inputs + masks, self._modulus)

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Aggregate: reveal only the coordinate-wise modular sum.

        Args:
            inputs: ``(n, d)`` integer array with entries in ``Z_m``.

        Returns:
            Length-``d`` int64 array equal to ``sum_i inputs[i] mod m``.
        """
        messages = self.transmit(inputs)
        return np.mod(messages.sum(axis=0, dtype=np.int64), self._modulus)


class PairwiseMaskProtocol(SecureAggregator):
    """Pairwise-mask structure of the real protocol, over the kernel core.

    Each unordered pair ``(i, j)`` with ``i < j`` shares a seed; the seed
    expands into a uniform vector over ``Z_m`` that participant ``i`` adds
    and participant ``j`` subtracts.  Masks therefore cancel exactly in
    the aggregate while each individual message is marginally uniform.

    The expansion runs on the same :class:`~repro.secagg.kernels.MaskPrg`
    backends the Bonawitz sessions negotiate on the wire — this class is
    a trivial no-dropout driver over that core, kept for the experiment
    pipelines; for protocol fidelity (key agreement, Shamir recovery,
    versioned wire messages) use ``secure_sum(scheme="bonawitz")``.

    Args:
        modulus: The group modulus ``m``; must be an even integer >= 2.
        rng: Generator the pairwise seeds are drawn from.
        mask_prg: Mask PRG backend name or instance (``"sha256-ctr"``
            default, ``"philox"`` fast).
    """

    def __init__(
        self,
        modulus: int,
        rng: np.random.Generator,
        mask_prg: MaskPrg | str | None = None,
    ) -> None:
        super().__init__(modulus, rng)
        self._mask_prg = get_mask_prg(mask_prg)

    def _masks(self, num_participants: int, dimension: int) -> np.ndarray:
        masks = np.zeros((num_participants, dimension), dtype=np.int64)
        # One 16-byte seed per unordered pair, drawn in deterministic
        # (i, j) order; participant i carries +PRG(s_ij), j carries
        # -PRG(s_ij) — the Bonawitz sign convention.
        seeds_per_peer: list[list[bytes]] = [[] for _ in range(num_participants)]
        signs_per_peer: list[list[int]] = [[] for _ in range(num_participants)]
        for i in range(num_participants):
            for j in range(i + 1, num_participants):
                seed = self._rng.bytes(16)
                seeds_per_peer[i].append(seed)
                signs_per_peer[i].append(1)
                seeds_per_peer[j].append(seed)
                signs_per_peer[j].append(-1)
        for i in range(num_participants):
            if seeds_per_peer[i]:
                masks[i] = sum_signed_masks(
                    seeds_per_peer[i],
                    signs_per_peer[i],
                    dimension,
                    self._modulus,
                    self._mask_prg,
                )
        return masks


class ZeroSumMaskProtocol(SecureAggregator):
    """Efficient zero-sum mask SecAgg for large simulations.

    Samples ``n - 1`` uniform masks and assigns the last participant the
    negated modular sum.  Under the paper's threat model (honest-but-
    curious, no two parties collude) this presents the same view as the
    pairwise protocol: each message is marginally uniform and only the
    modular sum is revealed.
    """

    def _masks(self, num_participants: int, dimension: int) -> np.ndarray:
        if num_participants == 1:
            # A single participant's message is revealed as the sum by
            # definition; mask with zero.
            return np.zeros((1, dimension), dtype=np.int64)
        head = self._rng.integers(
            0, self._modulus, size=(num_participants - 1, dimension), dtype=np.int64
        )
        tail = np.mod(-head.sum(axis=0, dtype=np.int64), self._modulus)
        return np.concatenate([head, tail[np.newaxis, :]], axis=0)


def secure_sum(
    inputs: np.ndarray,
    modulus: int,
    rng: np.random.Generator,
    scheme: str = "zero-sum",
) -> np.ndarray:
    """Convenience wrapper: aggregate ``inputs`` with the chosen scheme.

    Args:
        inputs: ``(n, d)`` integer array with entries in ``Z_m``.
        modulus: The group modulus ``m``.
        rng: Generator for mask randomness.
        scheme: ``"zero-sum"`` (fast), ``"pairwise"`` (faithful masks), or
            ``"bonawitz"`` (the full four-round protocol of
            :mod:`repro.secagg.bonawitz` with a majority threshold —
            slowest, highest fidelity; requires ``n >= 2``).

    Returns:
        Length-``d`` modular sum.
    """
    if scheme == "bonawitz":
        from repro.secagg.bonawitz import run_bonawitz

        num_participants = np.asarray(inputs).shape[0]
        threshold = max(2, num_participants // 2 + 1)
        return run_bonawitz(inputs, modulus, threshold, rng).modular_sum
    protocols = {
        "zero-sum": ZeroSumMaskProtocol,
        "pairwise": PairwiseMaskProtocol,
    }
    if scheme not in protocols:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; expected one of "
            f"{sorted(protocols) + ['bonawitz']}"
        )
    return protocols[scheme](modulus, rng).run(inputs)
