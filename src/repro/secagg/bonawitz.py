"""The Bonawitz et al. secure-aggregation protocol (semi-honest variant).

The paper uses SecAgg [10] as a black box; :mod:`repro.secagg.protocol`
models only its input/output contract.  This module implements the
protocol itself — the four-round state machine of Bonawitz et al.
(CCS 2017, "Practical Secure Aggregation for Privacy-Preserving Machine
Learning") — so the repository also demonstrates *how* the contract is
achieved and how the system behaves when participants drop out
mid-protocol, which is the protocol's raison d'etre.

Round structure (client set shrinks monotonically: ``U0 ⊇ U1 ⊇ U2 ⊇ U3``):

0. **AdvertiseKeys** — every client publishes two Diffie-Hellman public
   keys: ``c_u`` (pairwise channel encryption) and ``s_u`` (pairwise mask
   agreement).
1. **ShareKeys** — every client samples a self-mask seed ``b_u``,
   Shamir-shares both ``b_u`` and its mask private key ``s_u^SK`` among
   the round-0 roster, and uploads the shares sealed per recipient (the
   server routes ciphertexts it cannot read).
2. **MaskedInputCollection** — every client uploads
   ``y_u = x_u + PRG(b_u) + Σ_{v<u} -PRG(s_uv) + Σ_{v>u} +PRG(s_uv)
   mod m`` where ``s_uv`` is the DH-agreed pairwise seed over the
   round-1 survivor set ``U1``.
3. **Unmasking** — the server reveals who survived.  Each responding
   client returns its share of ``b_v`` for survivors ``v ∈ U2`` and its
   share of ``s_v^SK`` for dropouts ``v ∈ U1 \\ U2`` — never both for the
   same ``v`` (the core security rule).  With ``t`` responses the server
   reconstructs the missing masks and recovers ``Σ_{u ∈ U2} x_u mod m``.

Dropouts are injected via a schedule mapping client index to the first
round in which it stops responding; recovery succeeds whenever at least
``threshold`` clients reach round 3.

Every quadratic inner loop — per-peer mask expansion and summation,
per-recipient share generation and envelope sealing, per-survivor
reconstruction — runs on the vectorised kernel layer
(:mod:`repro.secagg.kernels`), so clients and the server share one code
path for each primitive.  The ``mask_prg`` knob selects the mask PRG
backend per protocol version; all participants in a round must agree on
it (the SHA-256 counter default is bit-compatible with the original
implementation, the Philox backend trades that compatibility for
speed).

Layering: this module holds the *crypto* state machines
(:class:`BonawitzClient` / :class:`BonawitzServer`) operating on live
Python objects.  The wire-level protocol — typed, versioned,
byte-serializable messages and the sans-I/O sessions that exchange them
— lives in :mod:`repro.secagg.wire` and
:mod:`repro.secagg.statemachine`; :func:`run_bonawitz` below is the
synchronous in-memory *transport* over those sessions (the
simulated-clock mailbox transport is
:class:`repro.simulation.rounds.AsyncSecAggRound`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.kernels import (
    MaskPrg,
    get_mask_prg,
    keystream_batch,
    sum_signed_masks,
)
from repro.secagg.keys import (
    DhGroup,
    KeyAgreementGroup,
    KeyPair,
    agree,
    agree_batch,
    generate_keypair,
    key_bits,
    warm_agreement_cache,
)
from repro.secagg.prg import expand_mask
from repro.secagg.protocol import _validate_inputs
from repro.secagg.shamir import (
    DEFAULT_LIMB_BITS,
    LimbShares,
    Share,
    _secret_limbs,
    reconstruct_large_secret,
    reconstruct_secrets,
    split_secrets,
)

from repro.secagg.wire import (
    Advertise,
    SealedShares,
    UnmaskColumns,
    UnmaskRequest,
    UnmaskResponse,
    WireStats,
)

#: Protocol round identifiers, for dropout schedules and error messages.
ROUND_ADVERTISE = 0
ROUND_SHARE_KEYS = 1
ROUND_MASKED_INPUT = 2
ROUND_UNMASK = 3

_SEED_WIDTH = 16  # bytes used to serialise a self-mask seed for the PRG

#: A client's round-0 message: its two public keys.  The protocol's
#: message types live in :mod:`repro.secagg.wire` (typed, versioned,
#: byte-serializable); this alias keeps the historical name.
AdvertisedKeys = Advertise


def _encode_payload(
    seed_share: Share, key_share: LimbShares, width: int = 16
) -> bytes:
    """Serialise one recipient's shares into a fixed-layout byte string.

    ``width`` is the per-value byte width: 8 suffices whenever the
    sharing field fits uint64 (every default configuration — it halves
    the envelope keystream), 16 covers fields up to ``2^128``.
    """
    parts = [
        seed_share.x.to_bytes(4, "little"),
        seed_share.y.to_bytes(width, "little"),
        len(key_share.ys).to_bytes(2, "little"),
    ]
    parts.extend(y.to_bytes(width, "little") for y in key_share.ys)
    return b"".join(parts)


def _decode_payload(
    payload: bytes, width: int = 16
) -> tuple[Share, LimbShares]:
    """Inverse of :func:`_encode_payload` (same ``width`` required)."""
    x = int.from_bytes(payload[0:4], "little")
    seed_y = int.from_bytes(payload[4 : 4 + width], "little")
    num_limbs = int.from_bytes(payload[4 + width : 6 + width], "little")
    expected = 6 + width * (1 + num_limbs)
    if len(payload) != expected:
        raise AggregationError(
            f"malformed share payload: {len(payload)} bytes, "
            f"expected {expected}"
        )
    base = 6 + width
    ys = tuple(
        int.from_bytes(
            payload[base + width * k : base + width * (k + 1)], "little"
        )
        for k in range(num_limbs)
    )
    return Share(x=x, y=seed_y), LimbShares(x=x, ys=ys)


def _seal(channel_key: bytes, payload: bytes) -> bytes:
    """XOR-encrypt ``payload`` under a keystream derived from the key."""
    stream = keystream_batch([channel_key], len(payload))[0]
    return bytes(np.bitwise_xor(np.frombuffer(payload, dtype=np.uint8), stream))


def _open_sealed(channel_key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt a :func:`_seal` envelope (XOR streams are involutions)."""
    return _seal(channel_key, ciphertext)


def _encode_payload_matrix(
    seed_ys: np.ndarray, limb_ys: np.ndarray, width: int = 16
) -> np.ndarray:
    """Vectorised :func:`_encode_payload` for one sender's whole roster.

    Args:
        seed_ys: ``(n,)`` uint64 seed-share values, recipient order.
        limb_ys: ``(num_limbs, n)`` uint64 key-share values.
        width: Per-value byte width (8 or 16; values fit uint64 either
            way, 16 just zero-pads the high half).

    Returns:
        ``(n, 6 + width * (1 + num_limbs))`` uint8 matrix; row ``j`` is
        exactly ``_encode_payload`` of recipient ``j + 1``'s shares.
    """
    num_limbs, num = limb_ys.shape
    payloads = np.zeros(
        (num, 6 + width * (1 + num_limbs)), dtype=np.uint8
    )
    xs = np.arange(1, num + 1, dtype="<u4")
    payloads[:, 0:4] = xs.view(np.uint8).reshape(num, 4)
    payloads[:, 4:12] = (
        seed_ys.astype("<u8").view(np.uint8).reshape(num, 8)
    )
    payloads[:, 4 + width] = num_limbs & 0xFF
    payloads[:, 5 + width] = num_limbs >> 8
    base = 6 + width
    for k in range(num_limbs):
        payloads[:, base + width * k : base + width * k + 8] = (
            limb_ys[k].astype("<u8").view(np.uint8).reshape(num, 8)
        )
    return payloads


def _decode_payload_matrix(
    plain: np.ndarray, width: int = 16
) -> list[tuple[Share, LimbShares]]:
    """Vectorised :func:`_decode_payload` over equal-layout payload rows.

    With 16-byte values, rows whose high words are nonzero (possible
    only for garbled ciphertexts) fall back to the scalar decoder, so
    behaviour matches the scalar path byte for byte.

    Raises:
        AggregationError: On a layout/limb-count mismatch.
    """
    rows, row_bytes = plain.shape
    count_cols = np.ascontiguousarray(
        plain[:, 4 + width : 6 + width]
    ).view("<u2")[:, 0]
    num_limbs = int(count_cols[0]) if rows else 0
    if rows and (
        row_bytes != 6 + width * (1 + num_limbs)
        or np.any(count_cols != num_limbs)
    ):
        raise AggregationError(
            f"malformed share payload: {row_bytes} bytes, expected "
            f"{6 + width * (1 + int(count_cols.max(initial=0)))}"
        )
    def words(start: int) -> tuple[np.ndarray, np.ndarray | None]:
        chunk = np.ascontiguousarray(plain[:, start : start + width])
        pair = chunk.view("<u8")
        return pair[:, 0], (pair[:, 1] if width == 16 else None)
    base = 6 + width
    xs = np.ascontiguousarray(plain[:, 0:4]).view("<u4")[:, 0]
    value_words = [words(4)] + [
        words(base + width * k) for k in range(num_limbs)
    ]
    if any(hi is not None and hi.any() for _, hi in value_words):
        return [
            _decode_payload(plain[row].tobytes(), width)
            for row in range(rows)
        ]
    # tolist() hands back plain Python ints in one C pass; zip-transpose
    # assembles each row's limb tuple without per-element numpy scalars.
    xs_list = xs.tolist()
    seed_list = value_words[0][0].tolist()
    limb_columns = [value_words[1 + k][0].tolist() for k in range(num_limbs)]
    limb_rows = zip(*limb_columns) if limb_columns else ((),) * rows
    return [
        (Share(x, y), LimbShares(x, ys))
        for x, y, ys in zip(xs_list, seed_list, limb_rows)
    ]


class BonawitzClient:
    """One participant's state across the four protocol rounds.

    Args:
        index: The client's unique nonzero identifier (also its Shamir
            evaluation point).
        vector: The private input, a length-``d`` integer vector over
            ``Z_m``.
        modulus: The aggregation modulus ``m``.
        threshold: The Shamir reconstruction threshold ``t``.
        rng: Client-local randomness.
        group: The DH group for both key pairs.
        field: The Shamir sharing field.
        mask_prg: Mask PRG backend name or instance (protocol version);
            must match the server's and every peer's.
    """

    def __init__(
        self,
        index: int,
        vector: np.ndarray,
        modulus: int,
        threshold: int,
        rng: np.random.Generator,
        group: KeyAgreementGroup,
        field: PrimeField = DEFAULT_FIELD,
        mask_prg: MaskPrg | str | None = None,
    ) -> None:
        if index < 1:
            raise ConfigurationError(f"client index must be >= 1, got {index}")
        self.index = index
        self._vector = np.asarray(vector, dtype=np.int64)
        self._modulus = modulus
        self._threshold = threshold
        self._rng = rng
        self._group = group
        self._field = field
        self._mask_prg = get_mask_prg(mask_prg)
        # Share values fit 8 bytes whenever the field fits uint64; the
        # wide layout covers exotic fields up to 2^128.
        self._payload_width = 8 if field.prime <= (1 << 64) else 16
        self._channel_keys = None  # type: KeyPair | None
        self._mask_keys = None  # type: KeyPair | None
        self._roster: dict[int, AdvertisedKeys] = {}
        self._self_seed: int | None = None
        self._received: dict[int, tuple[Share, LimbShares]] = {}
        self._share_roster: tuple[int, ...] = ()
        self._channel_key_cache: dict[int, bytes] = {}

    def advertise_keys(self) -> AdvertisedKeys:
        """Round 0: generate both key pairs and publish the public halves."""
        self._channel_keys = generate_keypair(self._rng, self._group)
        self._mask_keys = generate_keypair(self._rng, self._group)
        return AdvertisedKeys(
            index=self.index,
            channel_public=self._channel_keys.public,
            mask_public=self._mask_keys.public,
        )

    def _channel_key(self, peer: int) -> bytes:
        """Derive (and memoise) the symmetric channel key for ``peer``."""
        assert self._channel_keys is not None
        key = self._channel_key_cache.get(peer)
        if key is None:
            peer_keys = self._roster[peer]
            key = agree(
                self._channel_keys.private,
                peer_keys.channel_public,
                self._group,
                own_public=self._channel_keys.public,
            )
            self._channel_key_cache[peer] = key
        return key

    def share_keys(self, roster: dict[int, AdvertisedKeys]) -> list[SealedShares]:
        """Round 1: sample ``b_u`` and distribute sealed shares.

        Args:
            roster: The server's broadcast of all round-0 messages.

        Returns:
            One sealed envelope per roster member (self included).

        Raises:
            AggregationError: If the roster is smaller than the threshold
                or does not contain this client.
        """
        recipients, sealed = self.share_keys_matrix(roster)
        return [
            SealedShares(
                sender=self.index,
                recipient=recipient,
                ciphertext=sealed[position].tobytes(),
            )
            for position, recipient in enumerate(recipients)
        ]

    def share_keys_matrix(
        self, roster: dict[int, AdvertisedKeys]
    ) -> tuple[tuple[int, ...], np.ndarray]:
        """Columnar :meth:`share_keys`: the envelope matrix itself.

        Returns:
            ``(recipients, sealed)`` where row ``i`` of the ``(n, L)``
            uint8 matrix is the ciphertext bound for ``recipients[i]``
            (the self-addressed row is unsealed, as in the object path).
            The wire layer turns this into one uniform frame stream
            without constructing quadratically many envelope objects.
        """
        if self._channel_keys is None or self._mask_keys is None:
            raise AggregationError("share_keys called before advertise_keys")
        if len(roster) < self._threshold:
            raise AggregationError(
                f"roster of {len(roster)} cannot meet threshold "
                f"{self._threshold}"
            )
        if self.index not in roster:
            raise AggregationError("client missing from its own roster")
        self._roster = dict(roster)
        self._share_roster = tuple(sorted(roster))
        self._self_seed = int(self._rng.integers(0, self._field.prime))
        recipients = self._share_roster
        # One vectorised split covers the self-mask seed and every limb
        # of the mask private key: all polynomials share the evaluation
        # points, so they batch into a single Horner kernel call.  The
        # limb width must fit the field (split_large_secret's guard,
        # preserved here since the limbs are split directly).
        if (1 << DEFAULT_LIMB_BITS) > self._field.prime:
            raise ConfigurationError(
                f"limb width {DEFAULT_LIMB_BITS} does not fit "
                f"GF({self._field.prime})"
            )
        limbs = _secret_limbs(self._mask_keys.private, DEFAULT_LIMB_BITS)
        # Pad to the group's fixed limb count: every client's envelopes
        # then share one byte length, so share deliveries are uniform
        # frame streams the wire layer bulk-decodes in one numpy pass.
        # (Zero limbs share and reconstruct like any other value.)
        group_limbs = -(-key_bits(self._group) // DEFAULT_LIMB_BITS)
        limbs += [0] * (group_limbs - len(limbs))
        share_matrix = split_secrets(
            [self._self_seed] + limbs,
            self._threshold,
            len(recipients),
            self._rng,
            self._field,
        )
        if self._field.prime <= (1 << 64):
            payloads = _encode_payload_matrix(
                np.asarray(share_matrix[0], dtype=np.uint64),
                np.asarray(share_matrix[1:], dtype=np.uint64),
                self._payload_width,
            )
        else:
            # Fields beyond uint64 keep the scalar byte encoder.
            payloads = np.frombuffer(
                b"".join(
                    _encode_payload(
                        Share(x=position + 1, y=int(share_matrix[0, position])),
                        LimbShares(
                            x=position + 1,
                            ys=tuple(
                                int(share_matrix[1 + k, position])
                                for k in range(len(limbs))
                            ),
                        ),
                        self._payload_width,
                    )
                    for position in range(len(recipients))
                ),
                dtype=np.uint8,
            ).reshape(len(recipients), -1)
        # Seal every peer-bound payload in one keystream batch; the
        # self-addressed envelope needs no sealing.  Channel keys for
        # the whole roster are agreed in one vectorised sweep first.
        peer_positions = [
            position
            for position, recipient in enumerate(recipients)
            if recipient != self.index
        ]
        missing = [
            recipients[position]
            for position in peer_positions
            if recipients[position] not in self._channel_key_cache
        ]
        if missing:
            self._channel_key_cache.update(
                zip(
                    missing,
                    agree_batch(
                        self._channel_keys.private,
                        [
                            self._roster[peer].channel_public
                            for peer in missing
                        ],
                        self._group,
                        own_public=self._channel_keys.public,
                    ),
                )
            )
        streams = keystream_batch(
            [self._channel_key_cache[recipients[p]] for p in peer_positions],
            payloads.shape[1],
        )
        sealed = payloads.copy()
        sealed[peer_positions] = np.bitwise_xor(
            payloads[peer_positions], streams
        )
        return recipients, sealed

    def receive_shares(self, envelopes: list[SealedShares]) -> None:
        """Store the round-1 envelopes addressed to this client.

        All peer envelopes are opened with one batched keystream and
        decoded with one vectorised payload parse.
        """
        for envelope in envelopes:
            if envelope.recipient != self.index:
                raise AggregationError(
                    f"client {self.index} received an envelope for "
                    f"{envelope.recipient}"
                )
        peer_envelopes = [
            envelope
            for envelope in envelopes
            if envelope.sender != self.index
        ]
        for envelope in envelopes:
            if envelope.sender == self.index:
                self._received[envelope.sender] = _decode_payload(
                    envelope.ciphertext, self._payload_width
                )
        # Envelope lengths are uniform per group (fixed limb padding),
        # but bucket defensively so mixed-length streams still open.
        buckets: dict[int, list[SealedShares]] = {}
        for envelope in peer_envelopes:
            buckets.setdefault(len(envelope.ciphertext), []).append(envelope)
        for length, bucket in buckets.items():
            ciphertexts = np.frombuffer(
                b"".join(envelope.ciphertext for envelope in bucket),
                dtype=np.uint8,
            ).reshape(len(bucket), length)
            self._open_envelope_matrix(
                [envelope.sender for envelope in bucket], ciphertexts
            )

    def _open_envelope_matrix(
        self, senders: list[int], ciphertexts: np.ndarray
    ) -> None:
        """Open equal-length peer envelopes in one batched sweep."""
        streams = keystream_batch(
            [self._channel_key(sender) for sender in senders],
            ciphertexts.shape[1],
        )
        decoded = _decode_payload_matrix(
            np.bitwise_xor(ciphertexts, streams), self._payload_width
        )
        for sender, shares in zip(senders, decoded):
            self._received[sender] = shares

    def receive_share_matrix(
        self, senders: list[int], ciphertexts: np.ndarray
    ) -> None:
        """Columnar :meth:`receive_shares`: one uniform ciphertext matrix.

        The wire layer's bulk decoder hands the routed mailbox over as
        sender ids plus an ``(n, L)`` uint8 ciphertext matrix; this
        opens every peer envelope in one batched keystream sweep with no
        per-envelope objects.  Behaviour (including the self-envelope
        shortcut) matches :meth:`receive_shares` exactly.
        """
        peer_rows = [
            row for row, sender in enumerate(senders)
            if sender != self.index
        ]
        for row, sender in enumerate(senders):
            if sender == self.index:
                self._received[sender] = _decode_payload(
                    ciphertexts[row].tobytes(), self._payload_width
                )
        if peer_rows:
            self._open_envelope_matrix(
                [senders[row] for row in peer_rows],
                np.ascontiguousarray(ciphertexts[peer_rows]),
            )

    def masked_input(self, participants: frozenset[int]) -> np.ndarray:
        """Round 2: upload the doubly masked input vector.

        The self mask and every signed pairwise mask are expanded and
        summed in one batched kernel call.

        Args:
            participants: ``U1`` — the clients whose shares round 1
                delivered; pairwise masks are computed over exactly this
                set.

        Returns:
            ``y_u`` over ``Z_m``.
        """
        if self._self_seed is None or self._mask_keys is None:
            raise AggregationError("masked_input called before share_keys")
        if self.index not in participants:
            raise AggregationError("client excluded from the participant set")
        dimension = self._vector.shape[0]
        peers = [peer for peer in sorted(participants) if peer != self.index]
        seeds = [self._self_seed.to_bytes(_SEED_WIDTH, "little")]
        seeds += agree_batch(
            self._mask_keys.private,
            [self._roster[peer].mask_public for peer in peers],
            self._group,
            own_public=self._mask_keys.public,
        )
        signs = [1] + [1 if self.index < peer else -1 for peer in peers]
        total_mask = sum_signed_masks(
            seeds, signs, dimension, self._modulus, self._mask_prg
        )
        return np.mod(
            np.mod(self._vector, self._modulus) + total_mask, self._modulus
        )

    def _check_unmask_request(self, request: UnmaskRequest) -> None:
        overlap = request.survivors & request.dropouts
        if overlap:
            raise AggregationError(
                "refusing unmask request: clients "
                f"{sorted(overlap)} named as both survivor and dropout"
            )
        unknown = (request.survivors | request.dropouts) - set(self._received)
        if unknown:
            raise AggregationError(
                f"no shares held for clients {sorted(unknown)}"
            )

    def unmask(self, request: UnmaskRequest) -> UnmaskResponse:
        """Round 3: reveal the requested shares.

        The client enforces the protocol's core security rule: it refuses
        any request naming the same peer as both survivor and dropout,
        because revealing both ``b_v`` and ``s_v^SK`` would let the server
        unmask ``v``'s individual input.

        Raises:
            AggregationError: On an overlapping (malicious) request or a
                request naming peers this client never received shares
                from.
        """
        self._check_unmask_request(request)
        return UnmaskResponse(
            responder=self.index,
            seed_shares={
                v: self._received[v][0] for v in sorted(request.survivors)
            },
            key_shares={
                v: self._received[v][1] for v in sorted(request.dropouts)
            },
        )

    def unmask_columns(self, request: UnmaskRequest) -> UnmaskColumns:
        """Columnar :meth:`unmask`: same checks, arrays instead of dicts.

        Encodes (and the server recovers) without per-survivor ``Share``
        objects; :meth:`UnmaskColumns.to_response` of the result equals
        :meth:`unmask` of the same request exactly.
        """
        self._check_unmask_request(request)
        survivors = sorted(request.survivors)
        received = self._received
        count = len(survivors)
        ys_dtype: type | np.dtype = (
            np.uint64 if self._field.prime <= (1 << 64) else object
        )
        return UnmaskColumns(
            responder=self.index,
            peers=np.asarray(survivors, dtype="<u4"),
            xs=np.fromiter(
                (received[v][0].x for v in survivors),
                dtype="<u4",
                count=count,
            ),
            ys=np.asarray(
                [received[v][0].y for v in survivors], dtype=ys_dtype
            ),
            key_shares={
                v: received[v][1] for v in sorted(request.dropouts)
            },
        )


def warm_pairwise_agreements(clients: "list[BonawitzClient]") -> int:
    """Simulation accelerator: pre-derive every pairwise DH key at once.

    Real deployments run the ``n(n-1)/2`` pairwise agreements on ``n``
    machines in parallel; a single-process simulation pays for them
    serially, one small batch per client.  Given the simulated clients
    (which the driver owns anyway), this derives both key sets' pairwise
    agreements in two lane-per-pair vectorised sweeps and warms the
    shared memo, so the per-client protocol code — unchanged, still one
    code path with the server — finds every agreement precomputed.
    Purely an optimisation: derived keys are byte-identical.

    Args:
        clients: Simulated participants; ones that have not advertised
            keys yet are skipped.

    Returns:
        Number of pairwise keys derived.
    """
    advertised = [
        client
        for client in clients
        if client._channel_keys is not None and client._mask_keys is not None
    ]
    if len(advertised) < 2:
        return 0
    group = advertised[0]._group
    warmed = warm_agreement_cache(
        {c.index: c._channel_keys.private for c in advertised},
        {c.index: c._channel_keys.public for c in advertised},
        group,
    )
    warmed += warm_agreement_cache(
        {c.index: c._mask_keys.private for c in advertised},
        {c.index: c._mask_keys.public for c in advertised},
        group,
    )
    return warmed


class BonawitzServer:
    """The aggregation server: routes messages and recovers the sum.

    The server is honest-but-curious: it follows the protocol but sees
    every transmitted byte; the tests assert those bytes are individually
    uninformative (marginally uniform messages, sealed envelopes).

    Args:
        modulus: Aggregation modulus ``m``.
        dimension: Vector length ``d``.
        threshold: Shamir threshold ``t``.
        field: Shamir sharing field (must match the clients').
        group: DH group (must match the clients').
        mask_prg: Mask PRG backend (must match the clients').
    """

    def __init__(
        self,
        modulus: int,
        dimension: int,
        threshold: int,
        field: PrimeField = DEFAULT_FIELD,
        group: KeyAgreementGroup = DhGroup(),
        mask_prg: MaskPrg | str | None = None,
    ) -> None:
        if threshold < 2:
            raise ConfigurationError(
                f"threshold must be >= 2 for any privacy, got {threshold}"
            )
        self._modulus = modulus
        self._dimension = dimension
        self._threshold = threshold
        self._field = field
        self._group = group
        self._mask_prg = get_mask_prg(mask_prg)
        self._roster: dict[int, AdvertisedKeys] = {}
        self._mailbox: dict[int, list[SealedShares]] = {}
        self._share_senders: frozenset[int] = frozenset()
        self._masked: dict[int, np.ndarray] = {}

    def collect_advertisements(
        self, advertisements: list[AdvertisedKeys]
    ) -> dict[int, AdvertisedKeys]:
        """Round 0: gather public keys and broadcast the roster."""
        roster: dict[int, AdvertisedKeys] = {}
        for message in advertisements:
            if message.index in roster:
                raise AggregationError(
                    f"duplicate advertisement from client {message.index}"
                )
            roster[message.index] = message
        if len(roster) < self._threshold:
            raise AggregationError(
                f"only {len(roster)} clients advertised keys; "
                f"threshold is {self._threshold}"
            )
        self._roster = roster
        return dict(roster)

    def route_shares(
        self, envelopes_by_sender: dict[int, list[SealedShares]]
    ) -> dict[int, list[SealedShares]]:
        """Round 1: forward sealed envelopes to their recipients.

        Returns:
            Mailbox mapping recipient index to its incoming envelopes.

        Raises:
            AggregationError: If fewer than ``threshold`` clients shared
                keys.
        """
        if len(envelopes_by_sender) < self._threshold:
            raise AggregationError(
                f"only {len(envelopes_by_sender)} clients shared keys; "
                f"threshold is {self._threshold}"
            )
        self._share_senders = frozenset(envelopes_by_sender)
        mailbox: dict[int, list[SealedShares]] = {}
        for sender, envelopes in envelopes_by_sender.items():
            for envelope in envelopes:
                if envelope.sender != sender:
                    raise AggregationError(
                        f"envelope claims sender {envelope.sender} but came "
                        f"from {sender}"
                    )
                mailbox.setdefault(envelope.recipient, []).append(envelope)
        # Only deliver to clients that themselves completed round 1.
        self._mailbox = {
            recipient: sorted(items, key=lambda e: e.sender)
            for recipient, items in mailbox.items()
            if recipient in self._share_senders
        }
        return dict(self._mailbox)

    def register_share_keys(self, senders: "Iterable[int]") -> frozenset[int]:
        """Columnar :meth:`route_shares` prologue: record ``U1`` only.

        The wire layer's columnar router forwards raw frame spans
        itself, so no envelope objects reach the crypto server; this
        still owns the threshold check and the ``U1`` set the later
        phases validate against.

        Raises:
            AggregationError: If fewer than ``threshold`` clients shared
                keys.
        """
        senders = frozenset(senders)
        if len(senders) < self._threshold:
            raise AggregationError(
                f"only {len(senders)} clients shared keys; "
                f"threshold is {self._threshold}"
            )
        self._share_senders = senders
        return senders

    @property
    def share_participants(self) -> frozenset[int]:
        """``U1`` — clients that completed the key-sharing round."""
        return self._share_senders

    def collect_masked_inputs(
        self, masked_by_sender: dict[int, np.ndarray]
    ) -> UnmaskRequest:
        """Round 2: gather masked vectors; announce survivors/dropouts.

        Raises:
            AggregationError: If fewer than ``threshold`` masked inputs
                arrived, or a vector has the wrong shape or alphabet.
        """
        if len(masked_by_sender) < self._threshold:
            raise AggregationError(
                f"only {len(masked_by_sender)} masked inputs; threshold is "
                f"{self._threshold}"
            )
        unknown = set(masked_by_sender) - set(self._share_senders)
        if unknown:
            raise AggregationError(
                f"masked input from clients outside U1: {sorted(unknown)}"
            )
        for sender, vector in masked_by_sender.items():
            stacked = _validate_inputs(
                np.asarray(vector)[np.newaxis, :], self._modulus
            )
            if stacked.shape[1] != self._dimension:
                raise AggregationError(
                    f"client {sender} sent dimension {stacked.shape[1]}, "
                    f"expected {self._dimension}"
                )
            self._masked[sender] = stacked[0]
        survivors = frozenset(self._masked)
        dropouts = self._share_senders - survivors
        return UnmaskRequest(survivors=survivors, dropouts=frozenset(dropouts))

    def recover_sum(
        self, responses: "list[UnmaskResponse | UnmaskColumns]"
    ) -> np.ndarray:
        """Round 3: reconstruct missing masks and output the modular sum.

        All survivor seeds are reconstructed in one shared-weight batch
        (the responder set — hence the Lagrange weights — is the same
        for every survivor), and all lingering masks are removed with
        one batched signed-mask expansion.  Responses may arrive as
        per-peer :class:`~repro.secagg.wire.UnmaskResponse` objects or
        columnar :class:`~repro.secagg.wire.UnmaskColumns`; when the
        whole quorum is columnar over the same survivor roster, the seed
        matrix assembles as one transpose instead of
        O(survivors × threshold) dict lookups.

        Returns:
            ``Σ_{u ∈ U2} x_u mod m`` as a length-``d`` int64 array.

        Raises:
            AggregationError: If fewer than ``threshold`` responses arrive
                or shares are inconsistent.
        """
        if len(responses) < self._threshold:
            raise AggregationError(
                f"only {len(responses)} unmask responses; threshold is "
                f"{self._threshold}"
            )
        survivors = sorted(self._masked)
        dropouts = sorted(self._share_senders - set(self._masked))
        quorum = responses[: self._threshold]
        total = np.zeros(self._dimension, dtype=np.int64)
        for vector in self._masked.values():
            total = np.mod(total + vector, self._modulus)
        # Reconstruct every survivor's self-mask seed in one batch; the
        # share points are the quorum's Shamir indices for all of them.
        mask_seeds: list[bytes] = []
        if survivors:
            uniform = all(
                isinstance(response, UnmaskColumns)
                and response.ys.dtype != object
                for response in quorum
            )
            if uniform:
                expected = np.asarray(survivors, dtype=np.uint32)
                uniform = all(
                    response.peers.shape == expected.shape
                    and np.array_equal(response.peers, expected)
                    for response in quorum
                )
            if uniform:
                # Columnar fast path: each response's seed column is
                # already in sorted-survivor order, so the per-survivor
                # share rows are one stack-and-transpose away.
                seed_rows = np.stack(
                    [response.ys for response in quorum]
                ).T.tolist()
                seed_xs = [int(response.xs[0]) for response in quorum]
            else:
                materialized = [
                    response.to_response()
                    if isinstance(response, UnmaskColumns)
                    else response
                    for response in quorum
                ]
                seed_rows = [
                    [
                        response.seed_shares[survivor].y
                        for response in materialized
                    ]
                    for survivor in survivors
                ]
                seed_xs = [
                    response.seed_shares[survivors[0]].x
                    for response in materialized
                ]
            seeds = reconstruct_secrets(seed_xs, seed_rows, self._field)
            mask_seeds = [
                seed.to_bytes(_SEED_WIDTH, "little") for seed in seeds
            ]
        # ``lingering`` is subtracted wholesale, so each queued mask
        # carries the sign it contributed to the aggregate with: +1 for
        # every self-mask, the original pairwise sign for dropout pairs.
        mask_signs = [1] * len(mask_seeds)
        # Reconstruct each dropout's mask key (all limbs in one batch per
        # dropout) and queue its lingering pairwise masks for removal.
        for dropout in dropouts:
            limb_shares = [
                response.key_shares[dropout] for response in quorum
            ]
            private = reconstruct_large_secret(
                limb_shares, self._field, DEFAULT_LIMB_BITS
            )
            # The survivor's lingering term for the pair (s, d) was
            # +PRG when s < d and -PRG when s > d.
            mask_seeds += agree_batch(
                private,
                [self._roster[s].mask_public for s in survivors],
                self._group,
                own_public=self._roster[dropout].mask_public,
            )
            mask_signs += [
                1 if survivor < dropout else -1 for survivor in survivors
            ]
        lingering = sum_signed_masks(
            mask_seeds,
            mask_signs,
            self._dimension,
            self._modulus,
            self._mask_prg,
        )
        return np.mod(total - lingering, self._modulus)


@dataclasses.dataclass(frozen=True)
class AggregationOutcome:
    """Result of a full protocol run.

    Attributes:
        modular_sum: ``Σ_{u ∈ included} x_u mod m``.
        included: Indices (1-based) of clients whose input made the sum.
        dropped: Indices that dropped out at some round.
        wire: Message/byte accounting for the round, when the transport
            recorded it.
    """

    modular_sum: np.ndarray
    included: frozenset[int]
    dropped: frozenset[int]
    wire: "WireStats | None" = None


def run_bonawitz(
    inputs: np.ndarray,
    modulus: int,
    threshold: int,
    rng: np.random.Generator,
    group: KeyAgreementGroup | None = None,
    dropouts: dict[int, int] | None = None,
    field: PrimeField = DEFAULT_FIELD,
    mask_prg: MaskPrg | str | None = None,
    wire_codec: str | None = None,
) -> AggregationOutcome:
    """Execute the full four-round protocol over simulated clients.

    Args:
        inputs: ``(n, d)`` integer array, one row per client, over
            ``Z_m``.  Client ``i`` (0-based row) gets protocol index
            ``i + 1``.
        modulus: Aggregation modulus ``m``.
        threshold: Shamir threshold ``t`` (``2 <= t <= n``).
        rng: Randomness for keys, seeds and share polynomials.
        group: Key-agreement backend; defaults to the fast 61-bit toy
            group — pass :class:`repro.secagg.keys.DhGroup()` for the
            1024-bit Oakley group or
            :data:`repro.secagg.keys.X25519_GROUP` for native Curve25519
            (gracefully degrades to the toy group when the optional
            ``cryptography`` package is absent).
        dropouts: Optional map from client index (1-based) to the first
            round (0-3) at which that client stops responding.
        field: Shamir sharing field.
        mask_prg: Mask PRG backend shared by all participants.
        wire_codec: Wire codec backend name (``"scalar"``/``"batched"``);
            ``None`` uses the process default.  Output bytes and digests
            are identical either way.

    Returns:
        The aggregation outcome.

    Raises:
        AggregationError: If dropouts push any round below ``threshold``.
        ConfigurationError: On inconsistent parameters.
    """
    # Imported here: the sans-I/O sessions live above this module in the
    # layering (statemachine imports the crypto classes defined here).
    from repro.secagg.keys import TOY_GROUP
    from repro.secagg.statemachine import ClientSession, ServerSession

    inputs = _validate_inputs(np.asarray(inputs), modulus)
    num_clients, dimension = inputs.shape
    if not 2 <= threshold <= num_clients:
        raise ConfigurationError(
            f"threshold must lie in [2, {num_clients}], got {threshold}"
        )
    group = group if group is not None else TOY_GROUP
    dropouts = dict(dropouts or {})
    for index, round_id in dropouts.items():
        if not 1 <= index <= num_clients:
            raise ConfigurationError(f"dropout index {index} out of range")
        if not ROUND_ADVERTISE <= round_id <= ROUND_UNMASK:
            raise ConfigurationError(f"dropout round {round_id} out of range")

    def alive(index: int, round_id: int) -> bool:
        return dropouts.get(index, ROUND_UNMASK + 1) > round_id

    sessions = {
        i
        + 1: ClientSession(
            index=i + 1,
            vector=inputs[i],
            modulus=modulus,
            threshold=threshold,
            rng=np.random.default_rng(rng.integers(0, 2**63 - 1)),
            group=group,
            field=field,
            mask_prg=mask_prg,
            wire_codec=wire_codec,
        )
        for i in range(num_clients)
    }
    server = ServerSession(
        modulus, dimension, threshold, field, group, mask_prg,
        wire_codec=wire_codec,
    )

    # Phase 0 — every live client opens with Hello + Advertise.
    for u in sorted(sessions):
        if alive(u, ROUND_ADVERTISE):
            server.receive(b"".join(sessions[u].start()), sender=u)
    deliveries = server.advance()
    # Pre-derive the roster's pairwise DH keys in one vectorised sweep
    # (a pure memoisation warm-up; see warm_pairwise_agreements).
    warm_pairwise_agreements(
        [sessions[u].crypto for u in sorted(server.expected)]
    )

    # Phases 1-3 — deliver the server's datagrams to each live client
    # and feed the responses straight back; a client that dropped at a
    # phase neither receives nor responds (it stopped talking).
    for phase in (ROUND_SHARE_KEYS, ROUND_MASKED_INPUT, ROUND_UNMASK):
        for u in sorted(deliveries):
            if not alive(u, phase):
                continue
            responses = sessions[u].handle(deliveries[u])
            if responses and sessions[u].rejected is None:
                server.receive(b"".join(responses), sender=u)
        deliveries = server.advance()

    included = server.included
    return AggregationOutcome(
        modular_sum=server.modular_sum,
        included=included,
        dropped=frozenset(range(1, num_clients + 1)) - included,
        wire=server.stats,
    )
