"""Secure-aggregation substrate: black-box simulator and full protocol.

Two levels of fidelity:

* :mod:`repro.secagg.protocol` — the black-box contract the paper's DP
  analysis relies on (mask, sum over ``Z_m``, reveal only the modular
  sum).  Used by the experiment pipelines for speed.
* :mod:`repro.secagg.bonawitz` — the four-round Bonawitz et al. protocol
  itself (DH key agreement, Shamir-shared seeds, double masking, dropout
  recovery), built on :mod:`repro.secagg.field`,
  :mod:`repro.secagg.shamir`, :mod:`repro.secagg.keys` and
  :mod:`repro.secagg.prg`.
"""

from repro.secagg.bonawitz import (
    AggregationOutcome,
    BonawitzClient,
    BonawitzServer,
    run_bonawitz,
)
from repro.secagg.field import DEFAULT_FIELD, MERSENNE_61, PrimeField
from repro.secagg.keys import (
    OAKLEY_GROUP_2_PRIME,
    TOY_GROUP,
    DhGroup,
    KeyPair,
    agree,
    generate_keypair,
)
from repro.secagg.prg import expand_mask, pairwise_delta
from repro.secagg.protocol import (
    PairwiseMaskProtocol,
    SecureAggregator,
    ZeroSumMaskProtocol,
    secure_sum,
)
from repro.secagg.shamir import (
    LimbShares,
    Share,
    reconstruct_large_secret,
    reconstruct_secret,
    split_large_secret,
    split_secret,
)

__all__ = [
    "AggregationOutcome",
    "BonawitzClient",
    "BonawitzServer",
    "DEFAULT_FIELD",
    "DhGroup",
    "KeyPair",
    "LimbShares",
    "MERSENNE_61",
    "OAKLEY_GROUP_2_PRIME",
    "PairwiseMaskProtocol",
    "PrimeField",
    "SecureAggregator",
    "Share",
    "TOY_GROUP",
    "ZeroSumMaskProtocol",
    "agree",
    "expand_mask",
    "generate_keypair",
    "pairwise_delta",
    "reconstruct_large_secret",
    "reconstruct_secret",
    "run_bonawitz",
    "secure_sum",
    "split_large_secret",
    "split_secret",
]
