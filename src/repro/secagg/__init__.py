"""Secure-aggregation substrate: black-box simulator and full protocol.

Three layers, lowest fidelity first:

* :mod:`repro.secagg.protocol` — the black-box contract the paper's DP
  analysis relies on (mask, sum over ``Z_m``, reveal only the modular
  sum).  Used by the experiment pipelines for speed.
* :mod:`repro.secagg.bonawitz` — the four-round Bonawitz et al. crypto
  state machines (DH key agreement, Shamir-shared seeds, double
  masking, dropout recovery), built on :mod:`repro.secagg.field`,
  :mod:`repro.secagg.shamir`, :mod:`repro.secagg.keys` and
  :mod:`repro.secagg.prg`.
* :mod:`repro.secagg.wire` + :mod:`repro.secagg.statemachine` — the
  sans-I/O protocol core: typed, versioned, byte-serializable wire
  messages with first-class version/PRG negotiation, and pure
  client/server sessions that every transport
  (:func:`~repro.secagg.bonawitz.run_bonawitz` synchronous loop,
  :class:`repro.simulation.rounds.AsyncSecAggRound` mailbox,
  the sharded process backends) drives identically.
"""

from repro.secagg.bonawitz import (
    AggregationOutcome,
    BonawitzClient,
    BonawitzServer,
    run_bonawitz,
)
from repro.secagg.statemachine import (
    PHASE_TAGS,
    ClientSession,
    ServerSession,
)
from repro.secagg.wire import (
    PROTOCOL_V1,
    SUPPORTED_PROTOCOL_VERSIONS,
    WIRE_FORMAT_VERSION,
    Advertise,
    Hello,
    MaskedInput,
    NegotiatedHeader,
    Reject,
    SealedShares,
    UnmaskRequest,
    UnmaskResponse,
    WireStats,
    decode_frames,
    decode_message,
    encode_message,
)
from repro.secagg.compose import (
    COMPOSERS,
    ClearComposer,
    ComposeResult,
    Composer,
    SecAggComposer,
    compose_shard_sums,
    get_composer,
)
from repro.secagg.field import DEFAULT_FIELD, MERSENNE_61, PrimeField
from repro.secagg.tree import (
    TreeNode,
    TreeTopology,
    VirtualClient,
    run_composition_round,
)
from repro.secagg.kernels import (
    DEFAULT_MASK_PRG,
    MASK_PRGS,
    MaskPrg,
    PhiloxPrg,
    Sha256CounterPrg,
    get_mask_prg,
    sum_signed_masks,
)
from repro.secagg.keys import (
    OAKLEY_GROUP_2_PRIME,
    TOY_GROUP,
    DhGroup,
    KeyPair,
    agree,
    generate_keypair,
)
from repro.secagg.prg import expand_mask, pairwise_delta
from repro.secagg.protocol import (
    PairwiseMaskProtocol,
    SecureAggregator,
    ZeroSumMaskProtocol,
    secure_sum,
)
from repro.secagg.shamir import (
    LimbShares,
    Share,
    reconstruct_large_secret,
    reconstruct_secret,
    reconstruct_secrets,
    split_large_secret,
    split_secret,
    split_secrets,
)

__all__ = [
    "Advertise",
    "AggregationOutcome",
    "BonawitzClient",
    "BonawitzServer",
    "COMPOSERS",
    "ClearComposer",
    "ClientSession",
    "ComposeResult",
    "Composer",
    "DEFAULT_FIELD",
    "DEFAULT_MASK_PRG",
    "DhGroup",
    "Hello",
    "KeyPair",
    "LimbShares",
    "MASK_PRGS",
    "MERSENNE_61",
    "MaskPrg",
    "MaskedInput",
    "NegotiatedHeader",
    "OAKLEY_GROUP_2_PRIME",
    "PHASE_TAGS",
    "PROTOCOL_V1",
    "PairwiseMaskProtocol",
    "PhiloxPrg",
    "PrimeField",
    "Reject",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "SealedShares",
    "SecAggComposer",
    "SecureAggregator",
    "ServerSession",
    "Sha256CounterPrg",
    "Share",
    "TOY_GROUP",
    "TreeNode",
    "TreeTopology",
    "UnmaskRequest",
    "UnmaskResponse",
    "VirtualClient",
    "WIRE_FORMAT_VERSION",
    "WireStats",
    "ZeroSumMaskProtocol",
    "agree",
    "compose_shard_sums",
    "decode_frames",
    "decode_message",
    "encode_message",
    "expand_mask",
    "generate_keypair",
    "get_composer",
    "get_mask_prg",
    "pairwise_delta",
    "reconstruct_large_secret",
    "reconstruct_secret",
    "reconstruct_secrets",
    "run_bonawitz",
    "run_composition_round",
    "secure_sum",
    "split_large_secret",
    "split_secret",
    "split_secrets",
    "sum_signed_masks",
]
