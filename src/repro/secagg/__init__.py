"""Secure-aggregation substrate: black-box simulator and full protocol.

Two levels of fidelity:

* :mod:`repro.secagg.protocol` — the black-box contract the paper's DP
  analysis relies on (mask, sum over ``Z_m``, reveal only the modular
  sum).  Used by the experiment pipelines for speed.
* :mod:`repro.secagg.bonawitz` — the four-round Bonawitz et al. protocol
  itself (DH key agreement, Shamir-shared seeds, double masking, dropout
  recovery), built on :mod:`repro.secagg.field`,
  :mod:`repro.secagg.shamir`, :mod:`repro.secagg.keys` and
  :mod:`repro.secagg.prg`.
"""

from repro.secagg.bonawitz import (
    AggregationOutcome,
    BonawitzClient,
    BonawitzServer,
    run_bonawitz,
)
from repro.secagg.compose import compose_shard_sums
from repro.secagg.field import DEFAULT_FIELD, MERSENNE_61, PrimeField
from repro.secagg.kernels import (
    DEFAULT_MASK_PRG,
    MASK_PRGS,
    MaskPrg,
    PhiloxPrg,
    Sha256CounterPrg,
    get_mask_prg,
    sum_signed_masks,
)
from repro.secagg.keys import (
    OAKLEY_GROUP_2_PRIME,
    TOY_GROUP,
    DhGroup,
    KeyPair,
    agree,
    generate_keypair,
)
from repro.secagg.prg import expand_mask, pairwise_delta
from repro.secagg.protocol import (
    PairwiseMaskProtocol,
    SecureAggregator,
    ZeroSumMaskProtocol,
    secure_sum,
)
from repro.secagg.shamir import (
    LimbShares,
    Share,
    reconstruct_large_secret,
    reconstruct_secret,
    reconstruct_secrets,
    split_large_secret,
    split_secret,
    split_secrets,
)

__all__ = [
    "AggregationOutcome",
    "BonawitzClient",
    "BonawitzServer",
    "DEFAULT_FIELD",
    "DEFAULT_MASK_PRG",
    "DhGroup",
    "KeyPair",
    "LimbShares",
    "MASK_PRGS",
    "MERSENNE_61",
    "MaskPrg",
    "OAKLEY_GROUP_2_PRIME",
    "PairwiseMaskProtocol",
    "PhiloxPrg",
    "PrimeField",
    "SecureAggregator",
    "Sha256CounterPrg",
    "Share",
    "TOY_GROUP",
    "ZeroSumMaskProtocol",
    "agree",
    "compose_shard_sums",
    "expand_mask",
    "generate_keypair",
    "get_mask_prg",
    "pairwise_delta",
    "reconstruct_large_secret",
    "reconstruct_secret",
    "reconstruct_secrets",
    "run_bonawitz",
    "secure_sum",
    "split_large_secret",
    "split_secret",
    "split_secrets",
    "sum_signed_masks",
]
