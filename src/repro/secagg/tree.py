"""N-level aggregation trees: topology, virtual clients, compose rounds.

Sharded rounds (:mod:`repro.simulation.hierarchy`) cut the Bonawitz
protocol's ``O(n^2)`` cost by running one independent SecAgg instance
per shard — but composing the shard sums *in the clear* shows the
server every intermediate aggregate, exactly the exposure Truex et al.
("A Hybrid Approach to Privacy-Preserving Federated Learning") and
DDP-SA argue breaks end-to-end distributed-DP guarantees.  This module
supplies the protocol-level pieces that close it:

* :class:`TreeTopology` — the shape of an N-level region→…→global
  aggregation tree (branching factors from the root down), with the
  recursive cohort partition that reuses the flat round-robin rule at
  every level, so a one-level tree is *bit-identical* to the legacy
  sharded partition.
* :class:`VirtualClient` — a shard (or region) coordinator acting as a
  client of its *parent* aggregation round: a thin adapter over the
  sans-I/O :class:`~repro.secagg.statemachine.ClientSession`, fed the
  subtree's modular sum as its private input vector.  The adapter's
  public API is wire frames only — the plaintext sum is deliberately
  unreachable from the parent round, which is the whole point.
* :func:`run_composition_round` — a synchronous in-memory Bonawitz
  round over virtual clients (the same sans-I/O core every transport
  drives), so every interior node of the tree sees only *masked*
  child sums and recovers exactly ``Σ child_sums mod m``.

Because pairwise masks cancel over the full survivor set and every
virtual client is an in-process coordinator that never drops, the
composition round's output is bit-identical to the clear modular
composition — the tree changes *who can see what*, never the sum.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.bonawitz import (
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
)
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.keys import TOY_GROUP, DhGroup
from repro.secagg.statemachine import (
    PHASE_TAGS,
    ClientSession,
    ServerSession,
)
from repro.secagg.wire import WireStats
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import time_phase

#: A Bonawitz instance needs at least two parties; a shard below this
#: size is never formed (shared with the flat partition rule).
MIN_SHARD_SIZE = 2

_TOPOLOGY_PATTERN = re.compile(r"^\d+(?:[x,]\d+)*$")


@dataclasses.dataclass(frozen=True)
class TreeNode:
    """One node of a concrete (partitioned) aggregation tree.

    Attributes:
        level: Depth from the root (root = 0).
        index: Position among this node's siblings.
        path: Sibling indices from the root down (root = ``()``).
        members: Cohort members covered by this node's subtree.
        children: Child nodes; empty for a leaf shard.
        leaf_index: Flat depth-first leaf position (``None`` for
            interior nodes) — the spawn key selecting the leaf's RNG
            stream, identical to the legacy shard index for a
            one-level tree.
    """

    level: int
    index: int
    path: tuple[int, ...]
    members: tuple[int, ...]
    children: tuple["TreeNode", ...] = ()
    leaf_index: int | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> list["TreeNode"]:
        """All leaf shards of this subtree, in depth-first order."""
        if self.is_leaf:
            return [self]
        return [leaf for child in self.children for leaf in child.leaves()]

    def interior(self) -> list["TreeNode"]:
        """All interior (composing) nodes, root first, depth-first."""
        if self.is_leaf:
            return []
        out = [self]
        for child in self.children:
            out.extend(child.interior())
        return out


def partition_members(
    members: Iterable[int], groups: int
) -> list[tuple[int, ...]]:
    """Deterministically partition members into balanced groups.

    Round-robin over the sorted member list — the single partition rule
    shared by every level of the tree (and by the legacy flat sharding
    path): group ``i`` receives every ``k``-th member starting at
    offset ``i``, so group sizes differ by at most one and the
    assignment depends only on the members and ``k``.  The effective
    group count is capped so every group keeps at least
    :data:`MIN_SHARD_SIZE` members.

    Raises:
        ConfigurationError: If ``groups < 1``, the member set is empty,
            or it contains duplicates.
    """
    if groups < 1:
        raise ConfigurationError(f"shards must be >= 1, got {groups}")
    ordered = sorted(members)
    if not ordered:
        raise ConfigurationError("cannot partition an empty cohort")
    if len(set(ordered)) != len(ordered):
        raise ConfigurationError("cohort contains duplicate client indices")
    effective = max(1, min(groups, len(ordered) // MIN_SHARD_SIZE))
    return [tuple(ordered[i::effective]) for i in range(effective)]


@dataclasses.dataclass(frozen=True)
class TreeTopology:
    """The shape of an N-level aggregation tree.

    ``branching`` lists the fan-out at each aggregation level from the
    root down: ``(8,)`` is the classic 2-level shard→global tree (the
    root composes 8 leaf shards), ``(4, 4)`` a 3-level
    shard→region→global tree (the root composes 4 regions, each
    composing 4 leaf shards).  Small cohorts degrade gracefully —
    every level's partition caps its fan-out so each group keeps at
    least :data:`MIN_SHARD_SIZE` members.

    Attributes:
        branching: Requested fan-out per level, root first; every
            entry must be >= 1 and the root entry is the legacy
            ``shards`` knob for a single-level tree.
    """

    branching: tuple[int, ...]

    def __post_init__(self) -> None:
        branching = tuple(int(b) for b in self.branching)
        object.__setattr__(self, "branching", branching)
        if not branching:
            raise ConfigurationError(
                "a tree topology needs at least one branching level"
            )
        for factor in branching:
            if factor < 1:
                raise ConfigurationError(
                    f"tree branching factors must be >= 1, got {factor}"
                )

    @classmethod
    def parse(cls, text: "str | TreeTopology") -> "TreeTopology":
        """Parse a CLI/config topology string such as ``"8"`` or ``"8x4"``.

        Accepts ``x`` or ``,`` separated positive integers, root level
        first (``"4x8"`` = 4 regions of up to 8 shards each).
        """
        if isinstance(text, TreeTopology):
            return text
        cleaned = str(text).strip().lower()
        if not _TOPOLOGY_PATTERN.match(cleaned):
            raise ConfigurationError(
                f"cannot parse tree topology {text!r}; expected positive "
                "integers joined by 'x' (e.g. '8' or '4x4')"
            )
        return cls(tuple(int(part) for part in re.split("[x,]", cleaned)))

    @property
    def levels(self) -> int:
        """Number of aggregation levels (1 = the legacy flat sharding)."""
        return len(self.branching)

    def describe(self) -> str:
        """Human-readable shape, e.g. ``"4x4"``."""
        return "x".join(str(b) for b in self.branching)

    def partition(self, cohort: Iterable[int]) -> TreeNode:
        """Partition a cohort into this topology's concrete tree.

        Recursively applies :func:`partition_members` level by level;
        leaf shards receive depth-first ``leaf_index`` values, so a
        one-level tree reproduces the legacy flat shard indices
        exactly.
        """
        members = tuple(sorted(cohort))
        counter = {"next_leaf": 0}

        def build(
            node_members: tuple[int, ...],
            level: int,
            index: int,
            path: tuple[int, ...],
            remaining: tuple[int, ...],
        ) -> TreeNode:
            if not remaining:
                leaf_index = counter["next_leaf"]
                counter["next_leaf"] += 1
                return TreeNode(
                    level=level,
                    index=index,
                    path=path,
                    members=node_members,
                    leaf_index=leaf_index,
                )
            groups = partition_members(node_members, remaining[0])
            children = tuple(
                build(
                    group,
                    level + 1,
                    child_index,
                    path + (child_index,),
                    remaining[1:],
                )
                for child_index, group in enumerate(groups)
            )
            if len(children) == 1 and not children[0].is_leaf:
                # A degenerate single-child interior node adds nothing;
                # keep it anyway — path determinism matters more than
                # tree minimality, and composition passes one child
                # straight through.
                pass
            return TreeNode(
                level=level,
                index=index,
                path=path,
                members=node_members,
                children=children,
            )

        return build(members, 0, 0, (), self.branching)


class VirtualClient:
    """A subtree coordinator participating in its parent's SecAgg round.

    The adapter wraps a sans-I/O
    :class:`~repro.secagg.statemachine.ClientSession` whose private
    input vector is the subtree's modular sum.  Its public API is
    **wire frames only** — :meth:`start` and :meth:`handle` — so the
    parent round's inputs are masked datagrams and the plaintext sum is
    not reachable from the parent round through this object.  (That
    reachability property is what the hierarchy's privacy tests
    assert; it is the reason the outer level can be SecAgg-composed at
    all.)

    Args:
        index: The virtual client's nonzero index within the parent
            round (child position + 1).
        subtree_sum: The subtree's modular sum — consumed here, never
            stored on a public attribute.
        modulus: Aggregation modulus ``m``.
        threshold: The parent round's Shamir threshold.
        rng: Coordinator-local randomness.
        group: DH group (must match the parent server's).
        field: Shamir sharing field.
        mask_prg: Mask PRG backend shared by the parent round.
    """

    def __init__(
        self,
        index: int,
        subtree_sum: np.ndarray,
        modulus: int,
        threshold: int,
        rng: np.random.Generator,
        group: DhGroup | None = None,
        field: PrimeField = DEFAULT_FIELD,
        mask_prg: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.index = index
        # Name-mangled on purpose: the session (and through it the raw
        # subtree sum) must not be part of the adapter's public surface.
        self.__session = ClientSession(
            index=index,
            vector=np.asarray(subtree_sum, dtype=np.int64),
            modulus=modulus,
            threshold=threshold,
            rng=rng,
            group=group if group is not None else TOY_GROUP,
            field=field,
            mask_prg=mask_prg,
            metrics=metrics,
        )

    def start(self) -> bytes:
        """Open the parent round: Hello + key advertisement frames."""
        return b"".join(self.__session.start())

    def handle(self, data: bytes) -> bytes:
        """Process one parent-server datagram; returns response frames."""
        if self.__session.rejected is not None:
            raise AggregationError(
                f"virtual client {self.index} was rejected at Hello"
            )
        response = b"".join(self.__session.handle(data))
        if self.__session.rejected is not None:
            raise AggregationError(
                f"virtual client {self.index} rejected by the parent "
                f"round: {self.__session.rejected}"
            )
        return response

    def __repr__(self) -> str:  # Never leak the vector through repr.
        return f"VirtualClient(index={self.index})"


def run_composition_round(
    child_sums: Sequence[np.ndarray],
    modulus: int,
    rng: np.random.Generator,
    group: DhGroup | None = None,
    field: PrimeField = DEFAULT_FIELD,
    mask_prg: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[np.ndarray, WireStats]:
    """One interior tree node's Bonawitz round over its children.

    Each child sum becomes a :class:`VirtualClient`'s private input and
    the node runs a complete four-phase round over the sans-I/O
    sessions — the parent only ever receives masked inputs, and the
    recovered aggregate equals ``Σ child_sums mod m`` bit-identically
    (all virtual clients survive, so every pairwise mask cancels).

    The Shamir threshold is the full child count: coordinators are
    in-process and never drop, so the round tolerates no dropout and
    fails loudly on any protocol defect instead of silently recovering.

    With ``metrics``, each phase's wall time is observed into the same
    ``secagg_phase_wall_duration_seconds`` family the transports use
    (the caller adds the per-level label when absorbing the snapshot).

    Returns:
        ``(modular_sum, wire_stats)`` for the composition round.

    Raises:
        ConfigurationError: With fewer than two child sums (a single
            child needs no composition — callers pass it through).
        AggregationError: On any protocol failure.
    """
    if len(child_sums) < 2:
        raise ConfigurationError(
            "a composition round needs at least two child sums, got "
            f"{len(child_sums)}"
        )
    arrays = [np.asarray(child, dtype=np.int64) for child in child_sums]
    shapes = {array.shape for array in arrays}
    if len(shapes) != 1 or len(next(iter(shapes))) != 1:
        raise ConfigurationError(
            f"child sums must share one 1-d shape, got {shapes}"
        )
    dimension = arrays[0].shape[0]
    threshold = len(arrays)
    group = group if group is not None else TOY_GROUP
    # Per-child generators spawn in child order, mirroring the leaf
    # transports' sorted-index convention.
    clients = [
        VirtualClient(
            index=position + 1,
            subtree_sum=array,
            modulus=modulus,
            threshold=threshold,
            rng=np.random.default_rng(int(rng.integers(0, 2**63))),
            group=group,
            field=field,
            mask_prg=mask_prg,
            metrics=metrics,
        )
        for position, array in enumerate(arrays)
    ]
    server = ServerSession(
        modulus,
        dimension,
        threshold,
        field,
        group,
        mask_prg,
        metrics=metrics,
    )
    phase_histogram = (
        metrics.histogram(
            "secagg_phase_wall_duration_seconds",
            "Wall-clock compute seconds per protocol phase.",
        )
        if metrics is not None
        else None
    )

    def phase_span(phase: int):
        if phase_histogram is None:
            return _NULL_SPAN
        return time_phase(
            PHASE_TAGS[phase],
            wall_histogram=phase_histogram.labels(phase=PHASE_TAGS[phase]),
        )

    from repro.secagg.bonawitz import ROUND_ADVERTISE

    with phase_span(ROUND_ADVERTISE):
        for client in clients:
            server.receive(client.start(), sender=client.index)
        deliveries = server.advance()
    by_index = {client.index: client for client in clients}
    for phase in (ROUND_SHARE_KEYS, ROUND_MASKED_INPUT, ROUND_UNMASK):
        with phase_span(phase):
            for index in sorted(deliveries):
                response = by_index[index].handle(deliveries[index])
                if response:
                    server.receive(response, sender=index)
            deliveries = server.advance()
    if server.included != frozenset(by_index):
        raise AggregationError(
            "a composition round lost a virtual client — coordinators "
            "are in-process and must never drop"
        )
    return server.modular_sum, server.stats


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()
