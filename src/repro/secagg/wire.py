"""Typed, versioned wire messages for the SecAgg protocol core.

Every message the Bonawitz protocol exchanges is defined here as a
frozen dataclass with a deterministic byte encoding, so the *same*
message types flow through every transport — the synchronous in-memory
driver (:func:`repro.secagg.bonawitz.run_bonawitz`), the
simulated-clock mailbox transport
(:class:`repro.simulation.rounds.AsyncSecAggRound`) and the
shared-memory process backend — and recorded traffic can be replayed
byte for byte.

Frame layout (all integers little-endian)::

    0..1   magic          b"SG"
    2      format version  uint8  (the *encoding* layout, WIRE_FORMAT_VERSION)
    3      message type    uint8
    4..7   frame length    uint32 (whole frame, header included)
    8..9   protocol version uint16 — the negotiated header
    10     PRG name length uint8     (protocol version + MaskPrg
    11..   PRG name        ascii      backend name, on every frame)
    ...    message body

The two-part header separates concerns deliberately: the *format
version* says how to parse the bytes; the *negotiated header*
(:class:`NegotiatedHeader`) says which protocol semantics the sender is
speaking — the protocol version and the mask-PRG backend that all
participants of a round must agree on (the ``"sha256-ctr"`` default is
bit-compatible with the original implementation, ``"philox"`` trades
that for speed).  Negotiation happens at :class:`Hello`: the server
checks each client's proposed header and answers with a typed
:class:`Reject` (surfaced client-side as
:class:`repro.errors.NegotiationError`) instead of crashing mid-round.

Frames are self-delimiting, so several messages concatenate into one
transport datagram (a client's round-1 upload is one frame per sealed
envelope); :func:`decode_frames` walks them back out.  Multi-byte
integers that can exceed 64 bits (DH public keys, Shamir share values)
use a minimal-length, length-prefixed little-endian encoding, keeping
the format deterministic: equal messages encode to equal bytes.

:class:`WireStats` is the per-round accounting ledger — message counts
and serialized bytes per phase, per client, in both directions — that
transports attach to their round outcomes.
"""

from __future__ import annotations

import dataclasses
import os
import struct
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

try:  # Optional JIT for the bulk routing kernels; numpy otherwise.
    import numba
except ImportError:  # pragma: no cover - exercised where numba is absent
    numba = None

from repro.errors import AggregationError
from repro.secagg.shamir import LimbShares, Share

#: First bytes of every frame.
WIRE_MAGIC = b"SG"

#: Version of the byte *layout* (bump when the framing itself changes).
WIRE_FORMAT_VERSION = 1

#: Protocol semantics version 1: four-round Bonawitz, negotiated PRG.
PROTOCOL_V1 = 1

#: Protocol versions this implementation can speak.
SUPPORTED_PROTOCOL_VERSIONS = frozenset({PROTOCOL_V1})

# Message type tags (uint8 in the frame header).
MSG_HELLO = 1
MSG_ADVERTISE = 2
MSG_SEALED_SHARES = 3
MSG_MASKED_INPUT = 4
MSG_UNMASK_REQUEST = 5
MSG_UNMASK_RESPONSE = 6
MSG_REJECT = 7
MSG_WELCOME = 8
MSG_RESUME = 9

_HEADER = struct.Struct("<2sBBIHB")  # magic, fmt, type, length, version, prg len
_SEALED_BODY = struct.Struct("<III")  # sender, recipient, ciphertext length
_MASKED_PREFIX = struct.Struct("<II")  # sender, dimension


@dataclasses.dataclass(frozen=True)
class NegotiatedHeader:
    """The negotiated protocol context carried on every frame.

    Attributes:
        version: Protocol semantics version (``PROTOCOL_V1``).
        mask_prg: The negotiated backend string every participant of the
            round must share.  A plain mask-PRG registry name
            (:data:`repro.secagg.kernels.MASK_PRGS`) implies classic
            modular DH; ``"<prg>+<kex>"`` additionally selects a
            key-agreement backend (see :func:`split_suite`), keeping
            pre-existing byte streams unchanged.
    """

    version: int
    mask_prg: str

    def __post_init__(self) -> None:
        if not 0 <= self.version < (1 << 16):
            raise AggregationError(
                f"protocol version must fit uint16, got {self.version}"
            )
        try:
            encoded = self.mask_prg.encode("ascii")
        except UnicodeEncodeError:
            raise AggregationError(
                f"mask PRG name must be ascii, got {self.mask_prg!r}"
            ) from None
        if not 0 < len(encoded) < 256:
            raise AggregationError(
                f"mask PRG name must be 1..255 ascii bytes, got "
                f"{self.mask_prg!r}"
            )


#: Interned headers, keyed by (version, prg-name bytes).  Frames are
#: decoded quadratically often per round and almost always carry the
#: round's one negotiated header; interning makes per-frame header
#: "construction" a dict hit and header comparison an identity check.
#: Bounded defensively (adversarial streams could mint names).
_HEADER_CACHE_MAX = 4096
_header_cache: dict[tuple[int, bytes], NegotiatedHeader] = {}


def intern_header(version: int, mask_prg: str | bytes) -> NegotiatedHeader:
    """Return the canonical :class:`NegotiatedHeader` for these values.

    Sessions and the decoder share this pool, so equal headers are the
    *same* object and the per-frame ``header == negotiated`` checks on
    the hot path short-circuit on identity.
    """
    name_bytes = (
        mask_prg if isinstance(mask_prg, bytes) else mask_prg.encode("ascii")
    )
    key = (version, name_bytes)
    header = _header_cache.get(key)
    if header is None:
        try:
            name = name_bytes.decode("ascii")
        except UnicodeDecodeError:
            raise AggregationError(
                "malformed wire frame: non-ascii PRG name"
            ) from None
        header = NegotiatedHeader(version=version, mask_prg=name)
        if len(_header_cache) >= _HEADER_CACHE_MAX:
            _header_cache.clear()
        _header_cache[key] = header
    return header


def split_suite(name: str) -> tuple[str, str]:
    """Split a negotiated backend string into (mask PRG, key agreement).

    A bare PRG name means classic modular DH (``"mod-dh"``) — exactly
    what every pre-x25519 frame carried, so old byte streams and golden
    vectors parse unchanged; ``"<prg>+<kex>"`` names both backends.
    """
    prg, sep, kex = name.partition("+")
    return prg, (kex if sep else "mod-dh")


@dataclasses.dataclass(frozen=True)
class Hello:
    """Round-start handshake: ``sender`` proposes this frame's header.

    The negotiation payload *is* the frame's :class:`NegotiatedHeader`;
    the body only identifies the client proposing it.
    """

    sender: int


@dataclasses.dataclass(frozen=True)
class Advertise:
    """A client's round-0 message: its two DH public keys."""

    index: int
    channel_public: int
    mask_public: int


@dataclasses.dataclass(frozen=True)
class SealedShares:
    """A round-1 envelope: shares of ``(b_u, s_u^SK)`` sealed for one peer.

    The server forwards envelopes without the channel key, so the payload
    is an opaque byte string from its point of view.
    """

    sender: int
    recipient: int
    ciphertext: bytes


@dataclasses.dataclass(frozen=True, eq=False)
class MaskedInput:
    """A client's round-2 upload: the doubly masked vector over ``Z_m``."""

    sender: int
    vector: np.ndarray

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskedInput):
            return NotImplemented
        return self.sender == other.sender and np.array_equal(
            self.vector, other.vector
        )

    def __hash__(self) -> int:
        # Defining __eq__ suppresses the implicit hash; stay hashable
        # (consistently with __eq__) like every other message type.
        return hash((self.sender, self.vector.tobytes()))


@dataclasses.dataclass(frozen=True)
class UnmaskRequest:
    """The server's round-3 announcement of who survived.

    Attributes:
        survivors: ``U2`` — clients whose masked input was received; their
            self-mask seeds must be reconstructed.
        dropouts: ``U1 \\ U2`` — clients whose pairwise masks linger in the
            aggregate; their mask private keys must be reconstructed.
    """

    survivors: frozenset[int]
    dropouts: frozenset[int]


@dataclasses.dataclass(frozen=True)
class UnmaskResponse:
    """One client's round-3 reply: the requested shares it holds."""

    responder: int
    seed_shares: dict[int, Share]
    key_shares: dict[int, LimbShares]


@dataclasses.dataclass(frozen=True)
class Reject:
    """Typed negotiation failure: the server refuses ``client`` at Hello.

    Carried on a frame bearing the *server's* negotiated header, so the
    rejected client learns what the round actually speaks.
    """

    client: int
    reason: str


@dataclasses.dataclass(frozen=True)
class Welcome:
    """Transport-level round admission: ``client`` is in round ``round_id``.

    Sent by the socket server once the cohort is gathered (and again as
    the positive acknowledgement of an accepted :class:`Resume`).  The
    round id is the durable identity the journal charges epsilon
    against, so clients quote it back when resuming.  Never fed to the
    protocol state machine — it is connection plumbing, not protocol
    state.
    """

    client: int
    round_id: int


@dataclasses.dataclass(frozen=True)
class Resume:
    """A reconnecting client's request to rejoin an in-flight round.

    Attributes:
        sender: The client index (same identity the Hello bound).
        round_id: The round the client believes it is resuming — a
            stale id is rejected, never silently remapped.
        deliveries: How many phase deliveries the client has already
            processed; the server replays everything from that point.
    """

    sender: int
    round_id: int
    deliveries: int


Message = (
    Hello
    | Advertise
    | SealedShares
    | MaskedInput
    | UnmaskRequest
    | UnmaskResponse
    | Reject
    | Welcome
    | Resume
)

_TYPE_OF_MESSAGE = {
    Hello: MSG_HELLO,
    Advertise: MSG_ADVERTISE,
    SealedShares: MSG_SEALED_SHARES,
    MaskedInput: MSG_MASKED_INPUT,
    UnmaskRequest: MSG_UNMASK_REQUEST,
    UnmaskResponse: MSG_UNMASK_RESPONSE,
    Reject: MSG_REJECT,
    Welcome: MSG_WELCOME,
    Resume: MSG_RESUME,
}


def _column_width(max_value: int) -> int:
    """Smallest power-of-two byte width holding ``max_value``.

    Power-of-two widths keep the columnar sections numpy-decodable;
    the choice is a pure function of the values, so the encoding stays
    deterministic.
    """
    for width in (1, 2, 4, 8, 16):
        if max_value < 1 << (8 * width):
            return width
    raise AggregationError(
        f"share value too wide for the wire: {max_value.bit_length()} bits"
    )


def _encode_biguint(value: int) -> bytes:
    """Length-prefixed minimal little-endian encoding of a non-negative int.

    Deterministic: every integer has exactly one encoding (minimal byte
    length; zero encodes as a single zero byte).
    """
    if value < 0:
        raise AggregationError(f"wire integers must be >= 0, got {value}")
    width = max(1, (value.bit_length() + 7) // 8)
    if width >= (1 << 16):
        raise AggregationError(f"integer too wide for the wire: {width} bytes")
    return width.to_bytes(2, "little") + value.to_bytes(width, "little")


class _Reader:
    """Bounds-checked cursor over one frame's body."""

    def __init__(self, data: memoryview, start: int, end: int) -> None:
        self._data = data
        self._pos = start
        self._end = end

    def take(self, count: int) -> memoryview:
        if self._pos + count > self._end:
            raise AggregationError(
                "malformed wire frame: body truncated "
                f"({self._end - self._pos} bytes left, {count} needed)"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "little")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "little")

    def biguint(self) -> int:
        width = self.u16()
        if width == 0:
            raise AggregationError("malformed wire frame: zero-width integer")
        return int.from_bytes(self.take(width), "little")

    def done(self) -> bool:
        return self._pos == self._end

    def require_done(self) -> None:
        if not self.done():
            raise AggregationError(
                "malformed wire frame: "
                f"{self._end - self._pos} trailing body bytes"
            )


def _encode_index_set(values: frozenset[int]) -> bytes:
    ordered = sorted(values)
    return b"".join(
        [len(ordered).to_bytes(4, "little")]
        + [value.to_bytes(4, "little") for value in ordered]
    )


def _decode_index_set(reader: _Reader) -> frozenset[int]:
    count = reader.u32()
    return frozenset(reader.u32() for _ in range(count))


def _append_key_section(
    parts: list[bytes], key_shares: Mapping[int, LimbShares]
) -> None:
    """Append the per-dropout key-share section of an unmask response."""
    parts.append(len(key_shares).to_bytes(4, "little"))
    for peer in sorted(key_shares):
        limb_shares = key_shares[peer]
        parts.append(peer.to_bytes(4, "little"))
        parts.append(limb_shares.x.to_bytes(4, "little"))
        parts.append(len(limb_shares.ys).to_bytes(2, "little"))
        parts.extend(_encode_biguint(y) for y in limb_shares.ys)


def _encode_body(message: Message) -> bytes:
    if isinstance(message, Hello):
        return message.sender.to_bytes(4, "little")
    if isinstance(message, Advertise):
        return (
            message.index.to_bytes(4, "little")
            + _encode_biguint(message.channel_public)
            + _encode_biguint(message.mask_public)
        )
    if isinstance(message, SealedShares):
        return (
            message.sender.to_bytes(4, "little")
            + message.recipient.to_bytes(4, "little")
            + len(message.ciphertext).to_bytes(4, "little")
            + message.ciphertext
        )
    if isinstance(message, MaskedInput):
        vector = np.ascontiguousarray(message.vector, dtype="<i8")
        if vector.ndim != 1:
            raise AggregationError(
                f"masked input must be 1-d, got shape {vector.shape}"
            )
        return (
            message.sender.to_bytes(4, "little")
            + vector.shape[0].to_bytes(4, "little")
            + vector.tobytes()
        )
    if isinstance(message, UnmaskRequest):
        return _encode_index_set(message.survivors) + _encode_index_set(
            message.dropouts
        )
    if isinstance(message, UnmaskResponse):
        # The seed section scales with the survivor count (one share per
        # survivor, every response), so it is columnar with one fixed
        # byte width — encoded and decoded as numpy columns.  The key
        # section scales with the (few) dropouts and stays per-peer.
        parts = [message.responder.to_bytes(4, "little")]
        peers = sorted(message.seed_shares)
        count = len(peers)
        parts.append(count.to_bytes(4, "little"))
        if count:
            shares = [message.seed_shares[peer] for peer in peers]
            ys = [share.y for share in shares]
            width = _column_width(max(ys))
            parts.append(width.to_bytes(1, "little"))
            parts.append(np.asarray(peers, dtype="<u4").tobytes())
            parts.append(
                np.fromiter(
                    (share.x for share in shares), dtype="<u4", count=count
                ).tobytes()
            )
            if width <= 8:
                parts.append(
                    np.fromiter(ys, dtype="<u8", count=count)
                    .astype(f"<u{width}")
                    .tobytes()
                )
            else:
                parts.append(
                    b"".join(y.to_bytes(width, "little") for y in ys)
                )
        else:
            parts.append((1).to_bytes(1, "little"))
        _append_key_section(parts, message.key_shares)
        return b"".join(parts)
    if isinstance(message, Reject):
        reason = message.reason.encode("utf-8")
        return (
            message.client.to_bytes(4, "little")
            + len(reason).to_bytes(2, "little")
            + reason
        )
    if isinstance(message, Welcome):
        return message.client.to_bytes(4, "little") + message.round_id.to_bytes(
            8, "little"
        )
    if isinstance(message, Resume):
        if not 0 <= message.deliveries < 256:
            raise AggregationError(
                f"resume delivery count must fit uint8, got "
                f"{message.deliveries}"
            )
        return (
            message.sender.to_bytes(4, "little")
            + message.round_id.to_bytes(8, "little")
            + message.deliveries.to_bytes(1, "little")
        )
    raise AggregationError(f"cannot encode {type(message).__name__} frames")


def _decode_body(msg_type: int, reader: _Reader) -> Message:
    """Generic decoder for the types without a :func:`_decode_fast` path."""
    if msg_type == MSG_HELLO:
        message: Message = Hello(sender=reader.u32())
    elif msg_type == MSG_UNMASK_REQUEST:
        message = UnmaskRequest(
            survivors=_decode_index_set(reader),
            dropouts=_decode_index_set(reader),
        )
    elif msg_type == MSG_REJECT:
        client = reader.u32()
        length = reader.u16()
        message = Reject(
            client=client, reason=bytes(reader.take(length)).decode("utf-8")
        )
    elif msg_type == MSG_WELCOME:
        message = Welcome(
            client=reader.u32(),
            round_id=int.from_bytes(reader.take(8), "little"),
        )
    elif msg_type == MSG_RESUME:
        message = Resume(
            sender=reader.u32(),
            round_id=int.from_bytes(reader.take(8), "little"),
            deliveries=reader.u8(),
        )
    else:
        raise AggregationError(f"unknown wire message type {msg_type}")
    reader.require_done()
    return message


def _frame(msg_type: int, body: bytes, header: NegotiatedHeader) -> bytes:
    """Wrap an encoded body into a self-delimiting frame."""
    prg = header.mask_prg.encode("ascii")
    length = _HEADER.size + len(prg) + len(body)
    return (
        _HEADER.pack(
            WIRE_MAGIC,
            WIRE_FORMAT_VERSION,
            msg_type,
            length,
            header.version,
            len(prg),
        )
        + prg
        + body
    )


def encode_message(message: Message, header: NegotiatedHeader) -> bytes:
    """Serialise one message into a self-delimiting frame.

    Deterministic: equal ``(message, header)`` pairs always produce
    identical bytes (sets are sorted, integers minimally encoded).
    """
    try:
        msg_type = _TYPE_OF_MESSAGE[type(message)]
    except KeyError:
        raise AggregationError(
            f"cannot encode {type(message).__name__} frames"
        ) from None
    return _frame(msg_type, _encode_body(message), header)


def _decode_fast(
    msg_type: int, view: memoryview, start: int, end: int
) -> Message | None:
    """Allocation-light decoders for the quadratically frequent types.

    Returns ``None`` for types the generic :class:`_Reader` path covers;
    behaviour (including malformed-frame errors) is identical either
    way — the golden and property suites pin both paths.
    """
    if msg_type == MSG_SEALED_SHARES:
        if end - start < _SEALED_BODY.size:
            raise AggregationError(
                "malformed wire frame: body truncated "
                f"({end - start} bytes left, {_SEALED_BODY.size} needed)"
            )
        sender, recipient, length = _SEALED_BODY.unpack_from(view, start)
        if end - start - _SEALED_BODY.size != length:
            raise AggregationError(
                "malformed wire frame: ciphertext length mismatch"
            )
        return SealedShares(
            sender=sender,
            recipient=recipient,
            ciphertext=bytes(view[start + _SEALED_BODY.size : end]),
        )
    if msg_type == MSG_MASKED_INPUT:
        if end - start < _MASKED_PREFIX.size:
            raise AggregationError(
                "malformed wire frame: body truncated "
                f"({end - start} bytes left, {_MASKED_PREFIX.size} needed)"
            )
        sender, dimension = _MASKED_PREFIX.unpack_from(view, start)
        if end - start - _MASKED_PREFIX.size != 8 * dimension:
            raise AggregationError(
                "malformed wire frame: masked-input length mismatch"
            )
        return MaskedInput(
            sender=sender,
            vector=np.frombuffer(
                view[start + _MASKED_PREFIX.size : end], dtype="<i8"
            ).astype(np.int64),
        )
    if msg_type == MSG_UNMASK_RESPONSE:
        from_bytes = int.from_bytes
        cursor = start

        def read_uint(width: int) -> int:
            nonlocal cursor
            if cursor + width > end:
                raise AggregationError(
                    "malformed wire frame: body truncated "
                    f"({end - cursor} bytes left, {width} needed)"
                )
            value = from_bytes(view[cursor : cursor + width], "little")
            cursor += width
            return value

        def read_biguint() -> int:
            width = read_uint(2)
            if width == 0:
                raise AggregationError(
                    "malformed wire frame: zero-width integer"
                )
            return read_uint(width)

        responder = read_uint(4)
        seed_count = read_uint(4)
        seed_width = read_uint(1)
        if seed_width not in (1, 2, 4, 8, 16):
            raise AggregationError(
                f"malformed wire frame: seed column width {seed_width}"
            )
        seed_shares: dict[int, Share] = {}
        if seed_count:
            columns = 8 + seed_width
            if cursor + seed_count * columns > end:
                raise AggregationError(
                    "malformed wire frame: body truncated "
                    f"({end - cursor} bytes left, "
                    f"{seed_count * columns} needed)"
                )
            peers = np.frombuffer(
                view, dtype="<u4", count=seed_count, offset=cursor
            ).tolist()
            cursor += 4 * seed_count
            xs = np.frombuffer(
                view, dtype="<u4", count=seed_count, offset=cursor
            ).tolist()
            cursor += 4 * seed_count
            if seed_width <= 8:
                ys = np.frombuffer(
                    view,
                    dtype=f"<u{seed_width}",
                    count=seed_count,
                    offset=cursor,
                ).tolist()
                cursor += seed_width * seed_count
            else:
                ys = [
                    from_bytes(
                        view[cursor + k * 16 : cursor + (k + 1) * 16],
                        "little",
                    )
                    for k in range(seed_count)
                ]
                cursor += 16 * seed_count
            seed_shares = {
                peer: Share(x=x, y=y)
                for peer, x, y in zip(peers, xs, ys)
            }
        key_shares: dict[int, LimbShares] = {}
        for _ in range(read_uint(4)):
            peer = read_uint(4)
            x = read_uint(4)
            num_limbs = read_uint(2)
            key_shares[peer] = LimbShares(
                x=x, ys=tuple(read_biguint() for _ in range(num_limbs))
            )
        if cursor != end:
            raise AggregationError(
                f"malformed wire frame: {end - cursor} trailing body bytes"
            )
        return UnmaskResponse(
            responder=responder,
            seed_shares=seed_shares,
            key_shares=key_shares,
        )
    if msg_type == MSG_ADVERTISE:
        if end - start < 8:
            raise AggregationError(
                "malformed wire frame: body truncated "
                f"({end - start} bytes left, 8 needed)"
            )
        index = int.from_bytes(view[start : start + 4], "little")
        cursor = start + 4
        values = []
        for _ in range(2):
            width = int.from_bytes(view[cursor : cursor + 2], "little")
            cursor += 2
            if width == 0:
                raise AggregationError(
                    "malformed wire frame: zero-width integer"
                )
            if cursor + width > end:
                raise AggregationError(
                    "malformed wire frame: body truncated "
                    f"({end - cursor} bytes left, {width} needed)"
                )
            values.append(
                int.from_bytes(view[cursor : cursor + width], "little")
            )
            cursor += width
        if cursor != end:
            raise AggregationError(
                f"malformed wire frame: {end - cursor} trailing body bytes"
            )
        return Advertise(
            index=index, channel_public=values[0], mask_public=values[1]
        )
    return None


def encode_sealed_matrix(
    sender: int,
    recipients: Sequence[int],
    ciphertexts: np.ndarray,
    header: NegotiatedHeader,
) -> bytes:
    """Encode one sender's whole envelope matrix as a frame stream.

    Byte-identical to concatenating :func:`encode_message` over the
    corresponding :class:`SealedShares` objects, built with a handful of
    numpy assignments instead of quadratically many Python frames.

    Args:
        sender: The uploading client.
        recipients: Row owner per matrix row.
        ciphertexts: ``(n, L)`` uint8 envelope matrix.
        header: The sender's negotiated header.
    """
    count, ciphertext_len = ciphertexts.shape
    prg = header.mask_prg.encode("ascii")
    header_size = _HEADER.size + len(prg)
    frame_len = header_size + _SEALED_BODY.size + ciphertext_len
    prefix = (
        _HEADER.pack(
            WIRE_MAGIC,
            WIRE_FORMAT_VERSION,
            MSG_SEALED_SHARES,
            frame_len,
            header.version,
            len(prg),
        )
        + prg
    )
    frames = np.empty((count, frame_len), dtype=np.uint8)
    frames[:, :header_size] = np.frombuffer(prefix, dtype=np.uint8)
    fields = np.empty((count, 3), dtype="<u4")
    fields[:, 0] = sender
    fields[:, 1] = recipients
    fields[:, 2] = ciphertext_len
    frames[:, header_size : header_size + _SEALED_BODY.size] = fields.view(
        np.uint8
    ).reshape(count, _SEALED_BODY.size)
    frames[:, header_size + _SEALED_BODY.size :] = ciphertexts
    return frames.tobytes()


def decode_sealed_columns(
    data: bytes,
) -> tuple[NegotiatedHeader, list[int], list[int], np.ndarray, int] | None:
    """Columnar bulk-parse of a homogeneous sealed-shares datagram.

    The protocol's quadratic leg is ``n`` equal-length
    :class:`SealedShares` frames per datagram (one sender's envelopes to
    the whole roster, or one recipient's routed mailbox — uniform
    because the mask-key limb count is fixed per DH group).  When the
    datagram has that exact shape, the fields are parsed with one numpy
    pass instead of a per-frame Python loop.

    Returns:
        ``(header, senders, recipients, ciphertext_matrix, frame_len)``
        where ``ciphertext_matrix`` is a zero-copy ``(n, L)`` uint8 view
        into ``data`` — or ``None`` whenever the datagram does not have
        the homogeneous shape (callers fall back to :func:`iter_frames`;
        results are identical either way).

    Raises:
        AggregationError: If the shape matches but a frame is corrupt.
    """
    total = len(data)
    if total < _HEADER.size:
        return None
    magic, fmt, msg_type, length, version, prg_len = _HEADER.unpack_from(
        data, 0
    )
    if (
        magic != WIRE_MAGIC
        or fmt != WIRE_FORMAT_VERSION
        or msg_type != MSG_SEALED_SHARES
        or length <= 0
        or total % length != 0
    ):
        return None
    header_size = _HEADER.size + prg_len
    ciphertext_len = length - header_size - _SEALED_BODY.size
    if ciphertext_len < 0 or length > total:
        return None
    count = total // length
    table = np.frombuffer(data, dtype=np.uint8).reshape(count, length)
    if count > 1 and not np.array_equal(
        table[1:, :header_size],
        np.broadcast_to(table[0, :header_size], (count - 1, header_size)),
    ):
        return None  # Heterogeneous headers: generic path.
    header = intern_header(version, bytes(data[_HEADER.size : header_size]))
    fields = np.ascontiguousarray(
        table[:, header_size : header_size + _SEALED_BODY.size]
    ).view("<u4")
    if not (fields[:, 2] == ciphertext_len).all():
        raise AggregationError(
            "malformed wire frame: ciphertext length mismatch"
        )
    body = header_size + _SEALED_BODY.size
    return (
        header,
        fields[:, 0].tolist(),
        fields[:, 1].tolist(),
        table[:, body:],
        length,
    )


def decode_sealed_datagram(
    data: bytes,
) -> tuple[NegotiatedHeader, list[SealedShares], list[memoryview]] | None:
    """Object-level view of :func:`decode_sealed_columns`.

    Returns the decoded envelopes plus each frame's raw span (for
    verbatim routing), or ``None`` when the datagram is not a
    homogeneous sealed stream.
    """
    columns = decode_sealed_columns(data)
    if columns is None:
        return None
    header, senders, recipients, ciphertext_matrix, frame_len = columns
    ciphertext_len = ciphertext_matrix.shape[1]
    ciphertexts = np.ascontiguousarray(ciphertext_matrix).tobytes()
    envelopes = [
        SealedShares(
            sender=sender,
            recipient=recipient,
            ciphertext=ciphertexts[
                row * ciphertext_len : (row + 1) * ciphertext_len
            ],
        )
        for row, (sender, recipient) in enumerate(zip(senders, recipients))
    ]
    view = memoryview(data)
    raws = [
        view[row * frame_len : (row + 1) * frame_len]
        for row in range(len(envelopes))
    ]
    return header, envelopes, raws


@dataclasses.dataclass(frozen=True, eq=False)
class UnmaskColumns:
    """Columnar twin of :class:`UnmaskResponse` for the bulk unmask leg.

    Parallel arrays instead of per-peer dicts: ``peers`` holds the
    sorted survivor ids, ``xs``/``ys`` the matching seed-share columns
    (``ys`` is uint64, or dtype=object for fields beyond 64 bits); the
    per-dropout ``key_shares`` stay a small dict.  Encoding the columns
    (:func:`encode_unmask_columns`) is byte-identical to encoding
    :meth:`to_response`, and the server consumes the columns directly —
    one transpose at recovery instead of O(survivors × threshold) dict
    lookups.
    """

    responder: int
    peers: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    key_shares: dict[int, LimbShares]

    def to_response(self) -> UnmaskResponse:
        """Materialise the equivalent per-peer :class:`UnmaskResponse`."""
        return UnmaskResponse(
            responder=self.responder,
            seed_shares={
                int(peer): Share(x=int(x), y=int(y))
                for peer, x, y in zip(self.peers, self.xs, self.ys)
            },
            key_shares=dict(self.key_shares),
        )


def encode_unmask_columns(
    columns: UnmaskColumns, header: NegotiatedHeader
) -> bytes:
    """Encode an :class:`UnmaskColumns` frame straight from its arrays.

    Byte-identical to ``encode_message(columns.to_response(), header)``
    (the golden and property suites pin this), without materialising
    per-peer ``Share`` objects on the O(survivors) leg.
    """
    count = int(columns.peers.shape[0])
    parts = [
        columns.responder.to_bytes(4, "little"),
        count.to_bytes(4, "little"),
    ]
    if count:
        ys = columns.ys
        width = _column_width(int(ys.max()))
        parts.append(width.to_bytes(1, "little"))
        parts.append(
            np.ascontiguousarray(columns.peers, dtype="<u4").tobytes()
        )
        parts.append(np.ascontiguousarray(columns.xs, dtype="<u4").tobytes())
        if width <= 8:
            parts.append(
                np.asarray(ys, dtype="<u8").astype(f"<u{width}").tobytes()
            )
        else:
            parts.append(
                b"".join(int(y).to_bytes(width, "little") for y in ys)
            )
    else:
        parts.append((1).to_bytes(1, "little"))
    _append_key_section(parts, columns.key_shares)
    return _frame(MSG_UNMASK_RESPONSE, b"".join(parts), header)


def decode_unmask_columns(
    data: bytes,
) -> tuple[NegotiatedHeader, UnmaskColumns] | None:
    """Columnar bulk-parse of a single-frame unmask-response datagram.

    The round-3 upload is exactly one :class:`UnmaskResponse` frame
    whose seed section is already columnar on the wire; this parser
    keeps it columnar — zero per-survivor ``Share`` objects — for the
    server's vectorised recovery path.

    Returns:
        ``(header, columns)``, or ``None`` when the datagram is not a
        lone unmask-response frame (callers fall back to
        :func:`iter_frames`; results are equivalent either way).

    Raises:
        AggregationError: If the frame matches but its body is corrupt
            (same errors as the scalar decoder).
    """
    total = len(data)
    if total < _HEADER.size:
        return None
    magic, fmt, msg_type, length, version, prg_len = _HEADER.unpack_from(
        data, 0
    )
    if (
        magic != WIRE_MAGIC
        or fmt != WIRE_FORMAT_VERSION
        or msg_type != MSG_UNMASK_RESPONSE
        or length != total
        or _HEADER.size + prg_len > total
    ):
        return None
    header_size = _HEADER.size + prg_len
    header = intern_header(version, bytes(data[_HEADER.size : header_size]))
    view = memoryview(data)
    from_bytes = int.from_bytes
    cursor = header_size
    end = total

    def read_uint(width: int) -> int:
        nonlocal cursor
        if cursor + width > end:
            raise AggregationError(
                "malformed wire frame: body truncated "
                f"({end - cursor} bytes left, {width} needed)"
            )
        value = from_bytes(view[cursor : cursor + width], "little")
        cursor += width
        return value

    responder = read_uint(4)
    seed_count = read_uint(4)
    seed_width = read_uint(1)
    if seed_width not in (1, 2, 4, 8, 16):
        raise AggregationError(
            f"malformed wire frame: seed column width {seed_width}"
        )
    peers = xs = ys = np.empty(0, dtype=np.uint64)
    if seed_count:
        columns = 8 + seed_width
        if cursor + seed_count * columns > end:
            raise AggregationError(
                "malformed wire frame: body truncated "
                f"({end - cursor} bytes left, "
                f"{seed_count * columns} needed)"
            )
        peers = np.frombuffer(
            view, dtype="<u4", count=seed_count, offset=cursor
        )
        cursor += 4 * seed_count
        xs = np.frombuffer(view, dtype="<u4", count=seed_count, offset=cursor)
        cursor += 4 * seed_count
        if seed_width <= 8:
            ys = np.frombuffer(
                view, dtype=f"<u{seed_width}", count=seed_count, offset=cursor
            ).astype(np.uint64)
            cursor += seed_width * seed_count
        else:
            ys = np.asarray(
                [
                    from_bytes(
                        view[cursor + k * 16 : cursor + (k + 1) * 16],
                        "little",
                    )
                    for k in range(seed_count)
                ],
                dtype=object,
            )
            cursor += 16 * seed_count
    key_shares: dict[int, LimbShares] = {}
    for _ in range(read_uint(4)):
        peer = read_uint(4)
        x = read_uint(4)
        num_limbs = read_uint(2)
        limbs = []
        for _ in range(num_limbs):
            width = read_uint(2)
            if width == 0:
                raise AggregationError(
                    "malformed wire frame: zero-width integer"
                )
            limbs.append(read_uint(width))
        key_shares[peer] = LimbShares(x=x, ys=tuple(limbs))
    if cursor != end:
        raise AggregationError(
            f"malformed wire frame: {end - cursor} trailing body bytes"
        )
    return header, UnmaskColumns(
        responder=responder,
        peers=peers,
        xs=xs,
        ys=ys,
        key_shares=key_shares,
    )


def _interleave_numpy(stack: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(stack.transpose(1, 0, 2))


if numba is not None:  # pragma: no cover - container-dependent

    @numba.njit(cache=True)
    def _interleave_jit(stack):
        senders, recipients, frame_len = stack.shape
        out = np.empty((recipients, senders, frame_len), dtype=np.uint8)
        for row in range(senders):
            for col in range(recipients):
                out[col, row] = stack[row, col]
        return out

    _interleave = _interleave_jit
else:
    _interleave = _interleave_numpy


def route_sealed_stack(stack: np.ndarray) -> np.ndarray:
    """Route a uniform sealed-shares tensor to per-recipient mailboxes.

    ``stack[s, r]`` is sender ``s``'s raw frame bound for the recipient
    in column ``r`` (senders in sorted order, the recipient order shared
    by every sender).  The result's ``[r]`` plane is recipient ``r``'s
    whole mailbox, frames already in sorted-sender order — ``tobytes()``
    of a plane is the exact datagram the per-envelope path would have
    joined.  Runs as one contiguous transpose (numba-jitted when
    available).
    """
    return _interleave(stack)


class ScalarWireCodec:
    """Reference codec: every message through the per-frame encoder.

    Kept selectable so CI can pin the batched kernels bit-identical to
    this path on real round traffic.
    """

    name = "scalar"
    #: Whether the server should keep bulk uploads columnar end to end.
    columnar = False

    def encode_sealed_matrix(
        self,
        sender: int,
        recipients: Sequence[int],
        ciphertexts: np.ndarray,
        header: NegotiatedHeader,
    ) -> bytes:
        return b"".join(
            encode_message(
                SealedShares(
                    sender=sender,
                    recipient=recipient,
                    ciphertext=ciphertexts[position].tobytes(),
                ),
                header,
            )
            for position, recipient in enumerate(recipients)
        )

    def encode_masked_input(
        self, sender: int, vector: np.ndarray, header: NegotiatedHeader
    ) -> bytes:
        return encode_message(MaskedInput(sender=sender, vector=vector), header)

    def encode_unmask_columns(
        self, columns: UnmaskColumns, header: NegotiatedHeader
    ) -> bytes:
        return encode_message(columns.to_response(), header)

    def decode_unmask(
        self, data: bytes
    ) -> tuple[NegotiatedHeader, UnmaskColumns] | None:
        return None


class BatchedWireCodec(ScalarWireCodec):
    """Vectorised codec for the three bulk legs; byte-identical output.

    Sealed-shares matrices, masked-input payloads and unmask responses
    are encoded straight from their arrays (and unmask responses decoded
    back to columns), skipping per-frame Python object construction on
    the quadratic paths.  Golden vectors and Hypothesis equivalence pin
    every leg to :class:`ScalarWireCodec` bit for bit.
    """

    name = "batched"
    columnar = True

    def encode_sealed_matrix(
        self,
        sender: int,
        recipients: Sequence[int],
        ciphertexts: np.ndarray,
        header: NegotiatedHeader,
    ) -> bytes:
        return encode_sealed_matrix(sender, recipients, ciphertexts, header)

    def encode_masked_input(
        self, sender: int, vector: np.ndarray, header: NegotiatedHeader
    ) -> bytes:
        vector = np.ascontiguousarray(vector, dtype="<i8")
        if vector.ndim != 1:
            raise AggregationError(
                f"masked input must be 1-d, got shape {vector.shape}"
            )
        return _frame(
            MSG_MASKED_INPUT,
            _MASKED_PREFIX.pack(sender, vector.shape[0]) + vector.tobytes(),
            header,
        )

    def encode_unmask_columns(
        self, columns: UnmaskColumns, header: NegotiatedHeader
    ) -> bytes:
        return encode_unmask_columns(columns, header)

    def decode_unmask(
        self, data: bytes
    ) -> tuple[NegotiatedHeader, UnmaskColumns] | None:
        return decode_unmask_columns(data)


#: Wire codec registry, mirroring :data:`repro.secagg.kernels.MASK_PRGS`:
#: both entries produce identical bytes; the knob exists so equivalence
#: can be asserted on live traffic and regressions bisected.
WIRE_CODECS: dict[str, ScalarWireCodec] = {
    codec.name: codec for codec in (ScalarWireCodec(), BatchedWireCodec())
}

_default_wire_codec = os.environ.get("REPRO_WIRE_CODEC", "batched")
if _default_wire_codec not in WIRE_CODECS:  # Fail fast on a typo'd env.
    raise AggregationError(
        f"unknown wire codec {_default_wire_codec!r} in REPRO_WIRE_CODEC "
        f"(choose from {sorted(WIRE_CODECS)})"
    )


def get_wire_codec(codec: "str | ScalarWireCodec | None" = None):
    """Resolve a codec name/instance; ``None`` means the process default.

    The default is ``"batched"`` unless overridden by the
    ``REPRO_WIRE_CODEC`` environment variable or
    :func:`set_default_wire_codec`.
    """
    if codec is None:
        codec = _default_wire_codec
    if isinstance(codec, str):
        try:
            return WIRE_CODECS[codec]
        except KeyError:
            raise AggregationError(
                f"unknown wire codec {codec!r} "
                f"(choose from {sorted(WIRE_CODECS)})"
            ) from None
    return codec


def set_default_wire_codec(name: str) -> str:
    """Set the process-wide default codec; returns the previous name."""
    global _default_wire_codec
    if name not in WIRE_CODECS:
        raise AggregationError(
            f"unknown wire codec {name!r} (choose from {sorted(WIRE_CODECS)})"
        )
    previous = _default_wire_codec
    _default_wire_codec = name
    return previous


#: Broadcast-decode memo: the server sends *one* roster (and unmask
#: request) byte string to every recipient, so each client would decode
#: identical bytes — quadratically many advertise parses per round.
#: Messages are immutable value objects, so the decoded frames are safe
#: to share; the memo is tiny and content-keyed (never identity-keyed).
_BROADCAST_MEMO_MAX = 16
_broadcast_memo: dict[bytes, list] = {}


def decode_frames(data: bytes) -> list[tuple[NegotiatedHeader, Message]]:
    """Parse a datagram of one or more concatenated frames.

    Identical datagrams are memoised (broadcasts are decoded once per
    round, not once per recipient); callers receive a fresh list over
    shared immutable messages.

    Returns:
        ``(header, message)`` pairs in frame order.

    Raises:
        AggregationError: On bad magic, an unknown format version or
            message type, truncation, or trailing garbage.
    """
    memoised = _broadcast_memo.get(data)
    if memoised is None:
        memoised = [
            (header, message)
            for header, message, _ in iter_frames(data, keep_raw=False)
        ]
        if len(_broadcast_memo) >= _BROADCAST_MEMO_MAX:
            _broadcast_memo.clear()
        _broadcast_memo[bytes(data)] = memoised
    return list(memoised)


def iter_frames(
    data: bytes, keep_raw: bool = True
) -> list[tuple[NegotiatedHeader, Message, "memoryview | None"]]:
    """Like :func:`decode_frames`, but keeps each frame's raw bytes.

    Transports that forward messages verbatim (the server routing sealed
    envelopes) reuse the raw frame instead of re-encoding it.  ``raw``
    is a zero-copy :class:`memoryview` into ``data`` (which it keeps
    alive); pass ``keep_raw=False`` when the spans are not needed.
    """
    view = memoryview(data)
    frames: list[tuple[NegotiatedHeader, Message, memoryview | None]] = []
    offset = 0
    total = len(view)
    # Datagrams are homogeneous in practice (a roster broadcast, one
    # sender's sealed envelopes), so after the first frame the header
    # region differs only in the length field: two slice comparisons
    # replace the full unpack + intern on the hot path.
    known_front: bytes | None = None  # magic | fmt | type
    known_tail: bytes | None = None  # version | prg len | prg name
    known_type = -1
    known_header: NegotiatedHeader | None = None
    tail_end = 0  # header size including the PRG name
    while offset < total:
        if offset + _HEADER.size > total:
            raise AggregationError(
                "malformed wire frame: truncated header "
                f"({total - offset} bytes)"
            )
        if (
            known_front is not None
            and view[offset : offset + 4] == known_front
            and view[offset + 8 : offset + tail_end] == known_tail
        ):
            msg_type = known_type
            header = known_header
            length = int.from_bytes(view[offset + 4 : offset + 8], "little")
            if length < tail_end or offset + length > total:
                raise AggregationError(
                    f"malformed wire frame: declared length {length} does "
                    f"not fit the datagram"
                )
            body_start = offset + tail_end
        else:
            magic, fmt, msg_type, length, version, prg_len = (
                _HEADER.unpack_from(view, offset)
            )
            if magic != WIRE_MAGIC:
                raise AggregationError(
                    f"malformed wire frame: bad magic {bytes(magic)!r}"
                )
            if fmt != WIRE_FORMAT_VERSION:
                raise AggregationError(
                    f"unsupported wire format version {fmt} "
                    f"(this implementation speaks {WIRE_FORMAT_VERSION})"
                )
            if length < _HEADER.size + prg_len or offset + length > total:
                raise AggregationError(
                    f"malformed wire frame: declared length {length} does "
                    f"not fit the datagram"
                )
            prg_start = offset + _HEADER.size
            header = intern_header(
                version, bytes(view[prg_start : prg_start + prg_len])
            )
            body_start = prg_start + prg_len
            tail_end = _HEADER.size + prg_len
            known_front = bytes(view[offset : offset + 4])
            known_tail = bytes(view[offset + 8 : offset + tail_end])
            known_type = msg_type
            known_header = header
        end = offset + length
        message = _decode_fast(msg_type, view, body_start, end)
        if message is None:
            reader = _Reader(view, body_start, end)
            message = _decode_body(msg_type, reader)
        frames.append(
            (header, message, view[offset:end] if keep_raw else None)
        )
        offset = end
    return frames


def decode_message(data: bytes) -> tuple[NegotiatedHeader, Message]:
    """Parse exactly one frame; rejects datagrams holding more or less."""
    frames = decode_frames(data)
    if len(frames) != 1:
        raise AggregationError(
            f"expected exactly one wire frame, got {len(frames)}"
        )
    return frames[0]


# ---------------------------------------------------------------------------
# Wire accounting


@dataclasses.dataclass
class WireTally:
    """Running message/byte counters for one (phase, client) cell."""

    messages: int = 0
    bytes: int = 0

    def add(self, nbytes: int, messages: int = 1) -> None:
        self.messages += messages
        self.bytes += nbytes


@dataclasses.dataclass
class WireStats:
    """Per-round wire accounting: counts and bytes per phase, per client.

    ``uploads`` tallies client-to-server traffic, ``downloads``
    server-to-client traffic; both map phase tag -> client index ->
    :class:`WireTally`.  Transports attach one instance per round to
    their outcome; sharded rounds :meth:`merge` their sub-rounds'
    ledgers.
    """

    uploads: dict[str, dict[int, WireTally]] = dataclasses.field(
        default_factory=dict
    )
    downloads: dict[str, dict[int, WireTally]] = dataclasses.field(
        default_factory=dict
    )

    @staticmethod
    def _cell(
        table: dict[str, dict[int, WireTally]], phase: str, client: int
    ) -> WireTally:
        return table.setdefault(phase, {}).setdefault(client, WireTally())

    def record_upload(
        self, phase: str, client: int, nbytes: int, messages: int = 1
    ) -> None:
        """Tally one client-to-server datagram."""
        self._cell(self.uploads, phase, client).add(nbytes, messages)

    def record_download(
        self, phase: str, client: int, nbytes: int, messages: int = 1
    ) -> None:
        """Tally one server-to-client datagram."""
        self._cell(self.downloads, phase, client).add(nbytes, messages)

    @staticmethod
    def _totals(table: Mapping[str, Mapping[int, WireTally]]) -> WireTally:
        total = WireTally()
        for cells in table.values():
            for tally in cells.values():
                total.add(tally.bytes, tally.messages)
        return total

    @property
    def total_messages(self) -> int:
        """Messages moved in either direction across all phases."""
        return (
            self._totals(self.uploads).messages
            + self._totals(self.downloads).messages
        )

    @property
    def total_bytes(self) -> int:
        """Serialized bytes moved in either direction across all phases."""
        return (
            self._totals(self.uploads).bytes
            + self._totals(self.downloads).bytes
        )

    def phase_totals(self) -> dict[str, dict[str, int]]:
        """Aggregate view per phase: messages and bytes each direction."""
        summary: dict[str, dict[str, int]] = {}
        for direction, table in (
            ("up", self.uploads),
            ("down", self.downloads),
        ):
            for phase, cells in table.items():
                entry = summary.setdefault(
                    phase,
                    {
                        "up_messages": 0,
                        "up_bytes": 0,
                        "down_messages": 0,
                        "down_bytes": 0,
                    },
                )
                for tally in cells.values():
                    entry[f"{direction}_messages"] += tally.messages
                    entry[f"{direction}_bytes"] += tally.bytes
        return summary

    def phase_summary(self, phase: str) -> dict[str, int] | None:
        """Totals for one phase tag, or ``None`` if it has no cells.

        Cells are keyed by phase and a round's phases never revisit, so
        once a phase's span closes this equals the
        ``snapshot()``/``diff()`` delta for that tag — at the cost of a
        single pass over one tag's cells instead of a deep copy and a
        cell-wise subtraction of the whole ledger.  This is the hot-path
        metering primitive; snapshot/diff remain for interval scrapers.
        """
        up = self.uploads.get(phase)
        down = self.downloads.get(phase)
        if not up and not down:
            return None
        entry = {
            "up_messages": 0,
            "up_bytes": 0,
            "down_messages": 0,
            "down_bytes": 0,
        }
        if up:
            for tally in up.values():
                entry["up_messages"] += tally.messages
                entry["up_bytes"] += tally.bytes
        if down:
            for tally in down.values():
                entry["down_messages"] += tally.messages
                entry["down_bytes"] += tally.bytes
        return entry

    def client_totals(self) -> dict[int, dict[str, int]]:
        """Aggregate view per client: messages and bytes each direction."""
        summary: dict[int, dict[str, int]] = {}
        for direction, table in (
            ("up", self.uploads),
            ("down", self.downloads),
        ):
            for cells in table.values():
                for client, tally in cells.items():
                    entry = summary.setdefault(
                        client,
                        {
                            "up_messages": 0,
                            "up_bytes": 0,
                            "down_messages": 0,
                            "down_bytes": 0,
                        },
                    )
                    entry[f"{direction}_messages"] += tally.messages
                    entry[f"{direction}_bytes"] += tally.bytes
        return summary

    def merge(self, others: Iterable["WireStats"]) -> "WireStats":
        """Fold other ledgers into this one (sharded-round composition)."""
        for other in others:
            for mine, theirs in (
                (self.uploads, other.uploads),
                (self.downloads, other.downloads),
            ):
                for phase, cells in theirs.items():
                    for client, tally in cells.items():
                        self._cell(mine, phase, client).add(
                            tally.bytes, tally.messages
                        )
        return self

    def snapshot(self) -> "WireStats":
        """A deep, independent copy of the current counters.

        Periodic scrapers take a snapshot per interval and
        :meth:`diff` consecutive snapshots for per-interval deltas;
        the live ledger keeps accumulating unaffected.
        """
        copy = WireStats()
        return copy.merge([self])

    def diff(self, prev: "WireStats") -> "WireStats":
        """Cell-wise difference ``self - prev`` as a new ledger.

        ``prev`` must be an earlier :meth:`snapshot` of the same
        accounting stream (counters only grow, so every delta is
        non-negative); cells that did not change are omitted, keeping
        interval deltas sparse.

        Raises:
            ValueError: If any cell of ``prev`` exceeds this ledger's —
                the snapshots are from different streams or out of
                order.
        """
        delta = WireStats()
        for mine, theirs, out in (
            (self.uploads, prev.uploads, delta.uploads),
            (self.downloads, prev.downloads, delta.downloads),
        ):
            for phase, cells in mine.items():
                previous_cells = theirs.get(phase, {})
                for client, tally in cells.items():
                    earlier = previous_cells.get(client, WireTally())
                    messages = tally.messages - earlier.messages
                    nbytes = tally.bytes - earlier.bytes
                    if messages < 0 or nbytes < 0:
                        raise ValueError(
                            f"diff against a later snapshot: phase "
                            f"{phase!r} client {client} went backwards"
                        )
                    if messages or nbytes:
                        self._cell(out, phase, client).add(nbytes, messages)
            for phase, previous_cells in theirs.items():
                cells = mine.get(phase, {})
                for client, earlier in previous_cells.items():
                    if client not in cells and (
                        earlier.messages or earlier.bytes
                    ):
                        raise ValueError(
                            f"diff against a later snapshot: phase "
                            f"{phase!r} client {client} vanished"
                        )
        return delta
