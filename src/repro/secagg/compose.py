"""Composition of shard-level secure aggregates.

Hierarchical secure aggregation structures a large federation as ``k``
independent SecAgg instances — one per shard of the cohort — whose
outputs are combined at each interior node of the aggregation tree.
Two interchangeable :class:`Composer` strategies exist:

* :class:`ClearComposer` — the outer modular addition of the hybrid
  approach (Truex et al., DDP-SA): free, but the composing server sees
  every intermediate shard sum in plaintext.  Because modular addition
  over the same ``Z_m`` is associative and commutative,

  ``(Σ_{u ∈ S_1} x_u mod m) + ... + (Σ_{u ∈ S_k} x_u mod m)  mod m``

  is *bit-identical* to the flat sum over the union of the shards'
  survivor sets.  That identity is what the simulation's
  ``verify_aggregate`` oracle asserts round by round.
* :class:`SecAggComposer` — an outer Bonawitz round over the child
  sums, each wrapped in a :class:`~repro.secagg.tree.VirtualClient`,
  so the composing node only ever receives *masked* inputs and no
  intermediate aggregate is exposed.  Masks cancel over the (complete)
  virtual-client set, so the composed sum is bit-identical to the
  clear composition — the composer changes who can see what, never
  the sum.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.secagg.wire import WireStats
    from repro.telemetry.registry import MetricsRegistry


def compose_shard_sums(
    shard_sums: Sequence[np.ndarray], modulus: int
) -> np.ndarray:
    """Outer modular addition of per-shard secure aggregates.

    Args:
        shard_sums: One modular sum per (successful) shard, all of the
            same 1-d shape over ``Z_m``.
        modulus: The shared aggregation modulus ``m``.

    Returns:
        ``Σ_shards shard_sum mod m`` as a length-``d`` int64 array —
        equal to the flat modular sum over the union of the shards'
        included clients.

    Raises:
        ConfigurationError: If no sums are given or shapes disagree.
    """
    if modulus < 2:
        raise ConfigurationError(f"modulus must be >= 2, got {modulus}")
    if not shard_sums:
        raise ConfigurationError("need at least one shard sum to compose")
    arrays = [np.asarray(shard_sum, dtype=np.int64) for shard_sum in shard_sums]
    shapes = {array.shape for array in arrays}
    if len(shapes) != 1 or len(next(iter(shapes))) != 1:
        raise ConfigurationError(
            f"shard sums must share one 1-d shape, got {shapes}"
        )
    total = np.zeros_like(arrays[0])
    for array in arrays:
        total = np.mod(total + array, modulus)
    return total


@dataclasses.dataclass(frozen=True)
class ComposeResult:
    """What one interior node's composition produced.

    Attributes:
        modular_sum: ``Σ child_sums mod m``.
        wire: Wire accounting for the composition round itself, or
            ``None`` when composition needed no protocol (clear
            addition, or a single-child passthrough).
    """

    modular_sum: np.ndarray
    wire: "WireStats | None" = None


class Composer(abc.ABC):
    """Strategy for combining child sums at an interior tree node."""

    #: Registry key and the name annotated onto outcomes and traces.
    name: str = ""

    @abc.abstractmethod
    def compose(
        self,
        child_sums: Sequence[np.ndarray],
        modulus: int,
        rng: np.random.Generator | None = None,
        level: int = 0,
        metrics: "MetricsRegistry | None" = None,
    ) -> ComposeResult:
        """Combine ``child_sums`` into one modular sum.

        Args:
            child_sums: At least one per-child modular sum, all of the
                same 1-d shape over ``Z_m``.
            modulus: The shared aggregation modulus ``m``.
            rng: Node-local randomness (required by cryptographic
                composers, ignored by the clear one).
            level: Tree depth of the composing node (0 = root), used
                only for telemetry labels.
            metrics: Optional registry for composer-side counters.
        """


class ClearComposer(Composer):
    """Plaintext modular addition — fast, but the composing node sees
    every intermediate sum.  Its runs are deliberately *visible*: each
    one increments ``compose_clear_total`` so privacy-relevant
    configuration shows up in ``/metrics``.
    """

    name = "clear"

    def compose(
        self,
        child_sums: Sequence[np.ndarray],
        modulus: int,
        rng: np.random.Generator | None = None,
        level: int = 0,
        metrics: "MetricsRegistry | None" = None,
    ) -> ComposeResult:
        total = compose_shard_sums(child_sums, modulus)
        if metrics is not None:
            metrics.counter(
                "compose_clear_total",
                "Interior-node compositions performed in the clear "
                "(intermediate sums visible to the composing node).",
            ).labels(level=str(level)).inc()
        return ComposeResult(modular_sum=total)


class SecAggComposer(Composer):
    """An outer Bonawitz round over the child sums.

    Each child sum becomes a virtual client's private input, so the
    composing node only receives masked frames and no intermediate
    aggregate is ever exposed.  A single child is passed through
    unchanged (there is nothing to hide from a node with one child —
    its "intermediate" sum *is* its output).
    """

    name = "secagg"

    def __init__(self, mask_prg: str | None = None) -> None:
        self._mask_prg = mask_prg

    def compose(
        self,
        child_sums: Sequence[np.ndarray],
        modulus: int,
        rng: np.random.Generator | None = None,
        level: int = 0,
        metrics: "MetricsRegistry | None" = None,
    ) -> ComposeResult:
        if not child_sums:
            raise ConfigurationError("need at least one shard sum to compose")
        if len(child_sums) == 1:
            only = np.asarray(child_sums[0], dtype=np.int64)
            return ComposeResult(modular_sum=np.mod(only, modulus))
        if rng is None:
            raise ConfigurationError(
                "the secagg composer needs node-local randomness (rng)"
            )
        from repro.secagg.tree import run_composition_round

        modular_sum, wire = run_composition_round(
            child_sums,
            modulus,
            rng,
            mask_prg=self._mask_prg,
            metrics=metrics,
        )
        return ComposeResult(modular_sum=modular_sum, wire=wire)


#: Composer registry keyed by the ``--compose`` / config knob value.
COMPOSERS: dict[str, type[Composer]] = {
    ClearComposer.name: ClearComposer,
    SecAggComposer.name: SecAggComposer,
}


def get_composer(
    composer: "Composer | str | None", mask_prg: str | None = None
) -> Composer:
    """Resolve a composer instance from a name, instance, or ``None``.

    ``None`` defaults to the clear composer (the legacy sharded-round
    behaviour).  Instances pass through so callers can inject
    custom strategies.
    """
    if composer is None:
        return ClearComposer()
    if isinstance(composer, Composer):
        return composer
    if composer not in COMPOSERS:
        raise ConfigurationError(
            f"unknown composer {composer!r}; expected one of "
            f"{sorted(COMPOSERS)}"
        )
    if composer == SecAggComposer.name:
        return SecAggComposer(mask_prg=mask_prg)
    return COMPOSERS[composer]()
