"""Composition of shard-level secure aggregates.

Hierarchical secure aggregation structures a large federation as ``k``
independent SecAgg instances — one per shard of the cohort — whose
outputs are combined by an *outer* modular addition (the shape of
DDP-SA, Wei et al., and of the hybrid approach of Truex et al.).  The
outer step needs no cryptography: each shard's protocol already reveals
nothing but that shard's modular sum, and modular addition over the
same ``Z_m`` is associative and commutative, so

``(Σ_{u ∈ S_1} x_u mod m) + ... + (Σ_{u ∈ S_k} x_u mod m)  mod m``

is *bit-identical* to the flat sum ``Σ_{u ∈ S_1 ∪ ... ∪ S_k} x_u mod m``
over the union of the shards' survivor sets.  That identity is what the
simulation's ``verify_aggregate`` oracle asserts round by round.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError


def compose_shard_sums(
    shard_sums: Sequence[np.ndarray], modulus: int
) -> np.ndarray:
    """Outer modular addition of per-shard secure aggregates.

    Args:
        shard_sums: One modular sum per (successful) shard, all of the
            same 1-d shape over ``Z_m``.
        modulus: The shared aggregation modulus ``m``.

    Returns:
        ``Σ_shards shard_sum mod m`` as a length-``d`` int64 array —
        equal to the flat modular sum over the union of the shards'
        included clients.

    Raises:
        ConfigurationError: If no sums are given or shapes disagree.
    """
    if modulus < 2:
        raise ConfigurationError(f"modulus must be >= 2, got {modulus}")
    if not shard_sums:
        raise ConfigurationError("need at least one shard sum to compose")
    arrays = [np.asarray(shard_sum, dtype=np.int64) for shard_sum in shard_sums]
    shapes = {array.shape for array in arrays}
    if len(shapes) != 1 or len(next(iter(shapes))) != 1:
        raise ConfigurationError(
            f"shard sums must share one 1-d shape, got {shapes}"
        )
    total = np.zeros_like(arrays[0])
    for array in arrays:
        total = np.mod(total + array, modulus)
    return total
