"""Sans-I/O client/server state machines for the SecAgg protocol.

This module is the single protocol implementation every transport
drives.  :class:`ClientSession` and :class:`ServerSession` consume
inbound wire frames (:mod:`repro.secagg.wire`) and emit outbound ones —
**no I/O, no clock, no asyncio**.  A transport's whole job is to move
the returned bytes and decide *when* a phase closes:

* the synchronous in-memory loop
  (:func:`repro.secagg.bonawitz.run_bonawitz`) closes a phase when every
  live client has delivered;
* the simulated-clock mailbox transport
  (:class:`repro.simulation.rounds.AsyncSecAggRound`) closes it at the
  earlier of "everyone delivered" and the phase deadline;
* the sharded process backend runs one mailbox transport per shard,
  moving shard inputs over shared memory.

The sessions wrap the existing crypto state machines
(:class:`repro.secagg.bonawitz.BonawitzClient` /
:class:`~repro.secagg.bonawitz.BonawitzServer`) — all key agreement,
Shamir sharing, masking and recovery stay on the vectorised kernel
layer and remain bit-identical to the pre-wire implementation.

Negotiation is first-class: a round opens with a :class:`~repro.secagg.wire.Hello`
whose frame header proposes a protocol version and mask-PRG backend.
The server accepts or answers a typed
:class:`~repro.secagg.wire.Reject`; a rejected client parks a
:class:`repro.errors.NegotiationError` in :attr:`ClientSession.rejected`
instead of crashing mid-round, and a server whose accepted roster falls
below the Shamir threshold raises :class:`~repro.errors.NegotiationError`
naming the rejections.

The server session also keeps the round's wire ledger
(:class:`~repro.secagg.wire.WireStats`): every frame it receives or
emits is tallied per phase and client, so transports get message/byte
accounting for free.

Both sessions optionally report into a
:class:`~repro.telemetry.registry.MetricsRegistry`: negotiation
outcomes and categorized reject reasons
(``secagg_negotiations_total`` / ``secagg_negotiation_rejects_total``),
and frames decoded/encoded per role and direction
(``secagg_frames_total``).  With ``metrics=None`` (the default) the
sessions do no metric work at all — the no-telemetry path.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import (
    AggregationError,
    ConfigurationError,
    ConflictError,
    NegotiationError,
)
from repro.secagg.bonawitz import (
    ROUND_ADVERTISE,
    ROUND_MASKED_INPUT,
    ROUND_SHARE_KEYS,
    ROUND_UNMASK,
    BonawitzClient,
    BonawitzServer,
)
from repro.secagg.field import DEFAULT_FIELD, PrimeField
from repro.secagg.kernels import MaskPrg
from repro.secagg.keys import (
    DhGroup,
    KeyAgreementGroup,
    kex_name,
    resolve_group,
)
from repro.secagg.wire import (
    PROTOCOL_V1,
    SUPPORTED_PROTOCOL_VERSIONS,
    Advertise,
    Hello,
    MaskedInput,
    Message,
    NegotiatedHeader,
    Reject,
    ScalarWireCodec,
    SealedShares,
    UnmaskColumns,
    UnmaskRequest,
    UnmaskResponse,
    WireStats,
    decode_frames,
    decode_sealed_columns,
    decode_sealed_datagram,
    encode_message,
    get_wire_codec,
    intern_header,
    iter_frames,
    route_sealed_stack,
    split_suite,
)
from repro.telemetry.registry import MetricsRegistry

#: Wire tag per protocol phase — shared by transports, traces and the
#: accounting ledger.
PHASE_TAGS = {
    ROUND_ADVERTISE: "advertise",
    ROUND_SHARE_KEYS: "share-keys",
    ROUND_MASKED_INPUT: "masked-input",
    ROUND_UNMASK: "unmask",
}

#: Phase reached once the aggregate sum is recovered.
PHASE_DONE = ROUND_UNMASK + 1


def _suite_name(mask_prg: str, group: KeyAgreementGroup) -> str:
    """The negotiated backend string for a (PRG, key agreement) pair.

    Classic modular DH keeps the bare PRG name — byte-for-byte what
    every pre-x25519 round negotiated — so old transcripts and golden
    vectors stay valid; other key agreements append ``+<kex>``.
    """
    kex = kex_name(group)
    return mask_prg if kex == "mod-dh" else f"{mask_prg}+{kex}"


class ClientSession:
    """One participant's sans-I/O protocol session.

    Feed inbound datagrams to :meth:`handle`; it returns the frames to
    send back to the server (possibly none).  The session never blocks,
    sleeps, or touches a socket — dropout, latency and delivery order
    are entirely the transport's business.

    Args:
        index: The client's unique nonzero identifier.
        vector: The private input vector over ``Z_m``.
        modulus: Aggregation modulus ``m``.
        threshold: Shamir reconstruction threshold ``t``.
        rng: Client-local randomness.
        group: DH group for both key pairs.
        field: Shamir sharing field.
        mask_prg: Mask PRG backend name or instance; becomes part of the
            proposed negotiated header.
        version: Protocol version to propose at Hello.
        metrics: Optional registry for frame/rejection counters; the
            default collects nothing.
        wire_codec: Wire codec backend — a name from
            :data:`~repro.secagg.wire.WIRE_CODECS`, an instance, or
            ``None`` for the process default (normally ``"batched"``).
            Both codecs emit identical bytes.
    """

    def __init__(
        self,
        index: int,
        vector: np.ndarray,
        modulus: int,
        threshold: int,
        rng: np.random.Generator,
        group: KeyAgreementGroup,
        field: PrimeField = DEFAULT_FIELD,
        mask_prg: MaskPrg | str | None = None,
        version: int = PROTOCOL_V1,
        metrics: MetricsRegistry | None = None,
        wire_codec: "str | ScalarWireCodec | None" = None,
    ) -> None:
        # A client configured for x25519 without the optional
        # `cryptography` package degrades to the toy DH group *before*
        # proposing a suite, so negotiation stays clean either way.
        group = resolve_group(group)
        self._codec = get_wire_codec(wire_codec)
        self._crypto = BonawitzClient(
            index=index,
            vector=vector,
            modulus=modulus,
            threshold=threshold,
            rng=rng,
            group=group,
            field=field,
            mask_prg=mask_prg,
        )
        self.index = index
        # Interned: decoded frames carrying the negotiated header
        # resolve to this very object, so hot-path comparisons are
        # identity checks.
        self.header = intern_header(
            version, _suite_name(self._crypto._mask_prg.name, group)
        )
        #: Terminal negotiation failure, set on receiving a Reject.
        self.rejected: NegotiationError | None = None
        self._m_frames_in = self._m_frames_out = self._m_rejected = None
        if metrics is not None:
            frames = metrics.counter(
                "secagg_frames_total",
                "Wire frames decoded (in) / encoded (out), per role.",
            )
            self._m_frames_in = frames.labels(role="client", direction="in")
            self._m_frames_out = frames.labels(role="client", direction="out")
            self._m_rejected = metrics.counter(
                "secagg_client_rejections_total",
                "Hello rejections acknowledged by clients.",
            ).labels()

    @property
    def crypto(self) -> BonawitzClient:
        """The wrapped crypto state machine (simulation accelerators
        like :func:`~repro.secagg.bonawitz.warm_pairwise_agreements`
        operate on it directly)."""
        return self._crypto

    def _encode(self, message: Message) -> bytes:
        return encode_message(message, self.header)

    def _count_frames(self, inbound: int, outbound: int) -> None:
        if self._m_frames_in is not None:
            if inbound:
                self._m_frames_in.inc(inbound)
            if outbound:
                self._m_frames_out.inc(outbound)

    def start(self) -> list[bytes]:
        """Open the round: propose the header and advertise both keys.

        Returns:
            Two frames — :class:`~repro.secagg.wire.Hello` (whose header
            carries the proposal) and the round-0
            :class:`~repro.secagg.wire.Advertise`.
        """
        advertisement = self._crypto.advertise_keys()
        self._count_frames(0, 2)
        return [
            self._encode(Hello(sender=self.index)),
            self._encode(advertisement),
        ]

    def handle(self, data: bytes) -> list[bytes]:
        """Process one server datagram; returns the response frames.

        The datagram may hold several concatenated frames (the roster
        broadcast, a mailbox of sealed envelopes); it must be
        homogeneous, as the server's broadcasts are.

        Raises:
            AggregationError: On a protocol violation — including the
                core security rule (an unmask request naming a peer as
                both survivor and dropout is refused).
            NegotiationError: If a non-Reject frame carries a header
                that does not match the negotiated one.
        """
        if self.rejected is not None:
            raise AggregationError(
                f"client {self.index} was rejected at Hello and holds no "
                "round state"
            )
        # The routed mailbox is the quadratic inbound leg; bulk-decode it
        # columnar when it has the homogeneous shape.
        columns = decode_sealed_columns(data)
        if columns is not None:
            header, senders, recipients, ciphertexts, _ = columns
            if header is not self.header and header != self.header:
                raise NegotiationError(
                    f"client {self.index} negotiated {self.header} but "
                    f"received a frame speaking {header}"
                )
            misdelivered = set(recipients) - {self.index}
            if misdelivered:
                raise AggregationError(
                    f"client {self.index} received an envelope for "
                    f"{misdelivered.pop()}"
                )
            self._crypto.receive_share_matrix(senders, ciphertexts)
            participants = frozenset(senders)
            masked = self._crypto.masked_input(participants)
            self._count_frames(len(senders), 1)
            return [
                self._codec.encode_masked_input(
                    self.index, masked, self.header
                )
            ]
        frames = decode_frames(data)
        if not frames:
            return []
        first = frames[0][1]
        if isinstance(first, Reject):
            self.rejected = NegotiationError(
                f"client {self.index} rejected at Hello: {first.reason}"
            )
            self._count_frames(1, 0)
            if self._m_rejected is not None:
                self._m_rejected.inc()
            return []
        for header, _ in frames:
            if header is not self.header and header != self.header:
                raise NegotiationError(
                    f"client {self.index} negotiated {self.header} but "
                    f"received a frame speaking {header}"
                )
        if isinstance(first, Advertise):
            roster = {}
            for _, message in frames:
                if not isinstance(message, Advertise):
                    raise AggregationError(
                        "mixed message types in a roster broadcast"
                    )
                roster[message.index] = message
            recipients, sealed = self._crypto.share_keys_matrix(roster)
            self._count_frames(len(frames), len(recipients))
            return [
                self._codec.encode_sealed_matrix(
                    self.index, recipients, sealed, self.header
                )
            ]
        if isinstance(first, SealedShares):
            envelopes = []
            for _, message in frames:
                if not isinstance(message, SealedShares):
                    raise AggregationError(
                        "mixed message types in a share delivery"
                    )
                envelopes.append(message)
            self._count_frames(len(frames), 1)
            return self._handle_share_delivery(envelopes)
        if isinstance(first, UnmaskRequest):
            if len(frames) != 1:
                raise AggregationError(
                    "an unmask request must arrive alone"
                )
            columns = self._crypto.unmask_columns(first)
            self._count_frames(1, 1)
            return [self._codec.encode_unmask_columns(columns, self.header)]
        raise AggregationError(
            f"client {self.index} cannot handle inbound "
            f"{type(first).__name__}"
        )

    def _handle_share_delivery(
        self, envelopes: list[SealedShares]
    ) -> list[bytes]:
        self._crypto.receive_shares(envelopes)
        # U1 is derivable from the delivery itself: the server routes
        # one envelope per round-1 completer (self included).
        participants = frozenset(envelope.sender for envelope in envelopes)
        masked = self._crypto.masked_input(participants)
        return [
            self._codec.encode_masked_input(self.index, masked, self.header)
        ]


class ServerSession:
    """The aggregation server's sans-I/O protocol session.

    Drive it phase by phase: :meth:`receive` inbound datagrams (in any
    order, until the transport decides the phase is over), then
    :meth:`advance` to close the phase and collect the outbound
    per-recipient datagrams.  The session validates senders, enforces
    thresholds through the wrapped crypto server, negotiates
    version/backend at Hello, and tallies every byte in :attr:`stats`.

    Args:
        modulus: Aggregation modulus ``m``.
        dimension: Vector length ``d``.
        threshold: Shamir threshold ``t``.
        field: Shamir sharing field (must match the clients').
        group: DH group (must match the clients').
        mask_prg: Mask PRG backend this round speaks.
        accept_versions: Protocol versions the server may choose from;
            the round itself runs at the highest one (a round's shared
            broadcasts carry exactly one header, so every accepted
            client must propose that version at Hello).
        tamper_unmask_request: Test/adversary seam applied to the
            round-3 announcement before it is encoded for broadcast.
        metrics: Optional registry for negotiation-outcome and frame
            counters; the default collects nothing.
        resumable: Enable resumption support for lossy transports.
            The session then (a) retains every emitted per-recipient
            datagram so :meth:`replay_for` can re-deliver to a
            reconnecting client, and (b) enforces the at-most-once
            upload guard — a byte-identical re-send of an already
            ingested datagram is ignored (idempotent redelivery), but
            *different* bytes for an already committed phase raise
            :class:`~repro.errors.ConflictError` instead of silently
            replacing the contribution.  Off by default: the in-memory
            transports are loss-free, and there a duplicate is a
            protocol violation worth raising on.
        wire_codec: Wire codec backend — a name from
            :data:`~repro.secagg.wire.WIRE_CODECS`, an instance, or
            ``None`` for the process default (normally ``"batched"``).
            A columnar codec keeps bulk uploads as raw frame spans and
            routes them array-at-a-time; bytes on the wire are
            identical either way.
    """

    def __init__(
        self,
        modulus: int,
        dimension: int,
        threshold: int,
        field: PrimeField = DEFAULT_FIELD,
        group: KeyAgreementGroup = DhGroup(),
        mask_prg: MaskPrg | str | None = None,
        accept_versions: frozenset[int] = SUPPORTED_PROTOCOL_VERSIONS,
        tamper_unmask_request: Callable[[UnmaskRequest], UnmaskRequest]
        | None = None,
        metrics: MetricsRegistry | None = None,
        resumable: bool = False,
        wire_codec: "str | ScalarWireCodec | None" = None,
    ) -> None:
        if not accept_versions:
            raise ConfigurationError(
                "the server must accept at least one protocol version"
            )
        group = resolve_group(group)
        self._codec = get_wire_codec(wire_codec)
        self._crypto = BonawitzServer(
            modulus, dimension, threshold, field, group, mask_prg
        )
        self._threshold = threshold
        self.header = intern_header(
            max(accept_versions),
            _suite_name(self._crypto._mask_prg.name, group),
        )
        self._tamper = tamper_unmask_request
        self.stats = WireStats()
        #: Clients refused at Hello, with the refusal reason.
        self.rejections: dict[int, str] = {}
        #: True once a tamper seam rewrote the unmask request.
        self.tampered = False
        self._phase = ROUND_ADVERTISE
        self._hellos: dict[int, NegotiatedHeader] = {}
        self._advertisements: dict[int, Advertise] = {}
        self._envelopes: dict[int, list[SealedShares]] = {}
        # Raw frame span per (sender, recipient): routed envelopes are
        # forwarded verbatim, so the original bytes are reused instead
        # of re-encoding quadratically many frames.
        self._envelope_raw: dict[tuple[int, int], "memoryview | bytes"] = {}
        # Columnar upload store (columnar codecs only): per sender, the
        # recipient roster, the raw datagram, and the per-frame length.
        # Frames stay bytes until routing transposes them wholesale.
        self._sealed_columns: dict[int, tuple[tuple[int, ...], bytes, int]] = {}
        self._masked: dict[int, np.ndarray] = {}
        self._responses: dict[int, "UnmaskResponse | UnmaskColumns"] = {}
        self._expected: frozenset[int] = frozenset()
        self._request: UnmaskRequest | None = None
        self._modular_sum: np.ndarray | None = None
        self.resumable = resumable
        # Replay buffer: per recipient, every datagram this session has
        # emitted, in delivery order.  The n-th entry closes phase n
        # from that client's point of view, so a resume quoting
        # "deliveries processed = k" replays log[k:].
        self._delivery_log: dict[int, list[bytes]] = {}
        # At-most-once memo: per sender, the raw datagram ingested for
        # each phase.  Byte-compared on redelivery.
        self._upload_memo: dict[int, dict[int, bytes]] = {}
        self._m_frames_in = self._m_frames_out = None
        self._m_negotiations = self._m_rejects = None
        if metrics is not None:
            frames = metrics.counter(
                "secagg_frames_total",
                "Wire frames decoded (in) / encoded (out), per role.",
            )
            self._m_frames_in = frames.labels(role="server", direction="in")
            self._m_frames_out = frames.labels(role="server", direction="out")
            self._m_negotiations = metrics.counter(
                "secagg_negotiations_total",
                "Hello negotiation outcomes.",
            )
            self._m_rejects = metrics.counter(
                "secagg_negotiation_rejects_total",
                "Hello rejections by reason category.",
            )

    @property
    def crypto(self) -> BonawitzServer:
        """The wrapped crypto state machine."""
        return self._crypto

    @property
    def phase(self) -> int:
        """Current protocol phase (``ROUND_*``, or :data:`PHASE_DONE`)."""
        return self._phase

    @property
    def phase_tag(self) -> str:
        """Wire tag of the current phase."""
        if self._phase == PHASE_DONE:
            return "done"
        return PHASE_TAGS[self._phase]

    @property
    def expected(self) -> frozenset[int]:
        """Clients that may still deliver in the current phase.

        Empty during the advertise phase — only the transport knows the
        cohort before any client has spoken.
        """
        return self._expected

    def received(self) -> frozenset[int]:
        """Senders that already delivered in the current phase."""
        if self._phase == PHASE_DONE:
            return frozenset()
        if self._phase == ROUND_SHARE_KEYS:
            return frozenset(self._envelopes) | frozenset(
                self._sealed_columns
            )
        tables = {
            ROUND_ADVERTISE: self._advertisements,
            ROUND_MASKED_INPUT: self._masked,
            ROUND_UNMASK: self._responses,
        }
        return frozenset(tables[self._phase])

    def phase_ready(self) -> bool:
        """True once every expected client delivered (never during
        advertise, where ``expected`` is the transport's knowledge)."""
        return bool(self._expected) and self._expected <= self.received()

    @property
    def modular_sum(self) -> np.ndarray:
        """The recovered aggregate; available once the round is done."""
        if self._modular_sum is None:
            raise AggregationError("the aggregate has not been recovered yet")
        return self._modular_sum

    @property
    def included(self) -> frozenset[int]:
        """``U2`` — clients whose input made the aggregate."""
        if self._request is None:
            raise AggregationError("survivors are not known yet")
        return frozenset(self._request.survivors)

    # -- inbound ----------------------------------------------------------

    def receive(self, data: bytes, sender: int | None = None) -> None:
        """Ingest one client datagram for the current phase.

        Args:
            data: One or more concatenated frames from a single client.
            sender: The transport-authenticated sender identity.  It is
                **required**: frames claim whatever origin they like, so
                accepting a datagram without the transport's own binding
                would let one connection impersonate another.  Frames
                claiming a different sender are rejected (spoofing).

        Raises:
            AggregationError: When ``sender`` is omitted, and on
                spoofed/duplicate/out-of-phase frames.
        """
        if sender is None:
            # Trusting the frame-claimed origin here would turn every
            # transport into an impersonation vector — the binding must
            # come from outside the bytes (connection handshake, mailbox
            # slot, loop index).
            raise AggregationError(
                "receive() requires the transport-authenticated sender; "
                "the frame-claimed origin cannot be trusted"
            )
        if self.resumable and self._guard_redelivery(sender, data):
            return
        if self._phase == ROUND_SHARE_KEYS:
            # Columnar codecs keep the quadratic upload as one raw
            # datagram: validate the sender column, stash the bytes, and
            # let routing transpose the stack without ever building a
            # SealedShares object.  A sender that already delivered
            # through the object path (or piecemeal) falls through so
            # append semantics stay intact.
            if (
                self._codec.columnar
                and sender not in self._envelopes
                and sender not in self._sealed_columns
            ):
                columns = decode_sealed_columns(data)
                if columns is not None:
                    header, senders, recipients, _, frame_len = columns
                    if header is not self.header and header != self.header:
                        raise NegotiationError(
                            f"client {sender} sent a frame speaking "
                            f"{header} into a round negotiated at "
                            f"{self.header}"
                        )
                    for claimed in senders:
                        if claimed != sender:
                            raise AggregationError(
                                f"frame claims sender {claimed} but "
                                f"came from {sender}"
                            )
                    self._require_expected(sender)
                    self._sealed_columns[sender] = (
                        tuple(recipients),
                        bytes(data),
                        frame_len,
                    )
                    self.stats.record_upload(
                        self.phase_tag,
                        sender,
                        len(data),
                        messages=len(recipients),
                    )
                    if self._m_frames_in is not None and recipients:
                        self._m_frames_in.inc(len(recipients))
                    if self.resumable:
                        self._upload_memo.setdefault(sender, {})[
                            self._phase
                        ] = bytes(data)
                    return
            bulk = decode_sealed_datagram(data)
            if bulk is not None:
                header, envelopes, raws = bulk
                if header is not self.header and header != self.header:
                    raise NegotiationError(
                        f"client {sender} sent a frame speaking {header} "
                        f"into a round negotiated at {self.header}"
                    )
                for envelope in envelopes:
                    if envelope.sender != sender:
                        raise AggregationError(
                            f"frame claims sender {envelope.sender} but "
                            f"came from {sender}"
                        )
                self._require_expected(sender)
                self._envelopes.setdefault(sender, []).extend(envelopes)
                for envelope, raw in zip(envelopes, raws):
                    self._envelope_raw[
                        (envelope.sender, envelope.recipient)
                    ] = raw
                self.stats.record_upload(
                    self.phase_tag,
                    sender,
                    len(data),
                    messages=len(envelopes),
                )
                if self._m_frames_in is not None and envelopes:
                    self._m_frames_in.inc(len(envelopes))
                if self.resumable:
                    self._upload_memo.setdefault(sender, {})[
                        self._phase
                    ] = bytes(data)
                return
        if self._phase == ROUND_UNMASK:
            # Columnar codecs parse the seed section straight into
            # arrays; recover_sum consumes the columns without ever
            # materializing per-survivor Share objects.
            decoded = self._codec.decode_unmask(data)
            if decoded is not None:
                header, response_columns = decoded
                if header is not self.header and header != self.header:
                    raise NegotiationError(
                        f"client {sender} sent a frame speaking {header} "
                        f"into a round negotiated at {self.header}"
                    )
                if response_columns.responder != sender:
                    raise AggregationError(
                        f"frame claims sender {response_columns.responder} "
                        f"but came from {sender}"
                    )
                self._require_expected(sender)
                if sender in self._responses:
                    raise AggregationError(
                        f"duplicate unmask response from client {sender}"
                    )
                self._responses[sender] = response_columns
                self.stats.record_upload(
                    self.phase_tag, sender, len(data), messages=1
                )
                if self._m_frames_in is not None:
                    self._m_frames_in.inc(1)
                if self.resumable:
                    self._upload_memo.setdefault(sender, {})[
                        self._phase
                    ] = bytes(data)
                return
        frames = iter_frames(data)
        for header, message, raw in frames:
            claimed = self._sender_of(message)
            if claimed != sender:
                raise AggregationError(
                    f"frame claims sender {claimed} but came from {sender}"
                )
            self._dispatch(header, message, claimed, raw)
        self.stats.record_upload(
            self.phase_tag, sender, len(data), messages=len(frames)
        )
        if self._m_frames_in is not None and frames:
            self._m_frames_in.inc(len(frames))
        if self.resumable:
            self._upload_memo.setdefault(sender, {})[self._phase] = bytes(data)

    def _guard_redelivery(self, sender: int, data: bytes) -> bool:
        """At-most-once guard; True when the datagram is a known re-send.

        A resumed client re-sending exactly what it already sent is
        redelivery, not a violation — ignore it.  Different bytes for a
        phase this sender already committed can never be honoured: the
        original contribution is locked in, so the conflicting upload
        is a typed :class:`~repro.errors.ConflictError`.
        """
        memo = self._upload_memo.get(sender)
        if not memo:
            return False
        payload = bytes(data)
        if any(previous == payload for previous in memo.values()):
            return True
        committed = memo.get(self._phase)
        if committed is not None:
            raise ConflictError(
                f"client {sender} re-submitted different bytes for the "
                f"{self.phase_tag} phase; the original upload is locked in"
            )
        return False

    def already_ingested(self, sender: int, data: bytes) -> bool:
        """True when ``data`` is byte-identical to an upload this
        session already committed from ``sender`` (resumable mode only).

        Transports use this to drop idempotent re-sends *before*
        letting them occupy a phase's collection slot — a resumed
        client re-sending its previous upload must not shadow the
        upload the current phase is actually waiting for.
        """
        memo = self._upload_memo.get(sender)
        return bool(memo) and bytes(data) in memo.values()

    def replay_for(self, client: int, deliveries_seen: int) -> list[bytes]:
        """Datagrams a resumed ``client`` has not processed yet.

        Args:
            client: The resuming client's index.
            deliveries_seen: How many deliveries the client reports
                having processed; everything after that is replayed in
                order.
        """
        if not self.resumable:
            raise ConfigurationError(
                "replay_for() requires a session built with resumable=True"
            )
        if deliveries_seen < 0:
            raise AggregationError("deliveries_seen must be >= 0")
        return list(self._delivery_log.get(client, [])[deliveries_seen:])

    @staticmethod
    def _sender_of(message: Message) -> int:
        if isinstance(message, Hello):
            return message.sender
        if isinstance(message, Advertise):
            return message.index
        if isinstance(message, SealedShares):
            return message.sender
        if isinstance(message, MaskedInput):
            return message.sender
        if isinstance(message, UnmaskResponse):
            return message.responder
        raise AggregationError(
            f"the server cannot ingest {type(message).__name__} frames"
        )

    def _dispatch(
        self,
        header: NegotiatedHeader,
        message: Message,
        sender: int,
        raw: bytes | None = None,
    ) -> None:
        if isinstance(message, Hello):
            if self._phase != ROUND_ADVERTISE:
                raise AggregationError("Hello outside the advertise phase")
            if sender in self._hellos or sender in self.rejections:
                raise AggregationError(
                    f"duplicate Hello from client {sender}"
                )
            if header.version != self.header.version:
                # Every broadcast shares one header, so a round speaks
                # exactly one version; a client proposing anything else
                # — even another version the server *could* have chosen
                # — could not follow the round's frames and is refused
                # here rather than crashing mid-round.
                self.rejections[sender] = (
                    f"unsupported protocol version {header.version} "
                    f"(round speaks {self.header.version})"
                )
                self._count_negotiation("rejected", "version")
            elif header.mask_prg != self.header.mask_prg:
                # The suite string carries both backends; reject on the
                # first component that differs so the reason names the
                # actual mismatch.
                client_prg, client_kex = split_suite(header.mask_prg)
                round_prg, round_kex = split_suite(self.header.mask_prg)
                if client_prg != round_prg:
                    self.rejections[sender] = (
                        f"mask PRG backend {client_prg!r} does not match "
                        f"the round's {round_prg!r}"
                    )
                    self._count_negotiation("rejected", "mask-prg")
                else:
                    self.rejections[sender] = (
                        f"key-agreement backend {client_kex!r} does not "
                        f"match the round's {round_kex!r}"
                    )
                    self._count_negotiation("rejected", "key-agreement")
            else:
                self._hellos[sender] = header
                self._count_negotiation("accepted")
            return
        if isinstance(message, Advertise):
            if self._phase != ROUND_ADVERTISE:
                raise AggregationError(
                    "Advertise outside the advertise phase"
                )
            if sender in self.rejections:
                return  # Rejected at Hello; the keys are ignored.
            if sender not in self._hellos:
                raise AggregationError(
                    f"client {sender} advertised keys without a Hello"
                )
            if sender in self._advertisements:
                raise AggregationError(
                    f"duplicate advertisement from client {sender}"
                )
            self._advertisements[sender] = message
            return
        # Post-negotiation phases: the header must match exactly.
        if header is not self.header and header != self.header:
            raise NegotiationError(
                f"client {sender} sent a frame speaking {header} into a "
                f"round negotiated at {self.header}"
            )
        if isinstance(message, SealedShares):
            if self._phase != ROUND_SHARE_KEYS:
                raise AggregationError(
                    "SealedShares outside the share-keys phase"
                )
            self._require_expected(sender)
            self._envelopes.setdefault(sender, []).append(message)
            if raw is not None:
                self._envelope_raw[(message.sender, message.recipient)] = raw
            return
        if isinstance(message, MaskedInput):
            if self._phase != ROUND_MASKED_INPUT:
                raise AggregationError(
                    "MaskedInput outside the masked-input phase"
                )
            self._require_expected(sender)
            if sender in self._masked:
                raise AggregationError(
                    f"duplicate masked input from client {sender}"
                )
            self._masked[sender] = message.vector
            return
        if isinstance(message, UnmaskResponse):
            if self._phase != ROUND_UNMASK:
                raise AggregationError(
                    "UnmaskResponse outside the unmask phase"
                )
            self._require_expected(sender)
            if sender in self._responses:
                raise AggregationError(
                    f"duplicate unmask response from client {sender}"
                )
            self._responses[sender] = message
            return
        raise AggregationError(
            f"the server cannot ingest {type(message).__name__} frames"
        )

    def _count_negotiation(self, outcome: str, reason: str | None = None) -> None:
        if self._m_negotiations is not None:
            self._m_negotiations.labels(outcome=outcome).inc()
            if reason is not None:
                self._m_rejects.labels(reason=reason).inc()

    def _require_expected(self, sender: int) -> None:
        if sender not in self._expected:
            raise AggregationError(
                f"client {sender} is not a participant of the "
                f"{self.phase_tag} phase"
            )

    # -- outbound ---------------------------------------------------------

    def advance(self) -> dict[int, bytes]:
        """Close the current phase and emit the per-recipient datagrams.

        Returns:
            Recipient index -> encoded frames (roster broadcast, routed
            envelopes, unmask request, or Reject notices).  Empty after
            the final phase.

        Raises:
            AggregationError: If the phase's deliveries fall below the
                Shamir threshold.
            NegotiationError: If Hello rejections pushed the accepted
                roster below the threshold.
        """
        if self._phase == ROUND_ADVERTISE:
            out = self._close_advertise()
        elif self._phase == ROUND_SHARE_KEYS:
            out = self._close_share_keys()
        elif self._phase == ROUND_MASKED_INPUT:
            out = self._close_masked_input()
        elif self._phase == ROUND_UNMASK:
            self._modular_sum = self._crypto.recover_sum(
                list(self._responses.values())
            )
            self._expected = frozenset()
            self._phase = PHASE_DONE
            return {}
        else:
            raise AggregationError("the round is already complete")
        tag = PHASE_TAGS[self._phase]
        for recipient, (payload, messages) in out.items():
            self.stats.record_download(
                tag, recipient, len(payload), messages=messages
            )
            if self._m_frames_out is not None:
                self._m_frames_out.inc(messages)
        self._phase += 1
        deliveries = {
            recipient: payload for recipient, (payload, _) in out.items()
        }
        if self.resumable:
            for recipient, payload in deliveries.items():
                self._delivery_log.setdefault(recipient, []).append(payload)
        return deliveries

    def _close_advertise(self) -> dict[int, tuple[bytes, int]]:
        try:
            roster = self._crypto.collect_advertisements(
                list(self._advertisements.values())
            )
        except AggregationError as error:
            if self.rejections:
                raise NegotiationError(
                    f"{error} (after rejecting clients "
                    f"{sorted(self.rejections)} at Hello)"
                ) from error
            raise
        # One deterministic roster datagram, shared by every recipient.
        broadcast = b"".join(
            encode_message(roster[index], self.header)
            for index in sorted(roster)
        )
        out: dict[int, tuple[bytes, int]] = {
            index: (broadcast, len(roster)) for index in roster
        }
        for client, reason in self.rejections.items():
            out[client] = (
                encode_message(
                    Reject(client=client, reason=reason), self.header
                ),
                1,
            )
        self._expected = frozenset(roster)
        return out

    def _close_share_keys(self) -> dict[int, tuple[bytes, int]]:
        if self._sealed_columns and not self._envelopes:
            routed = self._route_columns()
            if routed is not None:
                return routed
        self._materialize_columns()
        mailbox = self._crypto.route_shares(self._envelopes)

        def frame_of(envelope: SealedShares) -> bytes:
            raw = self._envelope_raw.get(
                (envelope.sender, envelope.recipient)
            )
            return (
                raw
                if raw is not None
                else encode_message(envelope, self.header)
            )

        out = {
            recipient: (
                b"".join(frame_of(envelope) for envelope in envelopes),
                len(envelopes),
            )
            for recipient, envelopes in mailbox.items()
        }
        self._envelope_raw.clear()
        self._expected = frozenset(mailbox)
        return out

    def _route_columns(self) -> dict[int, tuple[bytes, int]] | None:
        """Route the share-keys phase straight from raw frame spans.

        Every columnar upload targets the same recipient roster with
        the same frame length (the roster broadcast is shared and the
        mask-key limb count is fixed per group), so the whole phase is
        one ``(senders, recipients, frame)`` uint8 stack; a recipient's
        mailbox is a plane of its transpose.  Returns ``None`` when the
        uploads are not uniform — the caller then materializes them and
        takes the object route (identical bytes, just slower).
        """
        senders = sorted(self._sealed_columns)
        roster, _, frame_len = self._sealed_columns[senders[0]]
        if any(
            stored[0] != roster or stored[2] != frame_len
            for stored in self._sealed_columns.values()
        ):
            return None
        survivors = self._crypto.register_share_keys(senders)
        stack = np.empty(
            (len(senders), len(roster), frame_len), dtype=np.uint8
        )
        for row, sender in enumerate(senders):
            stack[row] = np.frombuffer(
                self._sealed_columns[sender][1], dtype=np.uint8
            ).reshape(len(roster), frame_len)
        routed = route_sealed_stack(stack)
        # Senders are pre-sorted, so each plane is already the
        # sorted-by-sender join the object path would have produced.
        out = {
            recipient: (routed[column].tobytes(), len(senders))
            for column, recipient in enumerate(roster)
            if recipient in survivors
        }
        self._sealed_columns.clear()
        self._expected = frozenset(out)
        return out

    def _materialize_columns(self) -> None:
        """Fold columnar uploads back into the object-path stores.

        Taken when the phase mixed columnar and object deliveries (or
        non-uniform rosters): correctness over speed.
        """
        for sender, (_, payload, _) in sorted(self._sealed_columns.items()):
            decoded = decode_sealed_datagram(payload)
            if decoded is None:  # pragma: no cover - stored post-validation
                raise AggregationError(
                    f"stored columnar upload from client {sender} no "
                    "longer parses"
                )
            _, envelopes, raws = decoded
            self._envelopes.setdefault(sender, []).extend(envelopes)
            for envelope, raw in zip(envelopes, raws):
                self._envelope_raw[
                    (envelope.sender, envelope.recipient)
                ] = raw
        self._sealed_columns.clear()

    def _close_masked_input(self) -> dict[int, tuple[bytes, int]]:
        request = self._crypto.collect_masked_inputs(self._masked)
        if self._tamper is not None:
            request = self._tamper(request)
            self.tampered = True
        self._request = request
        payload = encode_message(request, self.header)
        out = {
            survivor: (payload, 1) for survivor in sorted(request.survivors)
        }
        self._expected = frozenset(request.survivors)
        return out
