"""Prime-field arithmetic for the secure-aggregation cryptography.

Shamir secret sharing (:mod:`repro.secagg.shamir`) and the simulated
Diffie-Hellman key agreement (:mod:`repro.secagg.keys`) both operate over
``GF(p)`` for a public prime ``p``.  This module provides a small,
dependency-free field abstraction using Python's arbitrary-precision
integers, so share arithmetic is exact regardless of the secret size.

The default prime is the Mersenne prime ``2^61 - 1``: large enough to
embed 32-bit mask seeds and SecAgg moduli up to ``2^60`` with room to
spare, and small enough that Lagrange interpolation over hundreds of
shares stays fast.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

#: Mersenne prime 2^61 - 1, the default field modulus.
MERSENNE_61 = (1 << 61) - 1


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit (and probable beyond).

    Uses the first twelve primes as witnesses, which is a proven
    deterministic test for every ``n < 3.3 * 10^24`` — far beyond any
    modulus this library constructs.
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclasses.dataclass(frozen=True)
class PrimeField:
    """The finite field ``GF(p)``.

    Attributes:
        prime: The field modulus; validated to be prime on construction.
    """

    prime: int = MERSENNE_61

    def __post_init__(self) -> None:
        if self.prime < 2 or not _is_probable_prime(self.prime):
            raise ConfigurationError(
                f"field modulus must be prime, got {self.prime}"
            )

    @property
    def order(self) -> int:
        """Number of field elements."""
        return self.prime

    def element(self, value: int) -> int:
        """Canonical representative of ``value`` in ``[0, p)``."""
        return value % self.prime

    def add(self, a: int, b: int) -> int:
        """Field addition."""
        return (a + b) % self.prime

    def sub(self, a: int, b: int) -> int:
        """Field subtraction."""
        return (a - b) % self.prime

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return (a * b) % self.prime

    def neg(self, a: int) -> int:
        """Additive inverse."""
        return (-a) % self.prime

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem.

        Raises:
            ZeroDivisionError: If ``a`` is zero in the field.
        """
        if a % self.prime == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return pow(a, self.prime - 2, self.prime)

    def pow(self, base: int, exponent: int) -> int:
        """Field exponentiation ``base ** exponent mod p``."""
        return pow(base % self.prime, exponent, self.prime)

    def evaluate_polynomial(self, coefficients: list[int], x: int) -> int:
        """Evaluate a polynomial (lowest-degree coefficient first) at ``x``.

        Horner's rule over the field; used by Shamir share generation.
        """
        result = 0
        for coefficient in reversed(coefficients):
            result = (result * x + coefficient) % self.prime
        return result


#: Module-level default field instance (GF(2^61 - 1)).
DEFAULT_FIELD = PrimeField()
