"""Deterministic mask expansion: seed -> uniform vector over ``Z_m``.

Both mask kinds in the Bonawitz protocol — the pairwise masks derived
from DH seeds and the self-masks derived from ``b_u`` — are produced by
expanding a short seed into a length-``d`` vector of integers uniform
over ``Z_m``.  Correct dropout recovery requires that the server, given
a reconstructed seed, regenerates *bit-identical* masks, so the
expansion must be a deterministic function of the seed alone.

The default expansion is SHA-256 in counter mode: ``block_i =
SHA256(seed || i)``, concatenated and read as little-endian 64-bit
words.  For power-of-two moduli (every modulus the paper uses) the
words are masked to ``log2(m)`` bits, which is exactly uniform.  For
general moduli, rejection sampling below the largest multiple of ``m``
keeps the output exactly uniform rather than module-biased.

The actual computation lives in the vectorised kernel layer
(:mod:`repro.secagg.kernels`): this module keeps the stable functional
API, routes it through a selectable :class:`~repro.secagg.kernels.MaskPrg`
backend (SHA-256 counter mode by default, numpy Philox for speed), and
retains the original scalar implementation as
:func:`expand_mask_reference` — the baseline the golden-vector tests
and kernel micro-benchmarks compare against.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.secagg.kernels import MaskPrg, get_mask_prg

_BLOCK_WORDS = 4  # SHA-256 digest = 32 bytes = 4 uint64 words.


def _counter_words_reference(
    seed: bytes, num_words: int, offset: int = 0
) -> np.ndarray:
    """Generate ``num_words`` uint64 words from SHA-256(seed || counter)."""
    blocks = (num_words + _BLOCK_WORDS - 1) // _BLOCK_WORDS
    digest = b"".join(
        hashlib.sha256(seed + (offset + i).to_bytes(8, "little")).digest()
        for i in range(blocks)
    )
    return np.frombuffer(digest, dtype="<u8")[:num_words]


def expand_mask_reference(
    seed: bytes, dimension: int, modulus: int
) -> np.ndarray:
    """The retained scalar reference expansion (pre-kernel seed code).

    Kept verbatim so the vectorised :class:`Sha256CounterPrg` kernel can
    be asserted bit-identical forever, and as the scalar baseline for
    ``benchmarks/test_kernel_throughput.py``.  Production callers use
    :func:`expand_mask`.
    """
    if dimension < 0:
        raise ConfigurationError(f"dimension must be >= 0, got {dimension}")
    if modulus < 2:
        raise ConfigurationError(f"modulus must be >= 2, got {modulus}")
    if modulus & (modulus - 1) == 0:
        # Power of two: masking low bits of a uniform word is uniform.
        words = _counter_words_reference(seed, dimension)
        return (words & np.uint64(modulus - 1)).astype(np.int64)
    # General modulus: rejection-sample below the largest multiple of m
    # representable in 64 bits, so the residue is exactly uniform.
    limit = (1 << 64) - ((1 << 64) % modulus)
    out = np.empty(dimension, dtype=np.int64)
    filled = 0
    offset = 0
    while filled < dimension:
        want = dimension - filled
        words = _counter_words_reference(seed, 2 * want + _BLOCK_WORDS, offset)
        offset += (len(words) + _BLOCK_WORDS - 1) // _BLOCK_WORDS
        accepted = words[words < np.uint64(limit)]
        take = min(want, len(accepted))
        out[filled : filled + take] = (
            accepted[:take] % np.uint64(modulus)
        ).astype(np.int64)
        filled += take
    return out


def expand_mask(
    seed: bytes,
    dimension: int,
    modulus: int,
    prg: MaskPrg | str | None = None,
) -> np.ndarray:
    """Expand ``seed`` into a deterministic uniform vector over ``Z_m``.

    Args:
        seed: Arbitrary-length byte seed (32 bytes in the protocol).
        dimension: Output length ``d``.
        modulus: The group modulus ``m >= 2``.
        prg: Mask PRG backend — a registered name (``"sha256-ctr"``,
            ``"philox"``), a :class:`~repro.secagg.kernels.MaskPrg`
            instance, or None for the bit-compatible SHA-256 default.

    Returns:
        Length-``d`` int64 array with entries in ``[0, m)``; identical
        for identical ``(seed, dimension, modulus)`` and backend.

    Raises:
        ConfigurationError: On a negative dimension, modulus < 2, or an
            unknown backend name.
    """
    return get_mask_prg(prg).expand(seed, dimension, modulus)


def pairwise_delta(
    seed: bytes,
    dimension: int,
    modulus: int,
    sign: int,
    prg: MaskPrg | str | None = None,
) -> np.ndarray:
    """The signed pairwise-mask contribution of one participant.

    Participant ``u`` adds ``+PRG(s_uv)`` for every peer ``v > u`` and
    ``-PRG(s_uv)`` for every peer ``v < u`` (mod ``m``); the two
    contributions cancel in the aggregate.

    Args:
        seed: The shared pairwise seed ``s_uv``.
        dimension: Vector length.
        modulus: Group modulus.
        sign: ``+1`` for the lower-indexed party, ``-1`` for the higher.
        prg: Mask PRG backend (see :func:`expand_mask`).

    Returns:
        The signed mask, reduced into ``[0, m)``.
    """
    if sign not in (1, -1):
        raise ConfigurationError(f"sign must be +1 or -1, got {sign}")
    mask = expand_mask(seed, dimension, modulus, prg)
    return mask if sign == 1 else np.mod(-mask, modulus)
