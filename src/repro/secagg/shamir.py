"""Shamir t-out-of-n secret sharing over a prime field.

The Bonawitz et al. SecAgg protocol (Section 4 of their paper; our
:mod:`repro.secagg.bonawitz`) distributes two secrets per participant —
the self-mask seed ``b_u`` and the pairwise-mask private key ``s_u^SK`` —
as Shamir shares, so the server can recover exactly one of the two for
each participant during dropout recovery, with any ``t`` of the surviving
participants' shares.

A degree-``t - 1`` polynomial ``f`` with ``f(0) = secret`` is sampled
uniformly; participant ``i`` receives the share ``(i, f(i))``.  Any ``t``
shares determine ``f`` (and hence the secret) by Lagrange interpolation;
any ``t - 1`` shares are jointly uniform and reveal nothing.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.secagg.field import DEFAULT_FIELD, PrimeField


@dataclasses.dataclass(frozen=True)
class Share:
    """One Shamir share ``(x, f(x))``.

    Attributes:
        x: The (nonzero) evaluation point identifying the recipient.
        y: The polynomial value at ``x``.
    """

    x: int
    y: int


def split_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: np.random.Generator,
    field: PrimeField = DEFAULT_FIELD,
) -> list[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.

    Args:
        secret: The secret, an integer in ``[0, field.prime)``.
        threshold: Minimum number of shares needed to reconstruct (``t``).
        num_shares: Total number of shares issued (``n``).
        rng: Source of the random polynomial coefficients.
        field: The field to share over.

    Returns:
        Shares at evaluation points ``x = 1..num_shares``.

    Raises:
        ConfigurationError: If the parameters are inconsistent (threshold
            outside ``[1, num_shares]``, secret outside the field, or more
            shares requested than field elements permit).
    """
    if not 0 <= secret < field.prime:
        raise ConfigurationError(
            f"secret must lie in [0, {field.prime}), got {secret}"
        )
    if threshold < 1:
        raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
    if num_shares < threshold:
        raise ConfigurationError(
            f"cannot issue {num_shares} shares with threshold {threshold}"
        )
    if num_shares >= field.prime:
        raise ConfigurationError(
            f"at most {field.prime - 1} shares exist over GF({field.prime})"
        )
    # Coefficients a_0 = secret, a_1..a_{t-1} uniform: f of degree t-1.
    coefficients = [secret] + [
        int(rng.integers(0, field.prime)) for _ in range(threshold - 1)
    ]
    return [
        Share(x=x, y=field.evaluate_polynomial(coefficients, x))
        for x in range(1, num_shares + 1)
    ]


def _check_shares(shares: Sequence[Share], field: PrimeField) -> None:
    if not shares:
        raise AggregationError("cannot reconstruct from zero shares")
    xs = [share.x for share in shares]
    if len(set(xs)) != len(xs):
        raise AggregationError(f"duplicate share points: {sorted(xs)}")
    for share in shares:
        if not 0 < share.x < field.prime:
            raise AggregationError(
                f"share point {share.x} outside (0, {field.prime})"
            )
        if not 0 <= share.y < field.prime:
            raise AggregationError(
                f"share value {share.y} outside [0, {field.prime})"
            )


@dataclasses.dataclass(frozen=True)
class LimbShares:
    """One recipient's shares of a large (multi-limb) secret.

    Large secrets — e.g. 1024-bit Diffie-Hellman private keys — do not
    fit in one field element, so they are decomposed into base-``2^b``
    limbs and each limb is Shamir-shared independently.  All limbs use
    the same evaluation point ``x``, so one recipient holds one
    :class:`LimbShares` per secret.

    Attributes:
        x: The recipient's evaluation point.
        ys: Per-limb polynomial values, lowest limb first.
    """

    x: int
    ys: tuple[int, ...]


#: Limb width used for large-secret sharing over the default 61-bit field.
DEFAULT_LIMB_BITS = 60


def split_large_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: np.random.Generator,
    field: PrimeField = DEFAULT_FIELD,
    limb_bits: int = DEFAULT_LIMB_BITS,
) -> list[LimbShares]:
    """Share a non-negative integer of arbitrary size.

    The secret is decomposed into base-``2^limb_bits`` limbs; each limb is
    shared with an independent random polynomial.  At least one limb is
    always produced so zero-valued secrets round-trip.

    Args:
        secret: Non-negative integer (any size).
        threshold: Reconstruction threshold ``t``.
        num_shares: Number of recipients ``n``.
        rng: Polynomial randomness.
        field: Field for each limb; ``2^limb_bits`` must not exceed it.
        limb_bits: Bits per limb.

    Returns:
        One :class:`LimbShares` per recipient (``x = 1..num_shares``).

    Raises:
        ConfigurationError: On a negative secret or a limb width that does
            not fit the field.
    """
    if secret < 0:
        raise ConfigurationError(f"secret must be >= 0, got {secret}")
    if not 1 <= limb_bits or (1 << limb_bits) > field.prime:
        raise ConfigurationError(
            f"limb width {limb_bits} does not fit GF({field.prime})"
        )
    limbs: list[int] = []
    remaining = secret
    while True:
        limbs.append(remaining & ((1 << limb_bits) - 1))
        remaining >>= limb_bits
        if remaining == 0:
            break
    per_limb = [
        split_secret(limb, threshold, num_shares, rng, field)
        for limb in limbs
    ]
    return [
        LimbShares(
            x=x, ys=tuple(per_limb[k][x - 1].y for k in range(len(limbs)))
        )
        for x in range(1, num_shares + 1)
    ]


def reconstruct_large_secret(
    shares: Iterable[LimbShares],
    field: PrimeField = DEFAULT_FIELD,
    limb_bits: int = DEFAULT_LIMB_BITS,
) -> int:
    """Recover a large secret from at least ``threshold`` limb-share sets.

    Args:
        shares: :class:`LimbShares` from distinct recipients, all with the
            same number of limbs.
        field: Field the limbs were shared over.
        limb_bits: Limb width used at split time.

    Returns:
        The reassembled integer.

    Raises:
        AggregationError: If share sets disagree on the limb count or are
            otherwise malformed.
    """
    shares = list(shares)
    if not shares:
        raise AggregationError("cannot reconstruct from zero shares")
    num_limbs = len(shares[0].ys)
    if any(len(share.ys) != num_limbs for share in shares):
        raise AggregationError("limb counts disagree across shares")
    secret = 0
    for k in range(num_limbs - 1, -1, -1):
        limb = reconstruct_secret(
            [Share(x=share.x, y=share.ys[k]) for share in shares], field
        )
        secret = (secret << limb_bits) | limb
    return secret


def reconstruct_secret(
    shares: Iterable[Share], field: PrimeField = DEFAULT_FIELD
) -> int:
    """Recover the secret from at least ``threshold`` shares.

    Lagrange interpolation at ``x = 0``.  The caller is responsible for
    supplying at least ``threshold`` shares; fewer shares reconstruct
    *some* polynomial but yield an unrelated (uniform) value, which is the
    security property, not an error the math can detect.

    Args:
        shares: Distinct shares of one secret.
        field: The field the shares live in.

    Returns:
        The reconstructed secret ``f(0)``.

    Raises:
        AggregationError: On duplicate or out-of-field shares.
    """
    shares = list(shares)
    _check_shares(shares, field)
    secret = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = field.mul(numerator, field.neg(share_j.x))
            denominator = field.mul(
                denominator, field.sub(share_i.x, share_j.x)
            )
        weight = field.mul(numerator, field.inv(denominator))
        secret = field.add(secret, field.mul(share_i.y, weight))
    return secret
