"""Shamir t-out-of-n secret sharing over a prime field.

The Bonawitz et al. SecAgg protocol (Section 4 of their paper; our
:mod:`repro.secagg.bonawitz`) distributes two secrets per participant —
the self-mask seed ``b_u`` and the pairwise-mask private key ``s_u^SK`` —
as Shamir shares, so the server can recover exactly one of the two for
each participant during dropout recovery, with any ``t`` of the surviving
participants' shares.

A degree-``t - 1`` polynomial ``f`` with ``f(0) = secret`` is sampled
uniformly; participant ``i`` receives the share ``(i, f(i))``.  Any ``t``
shares determine ``f`` (and hence the secret) by Lagrange interpolation;
any ``t - 1`` shares are jointly uniform and reveal nothing.

Two code paths produce identical reconstructions:

* the **vectorised kernels** (:mod:`repro.secagg.kernels`) — batched
  Horner evaluation and shared-weight Lagrange interpolation over
  uint64 arrays, used automatically whenever the field modulus fits the
  limb-split arithmetic (every default configuration); and
* the **scalar reference path** (:func:`split_secret_scalar`,
  :func:`reconstruct_secret_scalar`) — the original per-share,
  per-coefficient loops over Python integers, retained both for fields
  larger than ``2^61`` and as the equivalence baseline the property
  tests (``tests/test_shamir.py``) drive against the kernels.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import NamedTuple

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.linalg.modular import LIMB_SPLIT_MAX_MODULUS
from repro.secagg import kernels
from repro.secagg.field import DEFAULT_FIELD, PrimeField


class Share(NamedTuple):
    """One Shamir share ``(x, f(x))``.

    A NamedTuple rather than a dataclass: the protocol constructs one
    share object per (sender, recipient) pair — quadratically many per
    round — and tuple construction is several times cheaper.

    Attributes:
        x: The (nonzero) evaluation point identifying the recipient.
        y: The polynomial value at ``x``.
    """

    x: int
    y: int


def _uses_kernels(field: PrimeField) -> bool:
    """Whether the limb-split kernels cover this field."""
    return field.prime <= LIMB_SPLIT_MAX_MODULUS


def _validate_split_parameters(
    secret: int, threshold: int, num_shares: int, field: PrimeField
) -> None:
    if not 0 <= secret < field.prime:
        raise ConfigurationError(
            f"secret must lie in [0, {field.prime}), got {secret}"
        )
    if threshold < 1:
        raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
    if num_shares < threshold:
        raise ConfigurationError(
            f"cannot issue {num_shares} shares with threshold {threshold}"
        )
    if num_shares >= field.prime:
        raise ConfigurationError(
            f"at most {field.prime - 1} shares exist over GF({field.prime})"
        )


def split_secret_scalar(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: np.random.Generator,
    field: PrimeField = DEFAULT_FIELD,
) -> list[Share]:
    """Scalar reference split: per-coefficient draws, per-share Horner.

    The pre-kernel seed implementation, retained verbatim.  Produces
    shares with the same distribution as :func:`split_secret` (both
    sample uniform polynomials) and identical reconstructions.
    """
    _validate_split_parameters(secret, threshold, num_shares, field)
    # Coefficients a_0 = secret, a_1..a_{t-1} uniform: f of degree t-1.
    coefficients = [secret] + [
        int(rng.integers(0, field.prime)) for _ in range(threshold - 1)
    ]
    return [
        Share(x=x, y=field.evaluate_polynomial(coefficients, x))
        for x in range(1, num_shares + 1)
    ]


def split_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: np.random.Generator,
    field: PrimeField = DEFAULT_FIELD,
) -> list[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.

    Args:
        secret: The secret, an integer in ``[0, field.prime)``.
        threshold: Minimum number of shares needed to reconstruct (``t``).
        num_shares: Total number of shares issued (``n``).
        rng: Source of the random polynomial coefficients.
        field: The field to share over.

    Returns:
        Shares at evaluation points ``x = 1..num_shares``.

    Raises:
        ConfigurationError: If the parameters are inconsistent (threshold
            outside ``[1, num_shares]``, secret outside the field, or more
            shares requested than field elements permit).
    """
    _validate_split_parameters(secret, threshold, num_shares, field)
    if not _uses_kernels(field):
        return split_secret_scalar(secret, threshold, num_shares, rng, field)
    ys = kernels.batched_split(
        np.asarray([secret], dtype=np.uint64),
        threshold,
        num_shares,
        rng,
        field.prime,
    )[0]
    return [Share(x=x, y=int(ys[x - 1])) for x in range(1, num_shares + 1)]


def split_secrets(
    secrets: Sequence[int],
    threshold: int,
    num_shares: int,
    rng: np.random.Generator,
    field: PrimeField = DEFAULT_FIELD,
) -> np.ndarray:
    """Share many secrets over the same points in one vectorised call.

    Args:
        secrets: Secrets in ``[0, field.prime)``, one polynomial each.
        threshold: Reconstruction threshold ``t``.
        num_shares: Number of recipients ``n`` (points ``x = 1..n``).
        rng: Polynomial randomness.
        field: Field to share over (must fit the limb-split kernels for
            the fast path; larger fields fall back to the scalar loop).

    Returns:
        ``(len(secrets), num_shares)`` integer matrix; entry ``[i, j]``
        is secret ``i``'s share value at ``x = j + 1``.
    """
    for secret in secrets:
        _validate_split_parameters(int(secret), threshold, num_shares, field)
    if not _uses_kernels(field):
        rows = [
            [share.y for share in split_secret_scalar(
                int(secret), threshold, num_shares, rng, field
            )]
            for secret in secrets
        ]
        return np.asarray(rows, dtype=object)
    return kernels.batched_split(
        np.asarray(secrets, dtype=np.uint64),
        threshold,
        num_shares,
        rng,
        field.prime,
    )


def _check_shares(shares: Sequence[Share], field: PrimeField) -> None:
    if not shares:
        raise AggregationError("cannot reconstruct from zero shares")
    xs = [share.x for share in shares]
    if len(set(xs)) != len(xs):
        raise AggregationError(f"duplicate share points: {sorted(xs)}")
    for share in shares:
        if not 0 < share.x < field.prime:
            raise AggregationError(
                f"share point {share.x} outside (0, {field.prime})"
            )
        if not 0 <= share.y < field.prime:
            raise AggregationError(
                f"share value {share.y} outside [0, {field.prime})"
            )


class LimbShares(NamedTuple):
    """One recipient's shares of a large (multi-limb) secret.

    Large secrets — e.g. 1024-bit Diffie-Hellman private keys — do not
    fit in one field element, so they are decomposed into base-``2^b``
    limbs and each limb is Shamir-shared independently.  All limbs use
    the same evaluation point ``x``, so one recipient holds one
    :class:`LimbShares` per secret.

    Attributes:
        x: The recipient's evaluation point.
        ys: Per-limb polynomial values, lowest limb first.
    """

    x: int
    ys: tuple[int, ...]


#: Limb width used for large-secret sharing over the default 61-bit field.
DEFAULT_LIMB_BITS = 60


def _secret_limbs(secret: int, limb_bits: int) -> list[int]:
    """Base-``2^limb_bits`` decomposition, lowest limb first, >= 1 limb."""
    limbs: list[int] = []
    remaining = secret
    while True:
        limbs.append(remaining & ((1 << limb_bits) - 1))
        remaining >>= limb_bits
        if remaining == 0:
            break
    return limbs


def split_large_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: np.random.Generator,
    field: PrimeField = DEFAULT_FIELD,
    limb_bits: int = DEFAULT_LIMB_BITS,
) -> list[LimbShares]:
    """Share a non-negative integer of arbitrary size.

    The secret is decomposed into base-``2^limb_bits`` limbs; each limb is
    shared with an independent random polynomial (all limbs in one
    vectorised kernel call).  At least one limb is always produced so
    zero-valued secrets round-trip.

    Args:
        secret: Non-negative integer (any size).
        threshold: Reconstruction threshold ``t``.
        num_shares: Number of recipients ``n``.
        rng: Polynomial randomness.
        field: Field for each limb; ``2^limb_bits`` must not exceed it.
        limb_bits: Bits per limb.

    Returns:
        One :class:`LimbShares` per recipient (``x = 1..num_shares``).

    Raises:
        ConfigurationError: On a negative secret or a limb width that does
            not fit the field.
    """
    if secret < 0:
        raise ConfigurationError(f"secret must be >= 0, got {secret}")
    if not 1 <= limb_bits or (1 << limb_bits) > field.prime:
        raise ConfigurationError(
            f"limb width {limb_bits} does not fit GF({field.prime})"
        )
    limbs = _secret_limbs(secret, limb_bits)
    # (num_limbs, num_shares): one row of share values per limb.
    per_limb = split_secrets(limbs, threshold, num_shares, rng, field)
    return [
        LimbShares(
            x=x,
            ys=tuple(int(per_limb[k, x - 1]) for k in range(len(limbs))),
        )
        for x in range(1, num_shares + 1)
    ]


def reconstruct_large_secret(
    shares: Iterable[LimbShares],
    field: PrimeField = DEFAULT_FIELD,
    limb_bits: int = DEFAULT_LIMB_BITS,
) -> int:
    """Recover a large secret from at least ``threshold`` limb-share sets.

    Args:
        shares: :class:`LimbShares` from distinct recipients, all with the
            same number of limbs.
        field: Field the limbs were shared over.
        limb_bits: Limb width used at split time.

    Returns:
        The reassembled integer.

    Raises:
        AggregationError: If share sets disagree on the limb count or are
            otherwise malformed.
    """
    shares = list(shares)
    if not shares:
        raise AggregationError("cannot reconstruct from zero shares")
    num_limbs = len(shares[0].ys)
    if any(len(share.ys) != num_limbs for share in shares):
        raise AggregationError("limb counts disagree across shares")
    xs = [share.x for share in shares]
    limb_values = reconstruct_secrets(
        xs, [[share.ys[k] for share in shares] for k in range(num_limbs)],
        field,
    )
    secret = 0
    for limb in reversed(limb_values):
        secret = (secret << limb_bits) | int(limb)
    return secret


def reconstruct_secret_scalar(
    shares: Iterable[Share], field: PrimeField = DEFAULT_FIELD
) -> int:
    """Scalar reference reconstruction: per-pair Lagrange loops.

    The pre-kernel seed implementation, retained verbatim; the property
    suite asserts it agrees with :func:`reconstruct_secret` share for
    share.
    """
    shares = list(shares)
    _check_shares(shares, field)
    secret = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = field.mul(numerator, field.neg(share_j.x))
            denominator = field.mul(
                denominator, field.sub(share_i.x, share_j.x)
            )
        weight = field.mul(numerator, field.inv(denominator))
        secret = field.add(secret, field.mul(share_i.y, weight))
    return secret


def reconstruct_secret(
    shares: Iterable[Share], field: PrimeField = DEFAULT_FIELD
) -> int:
    """Recover the secret from at least ``threshold`` shares.

    Lagrange interpolation at ``x = 0``.  The caller is responsible for
    supplying at least ``threshold`` shares; fewer shares reconstruct
    *some* polynomial but yield an unrelated (uniform) value, which is the
    security property, not an error the math can detect.

    Args:
        shares: Distinct shares of one secret.
        field: The field the shares live in.

    Returns:
        The reconstructed secret ``f(0)``.

    Raises:
        AggregationError: On duplicate or out-of-field shares.
    """
    shares = list(shares)
    if not _uses_kernels(field):
        return reconstruct_secret_scalar(shares, field)
    _check_shares(shares, field)
    result = kernels.batched_reconstruct(
        np.asarray([share.x for share in shares], dtype=np.uint64),
        np.asarray([[share.y for share in shares]], dtype=np.uint64),
        field.prime,
    )
    return int(result[0])


def reconstruct_secrets(
    xs: Sequence[int],
    ys_rows: Sequence[Sequence[int]],
    field: PrimeField = DEFAULT_FIELD,
) -> list[int]:
    """Reconstruct many secrets whose shares sit at the same points.

    The dropout-recovery workhorse: the server holds shares from one
    fixed responder set, so every secret (per-survivor seeds, per-limb
    key values) shares the evaluation points and the Lagrange weights
    are computed once.

    Args:
        xs: Distinct nonzero share points, shared by all secrets.
        ys_rows: One row of share values per secret, aligned with ``xs``.
        field: The field the shares live in.

    Returns:
        One reconstructed secret per row.

    Raises:
        AggregationError: On duplicate/out-of-field points, inconsistent
            row lengths, or zero shares.
    """
    xs = list(xs)
    rows = [list(row) for row in ys_rows]
    if any(len(row) != len(xs) for row in rows):
        raise AggregationError(
            "share rows and points disagree: "
            f"{sorted({len(row) for row in rows})} values vs {len(xs)} points"
        )
    if not rows:
        return []
    if not _uses_kernels(field):
        return [
            reconstruct_secret_scalar(
                [Share(x=x, y=y) for x, y in zip(xs, row)], field
            )
            for row in rows
        ]
    _check_shares(
        [Share(x=xs[j], y=rows[0][j]) for j in range(len(xs))], field
    )
    result = kernels.batched_reconstruct(
        np.asarray(xs, dtype=np.uint64),
        np.asarray(rows, dtype=np.uint64),
        field.prime,
    )
    return [int(value) for value in result]
