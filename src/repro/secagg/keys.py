"""Simulated Diffie-Hellman key agreement for pairwise mask seeds.

In the Bonawitz et al. protocol every ordered participant pair ``(u, v)``
derives a shared mask seed ``s_uv`` from a Diffie-Hellman exchange:
``s_uv = KDF(g^{a_u a_v} mod p)``, where ``a_u`` is participant ``u``'s
private key and ``g^{a_u}`` the advertised public key.  Agreement is
symmetric — ``agree(sk_u, pk_v) == agree(sk_v, pk_u)`` — which is exactly
the property that makes the pairwise masks cancel.

Real deployments use elliptic-curve groups; this simulation uses classic
modular-exponentiation DH over a published safe-prime group (RFC 2409
Oakley Group 2) by default, and accepts a small toy group for fast tests.
The derived key is the SHA-256 hash of the shared group element, giving a
32-byte seed for the mask PRG.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.secagg.field import _is_probable_prime

#: RFC 2409 (Oakley) Group 2: a 1024-bit safe prime with generator 2.
OAKLEY_GROUP_2_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)


@dataclasses.dataclass(frozen=True)
class DhGroup:
    """A cyclic group for Diffie-Hellman: prime modulus and generator.

    Attributes:
        prime: The group modulus ``p`` (validated prime).
        generator: The public generator ``g``.
    """

    prime: int = OAKLEY_GROUP_2_PRIME
    generator: int = 2

    def __post_init__(self) -> None:
        if self.prime < 5 or not _is_probable_prime(self.prime):
            raise ConfigurationError(
                f"DH modulus must be a prime >= 5, got bit-length "
                f"{self.prime.bit_length()}"
            )
        if not 1 < self.generator < self.prime:
            raise ConfigurationError(
                f"generator must lie in (1, p), got {self.generator}"
            )


#: A 61-bit toy group for unit tests (fast exponentiation, same API).
TOY_GROUP = DhGroup(prime=(1 << 61) - 1, generator=3)


#: Lazily imported ``cryptography`` x25519 module; ``False`` once the
#: import has failed (tests monkeypatch this to force the fallback path).
_x25519_module: object = None


def _x25519():
    global _x25519_module
    if _x25519_module is None:
        try:
            from cryptography.hazmat.primitives.asymmetric import x25519

            _x25519_module = x25519
        except ImportError:
            _x25519_module = False
    return _x25519_module or None


def x25519_available() -> bool:
    """Whether the optional ``cryptography`` X25519 backend can be used."""
    return _x25519() is not None


def _require_x25519():
    module = _x25519()
    if module is None:
        raise ConfigurationError(
            "x25519 key agreement requires the optional 'cryptography' "
            "package; install it or use a DhGroup"
        )
    return module


@dataclasses.dataclass(frozen=True)
class X25519Group:
    """Curve25519 key agreement via the optional ``cryptography`` package.

    Drop-in second key-agreement backend beside :class:`DhGroup`: key
    material still travels as Python ints on the existing wire format
    (32 raw curve bytes, little-endian), and :func:`agree` still derives
    ``SHA-256(shared)``.  Constructing the group never imports
    ``cryptography`` — availability is checked at use time, so callers
    can fall back gracefully via :func:`resolve_group`.

    Attributes:
        name: The negotiated backend token (always ``"x25519"``).
    """

    name: str = "x25519"

    def __post_init__(self) -> None:
        if self.name != "x25519":
            raise ConfigurationError(
                f"unknown key-agreement backend {self.name!r}"
            )


#: The singleton X25519 backend instance.
X25519_GROUP = X25519Group()

#: Either key-agreement backend, where both are accepted.
KeyAgreementGroup = DhGroup | X25519Group


def key_bits(group: KeyAgreementGroup) -> int:
    """Bit width of the secret scalar for Shamir limb padding."""
    if isinstance(group, X25519Group):
        return 256
    return group.prime.bit_length()


def kex_name(group: KeyAgreementGroup) -> str:
    """The negotiated key-agreement token for a group."""
    if isinstance(group, X25519Group):
        return "x25519"
    return "mod-dh"


def resolve_group(
    group: KeyAgreementGroup, fallback: DhGroup = TOY_GROUP
) -> KeyAgreementGroup:
    """Degrade an X25519 request to ``fallback`` when the lib is absent.

    The graceful-fallback seam: sessions resolve their configured group
    through this before advertising a suite at Hello, so a participant
    without ``cryptography`` cleanly negotiates modular DH instead of
    crashing mid-round.
    """
    if isinstance(group, X25519Group) and not x25519_available():
        return fallback
    return group


def _check_public(peer_public: int, group: KeyAgreementGroup) -> None:
    if isinstance(group, X25519Group):
        if not 0 < peer_public < (1 << 256):
            raise ConfigurationError(
                "peer public key must be a nonzero 32-byte x25519 point, "
                f"got {peer_public}"
            )
    elif not 1 < peer_public < group.prime:
        raise ConfigurationError(
            f"peer public key must lie in (1, p), got {peer_public}"
        )


def _x25519_private(private: int):
    module = _require_x25519()
    return module.X25519PrivateKey.from_private_bytes(
        private.to_bytes(32, "little")
    )


def _x25519_derive(private_key, peer_public: int) -> bytes:
    module = _require_x25519()
    try:
        shared = private_key.exchange(
            module.X25519PublicKey.from_public_bytes(
                peer_public.to_bytes(32, "little")
            )
        )
    except ValueError as exc:
        raise ConfigurationError(
            f"x25519 exchange with {peer_public} is degenerate: {exc}"
        ) from exc
    return hashlib.sha256(shared).digest()


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """A DH key pair.

    Attributes:
        private: The secret exponent ``a``.
        public: The advertised group element ``g^a mod p``.
        group: The group both live in.
    """

    private: int
    public: int
    group: KeyAgreementGroup

    def __post_init__(self) -> None:
        if isinstance(self.group, X25519Group):
            derived = _x25519_private(self.private)
            public = int.from_bytes(
                derived.public_key().public_bytes_raw(), "little"
            )
            if public != self.public:
                raise ConfigurationError(
                    "public key does not match private key"
                )
            return
        if pow(self.group.generator, self.private, self.group.prime) != (
            self.public
        ):
            raise ConfigurationError("public key does not match private key")


def generate_keypair(
    rng: np.random.Generator, group: KeyAgreementGroup = DhGroup()
) -> KeyPair:
    """Sample a fresh DH key pair.

    Args:
        rng: Randomness source for the private exponent.
        group: The DH group to draw from.

    Returns:
        A consistent (private, public) pair.
    """
    if isinstance(group, X25519Group):
        # Both ints are the little-endian view of the 32 raw curve
        # bytes; from_private_bytes round-trips them unchanged (clamping
        # happens inside the exchange), so the int form is stable.
        raw = rng.integers(0, 256, size=32, dtype=np.uint8).tobytes()
        private_key = _require_x25519().X25519PrivateKey.from_private_bytes(
            raw
        )
        private = int.from_bytes(private_key.private_bytes_raw(), "little")
        public = int.from_bytes(
            private_key.public_key().public_bytes_raw(), "little"
        )
        return KeyPair(private=private, public=public, group=group)
    # Private exponents in [2, p - 2]; sampled in 63-bit limbs so the
    # range covers the full group even for 1024-bit primes.
    limbs = (group.prime.bit_length() + 62) // 63
    value = 0
    for _ in range(limbs):
        value = (value << 63) | int(rng.integers(0, 1 << 63))
    private = 2 + value % (group.prime - 3)
    public = pow(group.generator, private, group.prime)
    return KeyPair(private=private, public=public, group=group)


#: Bounded memo of agreed keys: one inner dict per group, keyed by the
#: *unordered* public pair.  ``agree(sk_u, pk_v) == agree(sk_v, pk_u)``
#: by DH symmetry, so when a caller supplies its own public element the
#: simulation computes each pairwise exponentiation once instead of once
#: per endpoint — and the server's dropout-recovery agreements hit the
#: entries the surviving clients already produced.  Bounded per group;
#: sized to hold every pair of one full-cohort 512-client round
#: (two key sets per pair) with headroom.  When full the cache is
#: cleared outright rather than evicted entry-by-entry: key pairs are
#: fresh every round, so old entries are dead weight, and one-at-a-time
#: FIFO eviction on a large dict degrades quadratically on tombstones.
_PAIR_CACHE_MAX = 300_000
_pair_caches: dict[tuple[object, object], dict[tuple[int, int], bytes]] = {}


def _group_cache(group: KeyAgreementGroup) -> dict[tuple[int, int], bytes]:
    if isinstance(group, X25519Group):
        return _pair_caches.setdefault(("x25519", 0), {})
    return _pair_caches.setdefault((group.prime, group.generator), {})


def agree(
    private: int,
    peer_public: int,
    group: KeyAgreementGroup,
    own_public: int | None = None,
) -> bytes:
    """Derive the shared 32-byte seed from one side of a DH exchange.

    Args:
        private: This party's secret exponent.
        peer_public: The other party's advertised public element.
        group: The common group.
        own_public: This party's advertised public element
            (``g^private``).  Optional pure optimisation: when given,
            the derived key is memoised under the unordered public pair
            so the peer's (and the recovery server's) mirror-image call
            skips the modular exponentiation.  The returned bytes are
            identical either way.

    Returns:
        ``SHA-256(big-endian(peer_public ** private mod p))`` — identical
        for both parties of the exchange.

    Raises:
        ConfigurationError: If ``peer_public`` is outside ``(1, p)``
            (small-subgroup/identity elements are rejected).
    """
    _check_public(peer_public, group)
    cache = cache_key = None
    if own_public is not None:
        cache = _group_cache(group)
        if own_public <= peer_public:
            cache_key = (own_public, peer_public)
        else:
            cache_key = (peer_public, own_public)
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
    if isinstance(group, X25519Group):
        derived = _x25519_derive(_x25519_private(private), peer_public)
    else:
        shared = pow(peer_public, private, group.prime)
        width = (group.prime.bit_length() + 7) // 8
        derived = hashlib.sha256(shared.to_bytes(width, "big")).digest()
    if cache is not None:
        if len(cache) >= _PAIR_CACHE_MAX:
            cache.clear()
        cache[cache_key] = derived
    return derived


def warm_agreement_cache(
    privates: dict[int, int],
    publics: dict[int, int],
    group: KeyAgreementGroup,
) -> int:
    """Batch-derive every unordered pairwise key into the agree cache.

    A simulation-side accelerator: a real deployment computes the
    ``n(n-1)/2`` pairwise agreements on ``n`` machines in parallel, but
    the single-process simulation pays for all of them serially.  This
    sweep runs the whole cohort's exponentiations as one lane-per-pair
    vectorised square-and-multiply and memoises the results, so every
    subsequent :func:`agree`/:func:`agree_batch` call — client *or*
    server — is a dictionary hit.  Derived bytes are identical to the
    scalar path; groups beyond the limb-split kernels are skipped (the
    on-demand scalar path still works).

    Args:
        privates: Private exponent per participant index.
        publics: Matching public element (``g^private``) per index.
        group: The common group.

    Returns:
        Number of pairwise keys derived (0 if skipped or trivial).
    """
    from repro.linalg.modular import (
        LIMB_SPLIT_MAX_MODULUS,
        pow_mod_elementwise,
    )

    indices = sorted(privates)
    if len(indices) < 2:
        return 0
    if isinstance(group, X25519Group):
        # No batched kernel for the curve — but each unordered pair is
        # still derived once (native scalar mults) instead of once per
        # endpoint, and recovery agreements become dictionary hits.
        module = _require_x25519()
        private_keys = [_x25519_private(privates[i]) for i in indices]
        peer_keys = [
            module.X25519PublicKey.from_public_bytes(
                publics[i].to_bytes(32, "little")
            )
            for i in indices
        ]
        sha256 = hashlib.sha256
        cache = _group_cache(group)
        count = 0
        for lo in range(len(indices)):
            pub_lo = publics[indices[lo]]
            for hi in range(lo + 1, len(indices)):
                derived = sha256(
                    private_keys[lo].exchange(peer_keys[hi])
                ).digest()
                a, b = pub_lo, publics[indices[hi]]
                if a > b:
                    a, b = b, a
                if len(cache) >= _PAIR_CACHE_MAX:
                    cache.clear()
                cache[(a, b)] = derived
                count += 1
        return count
    if group.prime > LIMB_SPLIT_MAX_MODULUS:
        return 0
    private_array = np.asarray(
        [privates[i] for i in indices], dtype=np.uint64
    )
    public_array = np.asarray([publics[i] for i in indices], dtype=np.uint64)
    lo_lane, hi_lane = np.triu_indices(len(indices), k=1)
    shared = pow_mod_elementwise(
        public_array[hi_lane], private_array[lo_lane], group.prime
    ).tolist()
    pub_lo = public_array[lo_lane].tolist()
    pub_hi = public_array[hi_lane].tolist()
    width = (group.prime.bit_length() + 7) // 8
    sha256 = hashlib.sha256
    cache = _group_cache(group)
    for pair, value in enumerate(shared):
        derived = sha256(value.to_bytes(width, "big")).digest()
        a, b = pub_lo[pair], pub_hi[pair]
        if a > b:
            a, b = b, a
        if len(cache) >= _PAIR_CACHE_MAX:
            cache.clear()
        cache[(a, b)] = derived
    return len(shared)


def agree_batch(
    private: int,
    peer_publics: list[int],
    group: KeyAgreementGroup,
    own_public: int | None = None,
) -> list[bytes]:
    """Derive shared seeds with many peers in one vectorised sweep.

    Byte-identical to calling :func:`agree` per peer, but the modular
    exponentiations for cache-missing peers run as one batched
    square-and-multiply over uint64 arrays
    (:func:`repro.linalg.modular.pow_mod`) when the group fits the
    limb-split kernels — ~4× cheaper per peer than scalar ``pow`` —
    falling back to scalar ``pow`` for big groups.

    Args:
        private: This party's secret exponent.
        peer_publics: The peers' advertised public elements.
        group: The common group.
        own_public: This party's public element, enabling the symmetric
            pair cache (see :func:`agree`).

    Returns:
        One 32-byte derived key per peer, in input order.

    Raises:
        ConfigurationError: If any peer public key is out of range.
    """
    from repro.linalg.modular import LIMB_SPLIT_MAX_MODULUS, pow_mod

    results: list[bytes | None] = [None] * len(peer_publics)
    missing: list[int] = []
    if own_public is None:
        for position, peer_public in enumerate(peer_publics):
            _check_public(peer_public, group)
            missing.append(position)
    else:
        # Cached pairs were already range-checked when first derived, so
        # the hot (all-hits) path is one dict probe per peer; validation
        # runs only for misses before any exponentiation.
        cache = _group_cache(group)
        cache_get = cache.get
        for position, peer_public in enumerate(peer_publics):
            cached = cache_get(
                (own_public, peer_public)
                if own_public <= peer_public
                else (peer_public, own_public)
            )
            if cached is not None:
                results[position] = cached
            else:
                _check_public(peer_public, group)
                missing.append(position)
    if missing:
        if isinstance(group, X25519Group):
            private_key = _x25519_private(private)
            derived_values = [
                _x25519_derive(private_key, peer_publics[position])
                for position in missing
            ]
        else:
            prime = group.prime
            width = (prime.bit_length() + 7) // 8
            if prime <= LIMB_SPLIT_MAX_MODULUS and len(missing) > 8:
                bases = np.asarray(
                    [peer_publics[position] for position in missing],
                    dtype=np.uint64,
                )
                shared_values = pow_mod(bases, private, prime).tolist()
            else:
                shared_values = [
                    pow(peer_publics[position], private, prime)
                    for position in missing
                ]
            sha256 = hashlib.sha256
            derived_values = [
                sha256(int(shared).to_bytes(width, "big")).digest()
                for shared in shared_values
            ]
        cache = _group_cache(group) if own_public is not None else None
        for position, derived in zip(missing, derived_values):
            results[position] = derived
            if cache is not None:
                peer_public = peer_publics[position]
                if len(cache) >= _PAIR_CACHE_MAX:
                    cache.clear()
                cache[
                    (own_public, peer_public)
                    if own_public <= peer_public
                    else (peer_public, own_public)
                ] = derived
    return results  # type: ignore[return-value]
