"""Simulated Diffie-Hellman key agreement for pairwise mask seeds.

In the Bonawitz et al. protocol every ordered participant pair ``(u, v)``
derives a shared mask seed ``s_uv`` from a Diffie-Hellman exchange:
``s_uv = KDF(g^{a_u a_v} mod p)``, where ``a_u`` is participant ``u``'s
private key and ``g^{a_u}`` the advertised public key.  Agreement is
symmetric — ``agree(sk_u, pk_v) == agree(sk_v, pk_u)`` — which is exactly
the property that makes the pairwise masks cancel.

Real deployments use elliptic-curve groups; this simulation uses classic
modular-exponentiation DH over a published safe-prime group (RFC 2409
Oakley Group 2) by default, and accepts a small toy group for fast tests.
The derived key is the SHA-256 hash of the shared group element, giving a
32-byte seed for the mask PRG.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.secagg.field import _is_probable_prime

#: RFC 2409 (Oakley) Group 2: a 1024-bit safe prime with generator 2.
OAKLEY_GROUP_2_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)


@dataclasses.dataclass(frozen=True)
class DhGroup:
    """A cyclic group for Diffie-Hellman: prime modulus and generator.

    Attributes:
        prime: The group modulus ``p`` (validated prime).
        generator: The public generator ``g``.
    """

    prime: int = OAKLEY_GROUP_2_PRIME
    generator: int = 2

    def __post_init__(self) -> None:
        if self.prime < 5 or not _is_probable_prime(self.prime):
            raise ConfigurationError(
                f"DH modulus must be a prime >= 5, got bit-length "
                f"{self.prime.bit_length()}"
            )
        if not 1 < self.generator < self.prime:
            raise ConfigurationError(
                f"generator must lie in (1, p), got {self.generator}"
            )


#: A 61-bit toy group for unit tests (fast exponentiation, same API).
TOY_GROUP = DhGroup(prime=(1 << 61) - 1, generator=3)


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """A DH key pair.

    Attributes:
        private: The secret exponent ``a``.
        public: The advertised group element ``g^a mod p``.
        group: The group both live in.
    """

    private: int
    public: int
    group: DhGroup

    def __post_init__(self) -> None:
        if pow(self.group.generator, self.private, self.group.prime) != (
            self.public
        ):
            raise ConfigurationError("public key does not match private key")


def generate_keypair(
    rng: np.random.Generator, group: DhGroup = DhGroup()
) -> KeyPair:
    """Sample a fresh DH key pair.

    Args:
        rng: Randomness source for the private exponent.
        group: The DH group to draw from.

    Returns:
        A consistent (private, public) pair.
    """
    # Private exponents in [2, p - 2]; sampled in 63-bit limbs so the
    # range covers the full group even for 1024-bit primes.
    limbs = (group.prime.bit_length() + 62) // 63
    value = 0
    for _ in range(limbs):
        value = (value << 63) | int(rng.integers(0, 1 << 63))
    private = 2 + value % (group.prime - 3)
    public = pow(group.generator, private, group.prime)
    return KeyPair(private=private, public=public, group=group)


def agree(private: int, peer_public: int, group: DhGroup) -> bytes:
    """Derive the shared 32-byte seed from one side of a DH exchange.

    Args:
        private: This party's secret exponent.
        peer_public: The other party's advertised public element.
        group: The common group.

    Returns:
        ``SHA-256(big-endian(peer_public ** private mod p))`` — identical
        for both parties of the exchange.

    Raises:
        ConfigurationError: If ``peer_public`` is outside ``(1, p)``
            (small-subgroup/identity elements are rejected).
    """
    if not 1 < peer_public < group.prime:
        raise ConfigurationError(
            f"peer public key must lie in (1, p), got {peer_public}"
        )
    shared = pow(peer_public, private, group.prime)
    width = (group.prime.bit_length() + 7) // 8
    return hashlib.sha256(shared.to_bytes(width, "big")).digest()
