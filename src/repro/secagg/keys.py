"""Simulated Diffie-Hellman key agreement for pairwise mask seeds.

In the Bonawitz et al. protocol every ordered participant pair ``(u, v)``
derives a shared mask seed ``s_uv`` from a Diffie-Hellman exchange:
``s_uv = KDF(g^{a_u a_v} mod p)``, where ``a_u`` is participant ``u``'s
private key and ``g^{a_u}`` the advertised public key.  Agreement is
symmetric — ``agree(sk_u, pk_v) == agree(sk_v, pk_u)`` — which is exactly
the property that makes the pairwise masks cancel.

Real deployments use elliptic-curve groups; this simulation uses classic
modular-exponentiation DH over a published safe-prime group (RFC 2409
Oakley Group 2) by default, and accepts a small toy group for fast tests.
The derived key is the SHA-256 hash of the shared group element, giving a
32-byte seed for the mask PRG.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.secagg.field import _is_probable_prime

#: RFC 2409 (Oakley) Group 2: a 1024-bit safe prime with generator 2.
OAKLEY_GROUP_2_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)


@dataclasses.dataclass(frozen=True)
class DhGroup:
    """A cyclic group for Diffie-Hellman: prime modulus and generator.

    Attributes:
        prime: The group modulus ``p`` (validated prime).
        generator: The public generator ``g``.
    """

    prime: int = OAKLEY_GROUP_2_PRIME
    generator: int = 2

    def __post_init__(self) -> None:
        if self.prime < 5 or not _is_probable_prime(self.prime):
            raise ConfigurationError(
                f"DH modulus must be a prime >= 5, got bit-length "
                f"{self.prime.bit_length()}"
            )
        if not 1 < self.generator < self.prime:
            raise ConfigurationError(
                f"generator must lie in (1, p), got {self.generator}"
            )


#: A 61-bit toy group for unit tests (fast exponentiation, same API).
TOY_GROUP = DhGroup(prime=(1 << 61) - 1, generator=3)


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """A DH key pair.

    Attributes:
        private: The secret exponent ``a``.
        public: The advertised group element ``g^a mod p``.
        group: The group both live in.
    """

    private: int
    public: int
    group: DhGroup

    def __post_init__(self) -> None:
        if pow(self.group.generator, self.private, self.group.prime) != (
            self.public
        ):
            raise ConfigurationError("public key does not match private key")


def generate_keypair(
    rng: np.random.Generator, group: DhGroup = DhGroup()
) -> KeyPair:
    """Sample a fresh DH key pair.

    Args:
        rng: Randomness source for the private exponent.
        group: The DH group to draw from.

    Returns:
        A consistent (private, public) pair.
    """
    # Private exponents in [2, p - 2]; sampled in 63-bit limbs so the
    # range covers the full group even for 1024-bit primes.
    limbs = (group.prime.bit_length() + 62) // 63
    value = 0
    for _ in range(limbs):
        value = (value << 63) | int(rng.integers(0, 1 << 63))
    private = 2 + value % (group.prime - 3)
    public = pow(group.generator, private, group.prime)
    return KeyPair(private=private, public=public, group=group)


#: Bounded memo of agreed keys: one inner dict per group, keyed by the
#: *unordered* public pair.  ``agree(sk_u, pk_v) == agree(sk_v, pk_u)``
#: by DH symmetry, so when a caller supplies its own public element the
#: simulation computes each pairwise exponentiation once instead of once
#: per endpoint — and the server's dropout-recovery agreements hit the
#: entries the surviving clients already produced.  Bounded per group;
#: sized to hold every pair of one full-cohort 512-client round
#: (two key sets per pair) with headroom.  When full the cache is
#: cleared outright rather than evicted entry-by-entry: key pairs are
#: fresh every round, so old entries are dead weight, and one-at-a-time
#: FIFO eviction on a large dict degrades quadratically on tombstones.
_PAIR_CACHE_MAX = 300_000
_pair_caches: dict[tuple[int, int], dict[tuple[int, int], bytes]] = {}


def _group_cache(group: DhGroup) -> dict[tuple[int, int], bytes]:
    return _pair_caches.setdefault((group.prime, group.generator), {})


def agree(
    private: int,
    peer_public: int,
    group: DhGroup,
    own_public: int | None = None,
) -> bytes:
    """Derive the shared 32-byte seed from one side of a DH exchange.

    Args:
        private: This party's secret exponent.
        peer_public: The other party's advertised public element.
        group: The common group.
        own_public: This party's advertised public element
            (``g^private``).  Optional pure optimisation: when given,
            the derived key is memoised under the unordered public pair
            so the peer's (and the recovery server's) mirror-image call
            skips the modular exponentiation.  The returned bytes are
            identical either way.

    Returns:
        ``SHA-256(big-endian(peer_public ** private mod p))`` — identical
        for both parties of the exchange.

    Raises:
        ConfigurationError: If ``peer_public`` is outside ``(1, p)``
            (small-subgroup/identity elements are rejected).
    """
    if not 1 < peer_public < group.prime:
        raise ConfigurationError(
            f"peer public key must lie in (1, p), got {peer_public}"
        )
    cache = cache_key = None
    if own_public is not None:
        cache = _group_cache(group)
        if own_public <= peer_public:
            cache_key = (own_public, peer_public)
        else:
            cache_key = (peer_public, own_public)
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
    shared = pow(peer_public, private, group.prime)
    width = (group.prime.bit_length() + 7) // 8
    derived = hashlib.sha256(shared.to_bytes(width, "big")).digest()
    if cache is not None:
        if len(cache) >= _PAIR_CACHE_MAX:
            cache.clear()
        cache[cache_key] = derived
    return derived


def warm_agreement_cache(
    privates: dict[int, int], publics: dict[int, int], group: DhGroup
) -> int:
    """Batch-derive every unordered pairwise key into the agree cache.

    A simulation-side accelerator: a real deployment computes the
    ``n(n-1)/2`` pairwise agreements on ``n`` machines in parallel, but
    the single-process simulation pays for all of them serially.  This
    sweep runs the whole cohort's exponentiations as one lane-per-pair
    vectorised square-and-multiply and memoises the results, so every
    subsequent :func:`agree`/:func:`agree_batch` call — client *or*
    server — is a dictionary hit.  Derived bytes are identical to the
    scalar path; groups beyond the limb-split kernels are skipped (the
    on-demand scalar path still works).

    Args:
        privates: Private exponent per participant index.
        publics: Matching public element (``g^private``) per index.
        group: The common group.

    Returns:
        Number of pairwise keys derived (0 if skipped or trivial).
    """
    from repro.linalg.modular import (
        LIMB_SPLIT_MAX_MODULUS,
        pow_mod_elementwise,
    )

    indices = sorted(privates)
    if len(indices) < 2 or group.prime > LIMB_SPLIT_MAX_MODULUS:
        return 0
    private_array = np.asarray(
        [privates[i] for i in indices], dtype=np.uint64
    )
    public_array = np.asarray([publics[i] for i in indices], dtype=np.uint64)
    lo_lane, hi_lane = np.triu_indices(len(indices), k=1)
    shared = pow_mod_elementwise(
        public_array[hi_lane], private_array[lo_lane], group.prime
    ).tolist()
    pub_lo = public_array[lo_lane].tolist()
    pub_hi = public_array[hi_lane].tolist()
    width = (group.prime.bit_length() + 7) // 8
    sha256 = hashlib.sha256
    cache = _group_cache(group)
    for pair, value in enumerate(shared):
        derived = sha256(value.to_bytes(width, "big")).digest()
        a, b = pub_lo[pair], pub_hi[pair]
        if a > b:
            a, b = b, a
        if len(cache) >= _PAIR_CACHE_MAX:
            cache.clear()
        cache[(a, b)] = derived
    return len(shared)


def agree_batch(
    private: int,
    peer_publics: list[int],
    group: DhGroup,
    own_public: int | None = None,
) -> list[bytes]:
    """Derive shared seeds with many peers in one vectorised sweep.

    Byte-identical to calling :func:`agree` per peer, but the modular
    exponentiations for cache-missing peers run as one batched
    square-and-multiply over uint64 arrays
    (:func:`repro.linalg.modular.pow_mod`) when the group fits the
    limb-split kernels — ~4× cheaper per peer than scalar ``pow`` —
    falling back to scalar ``pow`` for big groups.

    Args:
        private: This party's secret exponent.
        peer_publics: The peers' advertised public elements.
        group: The common group.
        own_public: This party's public element, enabling the symmetric
            pair cache (see :func:`agree`).

    Returns:
        One 32-byte derived key per peer, in input order.

    Raises:
        ConfigurationError: If any peer public key is out of range.
    """
    from repro.linalg.modular import LIMB_SPLIT_MAX_MODULUS, pow_mod

    results: list[bytes | None] = [None] * len(peer_publics)
    missing: list[int] = []
    prime = group.prime
    if own_public is None:
        for position, peer_public in enumerate(peer_publics):
            if not 1 < peer_public < prime:
                raise ConfigurationError(
                    f"peer public key must lie in (1, p), got {peer_public}"
                )
            missing.append(position)
    else:
        # Cached pairs were already range-checked when first derived, so
        # the hot (all-hits) path is one dict probe per peer; validation
        # runs only for misses before any exponentiation.
        cache = _group_cache(group)
        cache_get = cache.get
        for position, peer_public in enumerate(peer_publics):
            cached = cache_get(
                (own_public, peer_public)
                if own_public <= peer_public
                else (peer_public, own_public)
            )
            if cached is not None:
                results[position] = cached
            else:
                if not 1 < peer_public < prime:
                    raise ConfigurationError(
                        "peer public key must lie in (1, p), got "
                        f"{peer_public}"
                    )
                missing.append(position)
    if missing:
        width = (prime.bit_length() + 7) // 8
        if prime <= LIMB_SPLIT_MAX_MODULUS and len(missing) > 8:
            bases = np.asarray(
                [peer_publics[position] for position in missing],
                dtype=np.uint64,
            )
            shared_values = pow_mod(bases, private, prime).tolist()
        else:
            shared_values = [
                pow(peer_publics[position], private, prime)
                for position in missing
            ]
        sha256 = hashlib.sha256
        cache = _group_cache(group) if own_public is not None else None
        for position, shared in zip(missing, shared_values):
            derived = sha256(int(shared).to_bytes(width, "big")).digest()
            results[position] = derived
            if cache is not None:
                peer_public = peer_publics[position]
                if len(cache) >= _PAIR_CACHE_MAX:
                    cache.clear()
                cache[
                    (own_public, peer_public)
                    if own_public <= peer_public
                    else (peer_public, own_public)
                ] = derived
    return results  # type: ignore[return-value]
