"""Vectorised SecAgg kernels: mask PRG backends and batched Shamir.

The Bonawitz protocol's two hot paths are embarrassingly batchable:

* **Mask expansion.**  Every client expands one pairwise seed per peer
  plus its self-mask seed; the server re-expands the same seeds during
  dropout recovery.  A full cohort of ``n`` clients expands ``Θ(n²)``
  masks per round.  The seed implementation hashed one counter block at
  a time through a Python generator; :class:`Sha256CounterPrg` instead
  precomputes the whole little-endian counter buffer with numpy and
  hashes it in a single tight loop over a reusable ``memoryview``,
  producing *bit-identical* output.  The backend sits behind the small
  :class:`MaskPrg` strategy interface so a protocol version can opt into
  the ~10× faster numpy-Philox backend (:class:`PhiloxPrg`) where
  SHA-256 compatibility is not required.

* **Shamir sharing.**  Each client splits its self-mask seed and every
  limb of its mask private key over the same ``n`` evaluation points,
  and the server reconstructs one secret per survivor from shares at the
  same ``t`` points.  :func:`batched_split` evaluates all polynomials at
  all points with one vectorised Horner recurrence
  (:func:`repro.linalg.modular.horner_mod`), and
  :func:`batched_reconstruct` computes the Lagrange weights once per
  point-set and applies them to every secret's share row — turning the
  per-share, per-coefficient Python loops into a handful of uint64 array
  operations using 128-bit-safe limb-split modular multiplication.

Both layers are exact: no floats, no wraparound, and the golden-vector
and property-test suites (``tests/test_keys_prg.py``,
``tests/test_shamir.py``) pin them against the retained scalar
reference paths.
"""

from __future__ import annotations

import abc
import hashlib
from collections.abc import Sequence

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.linalg.modular import (
    LIMB_SPLIT_MAX_MODULUS,
    horner_mod,
    inv_mod,
    mul_mod,
    sum_mod,
)

_BLOCK_WORDS = 4  # SHA-256 digest = 32 bytes = 4 uint64 words.
_DIGEST_BYTES = 32

#: Shared little-endian counter-block buffer, grown on demand (doubling)
#: and sliced by every expansion — "precompute once, hash in a tight
#: loop" instead of serialising each counter inside the hash loop.
_counter_buffer = np.arange(1024, dtype="<u8").tobytes()


def _counter_bytes(limit: int) -> bytes:
    """Counter buffer covering counters ``0..limit-1`` (8 bytes each)."""
    global _counter_buffer, _counter_slice_cache
    if limit * 8 > len(_counter_buffer):
        size = len(_counter_buffer) // 8
        while size < limit:
            size *= 2
        _counter_buffer = np.arange(size, dtype="<u8").tobytes()
        _counter_slice_cache = []
    return _counter_buffer


#: Pre-cut 8-byte counter slices (lazily extended), so batch hash loops
#: reuse one bytes object per counter instead of slicing per (seed, i).
_counter_slice_cache: list[bytes] = []


def _counter_slices(offset: int, blocks: int) -> list[bytes]:
    """8-byte little-endian counter slices for ``offset..offset+blocks-1``."""
    limit = offset + blocks
    buffer = _counter_bytes(limit)
    cache = _counter_slice_cache
    if len(cache) < limit:
        cache.extend(
            buffer[8 * i : 8 * i + 8] for i in range(len(cache), limit)
        )
    return cache[offset:limit]


def _validate_mask_request(dimension: int, modulus: int) -> None:
    if dimension < 0:
        raise ConfigurationError(f"dimension must be >= 0, got {dimension}")
    if modulus < 2:
        raise ConfigurationError(f"modulus must be >= 2, got {modulus}")


class MaskPrg(abc.ABC):
    """Strategy interface: expand a short seed to a vector over ``Z_m``.

    Implementations must be *pure*: ``expand`` is a deterministic
    function of ``(seed, dimension, modulus)`` alone, because dropout
    recovery depends on the server regenerating bit-identical masks from
    reconstructed seeds.  Prefixes must also be stable — expanding to a
    larger dimension extends the shorter expansion.
    """

    #: Registry / wire-format identifier for backend negotiation.
    name: str

    @abc.abstractmethod
    def expand(self, seed: bytes, dimension: int, modulus: int) -> np.ndarray:
        """Expand ``seed`` into a length-``dimension`` vector over ``Z_m``."""

    def expand_batch(
        self, seeds: Sequence[bytes], dimension: int, modulus: int
    ) -> np.ndarray:
        """Expand many seeds at once; returns a ``(len(seeds), d)`` array.

        The default implementation loops over :meth:`expand`; backends
        may override with something flatter.
        """
        _validate_mask_request(dimension, modulus)
        out = np.empty((len(seeds), dimension), dtype=np.int64)
        for row, seed in enumerate(seeds):
            out[row] = self.expand(seed, dimension, modulus)
        return out


def _words_to_residues_pow2(words: np.ndarray, modulus: int) -> np.ndarray:
    """Mask uniform uint64 words down to a power-of-two modulus."""
    return (words & np.uint64(modulus - 1)).astype(np.int64)


class Sha256CounterPrg(MaskPrg):
    """SHA-256 counter mode — the bit-identical compatibility default.

    ``block_i = SHA256(seed || i)`` with a little-endian 64-bit counter,
    blocks concatenated and read as little-endian uint64 words; power-of-
    two moduli mask low bits, general moduli rejection-sample below the
    largest multiple of ``m`` in 64 bits.  Identical output to the seed
    implementation (see the golden vectors in ``tests/test_keys_prg.py``)
    but ~3× faster: the counter buffer for all blocks is built in one
    numpy call and the hash loop reuses one message buffer through a
    ``memoryview`` instead of allocating per-block byte strings.
    """

    name = "sha256-ctr"

    #: Expansion memo budget in bytes.  Every pairwise mask is expanded
    #: once by *each* endpoint (and again by the server for dropout
    #: pairs), so memoising halves the protocol's SHA-256 volume; the
    #: cache clears wholesale when the budget is hit (entries are
    #: round-local, like the DH pair cache).
    CACHE_BUDGET_BYTES = 128 * 1024 * 1024

    def __init__(self) -> None:
        self._cache: dict[tuple[bytes, int, int], np.ndarray] = {}
        self._cache_bytes = 0

    def _cache_store(
        self, key: tuple[bytes, int, int], value: np.ndarray
    ) -> None:
        if self._cache_bytes + value.nbytes > self.CACHE_BUDGET_BYTES:
            self._cache.clear()
            self._cache_bytes = 0
        self._cache[key] = value
        self._cache_bytes += value.nbytes

    @staticmethod
    def _counter_digests(seed: bytes, blocks: int, offset: int = 0) -> bytes:
        """Concatenated ``SHA256(seed || i)`` for ``i`` in the block range."""
        sha256 = hashlib.sha256
        return b"".join(
            [
                sha256(seed + counter).digest()
                for counter in _counter_slices(offset, blocks)
            ]
        )

    def _counter_words(
        self, seed: bytes, num_words: int, offset: int = 0
    ) -> np.ndarray:
        """``num_words`` uint64 words from SHA-256(seed || counter)."""
        blocks = (num_words + _BLOCK_WORDS - 1) // _BLOCK_WORDS
        if blocks == 0:
            return np.empty(0, dtype="<u8")
        digest = self._counter_digests(seed, blocks, offset)
        return np.frombuffer(digest, dtype="<u8")[:num_words]

    def expand(self, seed: bytes, dimension: int, modulus: int) -> np.ndarray:
        _validate_mask_request(dimension, modulus)
        if modulus & (modulus - 1) == 0:
            # Power of two: masking low bits of a uniform word is uniform.
            key = (bytes(seed), dimension, modulus)
            cached = self._cache.get(key)
            if cached is not None:
                return cached.copy()
            mask = _words_to_residues_pow2(
                self._counter_words(seed, dimension), modulus
            )
            self._cache_store(key, mask.copy())
            return mask
        # General modulus: rejection-sample below the largest multiple of
        # m representable in 64 bits, so the residue is exactly uniform.
        limit = (1 << 64) - ((1 << 64) % modulus)
        out = np.empty(dimension, dtype=np.int64)
        filled = 0
        offset = 0
        while filled < dimension:
            want = dimension - filled
            words = self._counter_words(seed, 2 * want + _BLOCK_WORDS, offset)
            offset += (len(words) + _BLOCK_WORDS - 1) // _BLOCK_WORDS
            accepted = words[words < np.uint64(limit)]
            take = min(want, len(accepted))
            out[filled : filled + take] = (
                accepted[:take] % np.uint64(modulus)
            ).astype(np.int64)
            filled += take
        return out

    def expand_batch(
        self, seeds: Sequence[bytes], dimension: int, modulus: int
    ) -> np.ndarray:
        _validate_mask_request(dimension, modulus)
        if modulus & (modulus - 1) != 0:
            # Rejection path consumes a data-dependent number of blocks
            # per seed; keep it per-seed.
            return super().expand_batch(seeds, dimension, modulus)
        if not seeds or dimension == 0:
            return np.zeros((len(seeds), dimension), dtype=np.int64)
        out = np.empty((len(seeds), dimension), dtype=np.int64)
        miss_rows: list[int] = []
        miss_seeds: list[bytes] = []
        cache_get = self._cache.get
        for row, seed in enumerate(seeds):
            cached = cache_get((seed, dimension, modulus))
            if cached is not None:
                out[row] = cached
            else:
                miss_rows.append(row)
                miss_seeds.append(seed)
        if not miss_seeds:
            return out
        # Flat batch: one digest buffer and one masking pass for all
        # missing seeds amortises the numpy round-trips across the
        # whole cohort.
        blocks = (dimension + _BLOCK_WORDS - 1) // _BLOCK_WORDS
        counters = _counter_slices(0, blocks)
        sha256 = hashlib.sha256
        digest = b"".join(
            [
                sha256(seed + counter).digest()
                for seed in miss_seeds
                for counter in counters
            ]
        )
        words = np.frombuffer(digest, dtype="<u8").reshape(
            len(miss_seeds), blocks * _BLOCK_WORDS
        )[:, :dimension]
        residues = _words_to_residues_pow2(words, modulus)
        for position, row in enumerate(miss_rows):
            out[row] = residues[position]
            self._cache_store(
                (bytes(miss_seeds[position]), dimension, modulus),
                residues[position].copy(),
            )
        return out


class PhiloxPrg(MaskPrg):
    """Counter-based numpy Philox backend — the fast protocol-v2 option.

    The seed is stretched to a 256-bit Philox key via SHA-256; uniform
    uint64 words come from ``BitGenerator.random_raw`` (the specified,
    version-stable Philox-4x64 output stream), and the word-to-residue
    logic (low-bit masking / rejection sampling) matches the SHA backend
    exactly.  Output is deterministic per seed but *not* bit-compatible
    with :class:`Sha256CounterPrg`, so all round participants must agree
    on the backend — the protocol-version knob on
    :class:`repro.secagg.bonawitz.BonawitzServer` and
    :class:`~repro.secagg.bonawitz.BonawitzClient`.
    """

    name = "philox"

    @staticmethod
    def _bit_generator(seed: bytes) -> np.random.Philox:
        words = np.frombuffer(hashlib.sha256(seed).digest(), dtype="<u8")
        # Philox-4x64 takes a 2-word key; fold the digest's other two
        # words into the counter's high half (the low half stays the
        # running block counter) so all 256 seed-derived bits matter.
        counter = np.array([0, 0, words[2], words[3]], dtype=np.uint64)
        return np.random.Philox(key=words[:2], counter=counter)

    def expand(self, seed: bytes, dimension: int, modulus: int) -> np.ndarray:
        _validate_mask_request(dimension, modulus)
        bit_generator = self._bit_generator(seed)
        if modulus & (modulus - 1) == 0:
            words = bit_generator.random_raw(dimension).astype(np.uint64)
            return _words_to_residues_pow2(words, modulus)
        limit = (1 << 64) - ((1 << 64) % modulus)
        out = np.empty(dimension, dtype=np.int64)
        filled = 0
        while filled < dimension:
            want = dimension - filled
            words = bit_generator.random_raw(2 * want + _BLOCK_WORDS)
            words = words.astype(np.uint64)
            accepted = words[words < np.uint64(limit)]
            take = min(want, len(accepted))
            out[filled : filled + take] = (
                accepted[:take] % np.uint64(modulus)
            ).astype(np.int64)
            filled += take
        return out


#: Registered backends, keyed by wire name.
MASK_PRGS: dict[str, MaskPrg] = {
    prg.name: prg for prg in (Sha256CounterPrg(), PhiloxPrg())
}

#: The compatibility default: bit-identical to the seed implementation.
DEFAULT_MASK_PRG = MASK_PRGS["sha256-ctr"]


def get_mask_prg(spec: str | MaskPrg | None) -> MaskPrg:
    """Resolve a backend name (or pass an instance through).

    Args:
        spec: A registered name (``"sha256-ctr"``, ``"philox"``), a
            :class:`MaskPrg` instance, or None for the default.

    Raises:
        ConfigurationError: On an unknown backend name.
    """
    if spec is None:
        return DEFAULT_MASK_PRG
    if isinstance(spec, MaskPrg):
        return spec
    try:
        return MASK_PRGS[spec]
    except KeyError:
        raise ConfigurationError(
            f"unknown mask PRG {spec!r}; known: {sorted(MASK_PRGS)}"
        ) from None


def sum_signed_masks(
    seeds: Sequence[bytes],
    signs: Sequence[int],
    dimension: int,
    modulus: int,
    prg: MaskPrg | str | None = None,
) -> np.ndarray:
    """``Σ_k sign_k · PRG(seed_k) mod m`` in one batched pass.

    This is the whole of a client's round-2 masking (self mask plus one
    signed pairwise mask per peer) and of the server's recovery
    subtraction, collapsed into a single kernel call: one batched
    expansion, one overflow-safe modular reduction, instead of one
    ``np.mod`` round-trip per peer.

    Args:
        seeds: One PRG seed per mask.
        signs: ``+1`` or ``-1`` per mask (lower/higher-indexed party).
        dimension: Mask vector length.
        modulus: Aggregation modulus ``m``.
        prg: Mask PRG backend (default: SHA-256 counter mode).

    Returns:
        The signed sum reduced into ``[0, m)``, int64.

    Raises:
        ConfigurationError: On mismatched lengths or an invalid sign.
    """
    if len(seeds) != len(signs):
        raise ConfigurationError(
            f"{len(seeds)} seeds but {len(signs)} signs"
        )
    if any(sign not in (1, -1) for sign in signs):
        raise ConfigurationError(f"signs must be +1 or -1, got {signs!r}")
    if not seeds:
        return np.zeros(dimension, dtype=np.int64)
    masks = get_mask_prg(prg).expand_batch(seeds, dimension, modulus)
    flips = np.asarray(signs, dtype=np.int64) == -1
    masks[flips] = np.mod(-masks[flips], modulus)
    if modulus <= LIMB_SPLIT_MAX_MODULUS:
        return sum_mod(masks.astype(np.uint64), modulus).astype(np.int64)
    # Enormous moduli (beyond the limb-split kernels) fall back to the
    # per-mask reduction; nothing in the repo uses moduli this large.
    total = np.zeros(dimension, dtype=object)
    for row in masks:
        total = np.mod(total + row, modulus)
    return total.astype(np.int64)


def keystream_batch(
    keys: Sequence[bytes], length: int
) -> np.ndarray:
    """SHA-256 counter-mode keystreams, full digest width, many keys.

    Unlike mask expansion over ``Z_256`` — which reads one *byte* out of
    each 64-bit word and therefore burns a whole SHA-256 block per four
    output bytes — the envelope keystream consumes all 32 digest bytes,
    an 8× reduction in hash invocations for the same stream length.

    Args:
        keys: One symmetric key per stream.
        length: Stream length in bytes (shared by all streams).

    Returns:
        ``(len(keys), length)`` uint8 array; stream ``k`` is
        ``SHA256(key_k || 0) || SHA256(key_k || 1) || ...`` truncated.
    """
    if length < 0:
        raise ConfigurationError(f"length must be >= 0, got {length}")
    if not keys or length == 0:
        return np.zeros((len(keys), length), dtype=np.uint8)
    blocks = (length + _DIGEST_BYTES - 1) // _DIGEST_BYTES
    counters = _counter_slices(0, blocks)
    sha256 = hashlib.sha256
    digest = b"".join(
        [
            sha256(key + counter).digest()
            for key in keys
            for counter in counters
        ]
    )
    return np.frombuffer(digest, dtype=np.uint8).reshape(
        len(keys), blocks * _DIGEST_BYTES
    )[:, :length]


def keystream(key: bytes, length: int) -> np.ndarray:
    """Single-key convenience wrapper around :func:`keystream_batch`."""
    return keystream_batch([key], length)[0]


# ---------------------------------------------------------------------------
# Batched Shamir over GF(p), p <= 2^61.
# ---------------------------------------------------------------------------


def _validate_split(
    secrets: np.ndarray, threshold: int, num_shares: int, prime: int
) -> None:
    if secrets.size and (
        int(secrets.min()) < 0 or int(secrets.max()) >= prime
    ):
        raise ConfigurationError(
            f"secrets must lie in [0, {prime}), got range "
            f"[{secrets.min()}, {secrets.max()}]"
        )
    if threshold < 1:
        raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
    if num_shares < threshold:
        raise ConfigurationError(
            f"cannot issue {num_shares} shares with threshold {threshold}"
        )
    if num_shares >= prime:
        raise ConfigurationError(
            f"at most {prime - 1} shares exist over GF({prime})"
        )


def batched_split(
    secrets: Sequence[int] | np.ndarray,
    threshold: int,
    num_shares: int,
    rng: np.random.Generator,
    prime: int,
) -> np.ndarray:
    """Shamir-share many secrets over the same evaluation points at once.

    One independent uniform degree-``threshold - 1`` polynomial per
    secret, all evaluated at ``x = 1..num_shares`` with a single
    vectorised Horner recurrence.

    Args:
        secrets: ``(k,)`` secrets, each in ``[0, prime)``.
        threshold: Reconstruction threshold ``t``.
        num_shares: Number of evaluation points ``n``.
        rng: Source of the polynomial coefficients.
        prime: Field modulus, at most ``2^61``.

    Returns:
        ``(k, num_shares)`` uint64 matrix; row ``i``, column ``j`` is
        secret ``i``'s share value at ``x = j + 1``.

    Raises:
        ConfigurationError: On inconsistent parameters (mirrors the
            scalar :func:`repro.secagg.shamir.split_secret_scalar`).
    """
    secrets = np.asarray(secrets, dtype=np.uint64)
    if secrets.ndim != 1:
        raise ConfigurationError(
            f"secrets must be a 1-d sequence, got shape {secrets.shape}"
        )
    _validate_split(secrets, threshold, num_shares, prime)
    coefficients = np.empty((secrets.shape[0], threshold), dtype=np.uint64)
    coefficients[:, 0] = secrets
    if threshold > 1:
        coefficients[:, 1:] = rng.integers(
            0, prime, size=(secrets.shape[0], threshold - 1), dtype=np.uint64
        )
    xs = np.arange(1, num_shares + 1, dtype=np.uint64)
    return horner_mod(coefficients, xs, prime)


def lagrange_weights_at_zero(
    xs: Sequence[int] | np.ndarray, prime: int
) -> np.ndarray:
    """Vectorised Lagrange weights ``l_i(0)`` for distinct points ``xs``.

    ``l_i(0) = Π_{j≠i} x_j / (x_j - x_i) mod p``.  The pairwise
    difference matrix, row products, and Fermat inversions are all
    uint64 array programs; the weights are computed **once** per point
    set and reused for every secret sharing those points — the key
    saving in batched reconstruction.

    Args:
        xs: ``(t,)`` distinct nonzero points in ``(0, prime)``.
        prime: Field modulus, at most ``2^61``.

    Returns:
        ``(t,)`` uint64 weights such that ``f(0) = Σ_i w_i f(x_i)``.

    Raises:
        AggregationError: On duplicate, zero, or out-of-field points.
    """
    xs = np.asarray(xs, dtype=np.uint64)
    if xs.size == 0:
        raise AggregationError("cannot reconstruct from zero shares")
    if len(np.unique(xs)) != len(xs):
        raise AggregationError(
            f"duplicate share points: {sorted(int(x) for x in xs)}"
        )
    if int(xs.min()) <= 0 or int(xs.max()) >= prime:
        raise AggregationError(
            f"share points must lie in (0, {prime}), got range "
            f"[{xs.min()}, {xs.max()}]"
        )
    p = np.uint64(prime)
    # differences[i, j] = (x_j - x_i) mod p; the diagonal is patched to 1
    # so row products skip the j == i term.
    differences = (xs[np.newaxis, :] + (p - xs[:, np.newaxis])) % p
    np.fill_diagonal(differences, 1)
    denominators = np.ones(len(xs), dtype=np.uint64)
    for column in range(len(xs)):
        denominators = mul_mod(denominators, differences[:, column], prime)
    # Numerators: Π_{j≠i} x_j = (Π_j x_j) · x_i^{-1}.
    product_all = np.ones((), dtype=np.uint64)
    for column in range(len(xs)):
        product_all = mul_mod(product_all, xs[column], prime)
    numerators = mul_mod(product_all, inv_mod(xs, prime), prime)
    return mul_mod(numerators, inv_mod(denominators, prime), prime)


def batched_reconstruct(
    xs: Sequence[int] | np.ndarray,
    ys: Sequence[Sequence[int]] | np.ndarray,
    prime: int,
) -> np.ndarray:
    """Reconstruct many secrets whose shares sit at the same points.

    Args:
        xs: ``(t,)`` distinct share points, shared by all secrets.
        ys: ``(k, t)`` share values; row ``i`` holds secret ``i``'s
            values at ``xs``.
        prime: Field modulus, at most ``2^61``.

    Returns:
        ``(k,)`` uint64 secrets ``f_i(0)``.

    Raises:
        AggregationError: On malformed points or out-of-field values.
    """
    ys = np.atleast_2d(np.asarray(ys, dtype=np.uint64))
    xs = np.asarray(xs, dtype=np.uint64)
    if ys.shape[1] != xs.shape[0]:
        raise AggregationError(
            f"{ys.shape[1]} share values per secret but {xs.shape[0]} points"
        )
    if ys.size and int(ys.max()) >= prime:
        raise AggregationError(
            f"share value {int(ys.max())} outside [0, {prime})"
        )
    weights = lagrange_weights_at_zero(xs, prime)
    terms = mul_mod(ys, weights[np.newaxis, :], prime)
    return sum_mod(terms, prime, axis=1)
