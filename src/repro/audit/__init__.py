"""Empirical privacy auditing (distinguishing-game lower bounds)."""

from repro.audit.estimator import AuditResult, audit_sum_mechanism

__all__ = ["AuditResult", "audit_sum_mechanism"]
