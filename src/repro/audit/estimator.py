"""Empirical privacy auditing: estimate a mechanism's effective epsilon.

A calibrated mechanism claims ``(epsilon, delta)``-DP.  This module
*measures* a lower bound on the privacy loss by playing the
distinguishing game the definition quantifies over:

1. fix two neighbouring datasets ``X`` (n participants) and
   ``X' = X + {x}``,
2. draw many mechanism outputs under each,
3. for a family of threshold events ``O_t = {output_1 <= t}``, estimate
   ``Pr[M(X) in O]`` and ``Pr[M(X') in O]`` and evaluate the largest
   ``log((p - delta) / q)`` over both directions.

Any mechanism that truly satisfies ``(epsilon, delta)``-DP must keep the
resulting *empirical epsilon* below the analytic epsilon (up to sampling
error, controlled here with conservative confidence margins).  The test
suite runs this auditor against every mechanism — a regression net for
calibration bugs that no unit test of a formula can catch.

This is a one-sided audit (it can only expose violations, not certify
privacy), in the spirit of DP testing tools like the one Mironov used to
expose floating-point leakage.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.mechanisms.base import SumEstimator


@dataclasses.dataclass(frozen=True)
class AuditResult:
    """Outcome of a distinguishing audit.

    Attributes:
        empirical_epsilon: Largest observed privacy loss over the
            threshold family (conservatively shrunk by the confidence
            margin).
        analytic_epsilon: The epsilon the mechanism was calibrated for.
        trials: Number of mechanism executions per dataset.
        violated: True if the empirical loss exceeds the analytic claim.
    """

    empirical_epsilon: float
    analytic_epsilon: float
    trials: int

    @property
    def violated(self) -> bool:
        return self.empirical_epsilon > self.analytic_epsilon


def _threshold_losses(
    samples_x: np.ndarray,
    samples_x_prime: np.ndarray,
    thresholds: np.ndarray,
    delta: float,
    margin: float,
) -> float:
    """Max thresholded privacy loss over both event directions."""
    worst = 0.0
    trials = len(samples_x)
    for threshold in thresholds:
        p = (samples_x <= threshold).mean()
        q = (samples_x_prime <= threshold).mean()
        for top, bottom in ((p, q), (q, p), (1 - p, 1 - q), (1 - q, 1 - p)):
            # Conservative: shrink the numerator and grow the denominator
            # by the binomial standard error before taking the ratio.
            top_low = max(top - margin / np.sqrt(trials), 0.0)
            bottom_high = bottom + margin / np.sqrt(trials)
            if top_low - delta > 0 and bottom_high > 0:
                loss = float(np.log((top_low - delta) / bottom_high))
                worst = max(worst, loss)
    return worst


def audit_sum_mechanism(
    mechanism: SumEstimator,
    rng: np.random.Generator,
    trials: int = 2000,
    num_thresholds: int = 30,
    margin: float = 2.0,
) -> AuditResult:
    """Run the distinguishing game against a calibrated mechanism.

    The neighbouring datasets differ in one participant holding the
    worst-case record permitted by the input spec (a max-norm vector in
    the first coordinate direction); the audit statistic is the first
    coordinate of the decoded sum.

    Args:
        mechanism: A *calibrated* estimator (its ``spec``/``accounting``
            determine the dataset geometry and the claimed epsilon).
        rng: Numpy random generator.
        trials: Mechanism executions per dataset (the audit's power grows
            with ``sqrt(trials)``).
        num_thresholds: Size of the threshold family.
        margin: Confidence margin in binomial standard errors (2 keeps
            false alarms below ~5% per threshold family).

    Returns:
        The audit result; ``violated`` indicates a likely DP bug.
    """
    if trials < 100:
        raise ConfigurationError(f"trials must be >= 100, got {trials}")
    spec = mechanism.spec
    accounting = mechanism.accounting
    base = np.zeros((spec.num_participants, spec.dimension))
    target = np.zeros(spec.dimension)
    target[0] = spec.l2_bound
    with_record = base.copy()
    with_record[-1] = target

    samples_x = np.empty(trials)
    samples_x_prime = np.empty(trials)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for index in range(trials):
            samples_x[index] = mechanism.estimate_sum(base, rng)[0]
            samples_x_prime[index] = mechanism.estimate_sum(with_record, rng)[0]

    pooled = np.concatenate([samples_x, samples_x_prime])
    thresholds = np.quantile(
        pooled, np.linspace(0.02, 0.98, num_thresholds)
    )
    empirical = _threshold_losses(
        samples_x,
        samples_x_prime,
        thresholds,
        accounting.budget.delta,
        margin,
    )
    return AuditResult(
        empirical_epsilon=empirical,
        analytic_epsilon=accounting.budget.epsilon,
        trials=trials,
    )
