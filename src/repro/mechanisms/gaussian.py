"""Centralised continuous Gaussian baseline (and DPSGD's noise engine).

The "strong baseline" of Sections 6.1-6.2: a trusted curator clips each
vector to ``Delta_2``, sums, and adds per-coordinate ``N(0, sigma^2)``
noise.  No rotation, quantisation or modulus is involved — this is the
utility ceiling the distributed mechanisms chase.  The same calibrated
object drives the DPSGD baseline in :mod:`repro.fl.dpsgd` (Abadi et al.'s
algorithm is exactly this estimator inside the SGD loop, with Poisson
subsampling amplification and moments accounting, both handled by
:mod:`repro.core.calibration`).
"""

from __future__ import annotations

import numpy as np

from repro.accounting.divergences import gaussian_rdp
from repro.core.calibration import AccountingSpec, calibrate_noise
from repro.errors import CalibrationError
from repro.mechanisms.base import InputSpec, SumEstimator, clip_l2


class GaussianMechanism(SumEstimator):
    """Continuous Gaussian sum estimator (centralised DP baseline)."""

    name = "gaussian"

    def __init__(self) -> None:
        super().__init__()
        self.sigma: float | None = None
        self.order: int | None = None
        self.achieved_epsilon: float | None = None

    def _calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        def curve_factory(sigma: float):
            return lambda alpha: gaussian_rdp(alpha, spec.l2_bound, sigma)

        result = calibrate_noise(curve_factory, accounting, initial=1.0)
        self.sigma = result.noise_parameter
        self.order = result.order
        self.achieved_epsilon = result.epsilon

    def estimate_sum(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.sigma is None:
            raise CalibrationError("GaussianMechanism is not calibrated")
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        clipped = clip_l2(values, self.spec.l2_bound)
        noise = rng.normal(0.0, self.sigma, size=values.shape[1])
        return clipped.sum(axis=0) + noise

    def describe(self) -> dict[str, float | int | str]:
        summary: dict[str, float | int | str] = {"name": self.name}
        if self.sigma is not None:
            summary.update(
                {
                    "sigma": self.sigma,
                    "order": int(self.order or 0),
                    "achieved_epsilon": float(self.achieved_epsilon or 0.0),
                }
            )
        return summary
