"""The (non-mixture) Skellam mechanism baseline (Agarwal et al. [3]).

Identical pipeline to DDG — L2 clip, rotate, scale, *conditional
rounding* within the Eq. (6) bound — but the injected noise is symmetric
Skellam ``Sk(lam, lam)`` instead of a discrete Gaussian.  Skellam's
closure under summation makes the distributed accounting exact (no
``tau_n`` gap), but the mechanism still pays the conditional-rounding
sensitivity inflation, and its RDP bound involves the L1 sensitivity
(:func:`repro.accounting.divergences.skellam_mechanism_rdp`) — the two
limitations Section 5 contrasts against SMM.
"""

from __future__ import annotations

import math

import numpy as np

from repro.accounting.divergences import skellam_mechanism_rdp
from repro.config import CompressionConfig
from repro.core.calibration import AccountingSpec, calibrate_noise
from repro.errors import CalibrationError
from repro.mechanisms.base import DistributedSumEstimator, InputSpec
from repro.mechanisms.rounding import (
    DEFAULT_BETA,
    conditional_round,
    conditional_rounding_bound,
)
from repro.sampling.fast import skellam_noise


class SkellamMechanism(DistributedSumEstimator):
    """Skellam-mechanism sum estimator (baseline of Agarwal et al. 2021).

    Args:
        compression: Modulus ``m`` and scale ``gamma``.
        beta: Conditional-rounding failure probability (``e^-0.5`` in the
            paper's experiments).
    """

    name = "skellam"

    def __init__(
        self, compression: CompressionConfig, beta: float = DEFAULT_BETA
    ) -> None:
        super().__init__(compression)
        self.beta = beta
        self.lam: float | None = None
        self.rounded_l2_bound: float | None = None
        self.order: int | None = None
        self.achieved_epsilon: float | None = None

    def _calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        n = spec.num_participants
        dimension = spec.padded_dimension
        scaled_l2 = self.compression.gamma * spec.l2_bound
        rounded_l2 = conditional_rounding_bound(scaled_l2, dimension, self.beta)
        rounded_l1 = min(math.sqrt(dimension) * rounded_l2, rounded_l2**2)
        self.rounded_l2_bound = rounded_l2

        def curve_factory(lam_per_participant: float):
            total_lam = n * lam_per_participant

            def curve(alpha: int) -> float:
                return skellam_mechanism_rdp(
                    alpha, rounded_l2**2, rounded_l1, total_lam
                )

            return curve

        result = calibrate_noise(curve_factory, accounting, initial=1.0)
        self.lam = result.noise_parameter
        self.order = result.order
        self.achieved_epsilon = result.epsilon

    def _encode_integer(
        self, scaled: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.lam is None or self.rounded_l2_bound is None:
            raise CalibrationError("SkellamMechanism is not calibrated")
        rounded = conditional_round(scaled, self.rounded_l2_bound, rng)
        return rounded + skellam_noise(self.lam, rounded.shape, rng)

    def describe(self) -> dict[str, float | int | str]:
        summary: dict[str, float | int | str] = {
            "name": self.name,
            "modulus": self.compression.modulus,
            "gamma": self.compression.gamma,
            "beta": self.beta,
        }
        if self.lam is not None:
            summary.update(
                {
                    "lambda_per_participant": self.lam,
                    "rounded_l2_bound": float(self.rounded_l2_bound or 0.0),
                    "order": int(self.order or 0),
                    "achieved_epsilon": float(self.achieved_epsilon or 0.0),
                }
            )
        return summary
