"""Calibrated sum estimators: SMM, DGM and the paper's four baselines."""

from repro.mechanisms.base import (
    DistributedSumEstimator,
    InputSpec,
    SumEstimator,
    clip_l2,
)
from repro.mechanisms.cpsgd import CpSgdMechanism
from repro.mechanisms.ddg import DistributedDiscreteGaussian
from repro.mechanisms.dgm import DiscreteGaussianMixtureMechanism
from repro.mechanisms.gaussian import GaussianMechanism
from repro.mechanisms.rounding import (
    DEFAULT_BETA,
    conditional_round,
    conditional_rounding_bound,
    stochastic_round,
)
from repro.mechanisms.skellam import SkellamMechanism
from repro.mechanisms.smm import SkellamMixtureMechanism

__all__ = [
    "CpSgdMechanism",
    "DEFAULT_BETA",
    "DiscreteGaussianMixtureMechanism",
    "DistributedDiscreteGaussian",
    "DistributedSumEstimator",
    "GaussianMechanism",
    "InputSpec",
    "SkellamMechanism",
    "SkellamMixtureMechanism",
    "SumEstimator",
    "clip_l2",
    "conditional_round",
    "conditional_rounding_bound",
    "stochastic_round",
]
