"""The Skellam mixture mechanism as a calibrated sum estimator.

Wires the core pieces (Algorithm 5 clipping + Algorithm 4 perturbation +
Theorem 5 / Corollary 1 accounting) into the :class:`SumEstimator`
interface used by the experiments.

Calibration follows Section 6: the mixture clipping threshold is
``c = gamma^2 Delta_2^2``; the per-participant ``lambda`` is the smallest
value whose accounted epsilon (subsampled composition at the optimal
integer order) meets the budget; and the L-infinity bound ``Delta_inf``
is then computed from Eq. (3) at the optimal order.  The RDP parameter
``tau(alpha) = (1.2 alpha + 1)/2 * c / (2 n lambda)`` does not itself
depend on ``Delta_inf`` — the constraint only restricts which orders are
usable — so the calibration fixes ``Delta_inf`` *after* choosing the
order, at the largest feasible value (maximising the usable range, as the
paper notes this "leads to a sufficiently large range for L-inf clipping
without causing much utility degradation").
"""

from __future__ import annotations

import numpy as np

from repro.accounting.divergences import smm_max_delta_inf, smm_rdp
from repro.config import ClipConfig, CompressionConfig
from repro.core.calibration import AccountingSpec, calibrate_noise
from repro.core.clipping import clip_gradient
from repro.errors import CalibrationError, PrivacyAccountingError
from repro.mechanisms.base import DistributedSumEstimator, InputSpec
from repro.sampling.fast import bernoulli_round, skellam_noise

#: Strict-inequality safety margin applied to the Eq. (3) maximum.
_DELTA_INF_MARGIN = 1.0 - 1e-9


class SkellamMixtureMechanism(DistributedSumEstimator):
    """SMM sum estimator (the paper's proposed mechanism).

    Args:
        compression: Modulus ``m`` and scale ``gamma``.
    """

    name = "smm"
    requires_l2_preclip = False

    def __init__(self, compression: CompressionConfig) -> None:
        super().__init__(compression)
        self.lam: float | None = None
        self.clip: ClipConfig | None = None
        self.order: int | None = None
        self.achieved_epsilon: float | None = None

    def _calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        c = (self.compression.gamma * spec.l2_bound) ** 2
        n = spec.num_participants

        def curve_factory(lam_per_participant: float):
            total_lam = n * lam_per_participant

            def curve(alpha: int) -> float:
                delta_inf = smm_max_delta_inf(alpha, total_lam) * _DELTA_INF_MARGIN
                if delta_inf < 1.0:
                    # ceil(|x|) <= Delta_inf < 1 forces every coordinate
                    # to zero: the order is unusable for transmission, so
                    # exclude it (Delta_inf_max decreases with alpha, so
                    # this truncates the order grid from above).
                    raise PrivacyAccountingError(
                        f"Delta_inf < 1 at order {alpha}"
                    )
                return smm_rdp(alpha, c, total_lam, delta_inf)

            return curve

        result = calibrate_noise(curve_factory, accounting, initial=1.0)
        self.lam = result.noise_parameter
        self.order = result.order
        self.achieved_epsilon = result.epsilon
        delta_inf = (
            smm_max_delta_inf(result.order, n * result.noise_parameter)
            * _DELTA_INF_MARGIN
        )
        self.clip = ClipConfig(c=c, delta_inf=delta_inf)

    def _encode_integer(
        self, scaled: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.lam is None or self.clip is None:
            raise CalibrationError("SkellamMixtureMechanism is not calibrated")
        clipped = clip_gradient(scaled, self.clip)
        rounded = bernoulli_round(clipped, rng)
        return rounded + skellam_noise(self.lam, rounded.shape, rng)

    def per_round_rdp_curve(self, num_participants: int | None = None):
        """Theorem-5 RDP curve of one round at the calibrated ``lambda``.

        Args:
            num_participants: Contributors whose noise shares actually
                reached the aggregate; defaults to the calibrated
                expectation.  A running ledger passes the *realized*
                survivor count, so dropout rounds — which carry less
                total noise than calibration assumed — are charged
                their true, higher cost.

        Feasibility mirrors calibration: orders whose Eq. (3) maximum
        falls below the transmitted ``Delta_inf`` raise, so a ledger
        composing this curve drops exactly the orders the (possibly
        reduced) noise level excludes.
        """
        if self.lam is None or self.clip is None:
            raise CalibrationError("SkellamMixtureMechanism is not calibrated")
        contributors = (
            num_participants
            if num_participants is not None
            else self.spec.num_participants
        )
        if contributors < 1:
            raise CalibrationError(
                f"num_participants must be >= 1, got {contributors}"
            )
        total_lam = contributors * self.lam
        c = self.clip.c
        delta_inf = self.clip.delta_inf

        def curve(alpha: int) -> float:
            if smm_max_delta_inf(alpha, total_lam) < delta_inf:
                raise PrivacyAccountingError(
                    f"Delta_inf {delta_inf:g} infeasible at order {alpha}"
                )
            return smm_rdp(alpha, c, total_lam, delta_inf)

        return curve

    def describe(self) -> dict[str, float | int | str]:
        summary: dict[str, float | int | str] = {
            "name": self.name,
            "modulus": self.compression.modulus,
            "gamma": self.compression.gamma,
        }
        if self.lam is not None and self.clip is not None:
            summary.update(
                {
                    "lambda_per_participant": self.lam,
                    "c": self.clip.c,
                    "delta_inf": self.clip.delta_inf,
                    "order": int(self.order or 0),
                    "achieved_epsilon": float(self.achieved_epsilon or 0.0),
                }
            )
        return summary
