"""Stochastic and conditional rounding (the baselines' integerisation).

cpSGD rounds each scaled coordinate to a neighbouring integer unbiasedly
(**stochastic rounding**), which can inflate a vector's L2 norm by up to
``sqrt(d)`` — the sensitivity blow-up Section 5 describes.

DDG and the Skellam mechanism mitigate this with **conditional rounding**
(Kairouz et al.): re-draw the stochastic rounding until the rounded
vector's L2 norm is within the bound of Eq. (6),

``B = sqrt(gamma^2 Delta_2^2 + d/4
         + sqrt(2 log(1/beta)) * (gamma Delta_2 + sqrt(d)/2))``,

which holds with probability at least ``1 - beta`` per attempt.  The
rejection step introduces the bias the paper criticises; ``beta`` is fixed
to ``exp(-0.5)`` as recommended by Kairouz et al. and used in Section 6.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CalibrationError, ConfigurationError
from repro.sampling.fast import bernoulli_round

#: The bias/sensitivity trade-off parameter recommended by Kairouz et al.
DEFAULT_BETA = math.exp(-0.5)


def stochastic_round(
    values: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Unbiased per-coordinate rounding to a neighbouring integer."""
    return bernoulli_round(np.asarray(values, dtype=np.float64), rng)


def conditional_rounding_bound(
    scaled_l2: float, dimension: int, beta: float = DEFAULT_BETA
) -> float:
    """The post-rounding L2 bound of Eq. (6).

    Args:
        scaled_l2: ``gamma * Delta_2``, the L2 bound of the scaled input.
        dimension: Vector width ``d`` (padded, where rounding happens).
        beta: Per-attempt failure probability.

    Returns:
        The norm bound ``B`` enforced by conditional rounding.
    """
    if not 0 < beta < 1:
        raise ConfigurationError(f"beta must be in (0, 1), got {beta}")
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    return math.sqrt(
        scaled_l2**2
        + dimension / 4.0
        + math.sqrt(2.0 * math.log(1.0 / beta))
        * (scaled_l2 + math.sqrt(dimension) / 2.0)
    )


def conditional_round(
    values: np.ndarray,
    norm_bound: float,
    rng: np.random.Generator,
    max_attempts: int = 1000,
) -> np.ndarray:
    """Re-draw stochastic roundings until every row meets ``norm_bound``.

    Args:
        values: ``(n, d)`` real array (or a single vector).
        norm_bound: Maximum allowed L2 norm of each rounded row.
        rng: Numpy random generator.
        max_attempts: Safety limit on redraws per batch (with the Eq. (6)
            bound at ``beta = e^-0.5`` each attempt succeeds with
            probability >= 0.39, so hitting this limit indicates a
            mis-configured bound).

    Returns:
        Integer array of the same shape; every row has L2 norm
        <= ``norm_bound``.

    Raises:
        CalibrationError: If some row still violates the bound after
            ``max_attempts`` redraws.
    """
    values = np.asarray(values, dtype=np.float64)
    single_vector = values.ndim == 1
    batch = np.atleast_2d(values)
    rounded = stochastic_round(batch, rng)
    for _ in range(max_attempts):
        norms = np.linalg.norm(rounded.astype(np.float64), axis=1)
        violating = norms > norm_bound
        if not violating.any():
            result = rounded
            return result[0] if single_vector else result
        rounded[violating] = stochastic_round(batch[violating], rng)
    raise CalibrationError(
        f"conditional rounding failed to meet bound {norm_bound:g} within "
        f"{max_attempts} attempts"
    )
