"""The distributed discrete Gaussian baseline (Kairouz et al., DDG).

Pipeline (Section 5): L2-clip the raw vector to ``Delta_2``, rotate,
scale by ``gamma``, **conditionally round** to integers within the Eq. (6)
norm bound, add per-participant discrete Gaussian noise, wrap mod ``m``.

Accounting uses Theorem 7 / :func:`repro.accounting.divergences.ddg_rdp`
with the *rounded* sensitivities

``Delta~_2 = B`` (the Eq. (6) bound itself — conditional rounding
guarantees no rounded vector exceeds it) and
``Delta~_1 = min(sqrt(d) Delta~_2, Delta~_2^2)`` (the relationship the
paper quotes from Kairouz et al., automatic for integer vectors).

The rounding inflates ``Delta~_2`` by roughly ``sqrt(d)/2`` over the
scaled signal ``gamma Delta_2`` — negligible at large ``gamma`` but
dominant at the coarse quantisation of small bitwidths, which is exactly
the regime where SMM wins (Figures 1-3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.accounting.divergences import (
    ddg_rdp,
    discrete_gaussian_sum_gap,
)
from repro.config import CompressionConfig
from repro.core.calibration import AccountingSpec, calibrate_noise
from repro.core.dgm import round_sigma_up
from repro.errors import CalibrationError
from repro.mechanisms.base import DistributedSumEstimator, InputSpec
from repro.mechanisms.rounding import (
    DEFAULT_BETA,
    conditional_round,
    conditional_rounding_bound,
)
from repro.sampling.fast import discrete_gaussian_noise


class DistributedDiscreteGaussian(DistributedSumEstimator):
    """DDG sum estimator (baseline of Kairouz et al. 2021).

    Args:
        compression: Modulus ``m`` and scale ``gamma``.
        beta: Conditional-rounding failure probability (``e^-0.5`` in the
            paper's experiments).
        integer_sigma: Round the per-participant sigma up to an integer,
            mirroring the TF-Privacy implementation the paper benchmarks.
    """

    name = "ddg"

    def __init__(
        self,
        compression: CompressionConfig,
        beta: float = DEFAULT_BETA,
        integer_sigma: bool = True,
    ) -> None:
        super().__init__(compression)
        self.beta = beta
        self.integer_sigma = integer_sigma
        self.sigma: float | None = None
        self.effective_sigma: float | None = None
        self.rounded_l2_bound: float | None = None
        self.order: int | None = None
        self.achieved_epsilon: float | None = None

    def _rounded_sensitivities(self, spec: InputSpec) -> tuple[float, float]:
        """``(Delta~_2, Delta~_1)`` of the conditionally rounded input."""
        scaled_l2 = self.compression.gamma * spec.l2_bound
        dimension = spec.padded_dimension
        rounded_l2 = conditional_rounding_bound(scaled_l2, dimension, self.beta)
        rounded_l1 = min(math.sqrt(dimension) * rounded_l2, rounded_l2**2)
        return rounded_l2, rounded_l1

    def _calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        n = spec.num_participants
        dimension = spec.padded_dimension
        rounded_l2, rounded_l1 = self._rounded_sensitivities(spec)
        self.rounded_l2_bound = rounded_l2

        def curve_factory(sigma: float):
            sigma_squared = sigma**2
            gap = discrete_gaussian_sum_gap(n, sigma_squared)

            def curve(alpha: int) -> float:
                return ddg_rdp(
                    alpha,
                    rounded_l2**2,
                    rounded_l1,
                    n,
                    sigma_squared,
                    dimension,
                    gap=gap,
                )

            return curve

        result = calibrate_noise(curve_factory, accounting, initial=1.0)
        self.sigma = result.noise_parameter
        self.order = result.order
        self.achieved_epsilon = result.epsilon
        self.effective_sigma = (
            round_sigma_up(result.noise_parameter)
            if self.integer_sigma
            else result.noise_parameter
        )

    def _encode_integer(
        self, scaled: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.effective_sigma is None or self.rounded_l2_bound is None:
            raise CalibrationError("DistributedDiscreteGaussian is not calibrated")
        rounded = conditional_round(scaled, self.rounded_l2_bound, rng)
        return rounded + discrete_gaussian_noise(
            self.effective_sigma**2, rounded.shape, rng
        )

    def describe(self) -> dict[str, float | int | str]:
        summary: dict[str, float | int | str] = {
            "name": self.name,
            "modulus": self.compression.modulus,
            "gamma": self.compression.gamma,
            "beta": self.beta,
        }
        if self.sigma is not None:
            summary.update(
                {
                    "sigma_per_participant": self.sigma,
                    "effective_sigma": float(self.effective_sigma or 0.0),
                    "rounded_l2_bound": float(self.rounded_l2_bound or 0.0),
                    "order": int(self.order or 0),
                    "achieved_epsilon": float(self.achieved_epsilon or 0.0),
                }
            )
        return summary
