"""The cpSGD binomial-mechanism baseline (Agarwal et al. 2018).

Pipeline (Section 5): L2 clip, rotate, scale by ``gamma``, **stochastic
rounding** (no norm condition — the full ``sqrt(d)`` sensitivity inflation
applies), per-participant centred binomial noise, wrap mod ``m``.

Accounting is pure ``(epsilon, delta)`` — the binomial mechanism does not
satisfy RDP — so rounds compose by the better of linear and advanced
composition with **no subsampling amplification**, exactly the weak
accounting the paper identifies as cpSGD's first limitation.  Together
with the rounding blow-up this keeps cpSGD "off the chart" in every
experiment (mse > 1e4 in Figure 1, accuracy < 20% in Figures 2-3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.accounting.binomial import binomial_mechanism_epsilon
from repro.accounting.composition import best_composition
from repro.config import CompressionConfig
from repro.core.calibration import AccountingSpec
from repro.errors import CalibrationError, PrivacyAccountingError
from repro.mechanisms.base import DistributedSumEstimator, InputSpec
from repro.mechanisms.rounding import stochastic_round
from repro.sampling.fast import binomial_noise


def _round_up_even(value: float) -> int:
    """Smallest even integer >= ``value``."""
    candidate = int(math.ceil(value))
    return candidate if candidate % 2 == 0 else candidate + 1


class CpSgdMechanism(DistributedSumEstimator):
    """cpSGD sum estimator (binomial mechanism baseline).

    Args:
        compression: Modulus ``m`` and scale ``gamma``.
    """

    name = "cpsgd"

    def __init__(self, compression: CompressionConfig) -> None:
        super().__init__(compression)
        self.trials_per_participant: int | None = None
        self.total_trials: int | None = None
        self.achieved_epsilon: float | None = None

    def _rounded_sensitivities(self, spec: InputSpec) -> tuple[float, float, float]:
        """Worst-case ``(Delta~_1, Delta~_2, Delta~_inf)`` after rounding.

        Stochastic rounding moves each coordinate by less than 1, so the
        L2 norm can grow by up to ``sqrt(d)`` and a single coordinate by
        up to 1 — cpSGD's original worst-case bounds.
        """
        scaled_l2 = self.compression.gamma * spec.l2_bound
        dimension = spec.padded_dimension
        rounded_l2 = scaled_l2 + math.sqrt(dimension)
        rounded_l1 = min(math.sqrt(dimension) * rounded_l2, rounded_l2**2)
        rounded_linf = scaled_l2 + 1.0
        return rounded_l1, rounded_l2, rounded_linf

    def _calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        dimension = spec.padded_dimension
        rounded_l1, rounded_l2, rounded_linf = self._rounded_sensitivities(spec)
        budget = accounting.budget
        rounds = accounting.rounds
        delta_per_round = budget.delta / (2.0 * rounds)

        def total_epsilon(num_trials: int) -> float:
            try:
                per_round = binomial_mechanism_epsilon(
                    num_trials,
                    dimension,
                    delta_per_round,
                    rounded_l1,
                    rounded_l2,
                    rounded_linf,
                )
                return best_composition(
                    per_round, delta_per_round, rounds, budget.delta
                )
            except PrivacyAccountingError:
                return math.inf

        # Bracket then bisect over the (integer) total trial count.
        hi = 1024
        doublings = 0
        while total_epsilon(hi) > budget.epsilon:
            hi *= 2
            doublings += 1
            if doublings > 200:
                raise CalibrationError(
                    f"cpSGD cannot meet epsilon={budget.epsilon} at any "
                    f"binomial size up to {hi}"
                )
        lo = hi // 2
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if total_epsilon(mid) <= budget.epsilon:
                hi = mid
            else:
                lo = mid
        self.total_trials = hi
        self.trials_per_participant = _round_up_even(
            hi / spec.num_participants
        )
        self.achieved_epsilon = total_epsilon(hi)

    def _encode_integer(
        self, scaled: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.trials_per_participant is None:
            raise CalibrationError("CpSgdMechanism is not calibrated")
        rounded = stochastic_round(scaled, rng)
        return rounded + binomial_noise(
            self.trials_per_participant, rounded.shape, rng
        )

    def describe(self) -> dict[str, float | int | str]:
        summary: dict[str, float | int | str] = {
            "name": self.name,
            "modulus": self.compression.modulus,
            "gamma": self.compression.gamma,
        }
        if self.total_trials is not None:
            summary.update(
                {
                    "total_trials": int(self.total_trials),
                    "trials_per_participant": int(
                        self.trials_per_participant or 0
                    ),
                    "achieved_epsilon": float(self.achieved_epsilon or 0.0),
                }
            )
        return summary
