"""The discrete Gaussian mixture mechanism as a calibrated sum estimator.

Appendix B's DGM in the :class:`SumEstimator` interface.  Calibration
mirrors SMM (``c = gamma^2 Delta_2^2``, ``Delta_inf`` from the
feasibility constraints at the optimal order) but accounts with Theorem 8
/ Corollary 3, whose bound carries two discrete-Gaussian-specific terms:
the non-closure gap ``tau_n`` (Eq. (7)) and an L1-sensitivity arm with
``Delta_1 <= sqrt(d) * gamma * Delta_2`` (Appendix B.3).

Following Appendix B.3, the per-participant ``sigma`` actually used for
sampling is rounded *up* to an integer ("the noise parameter sigma for
DGM is integer-valued in the current implementation" of TF-Privacy),
which preserves privacy but produces the utility staircase of Figures
4-5.
"""

from __future__ import annotations

import math

import numpy as np

from repro.accounting.divergences import (
    dgm_max_delta_inf,
    dgm_rdp,
    discrete_gaussian_sum_gap,
)
from repro.config import ClipConfig, CompressionConfig
from repro.core.calibration import AccountingSpec, calibrate_noise
from repro.core.clipping import clip_gradient
from repro.core.dgm import round_sigma_up
from repro.errors import CalibrationError, PrivacyAccountingError
from repro.mechanisms.base import DistributedSumEstimator, InputSpec
from repro.sampling.fast import bernoulli_round, discrete_gaussian_noise

_DELTA_INF_MARGIN = 1.0 - 1e-9


class DiscreteGaussianMixtureMechanism(DistributedSumEstimator):
    """DGM sum estimator (Appendix B, Algorithms 11-14).

    Args:
        compression: Modulus ``m`` and scale ``gamma``.
        integer_sigma: Round the per-participant sigma up to an integer
            before sampling (Appendix B.3 behaviour; True in the paper's
            experiments).
    """

    name = "dgm"
    requires_l2_preclip = False

    def __init__(
        self, compression: CompressionConfig, integer_sigma: bool = True
    ) -> None:
        super().__init__(compression)
        self.integer_sigma = integer_sigma
        self.sigma: float | None = None
        self.effective_sigma: float | None = None
        self.clip: ClipConfig | None = None
        self.order: int | None = None
        self.achieved_epsilon: float | None = None

    def _calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        c = (self.compression.gamma * spec.l2_bound) ** 2
        n = spec.num_participants
        dimension = spec.padded_dimension
        l1_bound = math.sqrt(dimension) * self.compression.gamma * spec.l2_bound

        def curve_factory(sigma: float):
            sigma_squared = sigma**2
            gap = discrete_gaussian_sum_gap(n, sigma_squared)

            def curve(alpha: int) -> float:
                delta_inf = (
                    dgm_max_delta_inf(alpha, n, sigma_squared, gap=gap)
                    * _DELTA_INF_MARGIN
                )
                if delta_inf < 1.0:
                    # An order whose Eq. (8) ceiling is below 1 cannot
                    # transmit any nonzero coordinate; exclude it.
                    raise PrivacyAccountingError(
                        f"Delta_inf < 1 at order {alpha}"
                    )
                return dgm_rdp(
                    alpha,
                    c,
                    n,
                    sigma_squared,
                    delta_inf,
                    l1_bound,
                    dimension,
                    gap=gap,
                )

            return curve

        result = calibrate_noise(curve_factory, accounting, initial=1.0)
        self.sigma = result.noise_parameter
        self.order = result.order
        self.achieved_epsilon = result.epsilon
        self.effective_sigma = (
            round_sigma_up(result.noise_parameter)
            if self.integer_sigma
            else result.noise_parameter
        )
        sigma_squared = result.noise_parameter**2
        gap = discrete_gaussian_sum_gap(n, sigma_squared)
        delta_inf = (
            dgm_max_delta_inf(result.order, n, sigma_squared, gap=gap)
            * _DELTA_INF_MARGIN
        )
        if delta_inf <= 0:
            raise CalibrationError(
                "DGM calibration produced an empty Delta_inf range; the "
                "discrete Gaussian non-closure gap dominates at this noise "
                "scale"
            )
        self.clip = ClipConfig(c=c, delta_inf=delta_inf)

    def _encode_integer(
        self, scaled: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.effective_sigma is None or self.clip is None:
            raise CalibrationError(
                "DiscreteGaussianMixtureMechanism is not calibrated"
            )
        clipped = clip_gradient(scaled, self.clip)
        rounded = bernoulli_round(clipped, rng)
        return rounded + discrete_gaussian_noise(
            self.effective_sigma**2, rounded.shape, rng
        )

    def describe(self) -> dict[str, float | int | str]:
        summary: dict[str, float | int | str] = {
            "name": self.name,
            "modulus": self.compression.modulus,
            "gamma": self.compression.gamma,
        }
        if self.sigma is not None and self.clip is not None:
            summary.update(
                {
                    "sigma_per_participant": self.sigma,
                    "effective_sigma": float(self.effective_sigma or 0.0),
                    "c": self.clip.c,
                    "delta_inf": self.clip.delta_inf,
                    "order": int(self.order or 0),
                    "achieved_epsilon": float(self.achieved_epsilon or 0.0),
                }
            )
        return summary
