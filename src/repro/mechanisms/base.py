"""Common interface for distributed-sum mechanisms (Section 3.1).

Every mechanism in the paper's evaluation — SMM, DGM, DDG, the Skellam
mechanism, cpSGD and the centralised continuous Gaussian — solves the same
problem: estimate ``sum_i x_i`` of ``n`` private vectors under a target
``(epsilon, delta)`` guarantee.  :class:`SumEstimator` fixes the two-phase
contract they all share:

1. :meth:`calibrate` — given the input geometry (:class:`InputSpec`) and
   the accounting regime (:class:`AccountingSpec`), solve for the noise
   parameter and freeze all derived thresholds; then
2. :meth:`estimate_sum` — run the full pipeline on a concrete batch.

The distributed mechanisms additionally share the SecAgg wire pipeline
(rotate -> scale -> mechanism-specific integer encode -> mod m -> secure
sum -> unwrap -> un-scale -> un-rotate), factored into
:class:`DistributedSumEstimator`.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.config import CompressionConfig
from repro.core.calibration import AccountingSpec
from repro.errors import CalibrationError, ConfigurationError
from repro.linalg.hadamard import RandomRotation, next_power_of_two
from repro.linalg.modular import decode_centered
from repro.secagg.protocol import SecureAggregator, ZeroSumMaskProtocol


@dataclasses.dataclass(frozen=True)
class InputSpec:
    """Geometry of the private inputs, known publicly.

    Attributes:
        num_participants: Expected number of vectors per aggregation (the
            full population for one-shot sum estimation; the expected
            batch size ``|B|`` for FL).
        dimension: Width ``d`` of each input vector (un-padded).
        l2_bound: Public bound ``Delta_2`` on each vector's L2 norm
            (enforced by clipping where not already guaranteed).
    """

    num_participants: int
    dimension: int
    l2_bound: float = 1.0

    def __post_init__(self) -> None:
        if self.num_participants < 1:
            raise ConfigurationError(
                f"num_participants must be >= 1, got {self.num_participants}"
            )
        if self.dimension < 1:
            raise ConfigurationError(
                f"dimension must be >= 1, got {self.dimension}"
            )
        if not self.l2_bound > 0:
            raise ConfigurationError(
                f"l2_bound must be positive, got {self.l2_bound}"
            )

    @property
    def padded_dimension(self) -> int:
        """Power-of-two width after Walsh-Hadamard padding."""
        return next_power_of_two(self.dimension)


def clip_l2(values: np.ndarray, bound: float) -> np.ndarray:
    """Scale rows down so each has L2 norm at most ``bound`` (DPSGD clip)."""
    values = np.asarray(values, dtype=np.float64)
    single_vector = values.ndim == 1
    batch = np.atleast_2d(values)
    norms = np.linalg.norm(batch, axis=1, keepdims=True)
    scales = np.minimum(1.0, bound / np.maximum(norms, np.finfo(float).tiny))
    result = batch * scales
    return result[0] if single_vector else result


class SumEstimator(abc.ABC):
    """A differentially private estimator of vector sums."""

    #: Short identifier used in experiment tables (e.g. ``"smm"``).
    name: str = "base"

    def __init__(self) -> None:
        self._spec: InputSpec | None = None
        self._accounting: AccountingSpec | None = None

    @property
    def spec(self) -> InputSpec:
        """The input geometry this estimator was calibrated for."""
        if self._spec is None:
            raise CalibrationError(f"{type(self).__name__} is not calibrated")
        return self._spec

    @property
    def accounting(self) -> AccountingSpec:
        """The accounting regime this estimator was calibrated for."""
        if self._accounting is None:
            raise CalibrationError(f"{type(self).__name__} is not calibrated")
        return self._accounting

    def calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        """Solve for the noise parameter meeting ``accounting.budget``."""
        self._spec = spec
        self._accounting = accounting
        self._calibrate(spec, accounting)

    @abc.abstractmethod
    def _calibrate(self, spec: InputSpec, accounting: AccountingSpec) -> None:
        """Mechanism-specific calibration (noise parameter + thresholds)."""

    @abc.abstractmethod
    def estimate_sum(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Estimate the column sum of ``values`` (shape ``(n, d)``).

        ``n`` may differ from ``spec.num_participants`` (FL batches vary);
        the noise each participant adds was fixed at calibration time.
        """

    def describe(self) -> dict[str, float | int | str]:
        """Human-readable calibration summary for experiment logs."""
        return {"name": self.name}

    def per_round_rdp_curve(self, num_participants: int | None = None):
        """RDP curve of one aggregation at the calibrated noise level.

        Used by running privacy ledgers (the simulation engine's
        :class:`~repro.accounting.rdp.RdpAccountant`) to charge each
        executed round and report a cumulative ``(epsilon, delta)``.

        Args:
            num_participants: Contributors whose noise actually reached
                the aggregate; ``None`` means the calibrated
                expectation.

        Returns:
            An ``alpha -> tau`` callable raising
            :class:`~repro.errors.PrivacyAccountingError` at infeasible
            orders.

        Raises:
            CalibrationError: If the mechanism is uncalibrated or does
                not expose an RDP curve (cpSGD accounts via
                ``(epsilon, delta)`` composition instead).
        """
        raise CalibrationError(
            f"{type(self).__name__} does not expose a per-round RDP curve"
        )


class DistributedSumEstimator(SumEstimator):
    """Shared SecAgg pipeline for the integer-noise mechanisms.

    Subclasses implement :meth:`_encode_integer` — everything from the
    scaled, rotated real batch to integer values (before the modular
    wrap) — and inherit the rotation, wrapping, aggregation and decoding
    steps.

    Subclasses relying on their own sensitivity control (SMM/DGM run
    Algorithm 5 on the scaled vector instead of a plain L2 clip — Section
    6.2 sets ``c = gamma^2 Delta_2^2`` *in lieu of* the L2 clip) set
    ``requires_l2_preclip = False``.

    Args:
        compression: Modulus ``m`` and scale ``gamma``.
        secagg_factory: Optional factory building the SecAgg protocol
            from ``(modulus, rng)``; defaults to the fast zero-sum
            simulator.
    """

    #: Whether the raw input is L2-clipped to ``Delta_2`` before rotation.
    requires_l2_preclip: bool = True

    def __init__(
        self,
        compression: CompressionConfig,
        secagg_factory: type[SecureAggregator] = ZeroSumMaskProtocol,
    ) -> None:
        super().__init__()
        self.compression = compression
        self._secagg_factory = secagg_factory

    @abc.abstractmethod
    def _encode_integer(
        self, scaled: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Map the scaled rotated batch to integer messages (pre-mod)."""

    def estimate_sum(
        self, values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Run the full distributed pipeline on a concrete batch."""
        spec = self.spec
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.shape[1] != spec.dimension:
            raise ConfigurationError(
                f"expected width {spec.dimension}, got {values.shape[1]}"
            )
        clipped = (
            clip_l2(values, spec.l2_bound)
            if self.requires_l2_preclip
            else values
        )
        rotation = RandomRotation.create(spec.dimension, rng)
        rotated = rotation.forward(clipped)
        scaled = self.compression.gamma * rotated
        integer_messages = self._encode_integer(scaled, rng)
        wrapped = np.mod(integer_messages, self.compression.modulus)
        aggregator = self._secagg_factory(self.compression.modulus, rng)
        residue = aggregator.run(wrapped)
        centred = decode_centered(residue, self.compression.modulus)
        unscaled = centred.astype(np.float64) / self.compression.gamma
        return rotation.inverse(unscaled)
