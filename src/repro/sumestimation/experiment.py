"""The distributed sum estimation experiment (Section 6.1 / Figure 1).

Given a dataset of ``n`` vectors on an L2 sphere, each mechanism releases
a DP estimate of their sum; the reported metric is the per-dimension mean
squared error

``mse = (1/d) * || estimate - true_sum ||_2^2``

(matching the paper's ``Err_M`` with the expectation replaced by an
empirical average over trials).  :func:`run_sum_estimation` evaluates one
calibrated mechanism; :func:`sweep` runs a grid of mechanisms and privacy
budgets — the harness behind Figures 1 and 4.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from repro.config import PrivacyBudget
from repro.core.calibration import AccountingSpec
from repro.errors import CalibrationError, ConfigurationError
from repro.mechanisms.base import InputSpec, SumEstimator
from repro.sumestimation.datasets import sample_sphere


@dataclasses.dataclass(frozen=True)
class SumEstimationResult:
    """Outcome of evaluating one mechanism at one privacy level.

    Attributes:
        mechanism: The mechanism's short name.
        epsilon: The target epsilon.
        mse: Per-dimension mean squared error, averaged over trials.
        trials: Number of independent repetitions averaged.
        summary: The mechanism's calibration description.
    """

    mechanism: str
    epsilon: float
    mse: float
    trials: int
    summary: dict


def run_sum_estimation(
    mechanism: SumEstimator,
    values: np.ndarray,
    budget: PrivacyBudget,
    rng: np.random.Generator,
    trials: int = 1,
    l2_bound: float = 1.0,
) -> SumEstimationResult:
    """Calibrate a mechanism and measure its sum-estimation error.

    Args:
        mechanism: An un-calibrated :class:`SumEstimator`.
        values: ``(n, d)`` private inputs.
        budget: Target ``(epsilon, delta)``.
        rng: Numpy random generator.
        trials: Independent repetitions to average the mse over.
        l2_bound: Public L2 bound of each input row.

    Returns:
        The measured result (``mse = inf`` if calibration is infeasible).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ConfigurationError(f"expected an (n, d) array, got {values.ndim}-d")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    spec = InputSpec(
        num_participants=values.shape[0],
        dimension=values.shape[1],
        l2_bound=l2_bound,
    )
    accounting = AccountingSpec(budget=budget, rounds=1, sampling_rate=1.0)
    try:
        mechanism.calibrate(spec, accounting)
    except CalibrationError:
        return SumEstimationResult(
            mechanism=mechanism.name,
            epsilon=budget.epsilon,
            mse=float("inf"),
            trials=0,
            summary=mechanism.describe(),
        )
    true_sum = values.sum(axis=0)
    errors = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # Overflow warnings are the data here.
        for _ in range(trials):
            estimate = mechanism.estimate_sum(values, rng)
            errors.append(float(np.mean((estimate - true_sum) ** 2)))
    return SumEstimationResult(
        mechanism=mechanism.name,
        epsilon=budget.epsilon,
        mse=float(np.mean(errors)),
        trials=trials,
        summary=mechanism.describe(),
    )


def sweep(
    mechanism_factories: dict[str, "dataclasses.Field | object"],
    epsilons: list[float],
    rng: np.random.Generator,
    num_points: int = 100,
    dimension: int = 65536,
    delta: float = 1e-5,
    trials: int = 1,
) -> list[SumEstimationResult]:
    """Evaluate a grid of mechanisms x epsilons on a fresh sphere dataset.

    Args:
        mechanism_factories: Name -> zero-argument callable building an
            un-calibrated mechanism (a fresh instance per cell).
        epsilons: Privacy levels to sweep.
        rng: Numpy random generator.
        num_points: Participants ``n``.
        dimension: Data dimension ``d``.
        delta: DP delta.
        trials: Repetitions per cell.

    Returns:
        One :class:`SumEstimationResult` per (mechanism, epsilon) cell, in
        row-major order over ``epsilons`` then factories.
    """
    values = sample_sphere(num_points, dimension, rng)
    results = []
    for epsilon in epsilons:
        budget = PrivacyBudget(epsilon=epsilon, delta=delta)
        for name, factory in mechanism_factories.items():
            mechanism = factory()
            result = run_sum_estimation(
                mechanism, values, budget, rng, trials=trials
            )
            results.append(
                dataclasses.replace(result, mechanism=name)
            )
    return results


def format_results_table(results: list[SumEstimationResult]) -> str:
    """Render results as the paper-style series table (rows = epsilon)."""
    by_mechanism: dict[str, dict[float, float]] = {}
    epsilons: list[float] = []
    for result in results:
        by_mechanism.setdefault(result.mechanism, {})[result.epsilon] = result.mse
        if result.epsilon not in epsilons:
            epsilons.append(result.epsilon)
    header = "epsilon  " + "  ".join(f"{name:>12s}" for name in by_mechanism)
    lines = [header]
    for epsilon in epsilons:
        cells = "  ".join(
            f"{by_mechanism[name].get(epsilon, float('nan')):12.4g}"
            for name in by_mechanism
        )
        lines.append(f"{epsilon:7.2f}  {cells}")
    return "\n".join(lines)
