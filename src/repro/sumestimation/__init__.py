"""Distributed sum estimation experiments (Section 6.1, Figures 1 and 4)."""

from repro.sumestimation.datasets import sample_sphere
from repro.sumestimation.experiment import (
    SumEstimationResult,
    format_results_table,
    run_sum_estimation,
    sweep,
)

__all__ = [
    "SumEstimationResult",
    "format_results_table",
    "run_sum_estimation",
    "sample_sphere",
    "sweep",
]
