"""Synthetic inputs for the distributed sum estimation experiments.

Section 6.1: "we generate a synthetic dataset containing n = 100 data
points uniformly sampled from a d-dimensional L2 sphere ... d = 65536,
radius r = 1 (namely, the L2 sensitivity of input is 1)."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def sample_sphere(
    num_points: int,
    dimension: int,
    rng: np.random.Generator,
    radius: float = 1.0,
) -> np.ndarray:
    """Uniform points on the L2 sphere of the given radius.

    Args:
        num_points: Number of points ``n``.
        dimension: Ambient dimension ``d``.
        rng: Numpy random generator.
        radius: Sphere radius ``r`` (the inputs' L2 sensitivity).

    Returns:
        ``(n, d)`` float64 array; every row has L2 norm ``radius``.
    """
    if num_points < 1:
        raise ConfigurationError(f"num_points must be >= 1, got {num_points}")
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if not radius > 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    directions = rng.normal(size=(num_points, dimension))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    return radius * directions / norms
