"""Event-driven federated orchestration over an unreliable population.

The paper evaluates its mechanisms under fully synchronous, all-online
aggregation; this subsystem supplies the production-shaped layer on top:
an asyncio engine that runs whole training rounds over a simulated
client population with dropouts, stragglers and churn, survives them via
the Bonawitz protocol's Shamir recovery, and charges a running privacy
ledger — all on a deterministic simulated clock, so every run is
bit-reproducible from its seed.

Layering (each module only depends on the ones above it):

* :mod:`~repro.simulation.clock` — deterministic discrete-event clock
  driving asyncio without wall time.
* :mod:`~repro.simulation.events` — clock-aware mailboxes and the trace.
* :mod:`~repro.simulation.population` — client registry, availability
  models, cohort sampling.
* :mod:`~repro.simulation.rounds` — dropout-tolerant async SecAgg round
  driver over the ``secagg.bonawitz`` state machines.
* :mod:`~repro.simulation.sharding` — level-agnostic sharding
  primitives: partition/threshold rules, picklable shard tasks, the
  inline/process execution backends.
* :mod:`~repro.simulation.hierarchy` — N-level aggregation-tree
  orchestration: leaf Bonawitz sub-rounds composed bottom-up by a
  pluggable clear / SecAgg composer, with optional cross-shard
  straggler rebalancing.
* :mod:`~repro.simulation.engine` — the training orchestrator wiring
  encoder/decoder, the Skellam mixture noise, the federated trainer and
  the accounting ledger into the round loop.
"""

from repro.simulation.clock import SimulatedClock, TimerHandle
from repro.simulation.engine import (
    RoundRecord,
    SimulationConfig,
    SimulationEngine,
    SimulationResult,
)
from repro.simulation.events import Mailbox, SimulationTrace, TraceEvent
from repro.simulation.hierarchy import (
    HierarchicalSecAggRound,
    ShardedSecAggRound,
)
from repro.simulation.population import (
    AlwaysAvailable,
    AvailabilityModel,
    BernoulliDropout,
    ClientPlan,
    Population,
    RoundChurn,
    StragglerLatency,
)
from repro.simulation.rounds import AsyncSecAggRound, RoundOutcome
from repro.simulation.sharding import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ShardReport,
    ShardTask,
    get_execution_backend,
    partition_cohort,
    shamir_threshold,
    validate_threshold_fraction,
)
from repro.simulation.shm import (
    SharedMemoryTransport,
    ShmVectorBlock,
    shared_memory_available,
)

__all__ = [
    "AlwaysAvailable",
    "AsyncSecAggRound",
    "AvailabilityModel",
    "BernoulliDropout",
    "ClientPlan",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "HierarchicalSecAggRound",
    "InlineBackend",
    "Mailbox",
    "Population",
    "ProcessBackend",
    "RoundChurn",
    "RoundOutcome",
    "RoundRecord",
    "ShardReport",
    "ShardTask",
    "ShardedSecAggRound",
    "SharedMemoryTransport",
    "ShmVectorBlock",
    "SimulatedClock",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "SimulationTrace",
    "StragglerLatency",
    "TimerHandle",
    "TraceEvent",
    "get_execution_backend",
    "partition_cohort",
    "shamir_threshold",
    "shared_memory_available",
    "validate_threshold_fraction",
]
